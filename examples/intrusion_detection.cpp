// Intrusion detection — the paper's motivating application (Sec. I, VI).
//
// A field of 128 sensor motes watches for intruders. Detections follow the
// bimodal model: background false alarms trip only a few sensors (x near
// μ1), a real intrusion trips many (x near μ2). When any node initiates a
// confirmation round it wants to know whether at least t neighbours agree —
// without collecting 128 individual reports.
//
// The example runs a stream of events through a two-stage pipeline:
//   1. the O(1) probabilistic test (Sec. VI) triages each event;
//   2. events it flags as real are *confirmed* with an exact tcast
//      (probabilistic ABNS), so no alarm is raised on sampling luck alone.
// It then reports accuracy and the query budget against always running the
// exact query.
#include <cstdio>

#include "analysis/bimodal.hpp"
#include "core/probabilistic_abns.hpp"
#include "core/probabilistic_threshold.hpp"
#include "group/exact_channel.hpp"

int main() {
  using namespace tcast;

  constexpr std::size_t kNodes = 128;
  constexpr std::size_t kThreshold = 40;  // confirm ⇒ notify basestation
  constexpr std::size_t kEvents = 400;
  const auto dist = analysis::BimodalDistribution::symmetric(kNodes, 40, 4.0);

  RngStream rng(7);
  std::size_t triage_queries = 0, confirm_queries = 0, exact_only_queries = 0;
  std::size_t intrusions = 0, confirmed = 0, missed = 0, false_alarms = 0;

  for (std::size_t event = 0; event < kEvents; ++event) {
    const auto sample = dist.sample(kNodes, rng);
    auto channel =
        group::ExactChannel::with_random_positives(kNodes, sample.x, rng);
    const auto nodes = channel.all_nodes();
    if (sample.from_high_mode) ++intrusions;

    // Stage 1: constant-cost triage.
    core::ProbabilisticThresholdOptions popts;
    std::tie(popts.t_l, popts.t_r) = dist.decision_boundaries();
    popts.repeats = 9;
    const auto triage =
        core::run_probabilistic_threshold(channel, nodes, popts, rng);
    triage_queries += triage.queries;

    // Stage 2: exact confirmation only for flagged events.
    bool alarm = false;
    if (triage.high_mode) {
      const auto confirm =
          core::run_probabilistic_abns(channel, nodes, kThreshold, rng);
      confirm_queries += confirm.queries;
      alarm = confirm.decision;
    }

    const bool truth = sample.x >= kThreshold;
    if (alarm && truth) ++confirmed;
    if (!alarm && truth) ++missed;
    if (alarm && !truth) ++false_alarms;

    // Reference: exact query on every event.
    {
      RngStream ref_rng(1000 + event);
      auto ref_channel =
          group::ExactChannel::with_random_positives(kNodes, sample.x, ref_rng);
      exact_only_queries += core::run_probabilistic_abns(
                                ref_channel, ref_channel.all_nodes(),
                                kThreshold, ref_rng)
                                .queries;
    }
  }

  std::printf("intrusion detection over %zu events (N=%zu, t=%zu)\n\n",
              kEvents, kNodes, kThreshold);
  std::printf("events with x >= t        : %zu\n", intrusions);
  std::printf("confirmed alarms          : %zu\n", confirmed);
  std::printf("missed (triage said calm) : %zu\n", missed);
  std::printf("false alarms raised       : %zu\n", false_alarms);
  std::printf("\nquery budget:\n");
  std::printf("  two-stage (triage+confirm): %zu + %zu = %zu queries\n",
              triage_queries, confirm_queries,
              triage_queries + confirm_queries);
  std::printf("  exact query on every event: %zu queries\n",
              exact_only_queries);
  std::printf("  saved: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(triage_queries +
                                                 confirm_queries) /
                                 static_cast<double>(exact_only_queries)));
  return 0;
}
