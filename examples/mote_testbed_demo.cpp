// Drive the emulated TelosB bench exactly like the paper's laptop did
// (Sec. IV-D): configure motes over serial, stimulate the initiator, and
// collect results — through real backcast exchanges with radio
// irregularity, not the abstract channel.
#include <cstdio>

#include "testbed/controller.hpp"

int main() {
  using namespace tcast;

  testbed::Testbed::Config cfg;
  cfg.participants = 12;
  cfg.seed = 42;
  testbed::Testbed bench(cfg);

  std::printf("emulated bench: 1 initiator + %zu TelosB participants\n\n",
              bench.participant_count());

  RngStream workload(3);
  std::printf("%4s %4s %8s %8s %8s %10s\n", "t", "x", "answer", "truth",
              "queries", "sim-time");
  for (const std::size_t t : {2u, 4u, 6u}) {
    for (const std::size_t x : {1u, 4u, 8u, 12u}) {
      bench.reboot_all();
      std::vector<bool> positive(bench.participant_count(), false);
      for (const NodeId id :
           workload.sample_subset(bench.participant_count(), x))
        positive[static_cast<std::size_t>(id)] = true;
      bench.configure_predicates(positive);

      const auto start = bench.simulator().now();
      const auto result = bench.run_query(t);
      const auto elapsed_ms =
          static_cast<double>(bench.simulator().now() - start) /
          static_cast<double>(kMillisecond);
      std::printf("%4zu %4zu %8s %8s %8llu %8.1fms\n", t, x,
                  result.outcome.decision ? "yes" : "no",
                  result.truth ? "yes" : "no",
                  static_cast<unsigned long long>(result.outcome.queries),
                  elapsed_ms);
    }
  }

  std::printf(
      "\neach query is a full backcast exchange: predicate broadcast,\n"
      "ephemeral-address poll, superposed hardware ACKs — with the\n"
      "calibrated 3.5%%/HACK false-negative model of the real radios.\n");
  return 0;
}
