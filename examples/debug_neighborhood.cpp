// Neighbourhood debugging with the 2+ collision model (paper Sec. II-C:
// "querying of the neighborhood for debugging purposes").
//
// With capture-capable radios every decoded reply carries an identity, so a
// developer can go beyond the threshold bit and *enumerate* which
// neighbours hold a predicate ("whose firmware is stale?") by re-running
// group queries and excluding captured nodes — classic group testing, built
// from the same engine the threshold query uses.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "group/binning.hpp"
#include "group/exact_channel.hpp"

int main() {
  using namespace tcast;

  constexpr std::size_t kNodes = 48;
  constexpr std::size_t kStale = 6;  // nodes running the old firmware

  RngStream rng(11);
  group::ExactChannel::Config cfg;
  cfg.model = group::CollisionModel::kTwoPlus;
  auto channel =
      group::ExactChannel::with_random_positives(kNodes, kStale, rng, cfg);

  std::printf("debugging: which of %zu neighbours run stale firmware?\n\n",
              kNodes);

  // Adaptive enumeration: query bins; empty bins clear their nodes, captured
  // replies pin an identity; activity bins get split next round.
  const auto everyone = channel.all_nodes();
  std::vector<NodeId> suspects(everyone.begin(), everyone.end());
  std::vector<NodeId> stale;
  std::size_t round = 0;
  while (!suspects.empty()) {
    ++round;
    const std::size_t bins =
        std::max<std::size_t>(2, std::min(suspects.size(), 2 * kStale));
    const auto assignment =
        group::BinAssignment::random_equal(suspects, bins, rng);
    std::vector<NodeId> next;
    for (std::size_t b = 0; b < assignment.bin_count(); ++b) {
      const auto bin = assignment.bin(b);
      if (bin.empty()) continue;
      const auto result = channel.query_bin(assignment, b);
      switch (result.kind) {
        case group::BinQueryResult::Kind::kEmpty:
          break;  // everyone in this bin is clean
        case group::BinQueryResult::Kind::kCaptured:
          stale.push_back(result.captured);
          channel.set_positive(result.captured, false);  // patched / noted
          for (const NodeId id : bin)
            if (id != result.captured) next.push_back(id);
          break;
        case group::BinQueryResult::Kind::kActivity:
          next.insert(next.end(), bin.begin(), bin.end());
          break;
      }
    }
    suspects = std::move(next);
    if (round > 64) break;  // paranoia guard
  }

  std::sort(stale.begin(), stale.end());
  std::printf("found %zu stale nodes in %llu queries (%zu rounds): ",
              stale.size(),
              static_cast<unsigned long long>(channel.queries_used()), round);
  for (const NodeId id : stale) std::printf("%u ", id);
  std::printf("\n(roll-call would cost %zu slots)\n", kNodes);
  return stale.size() == kStale ? 0 : 1;
}
