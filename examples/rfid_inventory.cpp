// RFID inventory management — the paper's suggested second domain (Sec. I,
// II-C, VII): "the tcast operation may also be useful and adopted for RFID
// inventory management systems due to the scalability requirements of those
// systems."
//
// A reader faces a pallet of tags and asks stock-level questions — "are at
// least t tags of SKU s present?" — over the real RFID substrate: a reader
// Select mask addresses a subset of tags (a bin) and one reply slot reveals
// idle / single / collided, i.e. exactly the RCD primitive. The same tcast
// algorithms run unchanged; the conventional alternative is a Gen2
// frame-slotted-ALOHA census.
#include <cstdio>

#include "core/count_estimation.hpp"
#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "rfid/gen2.hpp"
#include "rfid/rcd_channel.hpp"

int main() {
  using namespace tcast;
  constexpr rfid::Sku kSku = 42;
  constexpr std::size_t kThreshold = 50;  // reorder point for the SKU

  std::printf(
      "RFID stock check: 'at least %zu tags of this SKU present?'\n\n",
      kThreshold);
  std::printf("%8s %10s | %16s %16s | %16s %12s\n", "pallet", "matching",
              "tcast(2tbins)", "tcast(prob-abns)", "census(select)",
              "census(all)");

  for (const std::size_t pallet : {256u, 1024u, 4096u}) {
    for (const std::size_t matching : {8u, 200u}) {
      RngStream rng(pallet * 31 + matching);
      const auto field = rfid::TagField::make(pallet, matching, kSku, rng);

      rfid::RcdTagChannel::Config cfg;
      cfg.sku = kSku;
      cfg.model = group::CollisionModel::kOnePlus;
      rfid::RcdTagChannel channel(field, rng, cfg);
      const auto tags = field.all_ids();

      channel.reset_query_counter();
      const auto tcast_out =
          core::run_two_t_bins(channel, tags, kThreshold, rng);

      const auto* prob = core::find_algorithm("prob-abns");
      channel.reset_query_counter();
      const auto prob_out =
          prob->run(channel, tags, kThreshold, rng, core::EngineOptions{});

      const auto census =
          rfid::inventory_threshold(matching, kThreshold, rng);
      const auto full = rfid::run_inventory(pallet, rng);

      std::printf("%8zu %10zu | %13llu %s %13llu %s | %14zu %s %12zu\n",
                  pallet, matching,
                  static_cast<unsigned long long>(tcast_out.queries),
                  tcast_out.decision ? "y" : "n",
                  static_cast<unsigned long long>(prob_out.queries),
                  prob_out.decision ? "y" : "n", census.slots,
                  census.decision ? "y" : "n", full.slots);
    }
  }

  // Bonus: approximate stock level without a census.
  std::printf("\napproximate stock count (no census):\n");
  RngStream rng(99);
  const auto field = rfid::TagField::make(4096, 230, kSku, rng);
  rfid::RcdTagChannel::Config cfg;
  cfg.sku = kSku;
  rfid::RcdTagChannel channel(field, rng, cfg);
  const auto tags = field.all_ids();
  const auto est = core::estimate_positive_count(channel, tags, rng);
  std::printf("  true matching tags: 230   estimated: %.0f   (%llu slots)\n",
              est.estimate, static_cast<unsigned long long>(est.queries));
  std::printf(
      "\ntcast stays near t*log(N/t) while the census pays per tag it must\n"
      "read — the scalability gap the paper points at for RFID.\n");
  return 0;
}
