// chaos_campaign: the chaos engine's command-line front end.
//
// Runs a randomized fault campaign across the algorithm registry ×
// {exact, packet} × fault-plan grid with every conformance monitor online,
// then delta-debugs each violating trace down to a minimal reproducer.
//
//   chaos_campaign --sessions 8 --seed 1          # bounded smoke (CI)
//   chaos_campaign --sessions 64 --shrink         # nightly campaign
//   chaos_campaign --counting --sessions 32       # counting-portfolio
//                                                 # preset (nightly)
//   chaos_campaign --service --sessions 16        # daemon-level campaign
//                                                 # (src/service/chaos.hpp)
//   chaos_campaign --unsafe-gate --shrink --emit-stanza
//                                                 # demo: catch + minimize
//                                                 # the known gate hole
//
// Exit code 0 = zero violations (or, with --unsafe-gate, violations found
// AND every one shrunk to a replaying reproducer); 1 otherwise. With
// --out-dir, minimized reproducers are written one per file (replay spec
// on line 1, regression stanza after) so CI can upload them as artifacts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "chaos/chaos_engine.hpp"
#include "chaos/shrinker.hpp"
#include "core/registry.hpp"
#include "service/chaos.hpp"

namespace {

struct Options {
  std::size_t sessions = 8;
  std::uint64_t seed = 1;
  std::string tiers = "exact,packet";
  std::string algos;  ///< comma-separated registry names; empty = all
  std::size_t workers = 0;  ///< 0 = the global pool's default
  bool lp_hosted = false;
  bool counting = false;
  bool service = false;
  std::size_t service_ops = 400;
  bool unsafe_gate = false;
  bool shrink = false;
  bool emit_stanza = false;
  std::string out_dir;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sessions N] [--seed S] [--tiers exact,packet]\n"
               "          [--algos NAME,NAME,...] [--counting]\n"
               "          [--workers N] [--lp-hosted]\n"
               "          [--service] [--ops N]\n"
               "          [--unsafe-gate] [--shrink] [--emit-stanza]\n"
               "          [--out-dir DIR]\n"
               "  --algos    restrict the campaign to the named registry\n"
               "             algorithms (default: every non-oracle entry)\n"
               "  --workers  size of the session fan-out pool (default:\n"
               "             hardware concurrency); campaign results are\n"
               "             bit-identical for any value\n"
               "  --lp-hosted\n"
               "             run packet-tier sessions on the parallel LP\n"
               "             kernel path (sim/parallel) instead of the\n"
               "             scalar single-queue path\n"
               "  --counting use the counting-portfolio preset: all count:*\n"
               "             adapters over the loss/crash plan axis\n"
               "  --service  attack the tcastd service tier instead: one\n"
               "             seeded op-script campaign per session (kill/\n"
               "             reboot/overload/deadline ops); failing scripts\n"
               "             are ddmin-shrunk and written to --out-dir\n"
               "  --ops      ops per service campaign (default 400)\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--sessions") {
      const char* v = next();
      if (!v) return false;
      opts.sessions = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--tiers") {
      const char* v = next();
      if (!v) return false;
      opts.tiers = v;
    } else if (arg == "--algos") {
      const char* v = next();
      if (!v) return false;
      opts.algos = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return false;
      opts.workers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--lp-hosted") {
      opts.lp_hosted = true;
    } else if (arg == "--counting") {
      opts.counting = true;
    } else if (arg == "--service") {
      opts.service = true;
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return false;
      opts.service_ops =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--unsafe-gate") {
      opts.unsafe_gate = true;
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else if (arg == "--emit-stanza") {
      opts.emit_stanza = true;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (!v) return false;
      opts.out_dir = v;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcast;
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage(argv[0]);
    return 2;
  }

  if (opts.service) {
    // Daemon-level campaign: each session is an independent seeded op
    // script replayed against a fresh TcastService under a ManualClock
    // (src/service/chaos.hpp). run_service_campaign already shrinks
    // failing scripts with ddmin; here we just fan seeds out and persist
    // the minimized traces.
    std::size_t failing_sessions = 0;
    for (std::size_t s = 0; s < opts.sessions; ++s) {
      service::ServiceCampaignConfig scfg;
      scfg.seed = opts.seed + s;
      scfg.ops = opts.service_ops;
      const auto result = service::run_service_campaign(scfg);
      std::printf("service campaign seed %llu: %s\n",
                  static_cast<unsigned long long>(scfg.seed),
                  result.report.summary().c_str());
      if (result.report.ok()) continue;
      ++failing_sessions;
      for (const auto& failure : result.report.failures)
        std::printf("  breach: %s\n", failure.c_str());
      if (!result.minimized.empty()) {
        std::printf("  minimized to %zu ops\n", result.minimized.size());
        if (!opts.out_dir.empty()) {
          const auto path = opts.out_dir + "/service_reproducer_seed" +
                            std::to_string(scfg.seed) + ".trace";
          std::ofstream out(path);
          out << "# replay: run_service_ops(parse_trace(...), cfg) with "
                 "seed="
              << scfg.seed << " ops=" << opts.service_ops << "\n"
              << service::encode_trace(result.minimized);
        }
      }
    }
    return failing_sessions == 0 ? 0 : 1;
  }

  chaos::CampaignConfig cfg;
  if (opts.counting) cfg = chaos::counting_campaign_config(opts.seed);
  cfg.sessions_per_cell = opts.sessions;
  cfg.seed = opts.seed;
  cfg.break_counts_two_gate = opts.unsafe_gate;
  cfg.lp_hosted_packet = opts.lp_hosted;
  std::unique_ptr<tcast::ThreadPool> pool;
  if (opts.workers > 0) {
    pool = std::make_unique<tcast::ThreadPool>(opts.workers);
    cfg.pool = pool.get();
  }
  if (!opts.algos.empty()) {
    cfg.algorithms.clear();
    std::size_t start = 0;
    while (start <= opts.algos.size()) {
      const auto comma = opts.algos.find(',', start);
      const auto end = comma == std::string::npos ? opts.algos.size() : comma;
      if (end > start)
        cfg.algorithms.push_back(opts.algos.substr(start, end - start));
      start = end + 1;
    }
    for (const auto& name : cfg.algorithms) {
      if (core::find_algorithm(name) == nullptr) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
        return 2;
      }
    }
  }
  cfg.tiers.clear();
  if (opts.tiers.find("exact") != std::string::npos)
    cfg.tiers.push_back(chaos::Tier::kExact);
  if (opts.tiers.find("packet") != std::string::npos)
    cfg.tiers.push_back(chaos::Tier::kPacket);
  if (cfg.tiers.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (opts.unsafe_gate) {
    // The gate hole needs lossy 2+ sessions with downgraded captures to
    // show itself; focus the grid there so the demo stays fast.
    faults::FaultPlan plan;
    plan.process = faults::FaultPlan::LossProcess::kGilbertElliott;
    plan.ge_enter_bad = 0.3;
    plan.ge_exit_bad = 0.2;
    plan.ge_loss_bad = 0.8;
    plan.capture_downgrade = 0.4;
    cfg.plans = {plan};
    cfg.algorithms = {"2tbins", "expinc"};
  }

  const auto result = chaos::run_campaign(cfg);
  std::printf("chaos campaign: %zu sessions, %zu faults injected, "
              "%zu violating, false-yes=%zu false-no=%zu\n",
              result.sessions, result.faults_injected,
              result.violating.size(), result.false_yes, result.false_no);

  std::size_t shrunk_ok = 0;
  if (opts.shrink) {
    const auto pred = chaos::violates_any();
    std::size_t index = 0;
    for (const auto& victim : result.violating) {
      const auto shrunk = chaos::shrink(victim.scenario, victim.trace, pred);
      ++shrunk_ok;
      std::printf("reproducer %zu: %zu -> %zu events, %zu probes\n  %s\n",
                  index, shrunk.original_events, shrunk.trace.events.size(),
                  shrunk.probes, shrunk.replay_spec().c_str());
      const auto stanza = shrunk.regression_stanza(
          "Reproducer" + std::to_string(index));
      if (opts.emit_stanza) std::fputs(stanza.c_str(), stdout);
      if (!opts.out_dir.empty()) {
        const auto path =
            opts.out_dir + "/reproducer_" + std::to_string(index) + ".txt";
        std::ofstream out(path);
        out << shrunk.replay_spec() << "\n\n" << stanza;
      }
      ++index;
    }
  }

  if (opts.unsafe_gate) {
    // Demo mode succeeds only if the monitors caught the hole (and, when
    // shrinking, every violation minimized to a replaying reproducer).
    const bool caught = !result.violating.empty();
    const bool all_shrunk =
        !opts.shrink || shrunk_ok == result.violating.size();
    return caught && all_shrunk ? 0 : 1;
  }
  return result.violating.empty() ? 0 : 1;
}
