// tcast_cli — run threshold-query simulations from the command line.
//
//   tcast_cli [--algo NAME] [--n N] [--x X] [--t T] [--model 1+|2+]
//             [--trials K] [--seed S] [--tier exact|packet] [--list]
//             [--fault-plan SPEC] [--fault-seed S] [--retry SPEC]
//             [--deadline-ms D] [--max-retries R] [--verbose]
//
// Examples:
//   tcast_cli --list
//   tcast_cli --algo 2tbins --n 128 --x 20 --t 16 --trials 1000
//   tcast_cli --algo prob-abns --n 32 --x 12 --t 8 --model 2+
//   tcast_cli --tier packet --n 12 --x 5 --t 4     # full radio emulation
//   tcast_cli --n 24 --x 8 --t 8 --fault-plan ge=0.02:0.25:0:0.7
//             --retry fixed:3 --verbose            # loss-robustness sweep
//   tcast_cli --tier packet --n 64 --x 20 --t 16 --deadline-ms 5
//             --max-retries 3                      # deadline + backoff
//
// --deadline-ms arms the same QueryCancelToken the tcastd service uses:
// a trial whose wall-clock budget expires mid-run is cancelled between
// queries (never a fabricated verdict) and, with --max-retries > 0,
// retried under jittered exponential backoff (service/backoff.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "common/monte_carlo.hpp"
#include "core/registry.hpp"
#include "faults/faulty_channel.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"
#include "service/backoff.hpp"
#include "service/shard.hpp"

namespace {

struct CliOptions {
  std::string algo = "2tbins";
  std::size_t n = 128;
  std::size_t x = 16;
  std::size_t t = 16;
  tcast::group::CollisionModel model =
      tcast::group::CollisionModel::kOnePlus;
  std::size_t trials = 1000;
  std::uint64_t seed = 1;
  bool packet_tier = false;
  bool list = false;
  bool verbose = false;
  std::optional<tcast::faults::FaultPlan> fault_plan;
  std::uint64_t fault_seed = 1;
  tcast::core::RetryPolicy retry;
  std::uint64_t deadline_ms = 0;  ///< 0 = no per-trial deadline
  std::size_t max_retries = 0;   ///< deadline-expired retry budget
  bool ok = true;
};

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      o.list = true;
    } else if (arg == "--verbose") {
      o.verbose = true;
    } else if (arg == "--algo") {
      if (const char* v = next()) o.algo = v;
    } else if (arg == "--n") {
      if (const char* v = next()) o.n = std::stoul(v);
    } else if (arg == "--x") {
      if (const char* v = next()) o.x = std::stoul(v);
    } else if (arg == "--t") {
      if (const char* v = next()) o.t = std::stoul(v);
    } else if (arg == "--trials") {
      if (const char* v = next()) o.trials = std::stoul(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) o.seed = std::stoull(v);
    } else if (arg == "--fault-seed") {
      if (const char* v = next()) o.fault_seed = std::stoull(v);
    } else if (arg == "--fault-plan") {
      const char* v = next();
      auto plan = v ? tcast::faults::FaultPlan::parse(v) : std::nullopt;
      if (!plan) {
        std::fprintf(stderr, "malformed --fault-plan spec: %s\n",
                     v ? v : "(missing)");
        o.ok = false;
      } else {
        o.fault_plan = *plan;
      }
    } else if (arg == "--retry") {
      const char* v = next();
      auto policy =
          v ? tcast::core::RetryPolicy::parse(v) : std::nullopt;
      if (!policy) {
        std::fprintf(stderr,
                     "malformed --retry spec (none | fixed:R | "
                     "adaptive:TARGET[:CAP]): %s\n",
                     v ? v : "(missing)");
        o.ok = false;
      } else {
        o.retry = *policy;
      }
    } else if (arg == "--deadline-ms") {
      if (const char* v = next()) o.deadline_ms = std::stoull(v);
    } else if (arg == "--max-retries") {
      if (const char* v = next()) o.max_retries = std::stoul(v);
    } else if (arg == "--model") {
      const char* v = next();
      if (v && std::strcmp(v, "2+") == 0)
        o.model = tcast::group::CollisionModel::kTwoPlus;
    } else if (arg == "--tier") {
      const char* v = next();
      o.packet_tier = v && std::strcmp(v, "packet") == 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      o.ok = false;
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcast;
  const auto opts = parse(argc, argv);
  if (!opts.ok) return 2;

  if (opts.list) {
    std::printf("%-16s %s\n", "name", "description");
    for (const auto& spec : core::algorithm_registry())
      std::printf("%-16s %s%s\n", spec.name.c_str(),
                  spec.description.c_str(),
                  spec.needs_oracle ? "  [needs ground truth]" : "");
    return 0;
  }

  const auto* spec = core::find_algorithm(opts.algo);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s' (try --list)\n",
                 opts.algo.c_str());
    return 2;
  }
  if (opts.x > opts.n) {
    std::fprintf(stderr, "--x must be <= --n\n");
    return 2;
  }

  MonteCarloConfig mc;
  mc.trials = opts.trials;
  mc.seed = opts.seed;
  RunningStats queries, rounds, retries;
  Proportion correct;
  std::size_t false_yes = 0, false_no = 0, faults_injected = 0,
              faults_seen = 0;
  std::size_t deadline_hits = 0, deadline_retries = 0,
              deadline_unresolved = 0;
  RngStream backoff_rng(opts.seed, 0xbac0ff);
  // Per-node crash census across all trials: crashes, reboots, and how
  // many trials ended with the node still down.
  struct NodeCensus {
    std::size_t crashes = 0, reboots = 0, ended_down = 0;
  };
  std::map<NodeId, NodeCensus> census;
  const bool truth = opts.x >= opts.t;

  for (std::size_t trial = 0; trial < mc.trials; ++trial) {
    RngStream rng(mc.seed, trial_stream_id(0, trial));
    core::EngineOptions eopts;
    eopts.retry = opts.retry;

    // Lambda over the base channel so fault injection composes with both
    // tiers identically.
    const auto run_on = [&](group::QueryChannel& base,
                            std::span<const NodeId> nodes) {
      if (!opts.fault_plan) return spec->run(base, nodes, opts.t, rng, eopts);
      faults::FaultPlan plan = *opts.fault_plan;
      plan.seed = opts.fault_seed + trial;  // replayable per trial
      faults::FaultyChannel faulty(base, nodes, plan);
      faulty.set_session(trial);  // log lines render "s=TRIAL q=..."
      const auto out = spec->run(faulty, nodes, opts.t, rng, eopts);
      faults_injected += faulty.log().size();
      for (const auto& ev : faulty.log().events()) {
        if (ev.kind == faults::FaultEvent::Kind::kCrash)
          ++census[ev.node].crashes;
        else if (ev.kind == faults::FaultEvent::Kind::kReboot)
          ++census[ev.node].reboots;
      }
      for (const NodeId id : nodes)
        if (faulty.is_crashed(id)) ++census[id].ended_down;
      if (opts.verbose && !faulty.log().empty())
        std::printf("trial %zu faults (plan %s):\n%s", trial,
                    plan.spec().c_str(), faulty.log().to_string().c_str());
      return out;
    };

    // Deadline + backoff wrapper: the same QueryCancelToken/BackoffPolicy
    // plumbing tcastd uses, driven from the CLI.
    static std::atomic<bool> never_killed{false};
    const auto run_with_deadline = [&](group::QueryChannel& base,
                                       std::span<const NodeId> nodes) {
      if (opts.deadline_ms == 0) return run_on(base, nodes);
      const auto& clock = service::RealClock::instance();
      service::BackoffPolicy backoff;
      backoff.max_retries = opts.max_retries;
      std::size_t attempt = 0;
      for (;;) {
        const service::QueryCancelToken token(
            clock, clock.now_us() + opts.deadline_ms * 1000, never_killed);
        eopts.cancel = &token;
        const auto out = run_on(base, nodes);
        eopts.cancel = nullptr;
        if (!out.cancelled) return out;
        ++deadline_hits;
        if (attempt >= backoff.max_retries) return out;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            backoff.delay_ms(attempt, 0, backoff_rng)));
        ++attempt;
        ++deadline_retries;
      }
    };

    core::ThresholdOutcome out;
    if (opts.packet_tier) {
      std::vector<bool> positive(opts.n, false);
      for (const NodeId id : rng.sample_subset(opts.n, opts.x))
        positive[static_cast<std::size_t>(id)] = true;
      group::PacketChannel::Config cfg;
      cfg.model = opts.model;
      cfg.seed = mc.seed + trial;
      group::PacketChannel channel(positive, cfg);
      eopts.ordering = core::BinOrdering::kInOrder;
      out = run_with_deadline(channel, channel.all_nodes());
    } else {
      group::ExactChannel::Config cfg;
      cfg.model = opts.model;
      auto channel = group::ExactChannel::with_random_positives(
          opts.n, opts.x, rng, cfg);
      if (opts.fault_plan) eopts.ordering = core::BinOrdering::kInOrder;
      out = run_with_deadline(channel, channel.all_nodes());
    }
    if (out.cancelled) {
      // The retry budget is spent and the trial never reached a verdict:
      // report it as unresolved, never as a (meaningless) decision.
      ++deadline_unresolved;
      queries.add(static_cast<double>(out.queries));
      continue;
    }
    queries.add(static_cast<double>(out.queries));
    rounds.add(static_cast<double>(out.rounds));
    retries.add(static_cast<double>(out.retries));
    faults_seen += out.faults_seen;
    correct.add(out.decision == truth);
    if (out.decision && !truth) ++false_yes;
    if (!out.decision && truth) ++false_no;
  }

  std::printf("algorithm : %s (%s)\n", spec->name.c_str(),
              spec->description.c_str());
  std::printf("instance  : n=%zu x=%zu t=%zu model=%s tier=%s truth=%s\n",
              opts.n, opts.x, opts.t,
              opts.model == group::CollisionModel::kOnePlus ? "1+" : "2+",
              opts.packet_tier ? "packet" : "exact", truth ? "x>=t" : "x<t");
  std::printf("queries   : %s\n", queries.to_string().c_str());
  std::printf("rounds    : %s\n", rounds.to_string().c_str());
  std::printf("accuracy  : %.2f%% (%zu/%zu correct)\n",
              100.0 * correct.value(), correct.successes(),
              correct.trials());
  if (opts.deadline_ms > 0) {
    std::printf(
        "deadline  : %llums budget; %zu expirations, %zu backoff retries, "
        "%zu trials unresolved\n",
        static_cast<unsigned long long>(opts.deadline_ms), deadline_hits,
        deadline_retries, deadline_unresolved);
  }
  if (opts.fault_plan) {
    std::printf("faults    : plan=%s retry=%s\n",
                opts.fault_plan->spec().c_str(), opts.retry.spec().c_str());
    std::printf("wrong     : %zu false-yes, %zu false-no over %zu trials\n",
                false_yes, false_no, mc.trials);
    std::printf("injected  : %zu faults (%zu caught by retries)\n",
                faults_injected, faults_seen);
    std::printf("retries   : %s\n", retries.to_string().c_str());
    if (opts.verbose && !census.empty()) {
      std::printf("crashed-node census over %zu trials:\n", mc.trials);
      for (const auto& [id, c] : census)
        std::printf("  node %llu: %zu crashes, %zu reboots, "
                    "ended %zu trials down\n",
                    static_cast<unsigned long long>(id), c.crashes,
                    c.reboots, c.ended_down);
    }
  }
  return 0;
}
