// Multihop deployment demo (the paper's future-work setting, Sec. III-B /
// VII): a singlehop sensing cell answering threshold queries while a
// neighbouring region's traffic leaks into the channel.
//
// Geometry (metres, unit-disk range 30):
//
//        participants on a 10 m circle          foreign transmitter
//              around the initiator             of the next region
//                     o o o
//                    o  I  o  . . . . . . . . . . .  J (at distance D)
//                     o o o
//
// The demo runs 2tBins sessions at several separations D and shows how the
// interference-induced false negatives fade with distance — and that no
// amount of foreign traffic ever produces a false POSITIVE, backcast's
// headline robustness property.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/two_t_bins.hpp"
#include "group/packet_channel.hpp"

int main() {
  using namespace tcast;
  constexpr std::size_t kNodes = 12, kT = 4;
  constexpr std::size_t kSessions = 40;

  std::printf(
      "multihop cell: %zu motes (radius 10m), range 30m, foreign traffic at "
      "25%% duty\n\n",
      kNodes);
  std::printf("%6s %14s %14s %16s\n", "D (m)", "acc (x=8>=t)", "acc (x=0<t)",
              "false positives");

  for (const double d : {5.0, 15.0, 25.0, 35.0, 60.0}) {
    std::size_t correct_high = 0, correct_low = 0, false_pos = 0;
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (const std::size_t x : {std::size_t{8}, std::size_t{0}}) {
        RngStream workload(2026, 100 * s + x);
        std::vector<bool> truth(kNodes, false);
        for (const NodeId id : workload.sample_subset(kNodes, x))
          truth[static_cast<std::size_t>(id)] = true;

        group::PacketChannel::Config cfg;
        cfg.channel.hack = radio::HackReceptionModel::ideal();
        cfg.channel.range = 30.0;
        cfg.seed = 55 + s;
        cfg.interference_duty = 0.25;
        cfg.interferer_pos = {d, 0.0};
        for (std::size_t i = 0; i < kNodes; ++i) {
          const double a =
              2.0 * 3.14159265358979 * static_cast<double>(i) / kNodes;
          cfg.participant_positions.emplace_back(10.0 * std::cos(a),
                                                 10.0 * std::sin(a));
        }
        group::PacketChannel ch(truth, cfg);
        core::EngineOptions opts;
        opts.ordering = core::BinOrdering::kInOrder;
        const auto out =
            core::run_two_t_bins(ch, ch.all_nodes(), kT, workload, opts);
        if (x >= kT) {
          if (out.decision) ++correct_high;
        } else {
          if (!out.decision)
            ++correct_low;
          else
            ++false_pos;
        }
      }
    }
    std::printf("%6.0f %13.0f%% %13.0f%% %16zu\n", d,
                100.0 * static_cast<double>(correct_high) / kSessions,
                100.0 * static_cast<double>(correct_low) / kSessions,
                false_pos);
  }

  std::printf(
      "\nfalse negatives fade as the foreign region moves out of range;\n"
      "false positives are structurally impossible for backcast-based "
      "tcast.\n");
  return 0;
}
