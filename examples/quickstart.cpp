// Quickstart: ask a singlehop neighbourhood "do at least t of you sense the
// event?" in a handful of RCD queries.
//
//   $ ./quickstart
//
// Builds a 64-node abstract neighbourhood with 20 event-positive nodes and
// runs the tcast threshold query with each registered algorithm, printing
// the decision and how many queries (channel slots) it cost — versus the 64
// slots a naive roll-call would take.
#include <cstdio>

#include "core/session.hpp"
#include "group/exact_channel.hpp"

int main() {
  using namespace tcast;

  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kPositives = 20;
  constexpr std::size_t kThreshold = 16;

  RngStream rng(/*seed=*/2026);
  auto channel =
      group::ExactChannel::with_random_positives(kNodes, kPositives, rng);
  core::ThresholdSession session(channel, channel.all_nodes(), rng);

  std::printf("tcast quickstart: N=%zu nodes, x=%zu positive, t=%zu\n\n",
              kNodes, kPositives, kThreshold);
  std::printf("%-16s %-30s %8s %8s\n", "algorithm", "description", "answer",
              "queries");
  for (const auto& spec : core::algorithm_registry()) {
    channel.reset_query_counter();
    const auto out = session.tcast(kThreshold, spec.name);
    std::printf("%-16s %-30.30s %8s %8llu\n", spec.name.c_str(),
                spec.description.c_str(), out.decision ? "yes" : "no",
                static_cast<unsigned long long>(out.queries));
  }
  std::printf("\n(naive roll-call cost: %zu slots)\n", kNodes);
  return 0;
}
