// Figure 10 — "Estimated number of repeats for 95% success rate".
//
// For each separation d: the smallest empirical r whose measured accuracy
// reaches 95%, alongside the paper's Eq.-10 estimate and the standard
// Hoeffding bound. Paper shape: the required repeats fall steeply as the
// modes separate, flattening to a handful once d > 16.
#include "analysis/bimodal.hpp"
#include "analysis/chernoff.hpp"
#include "bench/figure_common.hpp"
#include "core/probabilistic_threshold.hpp"

namespace tcast::bench {
namespace {

double accuracy(const BenchOptions& opts, double d, std::size_t repeats,
                std::uint64_t id) {
  constexpr std::size_t kN = 128;
  const auto dist = analysis::BimodalDistribution::symmetric(kN, d, 4.0);
  MonteCarloConfig mc{.seed = opts.seed, .experiment_id = id,
                      .trials = opts.trials};
  return run_bool_trials(mc, [&dist, repeats](RngStream& rng) {
           const auto sample = dist.sample(kN, rng);
           auto ch =
               group::ExactChannel::with_random_positives(kN, sample.x, rng);
           core::ProbabilisticThresholdOptions popts;
           std::tie(popts.t_l, popts.t_r) = dist.decision_boundaries();
           popts.repeats = repeats;
           return core::run_probabilistic_threshold(ch, ch.all_nodes(), popts,
                                                    rng)
                      .high_mode == sample.from_high_mode;
         })
      .value();
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kMaxRepeats = 49;

  SeriesTable table("d");
  for (const double d : {8.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0}) {
    // Empirical requirement: smallest odd r reaching 95%. Heavily
    // overlapping modes (small d) may never reach it — left blank, matching
    // the paper's observation that d ≈ 8 bottoms out around 70%.
    for (std::size_t r = 1; r <= kMaxRepeats; r += 2) {
      if (accuracy(opts, d, r,
                   point_id(10, r, static_cast<std::uint64_t>(d))) >= 0.95) {
        table.set(d, "empirical", static_cast<double>(r));
        break;
      }
    }

    const auto dist =
        analysis::BimodalDistribution::symmetric(128, d, 4.0);
    const auto [t_l, t_r] = dist.decision_boundaries();
    const auto plan = analysis::make_sampling_plan(t_l, t_r);
    table.set(d, "trial-gap", plan.gap());
    // The guarantee formulas blow up as the gap vanishes; only meaningful
    // once the modes separate.
    if (plan.gap() >= 0.05) {
      table.set(d, "paper_eq10",
                static_cast<double>(
                    analysis::paper_repeats(0.05, plan.gap() / 2.0)));
      table.set(d, "hoeffding",
                static_cast<double>(
                    analysis::hoeffding_repeats(0.05, plan.gap())));
    }
  }

  emit(opts, "Fig 10: repeats needed for 95% accuracy vs separation d",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
