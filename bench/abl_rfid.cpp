// Extension bench — tcast on RFID (paper Sec. I/II-C/VII claim).
//
// A reader faces a 1024-tag pallet and asks "at least t = 50 tags of this
// SKU?". Compares, in slots:
//   * tcast (2tBins and prob-abns) over the Select-mask RCD channel;
//   * early-stopped Gen2 census over the matching population (the reader
//     Select pre-filters to the SKU, then inventories until t reads);
//   * full-pallet Gen2 census (the no-pre-filter worst case).
//
// Expected shape: mirror of Fig. 1 — census cost scales with the population
// it must inventory; tcast scales with t·log(N/t) and is flat for x ≫ t.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"
#include "rfid/gen2.hpp"
#include "rfid/rcd_channel.hpp"

namespace tcast::bench {
namespace {

constexpr rfid::Sku kSku = 7;

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kTotal = 1024, kT = 50;
  const std::size_t trials = opts.trials == 1000 ? 200 : opts.trials;

  SeriesTable table("matching");
  for (const std::size_t matching :
       {0u, 10u, 25u, 40u, 50u, 60u, 80u, 120u, 200u, 400u, 700u, 1024u}) {
    MonteCarloConfig mc{.seed = opts.seed,
                        .experiment_id = point_id(106, 1, matching),
                        .trials = trials};
    const double tcast_slots =
        run_trials(mc, [matching](RngStream& rng) {
          const auto field = rfid::TagField::make(kTotal, matching, kSku, rng);
          rfid::RcdTagChannel::Config cfg;
          cfg.sku = kSku;
          cfg.model = group::CollisionModel::kOnePlus;
          rfid::RcdTagChannel ch(field, rng, cfg);
          return static_cast<double>(
              core::run_two_t_bins(ch, field.all_ids(), kT, rng).queries);
        }).mean();
    table.set(static_cast<double>(matching), "tcast-2tbins", tcast_slots);

    mc.experiment_id = point_id(106, 2, matching);
    const auto* prob = core::find_algorithm("prob-abns");
    const double prob_slots =
        run_trials(mc, [matching, prob](RngStream& rng) {
          const auto field = rfid::TagField::make(kTotal, matching, kSku, rng);
          rfid::RcdTagChannel::Config cfg;
          cfg.sku = kSku;
          cfg.model = group::CollisionModel::kOnePlus;
          rfid::RcdTagChannel ch(field, rng, cfg);
          return static_cast<double>(
              prob->run(ch, field.all_ids(), kT, rng, core::EngineOptions{})
                  .queries);
        }).mean();
    table.set(static_cast<double>(matching), "tcast-prob-abns", prob_slots);

    mc.experiment_id = point_id(106, 3, matching);
    const double census_slots =
        run_trials(mc, [matching](RngStream& rng) {
          return static_cast<double>(
              rfid::inventory_threshold(matching, kT, rng).slots);
        }).mean();
    table.set(static_cast<double>(matching), "census-selected",
              census_slots);

    mc.experiment_id = point_id(106, 4, matching);
    const double full_census =
        run_trials(mc, [](RngStream& rng) {
          return static_cast<double>(rfid::run_inventory(kTotal, rng).slots);
        }).mean();
    table.set(static_cast<double>(matching), "census-full", full_census);
  }

  emit(opts,
       "Extension: RFID stock threshold, tcast vs Gen2 census "
       "(1024 tags, t=50)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
