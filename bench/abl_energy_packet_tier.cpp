// Ablation — what a query costs in wall-clock air time and initiator
// energy on the packet tier.
//
// The abstract figures count queries; this bench runs full backcast
// exchanges through the radio substrate (12 motes, 2tBins) and reports the
// real per-session time and energy, tying the paper's query-count axis to
// physical cost.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"
#include "group/packet_channel.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 12, kT = 4;
  const std::size_t trials = opts.trials == 1000 ? 50 : opts.trials;

  SeriesTable table("x");
  for (std::size_t x = 0; x <= kN; ++x) {
    RunningStats queries, millis, energy_mj;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      RngStream workload(opts.seed, point_id(105, trial, x));
      std::vector<bool> positive(kN, false);
      for (const NodeId id : workload.sample_subset(kN, x))
        positive[static_cast<std::size_t>(id)] = true;
      group::PacketChannel::Config cfg;
      cfg.channel.hack = radio::HackReceptionModel::ideal();
      cfg.seed = opts.seed + trial;
      group::PacketChannel ch(positive, cfg);
      core::EngineOptions eopts;
      eopts.ordering = core::BinOrdering::kInOrder;
      const auto out =
          core::run_two_t_bins(ch, ch.all_nodes(), kT, workload, eopts);
      queries.add(static_cast<double>(out.queries));
      millis.add(static_cast<double>(ch.elapsed()) /
                 static_cast<double>(kMillisecond));
      energy_mj.add(ch.initiator_energy_mj());
    }
    table.set(static_cast<double>(x), "queries", queries.mean());
    table.set(static_cast<double>(x), "air-time-ms", millis.mean());
    table.set(static_cast<double>(x), "initiator-mJ", energy_mj.mean());
  }
  emit(opts,
       "Ablation: packet-tier time & energy per session, 2tBins (N=12, t=4)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
