// service_bench — closed- and open-loop load rigs against an in-process
// TcastService, emitting latency percentiles into the perf trajectory.
//
//   service_bench [--quick] [--json PATH] [--merge-into BENCH_tcast.json]
//                 [--shards N] [--workers W] [--queries Q] [--seed S]
//
// Two rigs, both over a Bonifati-style skewed workload (Zipf-hot
// populations, thresholds clustered at the decision boundary — the mix a
// deployed threshold service actually sees):
//
//   * closed_loop — W workers, one outstanding query each: the
//     steady-state regime. Reports end-to-end p50/p99/p999 and throughput.
//   * open_loop_overload — queries injected at ~2x the measured closed-loop
//     capacity with no back-pressure from the client side: the overload
//     regime the robustness PR is about. Reports tail latency of the
//     queries that did complete plus the shed/degraded/rejected mix; the
//     invariant (every response is a verdict, an honestly-tagged estimate,
//     or a typed error) is asserted here too — a load rig that tolerates
//     silent drops would be measuring a broken service.
//
// Results land in BENCH_tcast.json entries with a `percentiles` object;
// tools/compare_bench.py gates p99/p999 growth the same way it gates
// throughput drops (inverted: larger latency = regression).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "perf/bench_harness.hpp"
#include "perf/latency.hpp"
#include "service/service.hpp"

namespace {

using namespace tcast;
using namespace tcast::service;

struct RigConfig {
  bool quick = false;
  std::size_t shards = 4;
  std::size_t workers = 4;
  std::size_t queries = 4000;
  std::uint64_t seed = 1;
};

struct Workload {
  std::vector<std::string> pops;
  std::vector<std::size_t> n;
  std::vector<std::size_t> x;
};

/// Zipf(s≈1) choice over k items: hot-population skew.
std::size_t zipf_pick(RngStream& rng, std::size_t k) {
  // Inverse-CDF over precomputable harmonic weights is overkill for k ≤ 8;
  // rejection from 1/(i+1) weights keeps the draw one-liner-simple.
  for (;;) {
    const auto i = static_cast<std::size_t>(rng.uniform_below(k));
    if (rng.uniform01() < 1.0 / static_cast<double>(i + 1)) return i;
  }
}

/// Threshold skewed toward the boundary x (the expensive, interesting
/// queries) with a uniform tail.
std::size_t skewed_threshold(RngStream& rng, std::size_t n, std::size_t x) {
  if (rng.uniform_below(10) < 7 && x > 0) {
    const std::size_t lo = x > 3 ? x - 3 : 1;
    const auto jitter = static_cast<std::size_t>(rng.uniform_below(7));
    return std::min(n, lo + jitter);
  }
  return 1 + static_cast<std::size_t>(rng.uniform_below(n));
}

Workload load_populations(TcastService& svc, RngStream& rng,
                          std::size_t count, std::size_t max_n) {
  Workload w;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t p = 0; p < count; ++p) {
    Request req;
    req.kind = RequestKind::kLoad;
    req.population = "hot" + std::to_string(p);
    req.n = max_n / (p + 1) < 32 ? 32 : max_n / (p + 1);
    req.x = static_cast<std::size_t>(rng.uniform_below(req.n + 1));
    req.seed = rng.bits() | 1;
    w.pops.push_back(req.population);
    w.n.push_back(req.n);
    w.x.push_back(req.x);
    svc.submit(req, [&](const Response&) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  // The pump thread drains; drain_all() here would double-drive the shards.
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == count; });
  return w;
}

struct RigOutcome {
  std::uint64_t completed = 0;  ///< kOk responses
  std::uint64_t exact = 0;
  std::uint64_t approx = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline = 0;
  std::uint64_t other_typed = 0;
  std::uint64_t unresolved = 0;  ///< contract breach: callback never fired
  double wall_s = 0.0;
  perf::PercentileSummary latency;
};

perf::BenchResult to_result(const std::string& name, const RigConfig& cfg,
                            const RigOutcome& o) {
  perf::BenchResult r;
  r.name = name;
  r.unit = "query";
  r.items = o.completed;
  r.params = {{"shards", static_cast<double>(cfg.shards)},
              {"workers", static_cast<double>(cfg.workers)},
              {"queries", static_cast<double>(cfg.queries)},
              {"overloaded", static_cast<double>(o.overloaded)},
              {"deadline", static_cast<double>(o.deadline)},
              {"approx", static_cast<double>(o.approx)}};
  r.timing.reps = 1;
  r.timing.wall_min_s = r.timing.wall_median_s = o.wall_s;
  r.percentiles = {{"p50_us", o.latency.p50},
                   {"p90_us", o.latency.p90},
                   {"p99_us", o.latency.p99},
                   {"p999_us", o.latency.p999}};
  return r;
}

ServiceConfig make_service_config(const RigConfig& cfg) {
  ServiceConfig scfg;
  scfg.shards = cfg.shards;
  scfg.queue_capacity = 64;
  scfg.degrade_enter = 48;
  scfg.degrade_exit = 16;
  scfg.batch_max = 16;
  return scfg;
}

/// Closed loop: `workers` threads, one outstanding query each.
RigOutcome run_closed_loop(const RigConfig& cfg, const Workload& w,
                           TcastService& svc) {
  RigOutcome out;
  perf::LatencyRecorder recorder;
  std::mutex mu;
  std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(cfg.queries)};

  const double t0 = perf::wall_now();
  std::vector<std::thread> threads;
  for (std::size_t wk = 0; wk < cfg.workers; ++wk) {
    threads.emplace_back([&, wk] {
      RngStream rng(cfg.seed, 100 + wk);
      while (remaining.fetch_sub(1, std::memory_order_acq_rel) > 0) {
        const auto p = zipf_pick(rng, w.pops.size());
        Request req;
        req.kind = RequestKind::kQuery;
        req.population = w.pops[p];
        req.t = skewed_threshold(rng, w.n[p], w.x[p]);
        req.deadline_ms = 200;

        std::mutex wait_mu;
        std::condition_variable wait_cv;
        bool got = false;
        Response resp;
        const double q0 = perf::wall_now();
        svc.submit(req, [&](const Response& r) {
          std::lock_guard<std::mutex> lock(wait_mu);
          resp = r;
          got = true;
          wait_cv.notify_one();
        });
        {
          std::unique_lock<std::mutex> lock(wait_mu);
          wait_cv.wait(lock, [&] { return got; });
        }
        const double q1 = perf::wall_now();

        std::lock_guard<std::mutex> lock(mu);
        switch (resp.status) {
          case StatusCode::kOk:
            ++out.completed;
            if (resp.mode == AnswerMode::kApproximate) {
              ++out.approx;
            } else {
              ++out.exact;
            }
            recorder.record(
                static_cast<std::uint64_t>((q1 - q0) * 1e6));
            break;
          case StatusCode::kOverloaded:
            ++out.overloaded;
            break;
          case StatusCode::kDeadlineExceeded:
            ++out.deadline;
            break;
          default:
            ++out.other_typed;
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out.wall_s = perf::wall_now() - t0;
  out.latency = recorder.summarize();
  return out;
}

/// Open loop at `rate_qps` (no client back-pressure): sustained overload
/// when the rate exceeds capacity.
RigOutcome run_open_loop(const RigConfig& cfg, const Workload& w,
                         TcastService& svc, double rate_qps) {
  RigOutcome out;
  perf::LatencyRecorder recorder;
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t resolved = 0;

  RngStream rng(cfg.seed, 777);
  const double t0 = perf::wall_now();
  const double gap_s = 1.0 / rate_qps;
  for (std::uint64_t q = 0; q < cfg.queries; ++q) {
    const auto p = zipf_pick(rng, w.pops.size());
    Request req;
    req.kind = RequestKind::kQuery;
    req.population = w.pops[p];
    req.t = skewed_threshold(rng, w.n[p], w.x[p]);
    req.deadline_ms = 50;

    const double q0 = perf::wall_now();
    svc.submit(req, [&, q0](const Response& r) {
      const double q1 = perf::wall_now();
      std::lock_guard<std::mutex> lock(mu);
      ++resolved;
      switch (r.status) {
        case StatusCode::kOk:
          ++out.completed;
          if (r.mode == AnswerMode::kApproximate) {
            ++out.approx;
          } else {
            ++out.exact;
          }
          recorder.record(static_cast<std::uint64_t>((q1 - q0) * 1e6));
          break;
        case StatusCode::kOverloaded:
          ++out.overloaded;
          break;
        case StatusCode::kDeadlineExceeded:
          ++out.deadline;
          break;
        default:
          ++out.other_typed;
          break;
      }
      cv.notify_one();
    });

    // Paced injection; busy-wait-free.
    const double next = t0 + gap_s * static_cast<double>(q + 1);
    const double now = perf::wall_now();
    if (next > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next - now));
    }
  }

  {
    // Liveness check: every injected query must resolve (the pump thread is
    // still running; we only wait, never double-drive the shards).
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return resolved == cfg.queries; })) {
      out.unresolved = cfg.queries - resolved;
    }
  }
  out.wall_s = perf::wall_now() - t0;
  out.latency = recorder.summarize();
  return out;
}

int merge_into(const std::string& path,
               const std::vector<perf::BenchResult>& fresh) {
  perf::Report report;
  std::ifstream in(path);
  if (in) {
    std::stringstream buf;
    buf << in.rdbuf();
    const auto parsed = perf::parse_json(buf.str());
    if (!parsed) {
      std::fprintf(stderr, "cannot parse %s\n", path.c_str());
      return 1;
    }
    const auto existing = perf::Report::from_json(*parsed);
    if (!existing) {
      std::fprintf(stderr, "%s is not a tcast-bench-v1 report\n",
                   path.c_str());
      return 1;
    }
    report = *existing;
  } else {
    report.git_sha = perf::current_git_sha();
    report.host = perf::host_info();
  }

  for (const auto& r : fresh) {
    bool replaced = false;
    for (auto& old : report.results) {
      if (old.name == r.name) {
        old = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) report.results.push_back(r);
  }

  std::ofstream outf(path);
  if (!outf) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  outf << report.to_json_string();
  std::printf("merged %zu service result(s) into %s\n", fresh.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  RigConfig cfg;
  std::string json_path = "BENCH_service.json";
  std::string merge_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      cfg.quick = true;
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--merge-into") {
      if (const char* v = next()) merge_path = v;
    } else if (arg == "--shards") {
      if (const char* v = next()) cfg.shards = std::stoul(v);
    } else if (arg == "--workers") {
      if (const char* v = next()) cfg.workers = std::stoul(v);
    } else if (arg == "--queries") {
      if (const char* v = next()) cfg.queries = std::stoul(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) cfg.seed = std::stoull(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (cfg.quick) cfg.queries = std::min<std::size_t>(cfg.queries, 400);

  RngStream setup_rng(cfg.seed, 3);
  std::vector<perf::BenchResult> results;

  // Closed loop.
  RigOutcome closed;
  {
    TcastService svc(make_service_config(cfg));
    svc.start_pump_thread();
    const auto w = load_populations(svc, setup_rng, 6, 512);
    closed = run_closed_loop(cfg, w, svc);
    svc.stop_pump_thread();
    results.push_back(to_result("service/closed_loop", cfg, closed));
    std::printf(
        "closed_loop : %llu ok (%llu exact, %llu approx) in %.2fs  "
        "p50=%.0fus p99=%.0fus p999=%.0fus\n",
        static_cast<unsigned long long>(closed.completed),
        static_cast<unsigned long long>(closed.exact),
        static_cast<unsigned long long>(closed.approx), closed.wall_s,
        closed.latency.p50, closed.latency.p99, closed.latency.p999);
  }

  // Open loop at ~2x the closed-loop capacity: sustained overload.
  {
    const double capacity_qps =
        closed.wall_s > 0.0
            ? static_cast<double>(closed.completed) / closed.wall_s
            : 1000.0;
    const double rate = std::max(100.0, 2.0 * capacity_qps);
    TcastService svc(make_service_config(cfg));
    svc.start_pump_thread();
    const auto w = load_populations(svc, setup_rng, 6, 512);
    const auto open = run_open_loop(cfg, w, svc, rate);
    svc.stop_pump_thread();
    results.push_back(to_result("service/open_loop_overload", cfg, open));
    std::printf(
        "open_loop   : rate=%.0f/s  %llu ok (%llu approx), %llu overloaded, "
        "%llu deadline, %llu other  p99=%.0fus p999=%.0fus\n",
        rate, static_cast<unsigned long long>(open.completed),
        static_cast<unsigned long long>(open.approx),
        static_cast<unsigned long long>(open.overloaded),
        static_cast<unsigned long long>(open.deadline),
        static_cast<unsigned long long>(open.other_typed), open.latency.p99,
        open.latency.p999);
    if (open.unresolved > 0) {
      std::fprintf(stderr,
                   "LIVENESS VIOLATION: %llu queries never resolved\n",
                   static_cast<unsigned long long>(open.unresolved));
      return 1;
    }
  }

  perf::Report report;
  report.git_sha = perf::current_git_sha();
  report.host = perf::host_info();
  report.quick = cfg.quick;
  report.results = results;
  std::ofstream outf(json_path);
  if (outf) {
    outf << report.to_json_string();
    std::printf("%zu result(s) -> %s\n", results.size(), json_path.c_str());
  }

  if (!merge_path.empty()) return merge_into(merge_path, results);
  return 0;
}
