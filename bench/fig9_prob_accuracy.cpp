// Figure 9 — "Accuracy of probabilistic model as the number of repeats
// changes".
//
// x is drawn from the symmetric bimodal distribution with peaks n/2 ∓ d;
// the probabilistic threshold test decides which mode generated it; the
// series plot accuracy vs d for r ∈ {1, 3, 5, 9, 19}. Paper shape: accuracy
// rises with r everywhere; nine repeats already exceed 90% once d > 32;
// d ≈ 8 stays hard (≈70%).
#include "analysis/bimodal.hpp"
#include "bench/figure_common.hpp"
#include "core/probabilistic_threshold.hpp"

namespace tcast::bench {
namespace {

double accuracy(const BenchOptions& opts, double d, std::size_t repeats,
                std::uint64_t id) {
  constexpr std::size_t kN = 128;
  const auto dist = analysis::BimodalDistribution::symmetric(kN, d, 4.0);
  MonteCarloConfig mc{.seed = opts.seed, .experiment_id = id,
                      .trials = opts.trials};
  return run_bool_trials(mc, [&dist, repeats](RngStream& rng) {
           const auto sample = dist.sample(kN, rng);
           auto ch =
               group::ExactChannel::with_random_positives(kN, sample.x, rng);
           core::ProbabilisticThresholdOptions popts;
           std::tie(popts.t_l, popts.t_r) = dist.decision_boundaries();
           popts.repeats = repeats;
           const auto out = core::run_probabilistic_threshold(
               ch, ch.all_nodes(), popts, rng);
           return out.high_mode == sample.from_high_mode;
         })
      .value();
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  SeriesTable table("d");
  std::uint64_t series_id = 0;
  for (const std::size_t r : {1u, 3u, 5u, 9u, 19u}) {
    ++series_id;
    char label[16];
    std::snprintf(label, sizeof label, "r=%zu", r);
    for (const double d :
         {4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0, 56.0}) {
      table.set(d, label,
                accuracy(opts, d, r,
                         point_id(9, series_id,
                                  static_cast<std::uint64_t>(d))));
    }
  }
  emit(opts, "Fig 9: probabilistic-model accuracy vs separation d (n=128)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
