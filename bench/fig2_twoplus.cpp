// Figure 2 — "Performance of tcast in 2+ scenario".
//
// The same workload as Fig. 1 but contrasting the 1+ and 2+ collision
// models for both tcast algorithms. The 2+ curves must sit at or below the
// 1+ curves everywhere, with the largest gain around x ≈ t − 1 where most
// bins hold exactly one positive node (captured and excluded).
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  struct Series {
    const char* algo;
    group::CollisionModel model;
    const char* label;
  };
  const Series series[] = {
      {"2tbins", group::CollisionModel::kOnePlus, "2tbins-1+"},
      {"2tbins", group::CollisionModel::kTwoPlus, "2tbins-2+"},
      {"expinc", group::CollisionModel::kOnePlus, "expinc-1+"},
      {"expinc", group::CollisionModel::kTwoPlus, "expinc-2+"},
  };
  const auto xs = x_sweep(kN, kT);
  std::uint64_t series_id = 0;
  for (const auto& s : series) {
    ++series_id;
    const auto means =
        series_means_over_x(opts, s.algo, s.model, kN, xs, kT, 2, series_id);
    for (std::size_t i = 0; i < xs.size(); ++i)
      table.set(static_cast<double>(xs[i]), s.label, means[i]);
  }

  emit(opts, "Fig 2: 1+ vs 2+ collision model (N=128, t=16)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
