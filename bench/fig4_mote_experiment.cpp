// Figure 4 — "Experimental results for TCast with 2tBins algorithm".
//
// The mote-bench experiment (Sec. IV-D): 12 participant TelosB motes + an
// initiator, emulated at the packet level (frames, turnarounds, superposed
// HACKs, calibrated radio irregularity). 2tBins with t ∈ {2, 4, 6}, 100
// runs per (t, x) point, reboots between runs.
//
// Reproduces both the query-count series and the paper's error census:
// "no false-positive runs but only 102 false-negative runs out of 7,200
// separate TCasts ... an error rate of 1.4% ... majority of the
// false-negatives occur when the queried group has only one positive node."
#include <cstdio>

#include "bench/figure_common.hpp"
#include "testbed/experiment.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  auto opts = parse_options(argc, argv);
  testbed::MoteExperimentConfig cfg;
  cfg.seed = opts.seed;
  // Paper methodology: 100 runs per point; honour --trials for quick looks.
  cfg.runs_per_point = opts.trials == 1000 ? 100 : opts.trials;

  const auto results = testbed::run_mote_experiment(cfg);

  SeriesTable table("x");
  for (const auto& point : results.points) {
    char label[16];
    std::snprintf(label, sizeof label, "t=%zu", point.t);
    table.set(static_cast<double>(point.x), label, point.queries.mean());
  }
  emit(opts, "Fig 4: mote experiment, 2tBins (N=12, t in {2,4,6})", table);

  if (!opts.csv) {
    std::printf(
        "\ntcast runs: %zu   false negatives: %zu   false positives: %zu   "
        "run error rate: %.2f%%\n",
        results.total_runs, results.false_negative_runs,
        results.false_positive_runs, 100.0 * results.run_error_rate());
    std::printf("\nbin-level reception census (k = positives in queried bin):\n");
    std::printf("%4s %10s %8s %9s %10s\n", "k", "queried", "missed",
                "phantom", "miss-rate");
    for (const auto& entry : results.census) {
      if (entry.queried == 0) continue;
      std::printf("%4zu %10zu %8zu %9zu %9.2f%%\n", entry.k, entry.queried,
                  entry.missed, entry.phantom,
                  entry.queried ? 100.0 * static_cast<double>(entry.missed) /
                                      static_cast<double>(entry.queried)
                                : 0.0);
    }
  }
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
