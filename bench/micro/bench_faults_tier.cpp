// Faults-tier benchmarks: the chaos machinery's two hot loops. Trace
// replay is the shrinker's inner predicate — ddmin calls it hundreds of
// times per minimization, so replay throughput bounds how large a
// violating trace the nightly campaign can afford to shrink. The campaign
// step is one full session (build stack, run engine, record trace, check
// monitors), the unit the nightly job multiplies by thousands.
#include "bench/micro/micro_benchmarks.hpp"

#include "chaos/chaos_engine.hpp"

namespace tcast::bench {

void register_faults_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "faults/trace_channel/replay",
      "run",
      {},
      [](bool quick) -> std::uint64_t {
        chaos::ChaosScenario sc;
        sc.algorithm = "2tbins";
        sc.n = 48;
        sc.x = 20;
        sc.t = 16;
        sc.model = group::CollisionModel::kTwoPlus;
        sc.tier = chaos::Tier::kExact;
        sc.seed = 5;
        sc.plan = *faults::FaultPlan::parse(
            "ge=0.05:0.2:0:0.8,downgrade=0.2,crash=0.02,reboot=5,seed=21");
        const auto live = chaos::run_session(sc);
        TCAST_CHECK_MSG(!live.trace.events.empty(),
                        "replay benchmark trace is empty");
        const std::size_t replays = quick ? 50 : 500;
        std::uint64_t events = 0;
        for (std::size_t i = 0; i < replays; ++i) {
          const auto rep = chaos::replay_session(sc, live.trace);
          TCAST_CHECK_MSG(rep.trace == live.trace,
                          "replay diverged inside the benchmark");
          events += rep.trace.events.size();
        }
        return events;
      }});

  registry.add(perf::Benchmark{
      "faults/chaos/campaign_step",
      "run",
      {},
      [](bool quick) -> std::uint64_t {
        const std::size_t steps = quick ? 20 : 200;
        const auto grid = chaos::default_plan_grid(/*seed=*/7);
        std::uint64_t faults = 0;
        for (std::size_t i = 0; i < steps; ++i) {
          chaos::ChaosScenario sc;
          sc.algorithm = "2tbins";
          sc.n = 32;
          sc.x = 12;
          sc.t = 10;
          sc.tier = chaos::Tier::kExact;
          sc.seed = 100 + i;
          sc.plan = grid[i % grid.size()];
          const auto rep = chaos::run_session(sc);
          TCAST_CHECK_MSG(rep.ok(),
                          "guarded session violated inside the benchmark");
          faults += rep.trace.events.size();
        }
        return faults;
      }});
}

}  // namespace tcast::bench
