// Sim-tier microbenchmarks: the discrete-event kernel's pending-event set.
// The packet tier builds one EventQueue per Monte-Carlo trial and pushes
// every frame, timer and CCA sample through it, so schedule/pop throughput
// is a first-order term in packet-tier sweep time.
#include "bench/micro/micro_benchmarks.hpp"

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace tcast::bench {

namespace {

/// Shared no-op callback: keeps the benchmark about heap + map traffic, not
/// closure construction.
void noop() {}

}  // namespace

void register_sim_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "sim/event_queue/schedule_pop",
      "event",
      {{"queue_depth", 512}},
      [](bool quick) -> std::uint64_t {
        const std::size_t rounds = quick ? 50 : 500;
        const std::size_t depth = 512;
        RngStream rng(42);
        std::uint64_t events = 0;
        for (std::size_t r = 0; r < rounds; ++r) {
          sim::EventQueue q;
          for (std::size_t i = 0; i < depth; ++i)
            q.schedule(static_cast<SimTime>(rng.uniform_below(1'000'000)),
                       noop);
          while (!q.empty()) {
            q.pop();
            ++events;
          }
        }
        return events;
      }});

  registry.add(perf::Benchmark{
      "sim/event_queue/schedule_cancel_pop",
      "event",
      {{"cancel_fraction", 0.5}},
      [](bool quick) -> std::uint64_t {
        // The radio/MAC pattern: timers armed then mostly cancelled before
        // firing (retransmit guards, CCA windows).
        const std::size_t rounds = quick ? 50 : 500;
        const std::size_t depth = 512;
        RngStream rng(43);
        std::uint64_t events = 0;
        for (std::size_t r = 0; r < rounds; ++r) {
          sim::EventQueue q;
          std::vector<sim::EventId> ids;
          ids.reserve(depth);
          for (std::size_t i = 0; i < depth; ++i)
            ids.push_back(q.schedule(
                static_cast<SimTime>(rng.uniform_below(1'000'000)), noop));
          for (std::size_t i = 0; i < depth; i += 2) q.cancel(ids[i]);
          while (!q.empty()) {
            q.pop();
            ++events;
          }
          events += depth / 2;  // cancelled ones count as processed work
        }
        return events;
      }});

  registry.add(perf::Benchmark{
      "sim/simulator/timer_cascade",
      "event",
      {},
      [](bool quick) -> std::uint64_t {
        // Self-rescheduling event chain: the steady-state shape of an
        // interference source or a periodic sampler.
        const std::uint64_t chain = quick ? 20'000 : 200'000;
        sim::Simulator sim(7);
        std::uint64_t fired = 0;
        std::function<void()> tick = [&] {
          if (++fired < chain) sim.schedule_after(10, tick);
        };
        sim.schedule_after(10, tick);
        sim.run();
        return fired;
      }});
}

}  // namespace tcast::bench
