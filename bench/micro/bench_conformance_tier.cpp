// Conformance-tier benchmark: the end-to-end sweep — randomized scenarios
// through the CheckedChannel with every online invariant armed. This is the
// outermost loop of `ctest -L conformance` and of CI, so its throughput
// bounds how much scenario coverage a fixed CI budget buys.
#include "bench/micro/micro_benchmarks.hpp"

#include "common/rng.hpp"
#include "conformance/harness.hpp"
#include "conformance/scenario.hpp"
#include "core/registry.hpp"

namespace tcast::bench {

void register_conformance_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "conformance/check_algorithm_sweep",
      "run",
      {},
      [](bool quick) -> std::uint64_t {
        const std::size_t scenarios = quick ? 20 : 200;
        RngStream rng(2026);
        std::uint64_t runs = 0;
        const auto& registry_algorithms = core::algorithm_registry();
        for (std::size_t s = 0; s < scenarios; ++s) {
          const auto scenario =
              conformance::random_scenario(rng, /*allow_lossy=*/false);
          for (const auto& spec : registry_algorithms) {
            // The count:* adapters cost an estimation session on top of the
            // verify session, so they get their own baseline below instead
            // of skewing this one's run mix.
            if (spec.needs_oracle || spec.name.starts_with("count:"))
              continue;
            const auto report =
                conformance::check_algorithm(spec, scenario);
            TCAST_CHECK_MSG(report.ok(),
                            "conformance violation inside the benchmark");
            ++runs;
          }
        }
        return runs;
      }});

  registry.add(perf::Benchmark{
      "conformance/check_counting_sweep",
      "run",
      {},
      [](bool quick) -> std::uint64_t {
        const std::size_t scenarios = quick ? 10 : 100;
        RngStream rng(2027);
        std::uint64_t runs = 0;
        for (std::size_t s = 0; s < scenarios; ++s) {
          const auto scenario =
              conformance::random_scenario(rng, /*allow_lossy=*/false);
          for (const auto& spec : core::algorithm_registry()) {
            if (!spec.name.starts_with("count:")) continue;
            const auto report =
                conformance::check_algorithm(spec, scenario);
            TCAST_CHECK_MSG(report.ok(),
                            "conformance violation inside the benchmark");
            ++runs;
          }
        }
        return runs;
      }});
}

}  // namespace tcast::bench
