// tcast_bench — the self-timing benchmark suite behind BENCH_tcast.json.
//
// Usage:
//   tcast_bench [--quick] [--filter SUBSTR] [--json PATH] [--reps N]
//               [--warmup N] [--list]
//
// Runs every registered benchmark (optionally filtered by substring),
// prints a progress line per benchmark, and writes the machine-readable
// report (schema tcast-bench-v1) to PATH (default BENCH_tcast.json in the
// current directory). --quick shrinks workloads ~10x for CI smoke runs;
// tools/compare_bench.py gates regressions against a committed baseline.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/micro/micro_benchmarks.hpp"
#include "perf/bench_harness.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--filter SUBSTR] [--json PATH] "
               "[--reps N] [--warmup N] [--list]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcast;

  perf::RunOptions opts;
  std::string json_path = "BENCH_tcast.json";
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--filter") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.filter = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--reps") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.reps = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--warmup") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.warmup = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }

  auto& registry = perf::BenchRegistry::global();
  bench::register_common_benches(registry);
  bench::register_sim_benches(registry);
  bench::register_parallel_benches(registry);
  bench::register_group_benches(registry);
  bench::register_core_benches(registry);
  bench::register_counting_benches(registry);
  bench::register_conformance_benches(registry);
  bench::register_faults_benches(registry);

  if (list_only) {
    for (const auto& b : registry.benchmarks())
      std::printf("%s  [%s]\n", b.name.c_str(), b.unit.c_str());
    return 0;
  }

  perf::Report report;
  report.git_sha = perf::current_git_sha();
  report.host = perf::host_info();
  report.quick = opts.quick;
  report.results = registry.run(opts, &std::cout);

  if (report.results.empty()) {
    std::fprintf(stderr, "no benchmark matches filter '%s'\n",
                 opts.filter.c_str());
    return 1;
  }

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << report.to_json_string();
  std::printf("%zu benchmark(s) -> %s (sha %s%s)\n", report.results.size(),
              json_path.c_str(), report.git_sha.c_str(),
              opts.quick ? ", quick" : "");
  return 0;
}
