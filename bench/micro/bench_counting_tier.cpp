// Counting-tier microbenchmarks: the portfolio estimators of core/counting
// timed on the abstract tier — the sampling estimator (Newport–Zheng
// geometric phases), the exact splitting counter, and a whole figure-series
// sweep of the threshold-via-count adapter through the batched engine (the
// registry path the ext_counting study and the conformance sweeps drive).
#include "bench/micro/micro_benchmarks.hpp"

#include "common/rng.hpp"
#include "core/counting.hpp"
#include "group/exact_channel.hpp"
#include "perf/sweep_engine.hpp"

namespace tcast::bench {

namespace {

constexpr std::uint64_t kSeed = 0x7ca57ca57ca57ca5ULL;

/// Repeated estimator runs on fresh (n, x) instances; returns runs done.
template <typename Run>
std::uint64_t estimator_reps(std::size_t n, std::size_t x, std::size_t reps,
                             std::uint64_t stream, Run&& run) {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    RngStream rng(kSeed, stream + r);
    auto ch = group::ExactChannel::with_random_positives(n, x, rng);
    run(ch, rng);
    ++total;
  }
  return total;
}

std::uint64_t adapter_sweep(std::size_t trials) {
  perf::QuerySweepSpec spec;
  spec.algorithm = "count:nz-geom";
  spec.n = 128;
  spec.trials = trials;
  spec.seed = kSeed;
  for (const std::size_t x : {0u, 4u, 8u, 12u, 16u, 20u, 24u, 32u, 48u, 64u,
                              96u, 128u})
    spec.points.push_back({x, 16, perf::sweep_point_id(91, 1, x)});
  const auto result = perf::run_query_sweep(spec);
  std::uint64_t runs = 0;
  for (const auto& s : result.queries) runs += s.count();
  return runs;
}

}  // namespace

void register_counting_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "core/counting/nz_geom/estimate",
      "run",
      {{"n", 1024}, {"x", 64}},
      [](bool quick) {
        return estimator_reps(
            1024, 64, quick ? 50 : 500, 201, [](auto& ch, auto& rng) {
              (void)core::run_newport_zheng_count(ch, ch.all_nodes(), rng);
            });
      }});

  registry.add(perf::Benchmark{
      "core/counting/beep_exact/count",
      "run",
      {{"n", 1024}, {"x", 64}},
      [](bool quick) {
        return estimator_reps(
            1024, 64, quick ? 20 : 200, 301, [](auto& ch, auto& rng) {
              (void)core::run_beep_exact_count(ch, ch.all_nodes(), rng, {});
            });
      }});

  registry.add(perf::Benchmark{
      "core/counting/threshold_adapter/full_sweep",
      "run",
      {{"n", 128}, {"t", 16}, {"points", 12}},
      [](bool quick) { return adapter_sweep(quick ? 30 : 300); }});
}

}  // namespace tcast::bench
