// Registration entry points for the tcast_bench suite, one per layer.
// Called from tcast_bench_main.cpp (explicit calls, no static-init-order
// games); each registers its layer's named benchmarks with the registry.
#pragma once

#include "perf/bench_harness.hpp"

namespace tcast::bench {

void register_common_benches(perf::BenchRegistry& registry);
void register_sim_benches(perf::BenchRegistry& registry);
void register_parallel_benches(perf::BenchRegistry& registry);
void register_group_benches(perf::BenchRegistry& registry);
void register_core_benches(perf::BenchRegistry& registry);
void register_counting_benches(perf::BenchRegistry& registry);
void register_conformance_benches(perf::BenchRegistry& registry);
void register_faults_benches(perf::BenchRegistry& registry);

}  // namespace tcast::bench
