// Core-tier microbenchmarks: the abstract-tier hot paths this repo's figure
// sweeps actually spend their time in — ExactChannel bin queries, the
// random-equal binning constructor, and whole registry-algorithm sweeps
// through the batched sweep engine.
//
// The */_reference benchmarks run the SAME workload (same seeds, same RNG
// streams, same query counts) through the pre-PR implementation in the same
// binary — the honest A/B for docs/PERFORMANCE.md, immune to the
// cross-binary code-layout noise PR 3 documented (~25%). For the channel
// query kernel that is the retained scalar path
// (ExactChannel::Config::node_set_fast_path = false); for the whole-figure
// sweep it is a verbatim transcription of the pre-PR stack (vector<bool>
// channel, vector<vector> binning, per-round buffer rebuilds, per-point
// run_trials loop) kept below under "Pre-PR transcription".
#include "bench/micro/micro_benchmarks.hpp"

#include <algorithm>
#include <numeric>

#include "common/monte_carlo.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "group/binning.hpp"
#include "group/exact_channel.hpp"
#include "perf/sweep_engine.hpp"

namespace tcast::bench {

namespace {

constexpr std::uint64_t kSeed = 0x7ca57ca57ca57ca5ULL;

/// One b-bin assignment over n nodes, every bin queried `sweeps` times
/// under the 1+ model — the Fig. 1 inner loop. The fast path answers with
/// an early-exiting word AND; the reference walks the whole bin span into a
/// per-query heap vector, exactly as before this PR.
std::uint64_t exact_query_sweep(bool fast_path, bool quick) {
  const std::size_t n = 4096, x = 64, bins = 32;
  const std::size_t sweeps = quick ? 200 : 2000;
  RngStream rng(kSeed, 101);
  group::ExactChannel::Config cfg;
  cfg.node_set_fast_path = fast_path;
  auto ch = group::ExactChannel::with_random_positives(n, x, rng, cfg);
  RngStream binning_rng(kSeed, 102);
  const auto assignment =
      group::BinAssignment::random_equal(ch.all_nodes(), bins, binning_rng);
  ch.announce(assignment);
  std::uint64_t queries = 0;
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (std::size_t b = 0; b < bins; ++b) {
      (void)ch.query_bin(assignment, b);
      ++queries;
    }
  }
  return queries;
}

/// The x-grid of the paper's query-vs-x figures at (n=128, t=16).
std::vector<std::size_t> sweep_grid() {
  return {0, 4, 8, 12, 16, 20, 24, 32, 48, 64, 96, 128};
}

/// Whole-figure-series sweep through the batched engine (the post-PR path:
/// per-thread channel workspaces, NodeSet queries, arena binning).
std::uint64_t full_sweep_batched(const std::string& algorithm,
                                 std::uint64_t series, std::size_t trials) {
  perf::QuerySweepSpec spec;
  spec.algorithm = algorithm;
  spec.n = 128;
  spec.trials = trials;
  spec.seed = kSeed;
  for (const std::size_t x : sweep_grid())
    spec.points.push_back({x, 16, perf::sweep_point_id(90, series, x)});
  const auto result = perf::run_query_sweep(spec);
  std::uint64_t runs = 0;
  for (const auto& s : result.queries) runs += s.count();
  return runs;
}

// ---------------------------------------------------------------------------
// Pre-PR transcription. Everything from here to the matching end marker is
// the abstract-tier stack as it existed before the NodeSet fast path,
// transcribed from the pre-PR sources so the *_reference sweep measures the
// real historical cost profile in this binary: ExactChannel over
// std::vector<bool> with .at() and a per-query heap vector, BinAssignment
// as vector<vector<NodeId>>, all_nodes() materialising a fresh vector, and
// the round engine rebuilding assignment/order/candidate buffers each
// round. Draw sequence and query counts are bit-identical to the batched
// path (same contracts the conformance suite locks down), so the two
// benchmarks do the same logical work.

class LegacyExactChannel final : public group::QueryChannel {
 public:
  LegacyExactChannel(std::vector<bool> positive, RngStream& rng)
      : QueryChannel(group::CollisionModel::kOnePlus),
        positive_(std::move(positive)),
        rng_(&rng) {}

  std::vector<NodeId> all_nodes() const {
    std::vector<NodeId> out(positive_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = static_cast<NodeId>(i);
    return out;
  }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    std::size_t count = 0;
    for (const NodeId id : nodes)
      if (positive_.at(static_cast<std::size_t>(id))) ++count;
    return count;
  }

 protected:
  group::BinQueryResult do_query_set(
      std::span<const NodeId> nodes) override {
    std::vector<NodeId> positives_in_bin;
    for (const NodeId id : nodes)
      if (positive_.at(static_cast<std::size_t>(id)))
        positives_in_bin.push_back(id);
    if (positives_in_bin.empty()) return group::BinQueryResult::empty();
    return group::BinQueryResult::activity();  // 1+ model
  }

 private:
  std::vector<bool> positive_;
  [[maybe_unused]] RngStream* rng_;  // capture draws (2+ only; kept for shape)
};

std::vector<std::vector<NodeId>> legacy_random_equal(
    std::span<const NodeId> nodes, std::size_t bins, RngStream& rng) {
  std::vector<NodeId> shuffled(nodes.begin(), nodes.end());
  rng.shuffle(std::span<NodeId>(shuffled));
  std::vector<std::vector<NodeId>> out(bins);
  for (std::size_t i = 0; i < shuffled.size(); ++i)
    out[i % bins].push_back(shuffled[i]);
  return out;
}

/// The pre-PR RoundEngine::run specialised to what the sweep exercises:
/// exact lossless channel (no retries), non-empty-first ordering, the
/// 2tBins policy (bins = 2·remaining threshold). Returns the trial's query
/// count, the figure metric.
double legacy_two_t_bins_trial(LegacyExactChannel& ch, std::size_t threshold,
                               RngStream& rng) {
  const auto participants = ch.all_nodes();
  const QueryCount queries_at_start = ch.queries_used();
  const auto spent = [&] {
    return static_cast<double>(ch.queries_used() - queries_at_start);
  };
  if (threshold == 0) return spent();
  if (participants.size() < threshold) return spent();

  NodeId max_id = 0;
  for (const NodeId id : participants) max_id = std::max(max_id, id);
  std::vector<char> alive(static_cast<std::size_t>(max_id) + 1, 0);
  for (const NodeId id : participants)
    alive[static_cast<std::size_t>(id)] = 1;
  std::size_t alive_count = participants.size();
  std::vector<NodeId> candidates(participants.begin(), participants.end());

  std::size_t confirmed = 0;
  std::size_t bins =
      std::clamp<std::size_t>(2 * threshold, 1, alive_count);

  for (;;) {
    const auto assignment = legacy_random_equal(candidates, bins, rng);

    // Non-empty-first query order via the oracle hook (paper accounting).
    std::vector<std::size_t> order(assignment.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<char> nonempty(assignment.size(), 0);
    for (std::size_t i = 0; i < assignment.size(); ++i)
      nonempty[i] = *ch.oracle_positive_count(assignment[i]) > 0 ? 1 : 0;
    std::stable_sort(order.begin(), order.end(),
                     [&nonempty](std::size_t lhs, std::size_t rhs) {
                       return nonempty[lhs] > nonempty[rhs];
                     });

    std::size_t round_lb = 0;
    std::size_t empty_bins = 0;
    for (const std::size_t idx : order) {
      const auto result = ch.query_set(assignment[idx]);
      if (result.kind == group::BinQueryResult::Kind::kEmpty) {
        ++empty_bins;
        for (const NodeId id : assignment[idx]) {
          if (alive[static_cast<std::size_t>(id)]) {
            alive[static_cast<std::size_t>(id)] = 0;
            --alive_count;
          }
        }
      } else {
        round_lb += 1;  // 1+ activity certifies ≥1 positive
      }
      if (confirmed + round_lb >= threshold) return spent();
      if (confirmed + alive_count < threshold) return spent();
    }

    candidates.clear();
    for (std::size_t id = 0; id < alive.size(); ++id)
      if (alive[id]) candidates.push_back(static_cast<NodeId>(id));

    const std::size_t remaining = threshold - confirmed;
    std::size_t next = 2 * remaining;
    if (empty_bins == 0 && next <= bins) next = bins * 2;  // anti-livelock
    bins = std::clamp<std::size_t>(next, 1, alive_count);
  }
}

/// The same sweep the way the figure binaries ran it before this PR: one
/// run_trials() call per grid point, a fresh legacy channel per trial.
/// Identical seeds and streams to full_sweep_batched.
std::uint64_t full_sweep_legacy(std::size_t trials) {
  std::uint64_t runs = 0;
  double total_queries = 0.0;
  for (const std::size_t x : sweep_grid()) {
    MonteCarloConfig mc{.seed = kSeed,
                        .experiment_id = perf::sweep_point_id(90, 1, x),
                        .trials = trials};
    const auto stats = run_trials(mc, [x](RngStream& rng) {
      std::vector<bool> positive(128, false);
      for (const NodeId id : rng.sample_subset(128, x))
        positive[static_cast<std::size_t>(id)] = true;
      LegacyExactChannel ch(std::move(positive), rng);
      return legacy_two_t_bins_trial(ch, 16, rng);
    });
    runs += stats.count();
    total_queries += stats.sum();
  }
  // One-time fidelity gate (first call, i.e. a warmup repetition): the
  // transcription must spend exactly as many queries as the batched path,
  // or the A/B would compare different work. Bit-exact double sum: both
  // sides reduce integer query counts in the same trial order.
  static const bool fidelity_checked = [&] {
    perf::QuerySweepSpec spec;
    spec.n = 128;
    spec.trials = trials;
    spec.seed = kSeed;
    for (const std::size_t x : sweep_grid())
      spec.points.push_back({x, 16, perf::sweep_point_id(90, 1, x)});
    const auto batched = perf::run_query_sweep(spec);
    double batched_queries = 0.0;
    for (const auto& s : batched.queries) batched_queries += s.sum();
    TCAST_CHECK_MSG(batched_queries == total_queries,
                    "pre-PR transcription diverged from the batched sweep");
    return true;
  }();
  (void)fidelity_checked;
  return runs;
}

// ------------------------------ end pre-PR transcription ------------------

}  // namespace

void register_core_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "group/exact_channel/query_sweep",
      "query",
      {{"n", 4096}, {"x", 64}, {"bins", 32}},
      [](bool quick) { return exact_query_sweep(/*fast_path=*/true, quick); }});

  registry.add(perf::Benchmark{
      "group/exact_channel/query_sweep_reference",
      "query",
      {{"n", 4096}, {"x", 64}, {"bins", 32}},
      [](bool quick) {
        return exact_query_sweep(/*fast_path=*/false, quick);
      }});

  registry.add(perf::Benchmark{
      "core/2tbins/full_sweep",
      "run",
      {{"n", 128}, {"t", 16}, {"points", 12}},
      [](bool quick) -> std::uint64_t {
        return full_sweep_batched("2tbins", 1, quick ? 30 : 300);
      }});

  registry.add(perf::Benchmark{
      "core/2tbins/full_sweep_reference",
      "run",
      {{"n", 128}, {"t", 16}, {"points", 12}},
      [](bool quick) -> std::uint64_t {
        return full_sweep_legacy(quick ? 30 : 300);
      }});

  registry.add(perf::Benchmark{
      "core/abns/full_sweep",
      "run",
      {{"n", 128}, {"t", 16}, {"points", 12}},
      [](bool quick) -> std::uint64_t {
        return full_sweep_batched("abns:t", 2, quick ? 20 : 200);
      }});

  registry.add(perf::Benchmark{
      "group/binning/random_equal",
      "assign",
      {{"n", 4096}, {"bins", 32}},
      [](bool quick) -> std::uint64_t {
        const std::size_t n = 4096, bins = 32;
        const std::size_t assigns = quick ? 200 : 2000;
        std::vector<NodeId> nodes(n);
        for (std::size_t i = 0; i < n; ++i)
          nodes[i] = static_cast<NodeId>(i);
        RngStream rng(kSeed, 103);
        group::BinAssignment assignment;  // reused arena across assignments
        for (std::size_t a = 0; a < assigns; ++a)
          assignment.assign_random_equal(nodes, bins, rng);
        return assigns;
      }});
}

}  // namespace tcast::bench
