// Group-tier microbenchmarks: PacketChannel query rounds — a full backcast
// or pollcast exchange through the PHY/MAC substrate per poll. This is the
// inner loop of every packet-tier figure (Figs. 4, 7) and of the fault
// sweeps, so per-poll overhead multiplies by trials × bins × sweep points.
#include "bench/micro/micro_benchmarks.hpp"

#include "common/rng.hpp"
#include "group/binning.hpp"
#include "group/packet_channel.hpp"
#include "radio/hack_model.hpp"

namespace tcast::bench {

namespace {

std::vector<bool> truth_pattern(std::size_t n, std::size_t x,
                                std::uint64_t seed) {
  RngStream rng(seed);
  std::vector<bool> positive(n, false);
  for (const NodeId id : rng.sample_subset(n, x))
    positive[static_cast<std::size_t>(id)] = true;
  return positive;
}

group::PacketChannel::Config tier_config(group::CollisionModel model) {
  group::PacketChannel::Config cfg;
  cfg.model = model;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  return cfg;
}

/// Announces one b-bin assignment and polls every bin `sweeps` times.
std::uint64_t poll_rounds(group::CollisionModel model, bool quick) {
  const std::size_t n = 32;
  const std::size_t bins = 8;
  const std::size_t sweeps = quick ? 4 : 32;
  group::PacketChannel ch(truth_pattern(n, n / 4, 9),
                          tier_config(model));
  RngStream binning_rng(11);
  const auto nodes = ch.all_nodes();
  const auto assignment =
      group::BinAssignment::random_equal(nodes, bins, binning_rng);
  ch.announce(assignment);
  std::uint64_t polls = 0;
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (std::size_t b = 0; b < bins; ++b) {
      (void)ch.query_bin(assignment, b);
      ++polls;
    }
  }
  return polls;
}

}  // namespace

void register_group_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "group/packet_channel/backcast_poll",
      "poll",
      {{"n", 32}, {"bins", 8}},
      [](bool quick) -> std::uint64_t {
        return poll_rounds(group::CollisionModel::kOnePlus, quick);
      }});

  registry.add(perf::Benchmark{
      "group/packet_channel/pollcast_poll",
      "poll",
      {{"n", 32}, {"bins", 8}},
      [](bool quick) -> std::uint64_t {
        return poll_rounds(group::CollisionModel::kTwoPlus, quick);
      }});

  registry.add(perf::Benchmark{
      "group/packet_channel/world_setup",
      "world",
      {{"n", 32}},
      [](bool quick) -> std::uint64_t {
        // Per-trial cost of standing up the simulated radio world (one per
        // Monte-Carlo trial at the packet tier) and resolving one query.
        const std::size_t worlds = quick ? 20 : 200;
        const auto truth = truth_pattern(32, 8, 13);
        for (std::size_t w = 0; w < worlds; ++w) {
          group::PacketChannel ch(
              truth, tier_config(group::CollisionModel::kOnePlus));
          (void)ch.query_set(ch.all_nodes());
        }
        return worlds;
      }});
}

}  // namespace tcast::bench
