// Parallel-kernel benchmarks: LP-sharded cell worlds at 1k and 10k motes,
// driven sequentially (the inline differential reference) and over worker
// pools. Every variant of a world executes the *identical* event schedule —
// CellWorld is bit-reproducible under a fixed seed whatever the worker
// count — so the seq/w2/w4 throughput ratios are a pure measurement of the
// conservative kernel's scaling, with zero semantic drift.
//
// Honest-measurement notes (docs/PERFORMANCE.md has the table):
//  * speedup is bounded by the host's *schedulable* CPUs (the report's
//    host.affinity_cpus, often < hardware_threads on CI); on a single-core
//    runner every pooled variant measures synchronization overhead, not
//    scaling;
//  * KernelStats.stalled_windows counts the windows where conservative
//    lookahead serialized the world — the structural (not implementation)
//    limit of the speedup.
#include "bench/micro/micro_benchmarks.hpp"

#include <memory>
#include <thread>

#include "common/parallel.hpp"
#include "sim/parallel/cell_world.hpp"

namespace tcast::bench {

namespace {

std::uint64_t run_cells(std::size_t cells, std::size_t motes_per_cell,
                        SimTime beacon_period, SimTime duration,
                        std::size_t workers) {
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  sim::parallel::CellWorldConfig cfg;
  cfg.cells = cells;
  cfg.motes_per_cell = motes_per_cell;
  cfg.seed = 7;
  cfg.beacon_period = beacon_period;
  cfg.duration = duration;
  cfg.pool = pool.get();
  sim::parallel::CellWorld world(cfg);
  return world.run();
}

}  // namespace

void register_parallel_benches(perf::BenchRegistry& registry) {
  // 1k motes: 16 cells × 64. Beacon period keeps each cell ~50% busy —
  // contended enough that the MAC, channel clusters and cross-cell ghosts
  // all do real work.
  struct Variant {
    const char* name;
    std::size_t workers;
  };
  const Variant kSmall[] = {{"sim/parallel/cells1k_seq", 1},
                            {"sim/parallel/cells1k_w2", 2},
                            {"sim/parallel/cells1k_w4", 4}};
  for (const Variant& v : kSmall) {
    registry.add(perf::Benchmark{
        v.name,
        "event",
        {{"workers", static_cast<double>(v.workers)},
         {"cells", 16},
         {"motes", 1024}},
        [workers = v.workers](bool quick) -> std::uint64_t {
          return run_cells(16, 64, 80 * kMillisecond,
                           (quick ? 40 : 160) * kMillisecond, workers);
        }});
  }

  // 10k motes: 32 cells × 320 — the scaling target world (≥3x at 4
  // workers on a host with ≥4 schedulable cores).
  const Variant kLarge[] = {{"sim/parallel/cells10k_seq", 1},
                            {"sim/parallel/cells10k_w4", 4}};
  for (const Variant& v : kLarge) {
    registry.add(perf::Benchmark{
        v.name,
        "event",
        {{"workers", static_cast<double>(v.workers)},
         {"cells", 32},
         {"motes", 10240}},
        [workers = v.workers](bool quick) -> std::uint64_t {
          return run_cells(32, 320, 400 * kMillisecond,
                           (quick ? 24 : 96) * kMillisecond, workers);
        }});
  }

  // All schedulable cores, whatever the host offers — the "hw" leg of the
  // 1/2/hw sweep (on this host: workers param below).
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  registry.add(perf::Benchmark{
      "sim/parallel/cells1k_whw",
      "event",
      {{"workers", static_cast<double>(hw)}, {"cells", 16}, {"motes", 1024}},
      [hw](bool quick) -> std::uint64_t {
        return run_cells(16, 64, 80 * kMillisecond,
                         (quick ? 40 : 160) * kMillisecond, hw);
      }});
}

}  // namespace tcast::bench
