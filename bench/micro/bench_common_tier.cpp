// Common-tier microbenchmarks: the Monte-Carlo driver and the thread pool —
// the hot paths under every figure reproduction ("average of 1000 runs" per
// sweep point).
//
// `common/run_trials/type_erased_legacy` is a faithful replica of the
// pre-optimization driver (std::function trial + per-trial std::vector
// scratch + one heap closure per chunk through the submit() queue), kept so
// the before/after ratio is measurable in one binary on one machine.
#include "bench/micro/micro_benchmarks.hpp"

#include <atomic>
#include <functional>
#include <queue>

#include "common/monte_carlo.hpp"
#include "common/parallel.hpp"

namespace tcast::bench {

namespace {

/// The workload one simulated trial stands in for: a handful of RNG draws,
/// small enough that driver overhead is visible.
double tiny_trial(RngStream& rng) {
  double acc = 0.0;
  acc += rng.uniform01();
  return acc;
}

std::size_t trial_count(bool quick) { return quick ? 20'000 : 200'000; }

/// Pre-PR parallel_for: one std::function closure per chunk through the
/// submit() queue (heap node per task), type-erased body call per index.
void legacy_parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& body,
                         ThreadPool* pool) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t workers = pool->worker_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    pool->submit([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool->wait_idle();
}

/// Pre-PR run_multi_trials: per-trial std::vector<double> scratch and a
/// std::function trial call.
std::vector<RunningStats> legacy_run_multi_trials(
    const MonteCarloConfig& cfg, std::size_t metrics,
    const std::function<void(RngStream&, std::vector<double>&)>& trial) {
  std::vector<double> values(cfg.trials * metrics, 0.0);
  legacy_parallel_for(
      cfg.trials,
      [&](std::size_t i) {
        RngStream rng(cfg.seed, trial_stream_id(cfg.experiment_id, i));
        std::vector<double> out(metrics, 0.0);
        trial(rng, out);
        for (std::size_t m = 0; m < metrics; ++m)
          values[i * metrics + m] = out[m];
      },
      cfg.pool);
  std::vector<RunningStats> merged(metrics);
  for (std::size_t i = 0; i < cfg.trials; ++i)
    for (std::size_t m = 0; m < metrics; ++m)
      merged[m].add(values[i * metrics + m]);
  return merged;
}

RunningStats legacy_run_trials(
    const MonteCarloConfig& cfg,
    const std::function<double(RngStream&)>& trial) {
  auto multi = legacy_run_multi_trials(
      cfg, 1, [&trial](RngStream& rng, std::vector<double>& out) {
        out[0] = trial(rng);
      });
  return multi[0];
}

}  // namespace

void register_common_benches(perf::BenchRegistry& registry) {
  registry.add(perf::Benchmark{
      "common/run_trials/fast",
      "trial",
      {{"rng_draws_per_trial", 1}},
      [](bool quick) -> std::uint64_t {
        MonteCarloConfig cfg;
        cfg.trials = trial_count(quick);
        const auto s = run_trials(cfg, tiny_trial);
        return s.count();
      }});

  registry.add(perf::Benchmark{
      "common/run_trials/std_function_shim",
      "trial",
      {{"rng_draws_per_trial", 1}},
      [](bool quick) -> std::uint64_t {
        MonteCarloConfig cfg;
        cfg.trials = trial_count(quick);
        const std::function<double(RngStream&)> trial = tiny_trial;
        const auto s = run_trials(cfg, trial);
        return s.count();
      }});

  registry.add(perf::Benchmark{
      "common/run_trials/type_erased_legacy",
      "trial",
      {{"rng_draws_per_trial", 1}},
      [](bool quick) -> std::uint64_t {
        MonteCarloConfig cfg;
        cfg.trials = trial_count(quick);
        const std::function<double(RngStream&)> trial = tiny_trial;
        const auto s = legacy_run_trials(cfg, trial);
        return s.count();
      }});

  registry.add(perf::Benchmark{
      "common/run_multi_trials/span_fast",
      "trial",
      {{"metrics", 3}},
      [](bool quick) -> std::uint64_t {
        MonteCarloConfig cfg;
        cfg.trials = trial_count(quick);
        const auto stats = run_multi_trials(
            cfg, 3, [](RngStream& rng, std::span<double> out) {
              out[0] = rng.uniform01();
              out[1] = rng.uniform01();
              out[2] = out[0] + out[1];
            });
        return stats[0].count();
      }});

  registry.add(perf::Benchmark{
      "common/parallel_for/batch",
      "index",
      {},
      [](bool quick) -> std::uint64_t {
        const std::size_t n = quick ? 200'000 : 2'000'000;
        std::atomic<std::uint64_t> sink{0};
        std::uint64_t local = 0;
        (void)local;
        parallel_for(n, [&sink](std::size_t i) {
          // Just enough work that the compiler cannot elide the body.
          if ((i & 0xFFFF) == 0) sink.fetch_add(1, std::memory_order_relaxed);
        });
        return n + sink.load();
      }});

  registry.add(perf::Benchmark{
      "common/thread_pool/submit_drain",
      "task",
      {},
      [](bool quick) -> std::uint64_t {
        const std::size_t n = quick ? 2'000 : 20'000;
        ThreadPool& pool = ThreadPool::global();
        std::atomic<std::uint64_t> done{0};
        for (std::size_t i = 0; i < n; ++i)
          pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        pool.wait_idle();
        return done.load();
      }});
}

}  // namespace tcast::bench
