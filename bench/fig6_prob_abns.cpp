// Figure 6 — "Performance of the probabilistic ABNS algorithm".
//
// Probabilistic ABNS (one sampling-hint query, then ABNS(t/4) or 2tBins)
// against the fixed-seed ABNS variants and the oracle. Paper shape: the
// probabilistic variant tracks the better of ABNS(t)/ABNS(2t) on each side
// of the axis and runs close to the oracle lower bound throughout.
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  const char* algorithms[] = {"prob-abns", "abns:t", "abns:2t", "2tbins",
                              "oracle"};
  std::uint64_t series_id = 0;
  for (const char* algo : algorithms) {
    ++series_id;
    for (const std::size_t x : x_sweep(kN, kT)) {
      table.set(static_cast<double>(x), algo,
                mean_queries(opts, algo, group::CollisionModel::kOnePlus, kN,
                             x, kT, point_id(6, series_id, x)));
    }
  }

  emit(opts, "Fig 6: probabilistic ABNS (N=128, t=16)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
