// Figure 5 — "Performance of Adaptive Bin Number Selection (ABNS)".
//
// ABNS with p0 = t and p0 = 2t against 2tBins and the oracle bin-selection
// lower bound. Paper shape: 2tBins ≈ oracle for x > t/2; for x ≤ t/2 the
// gap opens and ABNS (especially with the lower seed) closes part of it,
// at the cost of some overhead for x ≫ t when seeded low.
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  const auto xs = x_sweep(kN, kT);
  const char* algorithms[] = {"abns:t", "abns:2t", "2tbins", "oracle"};
  std::uint64_t series_id = 0;
  for (const char* algo : algorithms) {
    ++series_id;
    const auto means = series_means_over_x(
        opts, algo, group::CollisionModel::kOnePlus, kN, xs, kT, 5,
        series_id);
    for (std::size_t i = 0; i < xs.size(); ++i)
      table.set(static_cast<double>(xs[i]), algo, means[i]);
  }

  emit(opts, "Fig 5: ABNS vs 2tBins vs oracle (N=128, t=16)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
