// Extension bench — tcast in a spatial multihop setting (the paper's
// future-work deployment: "a multihop network environment with interfering
// traffic", Sec. III-B / VII).
//
// Geometry: a 12-mote singlehop cell (initiator at the origin, participants
// on a 10 m disk), reception range 30 m, and a neighbouring-region
// transmitter at distance D emitting 25%-duty foreign traffic. Sweeping D
// shows the three interference regimes a spatial model exposes:
//   D well inside the cell   → jams both initiator and responders;
//   D near the range edge    → asymmetric (some links jammed, others not);
//   D beyond the range       → clean, as if singlehop.
// Reported per D: per-query false-negative rate of backcast (false
// positives are structurally zero), and 2tBins session accuracy at x = 8,
// t = 4.
#include <cmath>

#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"
#include "group/packet_channel.hpp"

namespace tcast::bench {
namespace {

group::PacketChannel::Config cell_config(double interferer_distance,
                                         std::uint64_t seed) {
  group::PacketChannel::Config cfg;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  cfg.channel.range = 30.0;
  cfg.seed = seed;
  cfg.interference_duty = 0.25;
  cfg.interferer_pos = {interferer_distance, 0.0};
  cfg.initiator_pos = {0.0, 0.0};
  for (std::size_t i = 0; i < 12; ++i) {
    const double angle = 2.0 * 3.14159265358979 * static_cast<double>(i) / 12.0;
    cfg.participant_positions.emplace_back(10.0 * std::cos(angle),
                                           10.0 * std::sin(angle));
  }
  return cfg;
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  const std::size_t sessions = opts.trials == 1000 ? 60 : opts.trials;

  SeriesTable table("D");
  for (const double d : {5.0, 15.0, 25.0, 35.0, 45.0, 80.0}) {
    // Per-query FN rate: all 12 positive, whole-set probes.
    {
      auto cfg = cell_config(d, opts.seed);
      group::PacketChannel ch(std::vector<bool>(12, true), cfg);
      int misses = 0;
      const int probes = 400;
      for (int i = 0; i < probes; ++i)
        if (!ch.query_set(ch.all_nodes()).nonempty()) ++misses;
      table.set(d, "query-FN", static_cast<double>(misses) / probes);
    }
    // Session accuracy, x = 8 ≥ t = 4.
    std::size_t correct = 0;
    for (std::size_t s = 0; s < sessions; ++s) {
      RngStream workload(opts.seed, 7000 + s);
      std::vector<bool> truth(12, false);
      for (const NodeId id : workload.sample_subset(12, 8))
        truth[static_cast<std::size_t>(id)] = true;
      auto cfg = cell_config(d, opts.seed + 31 + s);
      group::PacketChannel ch(truth, cfg);
      core::EngineOptions eopts;
      eopts.ordering = core::BinOrdering::kInOrder;
      const auto out =
          core::run_two_t_bins(ch, ch.all_nodes(), 4, workload, eopts);
      if (out.decision) ++correct;
    }
    table.set(d, "acc@x=8,t=4",
              static_cast<double>(correct) / static_cast<double>(sessions));
  }
  emit(opts,
       "Extension: spatial multihop interference vs distance "
       "(cell radius 10, range 30, duty 25%)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
