// Figure 11 — "The distribution of x is the combination of two normal
// distributions with separation μ2 − μ1 = 2d".
//
// Renders the sampled bimodal distributions at d = 8 and d = 16 (n = 128,
// σ = 4): at d = 16 the modes are cleanly separated; at d = 8 they blur
// into each other — the regime where Fig. 9 shows the probabilistic test
// struggling.
#include <iostream>

#include "analysis/bimodal.hpp"
#include "bench/figure_common.hpp"
#include "common/histogram.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128;

  SeriesTable table("x");
  for (const double d : {8.0, 16.0}) {
    const auto dist = analysis::BimodalDistribution::symmetric(kN, d, 4.0);
    Histogram hist(0.0, static_cast<double>(kN), 32);
    RngStream rng(opts.seed ^ static_cast<std::uint64_t>(d));
    const std::size_t draws = opts.trials * 20;
    for (std::size_t i = 0; i < draws; ++i)
      hist.add(static_cast<double>(dist.sample(kN, rng).x));
    char label[16];
    std::snprintf(label, sizeof label, "d=%g", d);
    for (std::size_t bin = 0; bin < hist.bin_count(); ++bin)
      table.set(hist.bin_center(bin), label, hist.density(bin));
    if (!opts.csv) {
      std::cout << "\n-- bimodal x distribution, d = " << d
                << " (n=128, sigma=4) --\n"
                << hist.ascii(48);
    }
  }
  emit(opts, "Fig 11: bimodal x densities at d=8 vs d=16", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
