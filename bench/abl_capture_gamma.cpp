// Ablation — sensitivity of the 2+ gains to the capture-model knob.
//
// The paper's capture effect is qualitative ("decreasing probability as the
// number of messages increase"); our GeometricCaptureModel parameterises it
// as P(capture | k) = γ^(k−1). This bench sweeps γ to show the 2+ advantage
// degrades gracefully from "always capture" (γ = 1) to "no capture beyond a
// lone reply" (γ = 0), never dropping below the 1+ baseline.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"

namespace tcast::bench {
namespace {

double mean_with_gamma(const BenchOptions& opts, double gamma, std::size_t n,
                       std::size_t x, std::size_t t, std::uint64_t id) {
  MonteCarloConfig mc{.seed = opts.seed, .experiment_id = id,
                      .trials = opts.trials};
  return run_trials(mc, [gamma, n, x, t](RngStream& rng) {
           group::ExactChannel::Config cfg;
           cfg.model = group::CollisionModel::kTwoPlus;
           cfg.capture =
               std::make_shared<radio::GeometricCaptureModel>(1.0, gamma);
           auto ch = group::ExactChannel::with_random_positives(n, x, rng,
                                                                cfg);
           return static_cast<double>(
               core::run_two_t_bins(ch, ch.all_nodes(), t, rng).queries);
         })
      .mean();
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  std::uint64_t series_id = 0;
  for (const double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ++series_id;
    char label[24];
    std::snprintf(label, sizeof label, "2+ gamma=%.2f", gamma);
    for (const std::size_t x : x_sweep(kN, kT))
      table.set(static_cast<double>(x), label,
                mean_with_gamma(opts, gamma, kN, x, kT,
                                point_id(102, series_id, x)));
  }
  for (const std::size_t x : x_sweep(kN, kT))
    table.set(static_cast<double>(x), "1+ baseline",
              mean_queries(opts, "2tbins", group::CollisionModel::kOnePlus,
                           kN, x, kT, point_id(102, 99, x)));

  emit(opts, "Ablation: capture-model gamma sweep, 2tBins 2+ (N=128, t=16)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
