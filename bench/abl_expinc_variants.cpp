// Ablation — the Exponential Increase variations of Sec. IV-B.
//
// The paper reports trying a pause-and-continue scheme and a four-fold
// growth scheme and finding "neither of them gave a consistent improvement";
// this bench regenerates that comparison so the claim is checkable.
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  const char* algorithms[] = {"expinc", "expinc-pause", "expinc-fourfold",
                              "2tbins"};
  std::uint64_t series_id = 0;
  for (const char* algo : algorithms) {
    ++series_id;
    for (const std::size_t x : x_sweep(kN, kT)) {
      table.set(static_cast<double>(x), algo,
                mean_queries(opts, algo, group::CollisionModel::kOnePlus, kN,
                             x, kT, point_id(101, series_id, x)));
    }
  }
  emit(opts,
       "Ablation: exponential-increase variants (Sec. IV-B), N=128, t=16",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
