// Ablation — random vs deterministic (contiguous) binning.
//
// The paper's only stated delta from the algorithm of [4] is that "the
// distribution of nodes to the bins is performed randomly here whereas it
// was performed deterministically in [4]". On uniformly random positives
// the two are statistically identical; the difference appears under
// *spatially correlated* detections (a contiguous block of positive IDs —
// e.g. an intruder seen by physically adjacent, consecutively-numbered
// motes), where contiguous bins confine the positives to few bins.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"

namespace tcast::bench {
namespace {

enum class Workload { kUniform, kClustered };

double mean_for(const BenchOptions& opts, core::BinningScheme scheme,
                Workload workload, std::size_t n, std::size_t x,
                std::size_t t, std::uint64_t id) {
  MonteCarloConfig mc{.seed = opts.seed, .experiment_id = id,
                      .trials = opts.trials};
  return run_trials(mc, [scheme, workload, n, x, t](RngStream& rng) {
           std::vector<bool> positive(n, false);
           if (workload == Workload::kUniform) {
             for (const NodeId id2 : rng.sample_subset(n, x))
               positive[static_cast<std::size_t>(id2)] = true;
           } else if (x > 0) {
             const auto start = static_cast<std::size_t>(
                 rng.uniform_below(n - x + 1));
             for (std::size_t i = start; i < start + x; ++i)
               positive[i] = true;
           }
           group::ExactChannel ch(std::move(positive), rng);
           core::EngineOptions eopts;
           eopts.scheme = scheme;
           return static_cast<double>(
               core::run_two_t_bins(ch, ch.all_nodes(), t, rng, eopts)
                   .queries);
         })
      .mean();
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  struct Row {
    core::BinningScheme scheme;
    Workload workload;
    const char* label;
  };
  const Row rows[] = {
      {core::BinningScheme::kRandomEqual, Workload::kUniform,
       "random/uniform"},
      {core::BinningScheme::kContiguous, Workload::kUniform,
       "contig/uniform"},
      {core::BinningScheme::kRandomEqual, Workload::kClustered,
       "random/clustered"},
      {core::BinningScheme::kContiguous, Workload::kClustered,
       "contig/clustered"},
  };
  std::uint64_t series_id = 0;
  for (const auto& row : rows) {
    ++series_id;
    for (const std::size_t x : x_sweep(kN, kT))
      table.set(static_cast<double>(x), row.label,
                mean_for(opts, row.scheme, row.workload, kN, x, kT,
                         point_id(103, series_id, x)));
  }
  emit(opts, "Ablation: random vs contiguous binning, 2tBins (N=128, t=16)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
