// Figure 1 — "Performance of tcast in 1+ scenario".
//
// Mean number of queries vs x (positive nodes) for the 2tBins and
// Exponential Increase algorithms against the CSMA and sequential-ordering
// baselines. N = 128, t = 16, 1000 runs per point (paper Sec. IV-C).
//
// Paper shape to reproduce: tcast curves peak at x ≈ t and are cheap at
// both extremes; CSMA grows ∝ x; sequential starts near n − x and only
// becomes competitive for x ≫ t.
#include "bench/figure_common.hpp"
#include "core/csma_baseline.hpp"
#include "core/sequential_baseline.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  const auto xs = x_sweep(kN, kT);
  std::uint64_t series_id = 0;
  for (const char* algo : {"2tbins", "expinc"}) {
    ++series_id;
    // One batched sweep per series: the whole x-grid × trials in one call.
    const auto means = series_means_over_x(
        opts, algo, group::CollisionModel::kOnePlus, kN, xs, kT, 1,
        series_id);
    for (std::size_t i = 0; i < xs.size(); ++i)
      table.set(static_cast<double>(xs[i]), algo, means[i]);
  }
  for (const std::size_t x : x_sweep(kN, kT)) {
    MonteCarloConfig mc{.seed = opts.seed,
                        .experiment_id = point_id(1, 10, x),
                        .trials = opts.trials};
    table.set(static_cast<double>(x), "csma",
              run_trials(mc, [x](RngStream& rng) {
                return static_cast<double>(
                    core::run_csma_baseline(kN, x, kT, rng).outcome.queries);
              }).mean());
    mc.experiment_id = point_id(1, 11, x);
    table.set(static_cast<double>(x), "sequential",
              run_trials(mc, [x](RngStream& rng) {
                return static_cast<double>(
                    core::run_sequential_baseline(kN, x, kT, rng)
                        .outcome.queries);
              }).mean());
  }

  emit(opts, "Fig 1: tcast vs baselines, 1+ model (N=128, t=16)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
