// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary prints a banner, the parameters it used, and a
// SeriesTable holding exactly the series the paper's figure plots. Pass
// `--csv` to emit machine-readable CSV instead of the aligned table, and
// `--trials N` to override the per-point Monte-Carlo repeat count (paper
// default: 1000).
#pragma once

#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/monte_carlo.hpp"
#include "common/series.hpp"
#include "core/registry.hpp"
#include "group/exact_channel.hpp"
#include "perf/sweep_engine.hpp"

namespace tcast::bench {

struct BenchOptions {
  bool csv = false;
  std::size_t trials = 1000;
  /// True iff --trials was passed explicitly. Benches with a cheaper
  /// default than the paper's 1000 must branch on this, never on the value
  /// (an explicit `--trials 1000` is indistinguishable from the default
  /// otherwise).
  bool trials_overridden = false;
  std::uint64_t seed = 0x7ca57ca57ca57ca5ULL;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      opts.trials = static_cast<std::size_t>(std::stoul(argv[++i]));
      opts.trials_overridden = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::stoull(argv[++i]);
    }
  }
  return opts;
}

inline void emit(const BenchOptions& opts, const std::string& title,
                 const SeriesTable& table) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    print_banner(std::cout, title);
    table.print(std::cout);
  }
}

/// x sweep used by the query-vs-x figures: fine-grained near the threshold
/// (where the curves peak), coarser in the tails.
inline std::vector<std::size_t> x_sweep(std::size_t n, std::size_t t) {
  std::vector<std::size_t> xs;
  const std::size_t fine_limit = std::min(n, 3 * t);
  for (std::size_t x = 0; x <= fine_limit; x += (t >= 8 ? 2 : 1))
    xs.push_back(x);
  const std::size_t coarse = std::max<std::size_t>(1, n / 16);
  for (std::size_t x = fine_limit + coarse; x < n; x += coarse)
    xs.push_back(x);
  if (xs.empty() || xs.back() != n) xs.push_back(n);
  return xs;
}

/// Runs one whole figure series — every sweep point × opts.trials — through
/// the batched sweep engine (src/perf/sweep_engine.hpp) in a single call,
/// so per-thread channel workspaces are reused across the grid. Results are
/// bit-identical to the historical per-point run_trials() loop.
inline perf::QuerySweepResult run_series(const BenchOptions& opts,
                                         const std::string& algorithm,
                                         group::CollisionModel model,
                                         std::size_t n,
                                         std::vector<perf::SweepPoint> points) {
  if (core::find_algorithm(algorithm) == nullptr) {
    std::cerr << "unknown algorithm: " << algorithm << '\n';
    std::exit(1);
  }
  perf::QuerySweepSpec spec;
  spec.algorithm = algorithm;
  spec.n = n;
  spec.points = std::move(points);
  spec.trials = opts.trials;
  spec.seed = opts.seed;
  spec.channel.model = model;
  // spec.engine: paper accounting defaults
  return perf::run_query_sweep(spec);
}

/// The x-axis sweep of one series (fixed t, x varies): the shape of
/// Figs. 1, 2 and 5. Returns one mean per entry of `xs`.
inline std::vector<double> series_means_over_x(
    const BenchOptions& opts, const std::string& algorithm,
    group::CollisionModel model, std::size_t n,
    const std::vector<std::size_t>& xs, std::size_t t, std::uint64_t figure,
    std::uint64_t series) {
  std::vector<perf::SweepPoint> points;
  points.reserve(xs.size());
  for (const std::size_t x : xs)
    points.push_back({x, t, perf::sweep_point_id(figure, series, x)});
  const auto result = run_series(opts, algorithm, model, n, std::move(points));
  std::vector<double> means;
  means.reserve(result.queries.size());
  for (const auto& s : result.queries) means.push_back(s.mean());
  return means;
}

/// Mean query count of a registry algorithm at one (n, x, t) point on the
/// exact tier with the paper-simulation accounting (a one-point sweep).
inline double mean_queries(const BenchOptions& opts,
                           const std::string& algorithm,
                           group::CollisionModel model, std::size_t n,
                           std::size_t x, std::size_t t,
                           std::uint64_t experiment_id) {
  return run_series(opts, algorithm, model, n, {{x, t, experiment_id}})
      .queries.at(0)
      .mean();
}

/// Deterministic experiment-id for a sweep point, namespacing the RNG
/// streams per (figure, series, x).
inline std::uint64_t point_id(std::uint64_t figure, std::uint64_t series,
                              std::uint64_t x) {
  return perf::sweep_point_id(figure, series, x);
}

}  // namespace tcast::bench
