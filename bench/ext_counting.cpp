// Extension bench — counting strategies on RCD queries.
//
// When the application needs more than the threshold bit, three options sit
// on the same primitive at very different price points (all on the exact
// tier, N = 1024):
//   * exact count (adaptive binary splitting, O(x log(n/x)));
//   * approximate count (geometric sampling estimator, O(log n + r));
//   * threshold only (2tBins at t = 64), the paper's original question.
// The table reports mean queries and, for the estimator, the mean relative
// error — quantifying what exactness costs.
#include <cmath>

#include "bench/figure_common.hpp"
#include "core/aggregate.hpp"
#include "core/count_estimation.hpp"
#include "core/two_t_bins.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 1024, kT = 64;
  const std::size_t trials = opts.trials == 1000 ? 300 : opts.trials;

  SeriesTable table("x");
  for (const std::size_t x :
       {0u, 2u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    MonteCarloConfig mc{.seed = opts.seed,
                        .experiment_id = point_id(107, 1, x),
                        .trials = trials};
    const auto exact = run_multi_trials(
        mc, 1, [x](RngStream& rng, std::vector<double>& out) {
          auto ch = group::ExactChannel::with_random_positives(kN, x, rng);
          out[0] = static_cast<double>(
              core::run_exact_count(ch, ch.all_nodes(), rng).queries);
        });
    table.set(static_cast<double>(x), "exact-count", exact[0].mean());

    mc.experiment_id = point_id(107, 2, x);
    const auto approx = run_multi_trials(
        mc, 2, [x](RngStream& rng, std::vector<double>& out) {
          auto ch = group::ExactChannel::with_random_positives(kN, x, rng);
          const auto est =
              core::estimate_positive_count(ch, ch.all_nodes(), rng);
          out[0] = static_cast<double>(est.queries);
          out[1] = x == 0 ? std::abs(est.estimate)
                          : std::abs(est.estimate - static_cast<double>(x)) /
                                static_cast<double>(x);
        });
    table.set(static_cast<double>(x), "estimate", approx[0].mean());
    table.set(static_cast<double>(x), "est-rel-err", approx[1].mean());

    table.set(static_cast<double>(x), "threshold(t=64)",
              mean_queries(opts, "2tbins", group::CollisionModel::kOnePlus,
                           kN, x, kT, point_id(107, 3, x)));
  }
  emit(opts,
       "Extension: counting strategies on RCD queries (N=1024)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
