// Extension bench — the counting portfolio vs the threshold question.
//
// Three registry citizens answer "x ≥ t?" on the same primitive at very
// different price points (exact tier, 1+ model):
//   * 2tbins             — threshold only, the paper's original algorithm;
//   * count:beep-exact   — pure count-then-compare: adaptive binary
//                          splitting determines x exactly (O(x log(n/x))),
//                          then compares against t;
//   * count:nz-geom      — the hybrid: a Newport–Zheng (1±ε) estimate
//                          (O(log n + 1/ε²) queries), then an exact
//                          verification session shaped by the estimate
//                          (2tBins near the bar, ABNS-seeded far below it).
// The study sweeps x across the t boundary on an (N, t) grid and reports
// mean queries per strategy plus the estimator's mean relative error, then
// locates the crossing point: the smallest x at which the hybrid is cheaper
// than pure count-then-compare — the estimate's fixed cost amortizes once
// counting has to pay x·log(n/x).
#include <cmath>
#include <optional>

#include "bench/figure_common.hpp"
#include "core/counting.hpp"

namespace tcast::bench {
namespace {

/// x values bracketing the t boundary plus the tails.
std::vector<std::size_t> boundary_sweep(std::size_t n, std::size_t t) {
  std::vector<std::size_t> xs;
  const auto add = [&xs, n](std::size_t x) {
    if (x <= n && (xs.empty() || xs.back() != x)) xs.push_back(x);
  };
  add(0);
  add(t / 4);
  add(t / 2);
  if (t >= 2) add(t - 2);
  if (t >= 1) add(t - 1);
  add(t);
  add(t + 1);
  add(t + 2);
  add(3 * t / 2);
  add(2 * t);
  add(4 * t);
  add(8 * t);
  add(n);
  return xs;
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  // Cheaper default than the paper's 1000 (this is a study, not a figure);
  // any explicit --trials value — including 1000 — wins.
  BenchOptions run_opts = opts;
  run_opts.trials = opts.trials_overridden ? opts.trials : 300;

  struct Cell {
    std::size_t n, t;
  };
  const Cell grid[] = {{256, 16}, {1024, 64}};
  for (const auto& cell : grid) {
    SeriesTable table("x");
    std::optional<std::size_t> crossing;
    for (const std::size_t x : boundary_sweep(cell.n, cell.t)) {
      const double threshold = mean_queries(
          run_opts, "2tbins", group::CollisionModel::kOnePlus, cell.n, x,
          cell.t, point_id(107, 1 + cell.t, x));
      const double count = mean_queries(
          run_opts, "count:beep-exact", group::CollisionModel::kOnePlus,
          cell.n, x, cell.t, point_id(107, 2 + cell.t, x));
      const double hybrid = mean_queries(
          run_opts, "count:nz-geom", group::CollisionModel::kOnePlus, cell.n,
          x, cell.t, point_id(107, 3 + cell.t, x));

      MonteCarloConfig mc{.seed = run_opts.seed,
                          .experiment_id = point_id(107, 4 + cell.t, x),
                          .trials = run_opts.trials};
      const auto err = run_multi_trials(
          mc, 1, [x, &cell](RngStream& rng, std::span<double> out) {
            auto ch =
                group::ExactChannel::with_random_positives(cell.n, x, rng);
            const auto est =
                core::run_newport_zheng_count(ch, ch.all_nodes(), rng);
            out[0] = x == 0
                         ? std::abs(est.estimate)
                         : std::abs(est.estimate - static_cast<double>(x)) /
                               static_cast<double>(x);
          });

      table.set(static_cast<double>(x), "threshold(2tbins)", threshold);
      table.set(static_cast<double>(x), "count(beep-exact)", count);
      table.set(static_cast<double>(x), "hybrid(nz-geom)", hybrid);
      table.set(static_cast<double>(x), "est-rel-err", err[0].mean());
      if (!crossing && hybrid < count) crossing = x;
    }
    emit(run_opts,
         "Extension: threshold vs count vs hybrid (N=" +
             std::to_string(cell.n) + ", t=" + std::to_string(cell.t) + ")",
         table);
    if (!run_opts.csv) {
      if (crossing) {
        std::cout << "crossing point: hybrid(nz-geom) beats "
                     "count(beep-exact) from x = "
                  << *crossing << " on (t = " << cell.t << ")\n";
      } else {
        std::cout << "crossing point: none in sweep (t = " << cell.t
                  << ")\n";
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
