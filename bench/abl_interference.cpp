// Extension bench — tcast under multihop cross-traffic (the paper's stated
// future work, Sec. III-B / VII: "deploy ... to get experimental results in
// a multihop network environment with interfering traffic").
//
// Sweeps the foreign-traffic duty cycle and reports, for backcast-based and
// pollcast-based tcast (2tBins, N = 12, t = 4):
//   * per-query false-positive and false-negative rates;
//   * session-level decision accuracy at x = 0 (where pollcast's
//     interference-induced false positives directly flip the answer) and at
//     x = 8 (where backcast's collision-induced false negatives bite).
//
// Expected shape (Sec. III-B): backcast never false-positives at any duty;
// its false negatives grow with duty. Pollcast's false-positive rate grows
// quickly with duty, destroying the x = 0 decision.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"
#include "group/packet_channel.hpp"

namespace tcast::bench {
namespace {

struct Point {
  double query_fp = 0.0;
  double query_fn = 0.0;
  double accuracy_x0 = 0.0;
  double accuracy_x8 = 0.0;
};

Point measure(const BenchOptions& opts, group::RcdPrimitive primitive,
              double duty) {
  constexpr std::size_t kNodes = 12, kT = 4;
  const std::size_t sessions = opts.trials == 1000 ? 60 : opts.trials;
  Point point;

  // Per-query rates from dedicated whole-set probes.
  for (const std::size_t x : {std::size_t{0}, std::size_t{3}}) {
    group::PacketChannel::Config cfg;
    cfg.primitive = primitive;
    cfg.channel.hack = radio::HackReceptionModel::ideal();
    cfg.interference_duty = duty;
    cfg.seed = opts.seed + x;
    std::vector<bool> truth(kNodes, false);
    for (std::size_t i = 0; i < x; ++i) truth[i] = true;
    group::PacketChannel ch(truth, cfg);
    int errors = 0;
    const int probes = 400;
    for (int i = 0; i < probes; ++i) {
      const bool nonempty = ch.query_set(ch.all_nodes()).nonempty();
      if (nonempty != (x > 0)) ++errors;
    }
    (x == 0 ? point.query_fp : point.query_fn) =
        static_cast<double>(errors) / probes;
  }

  // Session-level accuracy.
  for (const std::size_t x : {std::size_t{0}, std::size_t{8}}) {
    std::size_t correct = 0;
    for (std::size_t s = 0; s < sessions; ++s) {
      RngStream workload(opts.seed, 5000 + s);
      std::vector<bool> truth(kNodes, false);
      for (const NodeId id : workload.sample_subset(kNodes, x))
        truth[static_cast<std::size_t>(id)] = true;
      group::PacketChannel::Config cfg;
      cfg.primitive = primitive;
      cfg.channel.hack = radio::HackReceptionModel::ideal();
      cfg.interference_duty = duty;
      cfg.seed = opts.seed + 77 + s;
      group::PacketChannel ch(truth, cfg);
      core::EngineOptions eopts;
      eopts.ordering = core::BinOrdering::kInOrder;
      const auto out =
          core::run_two_t_bins(ch, ch.all_nodes(), kT, workload, eopts);
      if (out.decision == (x >= kT)) ++correct;
    }
    (x == 0 ? point.accuracy_x0 : point.accuracy_x8) =
        static_cast<double>(correct) / static_cast<double>(sessions);
  }
  return point;
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  SeriesTable table("duty%");
  for (const double duty : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    const auto back = measure(opts, group::RcdPrimitive::kBackcast, duty);
    const auto poll = measure(opts, group::RcdPrimitive::kPollcast, duty);
    const double key = duty * 100.0;
    table.set(key, "back-FP", back.query_fp);
    table.set(key, "back-FN", back.query_fn);
    table.set(key, "poll-FP", poll.query_fp);
    table.set(key, "poll-FN", poll.query_fn);
    table.set(key, "back-acc@x=0", back.accuracy_x0);
    table.set(key, "poll-acc@x=0", poll.accuracy_x0);
    table.set(key, "back-acc@x=8", back.accuracy_x8);
    table.set(key, "poll-acc@x=8", poll.accuracy_x8);
  }
  emit(opts,
       "Extension: tcast under multihop cross-traffic (Sec. III-B), "
       "N=12, t=4",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
