// Figure 8 — the Δ gap illustration (Sec. VI-A).
//
// "Δ increases as the two sub-distributions of the bimodal x distribution
// move away from each other." For each half-separation d we build the
// symmetric bimodal model at n = 128 (σ = 4), derive the decision
// boundaries t_l/t_r, the gap-optimal sampling bin b*, the expected
// non-empty counts m1/m2 for r repeats, and Δ = |m2 − m1| with the
// tolerable error ε < Δ/2.
#include "analysis/bimodal.hpp"
#include "analysis/chernoff.hpp"
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kRepeats = 12;
  constexpr double kSigma = 4.0;

  SeriesTable table("d");
  for (const double d : {4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 40.0, 48.0, 56.0}) {
    const auto dist = analysis::BimodalDistribution::symmetric(kN, d, kSigma);
    const auto [t_l, t_r] = dist.decision_boundaries();
    const auto plan = analysis::make_sampling_plan(t_l, t_r);
    table.set(d, "t_l", t_l);
    table.set(d, "t_r", t_r);
    table.set(d, "b*", plan.b);
    table.set(d, "m1", plan.m1(kRepeats));
    table.set(d, "m2", plan.m2(kRepeats));
    table.set(d, "delta", plan.m2(kRepeats) - plan.m1(kRepeats));
    table.set(d, "eps_max", (plan.m2(kRepeats) - plan.m1(kRepeats)) / 2.0);
  }

  emit(opts, "Fig 8: decision gap Delta vs mode separation (n=128, r=12)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
