// Ablation — the empty-bins-last accounting (DESIGN.md decision #2).
//
// The paper's simulations order bins so non-empty ones come first and early
// termination skips the rest; a real initiator queries in natural order.
// This bench quantifies how much of the reported win is accounting: the
// shapes match, the idealised curve simply sits lower for x ≥ t.
#include "bench/figure_common.hpp"
#include "core/two_t_bins.hpp"

namespace tcast::bench {
namespace {

double mean_with_ordering(const BenchOptions& opts, core::BinOrdering order,
                          std::size_t n, std::size_t x, std::size_t t,
                          std::uint64_t id) {
  MonteCarloConfig mc{.seed = opts.seed, .experiment_id = id,
                      .trials = opts.trials};
  return run_trials(mc, [order, n, x, t](RngStream& rng) {
           auto ch = group::ExactChannel::with_random_positives(n, x, rng);
           core::EngineOptions eopts;
           eopts.ordering = order;
           return static_cast<double>(
               core::run_two_t_bins(ch, ch.all_nodes(), t, rng, eopts)
                   .queries);
         })
      .mean();
}

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kT = 16;

  SeriesTable table("x");
  for (const std::size_t x : x_sweep(kN, kT)) {
    table.set(static_cast<double>(x), "nonempty-first (paper)",
              mean_with_ordering(opts, core::BinOrdering::kNonEmptyFirst, kN,
                                 x, kT, point_id(104, 1, x)));
    table.set(static_cast<double>(x), "in-order (realistic)",
              mean_with_ordering(opts, core::BinOrdering::kInOrder, kN, x,
                                 kT, point_id(104, 2, x)));
  }
  emit(opts, "Ablation: bin-ordering accounting, 2tBins (N=128, t=16)",
       table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
