// Figure 7 — "Probabilistic ABNS vs. CSMA" (N = 32, t = 8, the paper's
// stated parameters).
//
// Paper shape: CSMA is competitive (slightly better) for x < t; for x > t
// the probabilistic ABNS wins by a growing margin because CSMA must carry
// every reply through contention while tcast needs ≈ t queries.
#include "bench/figure_common.hpp"
#include "core/csma_baseline.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 32, kT = 8;

  SeriesTable table("x");
  for (std::size_t x = 0; x <= kN; ++x) {
    table.set(static_cast<double>(x), "prob-abns",
              mean_queries(opts, "prob-abns", group::CollisionModel::kOnePlus,
                           kN, x, kT, point_id(7, 1, x)));
    MonteCarloConfig mc{.seed = opts.seed,
                        .experiment_id = point_id(7, 2, x),
                        .trials = opts.trials};
    table.set(static_cast<double>(x), "csma",
              run_trials(mc, [x](RngStream& rng) {
                return static_cast<double>(
                    core::run_csma_baseline(kN, x, kT, rng).outcome.queries);
              }).mean());
  }

  emit(opts, "Fig 7: probabilistic ABNS vs CSMA (N=32, t=8)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
