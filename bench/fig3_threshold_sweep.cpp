// Figure 3 — "Performance of tcast as threshold changes".
//
// x is pinned to 4 positive nodes and the threshold t sweeps the axis; the
// paper's shape: cost peaks around t ≈ x, declines toward both t → 0 and
// t → n, and 2+ stays at or below 1+ for every t.
#include "bench/figure_common.hpp"

namespace tcast::bench {
namespace {

int run(int argc, char** argv) {
  const auto opts = parse_options(argc, argv);
  constexpr std::size_t kN = 128, kX = 4;
  const std::size_t thresholds[] = {1,  2,  3,  4,  5,  6,  8,  10, 12,
                                    16, 20, 24, 32, 48, 64, 96, 128};

  SeriesTable table("t");
  struct Series {
    const char* algo;
    group::CollisionModel model;
    const char* label;
  };
  const Series series[] = {
      {"2tbins", group::CollisionModel::kOnePlus, "2tbins-1+"},
      {"2tbins", group::CollisionModel::kTwoPlus, "2tbins-2+"},
      {"expinc", group::CollisionModel::kOnePlus, "expinc-1+"},
      {"expinc", group::CollisionModel::kTwoPlus, "expinc-2+"},
  };
  std::uint64_t series_id = 0;
  for (const auto& s : series) {
    ++series_id;
    // Batched t-sweep: x is pinned, the threshold walks the grid.
    std::vector<perf::SweepPoint> points;
    for (const std::size_t t : thresholds)
      points.push_back({kX, t, point_id(3, series_id, t)});
    const auto result =
        run_series(opts, s.algo, s.model, kN, std::move(points));
    for (std::size_t i = 0; i < std::size(thresholds); ++i)
      table.set(static_cast<double>(thresholds[i]), s.label,
                result.queries[i].mean());
  }

  emit(opts, "Fig 3: cost vs threshold t (N=128, x=4)", table);
  return 0;
}

}  // namespace
}  // namespace tcast::bench

int main(int argc, char** argv) { return tcast::bench::run(argc, argv); }
