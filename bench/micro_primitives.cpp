// google-benchmark microbenches: per-query/substrate throughput numbers for
// regression tracking (not figure reproduction).
#include <benchmark/benchmark.h>

#include "core/two_t_bins.hpp"
#include "group/binning.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"
#include "sim/simulator.hpp"

namespace tcast {
namespace {

void BM_Xoshiro256pp(benchmark::State& state) {
  RngStream rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.bits());
}
BENCHMARK(BM_Xoshiro256pp);

void BM_RandomEqualBinning(benchmark::State& state) {
  RngStream rng(1);
  std::vector<NodeId> nodes(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < nodes.size(); ++i)
    nodes[i] = static_cast<NodeId>(i);
  for (auto _ : state) {
    auto a = group::BinAssignment::random_equal(nodes, 32, rng);
    benchmark::DoNotOptimize(a.bin_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes.size()));
}
BENCHMARK(BM_RandomEqualBinning)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ExactChannelQuery(benchmark::State& state) {
  RngStream rng(1);
  auto ch = group::ExactChannel::with_random_positives(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) / 8, rng);
  const auto nodes = ch.all_nodes();
  for (auto _ : state) benchmark::DoNotOptimize(ch.query_set(nodes));
}
BENCHMARK(BM_ExactChannelQuery)->Arg(128)->Arg(1024);

void BM_TwoTBinsSessionExactTier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    RngStream rng(1, salt++);
    auto ch = group::ExactChannel::with_random_positives(n, n / 8, rng);
    benchmark::DoNotOptimize(
        core::run_two_t_bins(ch, ch.all_nodes(), 16, rng));
  }
}
BENCHMARK(BM_TwoTBinsSessionExactTier)->Arg(128)->Arg(1024)->Arg(4096);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(i, [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_BackcastQueryPacketTier(benchmark::State& state) {
  std::vector<bool> positive(12, false);
  positive[3] = positive[7] = true;
  group::PacketChannel::Config cfg;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  group::PacketChannel ch(positive, cfg);
  const auto nodes = ch.all_nodes();
  for (auto _ : state) benchmark::DoNotOptimize(ch.query_set(nodes));
}
BENCHMARK(BM_BackcastQueryPacketTier);

}  // namespace
}  // namespace tcast

BENCHMARK_MAIN();
