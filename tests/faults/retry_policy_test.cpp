// RetryPolicy and the engine's loss-robustness machinery: spec parsing,
// bit-exactness on lossless channels (acceptance criterion: RetryPolicy is
// free when the channel is clean), the 2+ soundness gate, and the
// retries/faults_seen accounting surfaced in ThresholdOutcome.
#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"
#include "faults/faulty_channel.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

TEST(RetryPolicy, ParsesSpecs) {
  auto p = RetryPolicy::parse("none");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, RetryPolicy::Kind::kNone);

  p = RetryPolicy::parse("fixed:3");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, RetryPolicy::Kind::kFixed);
  EXPECT_EQ(p->retries, 3u);

  p = RetryPolicy::parse("adaptive:0.001");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, RetryPolicy::Kind::kAdaptive);
  EXPECT_DOUBLE_EQ(p->target_residual, 0.001);
  EXPECT_EQ(p->max_retries, 8u);

  p = RetryPolicy::parse("adaptive:0.01:4");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->max_retries, 4u);
}

TEST(RetryPolicy, SpecRoundTrips) {
  for (const auto& policy :
       {RetryPolicy::none(), RetryPolicy::fixed(0), RetryPolicy::fixed(5),
        RetryPolicy::adaptive(1e-3), RetryPolicy::adaptive(0.05, 3)}) {
    const auto parsed = RetryPolicy::parse(policy.spec());
    ASSERT_TRUE(parsed.has_value()) << policy.spec();
    EXPECT_EQ(*parsed, policy) << policy.spec();
  }
}

TEST(RetryPolicy, RejectsMalformedSpecs) {
  const char* bad[] = {"",         "fixed",        "fixed:",   "fixed:-1",
                       "fixed:1.5", "adaptive:",   "adaptive:0",
                       "adaptive:2", "adaptive:0.1:0", "bogus"};
  for (const char* text : bad)
    EXPECT_FALSE(RetryPolicy::parse(text).has_value()) << text;
}

// Acceptance criterion: on lossless channels every retry policy is
// bit-exact with the historical engine — silence is proof there and no
// policy may spend a single extra query.
TEST(RetryPolicy, LosslessChannelsAreBitExactUnderAnyPolicy) {
  const RetryPolicy policies[] = {RetryPolicy::none(), RetryPolicy::fixed(3),
                                  RetryPolicy::adaptive(1e-4)};
  for (const auto& spec : algorithm_registry()) {
    for (const auto model : {group::CollisionModel::kOnePlus,
                             group::CollisionModel::kTwoPlus}) {
      ThresholdOutcome baseline;
      bool have_baseline = false;
      for (const auto& policy : policies) {
        RngStream channel_rng(17, 1);
        RngStream algo_rng(17, 2);
        group::ExactChannel::Config ecfg;
        ecfg.model = model;
        auto exact = group::ExactChannel::with_random_positives(
            30, 11, channel_rng, ecfg);
        EngineOptions opts;
        opts.ordering = BinOrdering::kInOrder;
        opts.retry = policy;
        const auto out =
            spec.run(exact, exact.all_nodes(), 9, algo_rng, opts);
        if (!have_baseline) {
          baseline = out;
          have_baseline = true;
          continue;
        }
        EXPECT_EQ(out.decision, baseline.decision)
            << spec.name << " policy " << policy.spec();
        EXPECT_EQ(out.queries, baseline.queries)
            << spec.name << " policy " << policy.spec();
        EXPECT_EQ(out.rounds, baseline.rounds)
            << spec.name << " policy " << policy.spec();
      }
      if (have_baseline) {
        EXPECT_EQ(baseline.retries, 0u) << spec.name;
        EXPECT_EQ(baseline.faults_seen, 0u) << spec.name;
      }
    }
  }
}

// A 2+ channel that always reports undecoded activity; `lossy()` is the
// only thing that differs between the two instances, so the query counts
// isolate the soundness gate.
class AlwaysActivityChannel final : public group::QueryChannel {
 public:
  explicit AlwaysActivityChannel(bool lossy)
      : QueryChannel(group::CollisionModel::kTwoPlus), lossy_(lossy) {}

  bool lossy() const override { return lossy_; }

 protected:
  group::BinQueryResult do_query_set(std::span<const NodeId>) override {
    return group::BinQueryResult::activity();
  }

 private:
  bool lossy_;
};

TEST(RetryPolicy, SoundnessGateDisablesActivityCountsTwoOnLossyChannels) {
  const auto* spec = find_algorithm("2tbins");
  ASSERT_NE(spec, nullptr);
  const std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  EngineOptions opts;
  opts.ordering = BinOrdering::kInOrder;
  ASSERT_TRUE(opts.two_plus_activity_counts_two);

  // Lossless: the first activity bin certifies ≥2 ⇒ t = 2 in one query.
  AlwaysActivityChannel clean(/*lossy=*/false);
  RngStream rng_a(3, 0);
  const auto fast = spec->run(clean, nodes, 2, rng_a, opts);
  EXPECT_TRUE(fast.decision);
  EXPECT_EQ(fast.queries, 1u);

  // Lossy: a lone undecoded reply may be hiding behind the activity, so
  // each bin only certifies ≥1 — two bins are needed for the same answer.
  AlwaysActivityChannel lossy(/*lossy=*/true);
  RngStream rng_b(3, 0);
  const auto careful = spec->run(lossy, nodes, 2, rng_b, opts);
  EXPECT_TRUE(careful.decision);
  EXPECT_EQ(careful.queries, 2u);
}

TEST(RetryPolicy, RetriesAndFaultsSeenAreSurfaced) {
  // All 12 nodes positive, t = 12: every silent bin is a lie, and with a
  // 30% i.i.d. loss plenty of them occur; the fixed policy contradicts
  // them and the outcome must account for every extra query.
  RngStream channel_rng(23, 1);
  RngStream algo_rng(23, 2);
  std::vector<bool> positive(12, true);
  group::ExactChannel exact(positive, channel_rng);
  const auto nodes = exact.all_nodes();
  faults::FaultyChannel faulty(exact, nodes,
                               *faults::FaultPlan::parse("iid=0.3,seed=23"));

  EngineOptions opts;
  opts.ordering = BinOrdering::kInOrder;
  opts.retry = RetryPolicy::fixed(3);
  const auto* spec = find_algorithm("2tbins");
  const auto out = spec->run(faulty, nodes, 12, algo_rng, opts);

  EXPECT_GT(out.retries, 0u);
  EXPECT_GT(out.faults_seen, 0u);
  EXPECT_GE(out.retries, out.faults_seen);
  EXPECT_EQ(out.queries, faulty.queries_used());
  // Every engine-detected fault is one the channel actually injected.
  EXPECT_LE(out.faults_seen,
            faulty.log().count(faults::FaultEvent::Kind::kFalseEmpty));
}

TEST(RetryPolicy, AdaptiveBudgetGrowsWithObservedLoss) {
  // Same instance, heavier loss ⇒ the adaptive estimator must spend at
  // least as many (usually more) retries to hit the same residual target.
  const auto run_with_loss = [](double loss) {
    RngStream channel_rng(29, 1);
    RngStream algo_rng(29, 2);
    std::vector<bool> positive(16, true);
    group::ExactChannel exact(positive, channel_rng);
    const auto nodes = exact.all_nodes();
    auto plan = faults::FaultPlan{};
    plan.process = faults::FaultPlan::LossProcess::kIid;
    plan.loss = loss;
    plan.seed = 29;
    faults::FaultyChannel faulty(exact, nodes, plan);
    EngineOptions opts;
    opts.ordering = BinOrdering::kInOrder;
    opts.retry = RetryPolicy::adaptive(1e-3);
    const auto* spec = find_algorithm("2tbins");
    const auto out = spec->run(faulty, nodes, 16, algo_rng, opts);
    return out;
  };
  const auto light = run_with_loss(0.05);
  const auto heavy = run_with_loss(0.4);
  EXPECT_TRUE(light.decision);
  EXPECT_GT(heavy.retries, light.retries);
}

}  // namespace
}  // namespace tcast::core
