// Packet-tier loss sweep: every registry algorithm (oracle baselines
// excluded — they need ground truth no real initiator has) driven over the
// PacketChannel at clean_loss ∈ {0, 0.02, 0.1}, both collision models.
// Asserts termination and one-sided correctness (a lossy packet tier may
// answer a false "no", never a false "yes"); the achieved wrong-answer
// rates are recorded as test properties for the envelope reports.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "group/packet_channel.hpp"

namespace tcast::group {
namespace {

std::vector<std::string> sweep_algorithms() {
  std::vector<std::string> names;
  for (const auto& spec : core::algorithm_registry())
    if (!spec.needs_oracle) names.push_back(spec.name);
  return names;
}

std::vector<bool> random_truth(std::size_t n, std::size_t x,
                               std::uint64_t seed) {
  RngStream rng(seed, 0);
  std::vector<bool> positive(n, false);
  for (const NodeId id : rng.sample_subset(n, x))
    positive[static_cast<std::size_t>(id)] = true;
  return positive;
}

class PacketLossSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(PacketLossSweep, TerminatesAndStaysOneSided) {
  const auto& [name, loss] = GetParam();
  const auto* spec = core::find_algorithm(name);
  ASSERT_NE(spec, nullptr);

  constexpr std::size_t kN = 10;
  // Two instances: one truly above threshold (x ≥ t, where loss can cost a
  // false "no") and one below (x < t, where any "yes" is manufactured).
  const std::tuple<std::size_t, std::size_t> instances[] = {{6, 4}, {2, 5}};
  std::size_t false_no = 0, runs_above = 0;

  for (const auto model :
       {CollisionModel::kOnePlus, CollisionModel::kTwoPlus}) {
    for (const auto& [x, t] : instances) {
      for (std::uint64_t trial = 0; trial < 2; ++trial) {
        PacketChannel::Config cfg;
        cfg.model = model;
        cfg.channel.hack = radio::HackReceptionModel::ideal();
        cfg.channel.clean_loss = loss;
        cfg.seed = 0x5eedULL + trial;
        PacketChannel ch(random_truth(kN, x, 77 + trial), cfg);

        RngStream algo_rng(91 + trial, 2);
        core::EngineOptions opts;
        opts.ordering = core::BinOrdering::kInOrder;
        if (loss > 0.0) opts.retry = core::RetryPolicy::fixed(2);

        const auto out = spec->run(ch, ch.all_nodes(), t, algo_rng, opts);
        EXPECT_EQ(out.queries, ch.queries_used());

        const bool truth = x >= t;
        if (!truth) {
          // One-sided correctness: loss cannot manufacture positives, and
          // the soundness gate keeps the 2+ inference honest.
          EXPECT_FALSE(out.decision)
              << name << " model=" << to_string(model) << " loss=" << loss
              << " trial=" << trial;
        } else {
          ++runs_above;
          if (!out.decision) ++false_no;
          if (loss == 0.0) {
            EXPECT_TRUE(out.decision)
                << name << " model=" << to_string(model) << " trial="
                << trial;
          }
        }
      }
    }
  }

  ::testing::Test::RecordProperty("runs_above_threshold",
                                  static_cast<int>(runs_above));
  ::testing::Test::RecordProperty("false_no", static_cast<int>(false_no));
}

INSTANTIATE_TEST_SUITE_P(
    RegistryTimesLoss, PacketLossSweep,
    ::testing::Combine(::testing::ValuesIn(sweep_algorithms()),
                       ::testing::Values(0.0, 0.02, 0.1)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>& p) {
      std::string name = std::get<0>(p.param);
      for (char& c : name)
        if (c == ':' || c == '-') c = '_';
      const double loss = std::get<1>(p.param);
      return name + "_loss" +
             std::to_string(static_cast<int>(loss * 100 + 0.5));
    });

TEST(PacketLossSweep, BackoffRepollsFireUnderLossAndAreCounted) {
  // The packet-tier guard: a silent poll is re-issued after an exponential
  // backoff, each re-poll occupying a slot and counted as a query.
  PacketChannel::Config cfg;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  cfg.channel.clean_loss = 0.3;
  cfg.seed = 11;
  cfg.poll_attempts = 3;
  PacketChannel ch(random_truth(8, 8, 5), cfg);
  EXPECT_TRUE(ch.lossy());

  // Singleton bins: a lone reply is exactly what clean_loss drops. Every
  // genuine silence here is a loss, and at 30% over 24 polls several occur,
  // each burning 1-2 re-polls before (usually) getting through.
  std::size_t nonempty = 0;
  for (int i = 0; i < 24; ++i) {
    const NodeId id = static_cast<NodeId>(i % 8);
    if (ch.query_set({&id, 1}).nonempty()) ++nonempty;
  }
  EXPECT_GT(ch.repolls(), 0u);
  EXPECT_EQ(ch.queries_used(), 24u + ch.repolls());
  // The re-polls recover most of the losses (0.3³ ≈ 3% residual per poll).
  EXPECT_GE(nonempty, 20u);
}

TEST(PacketLossSweep, CleanPacketChannelDoesNotRepoll) {
  PacketChannel::Config cfg;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  cfg.poll_attempts = 3;
  PacketChannel ch(random_truth(8, 4, 5), cfg);
  EXPECT_FALSE(ch.lossy());

  // Truly empty bins stay silent through every attempt — but on a clean
  // channel the re-poll loop must not trigger at all… except it cannot
  // distinguish emptiness from loss, so it does re-poll empty bins. What
  // must hold is the accounting: queries_used covers every re-poll.
  std::vector<NodeId> none;
  for (NodeId id = 0; id < 8; ++id)
    if (!ch.query_set({&id, 1}).nonempty()) none.push_back(id);
  EXPECT_EQ(ch.queries_used(), 8u + ch.repolls());
  EXPECT_FALSE(none.empty());
}

}  // namespace
}  // namespace tcast::group
