// FaultyChannel: per-kind injection mechanics, crash/reboot bookkeeping,
// the Gilbert–Elliott burstiness it was built for, and the replay
// guarantee (same plan + same run ⇒ identical FaultLog and outcome).
#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"
#include "faults/faulty_channel.hpp"
#include "faults/trace_channel.hpp"
#include "group/exact_channel.hpp"

namespace tcast::faults {
namespace {

group::ExactChannel make_exact(std::vector<bool> positive, RngStream& rng,
                               group::CollisionModel model =
                                   group::CollisionModel::kOnePlus) {
  group::ExactChannel::Config cfg;
  cfg.model = model;
  return group::ExactChannel(std::move(positive), rng, cfg);
}

TEST(FaultyChannel, CleanPlanIsTransparent) {
  RngStream rng(1, 0);
  auto exact = make_exact({true, false, true, false}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, FaultPlan{});
  EXPECT_FALSE(faulty.lossy());
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(faulty.query_set(nodes).nonempty());
  EXPECT_TRUE(faulty.log().empty());
  EXPECT_EQ(faulty.queries_used(), 8u);
}

TEST(FaultyChannel, CertainLossReadsNonEmptyBinsAsSilence) {
  RngStream rng(1, 0);
  auto exact = make_exact({true, true, true, true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("iid=1"));
  EXPECT_TRUE(faulty.lossy());
  const auto r = faulty.query_set(nodes);
  EXPECT_EQ(r.kind, group::BinQueryResult::Kind::kEmpty);
  ASSERT_EQ(faulty.log().size(), 1u);
  EXPECT_EQ(faulty.log().events().front().kind,
            FaultEvent::Kind::kFalseEmpty);
  EXPECT_EQ(faulty.log().events().front().at_query, 0u);
}

TEST(FaultyChannel, LossNeverManufacturesActivity) {
  RngStream rng(1, 0);
  auto exact = make_exact({false, false, false}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("iid=1"));
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(faulty.query_set(nodes).kind,
              group::BinQueryResult::Kind::kEmpty);
  // Loss only fires on non-empty results; truly-empty bins log nothing.
  EXPECT_TRUE(faulty.log().empty());
}

TEST(FaultyChannel, DowngradeTurnsCaptureIntoActivity) {
  RngStream rng(1, 0);
  auto exact = make_exact({false, false, true, false}, rng,
                          group::CollisionModel::kTwoPlus);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("downgrade=1"));
  const auto r = faulty.query_set(nodes);
  // The lone reply would have captured node 2; the downgrade erases the
  // decode but not the energy.
  EXPECT_EQ(r.kind, group::BinQueryResult::Kind::kActivity);
  ASSERT_EQ(faulty.log().size(), 1u);
  EXPECT_EQ(faulty.log().events().front().kind,
            FaultEvent::Kind::kCaptureDowngrade);
  EXPECT_EQ(faulty.log().events().front().node, NodeId{2});
}

TEST(FaultyChannel, SpuriousActivityTurnsSilenceIntoActivity) {
  RngStream rng(1, 0);
  auto exact = make_exact({false, false}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("spurious=1"));
  const auto r = faulty.query_set(nodes);
  EXPECT_EQ(r.kind, group::BinQueryResult::Kind::kActivity);
  EXPECT_EQ(faulty.log().count(FaultEvent::Kind::kSpuriousActivity), 1u);
}

TEST(FaultyChannel, CrashSilencesTheVictim) {
  RngStream rng(1, 0);
  auto exact = make_exact({true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("crash=1"));
  // The only node is positive, but the crash fires before the query
  // resolves: a crashed mote is silent whatever its sensor holds.
  EXPECT_EQ(faulty.query_set(nodes).kind,
            group::BinQueryResult::Kind::kEmpty);
  EXPECT_TRUE(faulty.is_crashed(0));
  EXPECT_EQ(faulty.crashed_count(), 1u);
  EXPECT_EQ(faulty.log().count(FaultEvent::Kind::kCrash), 1u);
}

TEST(FaultyChannel, RebootScheduleFiresAndIsLogged) {
  RngStream rng(1, 0);
  auto exact = make_exact({true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("crash=1,reboot=2"));
  faulty.query_set(nodes);  // q0: crash, reboot due at q2
  faulty.query_set(nodes);  // q1: still down
  EXPECT_TRUE(faulty.is_crashed(0));
  faulty.query_set(nodes);  // q2: reboot fires (then crash=1 re-crashes)
  EXPECT_EQ(faulty.log().count(FaultEvent::Kind::kReboot), 1u);
  EXPECT_EQ(faulty.log().count(FaultEvent::Kind::kCrash), 2u);
}

TEST(FaultyChannel, GilbertElliottLossIsBursty) {
  // Empirical check of the two quantities the envelope bound uses: the
  // long-run loss frequency must match marginal_loss(), and the frequency
  // of loss immediately after a loss must match burst_loss() (with
  // loss_good = 0, a loss proves the chain was in the bad state).
  const auto plan = *FaultPlan::parse("ge=0.02:0.25:0:0.7,seed=11");
  RngStream rng(1, 0);
  auto exact = make_exact({true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, plan);

  constexpr int kQueries = 40000;
  int losses = 0, pairs = 0, consecutive = 0;
  bool prev_lost = false;
  for (int i = 0; i < kQueries; ++i) {
    const bool lost = !faulty.query_set(nodes).nonempty();
    if (lost) ++losses;
    if (prev_lost) {
      ++pairs;
      if (lost) ++consecutive;
    }
    prev_lost = lost;
  }
  const double marginal = static_cast<double>(losses) / kQueries;
  const double after_loss = static_cast<double>(consecutive) / pairs;
  EXPECT_NEAR(marginal, plan.marginal_loss(), 0.01);
  EXPECT_NEAR(after_loss, plan.burst_loss(), 0.05);
  EXPECT_GT(after_loss, 4.0 * marginal);  // the burstiness itself
}

core::ThresholdOutcome run_with_plan(const FaultPlan& plan, FaultLog* log) {
  RngStream pos_rng(5, 0);
  std::vector<bool> positive(24, false);
  for (const NodeId id : pos_rng.sample_subset(24, 8))
    positive[static_cast<std::size_t>(id)] = true;
  RngStream channel_rng(5, 1);
  RngStream algo_rng(5, 2);
  group::ExactChannel::Config ecfg;
  ecfg.model = group::CollisionModel::kTwoPlus;
  group::ExactChannel exact(positive, channel_rng, ecfg);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, plan);
  core::EngineOptions opts;
  opts.ordering = core::BinOrdering::kInOrder;
  const auto* spec = core::find_algorithm("2tbins");
  const auto out = spec->run(faulty, nodes, 8, algo_rng, opts);
  if (log) *log = faulty.log();
  return out;
}

TEST(FaultyChannel, SamePlanReplaysIdentically) {
  const auto plan =
      *FaultPlan::parse("ge=0.05:0.2:0:0.8,downgrade=0.2,crash=0.01,seed=21");
  FaultLog first_log, second_log;
  const auto first = run_with_plan(plan, &first_log);
  const auto second = run_with_plan(plan, &second_log);
  EXPECT_EQ(first_log, second_log);
  EXPECT_FALSE(first_log.empty());  // the plan must actually have fired
  EXPECT_EQ(first.decision, second.decision);
  EXPECT_EQ(first.queries, second.queries);
  EXPECT_EQ(first.rounds, second.rounds);
}

TEST(FaultyChannel, DifferentSeedsDrawDifferentFaults) {
  auto plan =
      *FaultPlan::parse("ge=0.05:0.2:0:0.8,downgrade=0.2,crash=0.01,seed=21");
  FaultLog a, b;
  run_with_plan(plan, &a);
  plan.seed = 22;
  run_with_plan(plan, &b);
  EXPECT_NE(a, b);
}

TEST(FaultyChannel, RebootFiresExactlyAtRebootAfter) {
  // The reboot must land exactly `reboot_after` queries past the crash —
  // not one early (reboot_due_ <= at is a ==, never a <, for a node that
  // crashed at query c with due c + reboot_after).
  RngStream rng(1, 0);
  auto exact = make_exact({true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("crash=1,reboot=3"));
  faulty.query_set(nodes);  // q0: crash, reboot due at q3
  faulty.query_set(nodes);  // q1
  faulty.query_set(nodes);  // q2
  EXPECT_EQ(faulty.log().count(FaultEvent::Kind::kReboot), 0u);
  EXPECT_TRUE(faulty.is_crashed(0));
  faulty.query_set(nodes);  // q3: reboot fires
  ASSERT_EQ(faulty.log().count(FaultEvent::Kind::kReboot), 1u);
  for (const auto& e : faulty.log().events()) {
    if (e.kind != FaultEvent::Kind::kReboot) continue;
    EXPECT_EQ(e.at_query, 3u);  // crash at q0 + reboot_after 3
    EXPECT_EQ(e.node, NodeId{0});
  }
}

TEST(TraceChannel, CrashOfJustCapturedNodeSilencesIt) {
  // Boundary: the node captured at query q crashes at query q+1. The
  // capture already confirmed it; the crash must only silence it from
  // later queries, not resurrect or double-count it.
  RngStream rng(1, 0);
  auto exact = make_exact({false, false, true, false}, rng,
                          group::CollisionModel::kTwoPlus);
  const auto nodes = exact.all_nodes();
  const auto trace = *FaultTrace::parse("lossy=1,1:cr:2");
  TraceChannel traced(exact, trace);
  const auto first = traced.query_set(nodes);  // q0: lone positive captured
  ASSERT_EQ(first.kind, group::BinQueryResult::Kind::kCaptured);
  EXPECT_EQ(first.captured, NodeId{2});
  const auto second = traced.query_set(nodes);  // q1: node 2 crashes
  EXPECT_EQ(second.kind, group::BinQueryResult::Kind::kEmpty);
  EXPECT_TRUE(traced.is_crashed(2));
  EXPECT_EQ(traced.crashed_count(), 1u);
}

TEST(FaultyChannel, CrashWithOneCandidateRemainingDecidesFalse) {
  // The confirmed + |candidates| < t termination edge: the last candidate
  // crashes, its bin reads silent, the engine disposes it and must answer
  // false with zero candidates left — not loop or claim a positive.
  RngStream channel_rng(1, 1);
  RngStream algo_rng(1, 2);
  auto exact = make_exact({true}, channel_rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("crash=1"));
  core::EngineOptions opts;
  opts.ordering = core::BinOrdering::kInOrder;
  const auto* spec = core::find_algorithm("2tbins");
  const auto out = spec->run(faulty, nodes, 1, algo_rng, opts);
  EXPECT_FALSE(out.decision);
  EXPECT_EQ(out.remaining_candidates, 0u);
  EXPECT_EQ(out.confirmed_positives, 0u);
}

TEST(FaultLog, SessionIndexRendersWhenSet) {
  RngStream rng(1, 0);
  auto exact = make_exact({true, true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("iid=1"));
  faulty.set_session(7);
  faulty.query_set(nodes);
  const auto text = faulty.log().to_string();
  EXPECT_NE(text.find("s=7 q=0 false-empty"), std::string::npos) << text;
}

TEST(FaultLog, EqualityIgnoresSessionTag) {
  FaultLog a, b;
  a.record(FaultEvent::Kind::kCrash, 3, NodeId{1});
  b.record(FaultEvent::Kind::kCrash, 3, NodeId{1});
  b.set_session(12);
  EXPECT_EQ(a, b);  // same schedule from different trials compares equal
}

TEST(FaultyChannel, LogRendersForBlame) {
  RngStream rng(1, 0);
  auto exact = make_exact({true, true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("iid=1"));
  faulty.query_set(nodes);
  const auto text = faulty.log().to_string();
  EXPECT_NE(text.find("false-empty"), std::string::npos) << text;
  EXPECT_NE(text.find("q=0"), std::string::npos) << text;
}

}  // namespace
}  // namespace tcast::faults
