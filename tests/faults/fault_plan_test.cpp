// FaultPlan: spec parsing, canonical round-trips, and the loss-process
// arithmetic the degradation envelope is built on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "faults/fault_plan.hpp"

namespace tcast::faults {
namespace {

TEST(FaultPlan, DefaultPlanIsClean) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.lossy());
  EXPECT_EQ(plan.marginal_loss(), 0.0);
  EXPECT_EQ(plan.burst_loss(), 0.0);
  EXPECT_EQ(plan.spec(), "seed=1");
}

TEST(FaultPlan, EmptySpecParsesToDefault) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(*plan, FaultPlan{});
}

TEST(FaultPlan, ParsesIidSpec) {
  const auto plan = FaultPlan::parse("iid=0.05,downgrade=0.1,seed=7");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->process, FaultPlan::LossProcess::kIid);
  EXPECT_DOUBLE_EQ(plan->loss, 0.05);
  EXPECT_DOUBLE_EQ(plan->capture_downgrade, 0.1);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_TRUE(plan->lossy());
}

TEST(FaultPlan, ParsesGilbertElliottSpec) {
  const auto plan =
      FaultPlan::parse("ge=0.02:0.25:0:0.7,crash=0.005,reboot=50,seed=3");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->process, FaultPlan::LossProcess::kGilbertElliott);
  EXPECT_DOUBLE_EQ(plan->ge_enter_bad, 0.02);
  EXPECT_DOUBLE_EQ(plan->ge_exit_bad, 0.25);
  EXPECT_DOUBLE_EQ(plan->ge_loss_good, 0.0);
  EXPECT_DOUBLE_EQ(plan->ge_loss_bad, 0.7);
  EXPECT_DOUBLE_EQ(plan->crash_rate, 0.005);
  EXPECT_EQ(plan->reboot_after, 50u);
  EXPECT_EQ(plan->seed, 3u);
}

TEST(FaultPlan, SpecRoundTripsExactly) {
  const char* specs[] = {
      "seed=1",
      "iid=0.05,seed=7",
      "ge=0.02:0.25:0:0.7,seed=3",
      "iid=0.1,downgrade=0.2,spurious=0.01,crash=0.005,reboot=40,seed=9",
      "spurious=0.3,seed=2",
  };
  for (const char* text : specs) {
    const auto plan = FaultPlan::parse(text);
    ASSERT_TRUE(plan.has_value()) << text;
    const auto again = FaultPlan::parse(plan->spec());
    ASSERT_TRUE(again.has_value()) << plan->spec();
    EXPECT_EQ(*again, *plan) << text << " vs " << plan->spec();
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "iid",              // no value
      "iid=",             // empty value
      "iid=1.5",          // out of range
      "iid=0.05junk",     // trailing garbage
      "ge=0.1:0.2:0.3",   // only three fields
      "ge=0.1:0.2:0.3:2", // out-of-range field
      "downgrade=-0.1",   // negative probability
      "reboot=x",         // not an integer
      "seed=12x",         // trailing garbage
      "bogus=1",          // unknown key
      "iid=0.1,,seed=2",  // empty token
  };
  for (const char* text : bad)
    EXPECT_FALSE(FaultPlan::parse(text).has_value()) << text;
}

TEST(FaultPlan, ToSpecFuzzRoundTripsRandomPlans) {
  // parse(to_spec(p)) == p must hold for *programmatically built* plans
  // too, whose probabilities are raw uniform01 doubles with no short
  // decimal form — the chaos campaign grid builds exactly such plans.
  RngStream rng(0xF00D, 0);
  for (int trial = 0; trial < 500; ++trial) {
    FaultPlan plan;
    switch (rng.uniform_below(3)) {
      case 0:
        break;  // kNone
      case 1:
        plan.process = FaultPlan::LossProcess::kIid;
        plan.loss = rng.uniform01();
        break;
      default:
        plan.process = FaultPlan::LossProcess::kGilbertElliott;
        plan.ge_enter_bad = rng.uniform01();
        plan.ge_exit_bad = rng.uniform01();
        plan.ge_loss_good = rng.uniform01();
        plan.ge_loss_bad = rng.uniform01();
        break;
    }
    if (rng.bernoulli(0.5)) plan.capture_downgrade = rng.uniform01();
    if (rng.bernoulli(0.5)) plan.spurious_activity = rng.uniform01();
    if (rng.bernoulli(0.5)) {
      plan.crash_rate = rng.uniform01();
      plan.reboot_after = static_cast<std::size_t>(rng.uniform_below(100));
    }
    plan.seed = rng.bits();
    const auto back = FaultPlan::parse(plan.to_spec());
    ASSERT_TRUE(back.has_value()) << plan.to_spec();
    EXPECT_EQ(*back, plan) << plan.to_spec();
  }
}

TEST(FaultPlan, IidMarginalEqualsBurst) {
  auto plan = *FaultPlan::parse("iid=0.07");
  EXPECT_DOUBLE_EQ(plan.marginal_loss(), 0.07);
  EXPECT_DOUBLE_EQ(plan.burst_loss(), 0.07);
}

TEST(FaultPlan, GilbertElliottMarginalIsStationaryMix) {
  const auto plan = *FaultPlan::parse("ge=0.02:0.25:0:0.7");
  // pi_bad = 0.02 / (0.02 + 0.25); marginal = pi_bad * 0.7.
  const double pi_bad = 0.02 / 0.27;
  EXPECT_NEAR(plan.marginal_loss(), pi_bad * 0.7, 1e-12);
}

TEST(FaultPlan, GilbertElliottBurstIsWorstStateNextLoss) {
  const auto plan = *FaultPlan::parse("ge=0.02:0.25:0:0.7");
  // From bad: stay (0.75) and lose at 0.7 — the dominating branch.
  EXPECT_NEAR(plan.burst_loss(), 0.75 * 0.7, 1e-12);
  // Bursts make consecutive losses far likelier than the marginal rate.
  EXPECT_GT(plan.burst_loss(), 5.0 * plan.marginal_loss());
}

TEST(FaultPlan, FrozenChainStaysInGoodState) {
  const auto plan = *FaultPlan::parse("ge=0:0:0.1:0.9");
  EXPECT_DOUBLE_EQ(plan.marginal_loss(), 0.1);
}

}  // namespace
}  // namespace tcast::faults
