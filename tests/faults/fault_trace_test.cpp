// FaultTrace: spec round-trip, parse rejection, and recording from a
// FaultyChannel run.
#include <gtest/gtest.h>

#include <vector>

#include "faults/fault_trace.hpp"
#include "faults/faulty_channel.hpp"
#include "group/exact_channel.hpp"

namespace tcast::faults {
namespace {

TEST(FaultTrace, SpecRoundTripsExactly) {
  const char* specs[] = {
      "lossy=0",
      "lossy=1",
      "lossy=1,3:fe,10:cr:2,15:rb:2",
      "lossy=0,0:sp,1:dg,2:dg:7,9:fe",
      "lossy=1,100:cr:0,100:rb:0",
  };
  for (const char* spec : specs) {
    const auto trace = FaultTrace::parse(spec);
    ASSERT_TRUE(trace.has_value()) << spec;
    EXPECT_EQ(trace->to_spec(), spec);
    EXPECT_EQ(FaultTrace::parse(trace->to_spec()), trace);
  }
}

TEST(FaultTrace, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",
      "3:fe",             // missing lossy header
      "lossy=2",          // bad lossy value
      "lossy=1,fe",       // missing query index
      "lossy=1,3:xx",     // unknown kind
      "lossy=1,3:cr",     // crash without node
      "lossy=1,3:rb",     // reboot without node
      "lossy=1,3:fe:2",   // false-empty with node
      "lossy=1,3:sp:2",   // spurious with node
      "lossy=1,a:fe",     // non-numeric index
      "lossy=1,3:cr:x",   // non-numeric node
      "lossy=1,3:cr:1:2", // too many fields
  };
  for (const char* spec : bad)
    EXPECT_FALSE(FaultTrace::parse(spec).has_value()) << spec;
}

TEST(FaultTrace, EventOrderAndNodesSurviveRoundTrip) {
  FaultTrace trace;
  trace.lossy = true;
  trace.events.push_back({FaultEvent::Kind::kCrash, 4, NodeId{3}});
  trace.events.push_back({FaultEvent::Kind::kFalseEmpty, 4, kNoNode});
  trace.events.push_back({FaultEvent::Kind::kReboot, 9, NodeId{3}});
  const auto back = FaultTrace::parse(trace.to_spec());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, trace);
}

TEST(FaultTrace, RecordSnapshotsTheFaultLog) {
  RngStream rng(1, 0);
  group::ExactChannel exact({true, true, true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, *FaultPlan::parse("iid=1"));
  faulty.query_set(nodes);
  faulty.query_set(nodes);
  const auto trace = FaultTrace::record(faulty);
  EXPECT_TRUE(trace.lossy);
  EXPECT_EQ(trace.events, faulty.log().events());
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.to_spec(), "lossy=1,0:fe,1:fe");
}

TEST(FaultTrace, RecordOfCleanRunIsEmptyAndNotLossy) {
  RngStream rng(1, 0);
  group::ExactChannel exact({true}, rng);
  const auto nodes = exact.all_nodes();
  FaultyChannel faulty(exact, nodes, FaultPlan{});
  faulty.query_set(nodes);
  const auto trace = FaultTrace::record(faulty);
  EXPECT_FALSE(trace.lossy);
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace.to_spec(), "lossy=0");
}

}  // namespace
}  // namespace tcast::faults
