// The verified degradation envelopes (the acceptance sweep of the
// robustness work): under deterministic Gilbert–Elliott bursty loss at
// ≈5% marginal, the unguarded engine demonstrably gives wrong answers,
// while the retry-guarded engine restores one-sided correctness — zero
// false "yes" — and keeps the false-"no" rate under the documented
// analytic bound min(1, n · marginal · burst^r).
#include <gtest/gtest.h>

#include "conformance/envelope.hpp"

namespace tcast::conformance {
namespace {

// The canonical sweep point: n = 24, x = t = 8 (every lost positive bin
// matters), bursty loss with marginal ≈ 0.052.
EnvelopeConfig sweep_point() {
  EnvelopeConfig cfg;
  cfg.n = 24;
  cfg.x = 8;
  cfg.t = 8;
  cfg.plan = *faults::FaultPlan::parse("ge=0.02:0.25:0:0.7");
  cfg.trials = 200;
  cfg.seed = 42;
  return cfg;
}

TEST(DegradationEnvelope, GilbertElliottPointSitsNearFivePercent) {
  const auto plan = sweep_point().plan;
  EXPECT_NEAR(plan.marginal_loss(), 0.05, 0.005);
}

TEST(DegradationEnvelope, UnguardedEngineGivesWrongAnswersUnderLoss) {
  auto cfg = sweep_point();
  ASSERT_EQ(cfg.engine.retry.kind, core::RetryPolicy::Kind::kNone);
  const auto pt = measure_envelope(cfg);
  // Loss silences positive-holding bins: with x = t every such disposal is
  // a wrong answer, and at ~5% bursty loss they are frequent.
  EXPECT_GT(pt.false_no, 0u) << pt.to_string();
  // …but even unguarded, loss cannot manufacture positives.
  EXPECT_EQ(pt.false_yes, 0u) << pt.to_string();
  EXPECT_GT(pt.faults_injected, 0u);
  // Unguarded: no retries were spent, none detected.
  EXPECT_EQ(pt.mean_retries, 0.0);
  EXPECT_EQ(pt.faults_seen, 0u);
}

TEST(DegradationEnvelope, GuardedEngineStaysInsideTheAnalyticBound) {
  auto unguarded_cfg = sweep_point();
  const auto unguarded = measure_envelope(unguarded_cfg);

  auto guarded_cfg = sweep_point();
  guarded_cfg.engine.retry = core::RetryPolicy::fixed(3);
  const auto guarded = measure_envelope(guarded_cfg);

  // One-sided correctness is restored exactly…
  EXPECT_EQ(guarded.false_yes, 0u) << guarded.to_string();
  // …and the false-"no" rate obeys the documented envelope. The bound must
  // be non-vacuous for the assertion to mean anything.
  const double bound = false_no_envelope(guarded_cfg.n, guarded_cfg.plan, 3);
  ASSERT_LT(bound, 1.0);
  EXPECT_LE(guarded.false_no_rate(), bound)
      << guarded.to_string() << " bound=" << bound;
  // The guard visibly beats the unguarded engine on this sweep point.
  EXPECT_LT(guarded.false_no, unguarded.false_no)
      << "guarded: " << guarded.to_string()
      << " unguarded: " << unguarded.to_string();
  // Robustness costs queries: the retries are real and accounted.
  EXPECT_GT(guarded.mean_retries, 0.0);
  EXPECT_GT(guarded.mean_queries, unguarded.mean_queries);
  EXPECT_GT(guarded.faults_seen, 0u);
}

TEST(DegradationEnvelope, AdaptivePolicyIsAlsoOneSidedAndBounded) {
  auto cfg = sweep_point();
  cfg.engine.retry = core::RetryPolicy::adaptive(1e-3);
  const auto pt = measure_envelope(cfg);
  EXPECT_EQ(pt.false_yes, 0u) << pt.to_string();
  // The adaptive budget never drops below one extra attempt, so the r = 1
  // envelope is a valid (loose) ceiling for it.
  EXPECT_LE(pt.false_no_rate(), false_no_envelope(cfg.n, cfg.plan, 1))
      << pt.to_string();
}

TEST(DegradationEnvelope, BelowThresholdInstancesNeverAnswerYes) {
  // x < t: any "yes" would be manufactured. Sweep the 1+ point and a 2+
  // point whose downgrade faults would trip an unguarded counts-two
  // inference — the soundness gate must hold false_yes at zero in all.
  auto one_plus = sweep_point();
  one_plus.x = 4;
  for (const auto retry :
       {core::RetryPolicy::none(), core::RetryPolicy::fixed(3)}) {
    auto cfg = one_plus;
    cfg.engine.retry = retry;
    const auto pt = measure_envelope(cfg);
    EXPECT_EQ(pt.false_yes, 0u) << pt.to_string();
  }

  auto two_plus = sweep_point();
  two_plus.x = 4;
  two_plus.model = group::CollisionModel::kTwoPlus;
  two_plus.plan = *faults::FaultPlan::parse("ge=0.02:0.25:0:0.7,downgrade=0.3");
  const auto pt = measure_envelope(two_plus);
  EXPECT_EQ(pt.false_yes, 0u) << pt.to_string();
}

TEST(DegradationEnvelope, SweepIsDeterministic) {
  auto cfg = sweep_point();
  cfg.engine.retry = core::RetryPolicy::fixed(2);
  const auto a = measure_envelope(cfg);
  const auto b = measure_envelope(cfg);
  EXPECT_EQ(a.false_yes, b.false_yes);
  EXPECT_EQ(a.false_no, b.false_no);
  EXPECT_EQ(a.mean_queries, b.mean_queries);
  EXPECT_EQ(a.mean_retries, b.mean_retries);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_seen, b.faults_seen);
}

TEST(DegradationEnvelope, FalseNoEnvelopeFormula) {
  const auto iid = *faults::FaultPlan::parse("iid=0.1");
  // min(1, n · p · p^r): 24 · 0.1 · 0.01 = 0.024.
  EXPECT_NEAR(false_no_envelope(24, iid, 2), 0.024, 1e-12);
  // The cap engages for hopeless configurations.
  EXPECT_DOUBLE_EQ(false_no_envelope(1000, iid, 0), 1.0);
  // A clean plan has a zero envelope.
  EXPECT_DOUBLE_EQ(false_no_envelope(24, faults::FaultPlan{}, 3), 0.0);
}

}  // namespace
}  // namespace tcast::conformance
