// Shrinker: ddmin + query compaction must turn a long violating trace into
// a 1-minimal reproducer that still trips the monitor, and the emitted
// replay spec / regression stanza must pin it down verbatim.
#include <gtest/gtest.h>

#include "chaos/shrinker.hpp"

namespace tcast::chaos {
namespace {

/// A seeded campaign against the broken-gate engine variant; returns the
/// first violating false-"yes" session (deterministic).
SessionReport find_violation() {
  CampaignConfig cfg;
  cfg.algorithms = {"2tbins"};
  cfg.tiers = {Tier::kExact};
  faults::FaultPlan plan;
  plan.process = faults::FaultPlan::LossProcess::kGilbertElliott;
  plan.ge_enter_bad = 0.3;
  plan.ge_exit_bad = 0.2;
  plan.ge_loss_bad = 0.8;
  plan.capture_downgrade = 0.4;
  cfg.plans = {plan};
  cfg.sessions_per_cell = 64;
  cfg.seed = 11;
  cfg.max_exact_n = 32;
  cfg.break_counts_two_gate = true;
  const auto result = run_campaign(cfg);
  for (const auto& rep : result.violating)
    if (rep.false_yes()) return rep;
  ADD_FAILURE() << "seeded campaign produced no false-yes violation";
  return {};
}

TEST(Shrinker, MinimizesSeededFalseYesToAFewEvents) {
  const auto victim = find_violation();
  ASSERT_TRUE(victim.false_yes());
  const auto pred = violates_false_yes();
  const auto shrunk = shrink(victim.scenario, victim.trace, pred);
  // The acceptance bar: a minimized reproducer of at most 10 events that
  // still trips the false-"yes" monitor.
  EXPECT_LE(shrunk.trace.events.size(), 10u);
  EXPECT_LE(shrunk.trace.events.size(), shrunk.original_events);
  EXPECT_TRUE(pred(shrunk.scenario, shrunk.trace));
  // 1-minimality: removing any single remaining event kills the repro.
  for (std::size_t i = 0; i < shrunk.trace.events.size(); ++i) {
    auto candidate = shrunk.trace;
    candidate.events.erase(candidate.events.begin() +
                           static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(pred(shrunk.scenario, candidate)) << "event " << i;
  }
}

TEST(Shrinker, ShrinkIsDeterministic) {
  const auto victim = find_violation();
  const auto pred = violates_false_yes();
  const auto a = shrink(victim.scenario, victim.trace, pred);
  const auto b = shrink(victim.scenario, victim.trace, pred);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.probes, b.probes);
}

TEST(Shrinker, ReplaySpecAndStanzaPinTheReproducer) {
  const auto victim = find_violation();
  const auto shrunk =
      shrink(victim.scenario, victim.trace, violates_false_yes());
  const auto spec = shrunk.replay_spec();
  EXPECT_NE(spec.find(shrunk.scenario.spec()), std::string::npos);
  EXPECT_NE(spec.find("trace=" + shrunk.trace.to_spec()),
            std::string::npos);
  const auto stanza = shrunk.regression_stanza("GateHoleUnderGeLoss");
  EXPECT_NE(stanza.find("TEST(ChaosRegressions, GateHoleUnderGeLoss)"),
            std::string::npos);
  EXPECT_NE(stanza.find(shrunk.scenario.spec()), std::string::npos);
  EXPECT_NE(stanza.find(shrunk.trace.to_spec()), std::string::npos);
  EXPECT_NE(stanza.find("replay_session"), std::string::npos);
}

TEST(Shrinker, ChecksThePredicateHoldsOnInput) {
  ChaosScenario sc;  // clean default scenario: nothing violates
  faults::FaultTrace trace;
  EXPECT_DEATH(shrink(sc, trace, violates_any()), "predicate");
}

}  // namespace
}  // namespace tcast::chaos
