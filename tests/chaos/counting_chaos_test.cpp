// Seeded chaos campaign over the counting portfolio: every count:* adapter,
// both tiers, loss/crash plans. The estimators' soundness contract under
// chaos is one-sided — loss and crashes may cost queries or produce a false
// "no", but no monitor violation and never a false "yes" (silence under
// loss proves nothing, so the adapters only ever credit confirmed
// evidence). `ctest -L counting` runs this with the rest of the audit; the
// nightly chaos job scales the same preset up via chaos_campaign
// --counting.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/chaos_engine.hpp"
#include "core/counting.hpp"

namespace tcast::chaos {
namespace {

TEST(CountingChaos, PresetCoversTheWholePortfolioAndBothFailureModes) {
  const auto cfg = counting_campaign_config(1);
  ASSERT_EQ(cfg.algorithms.size(), core::counting_registry().size());
  for (const auto& spec : core::counting_registry()) {
    EXPECT_NE(std::find(cfg.algorithms.begin(), cfg.algorithms.end(),
                        "count:" + spec.name),
              cfg.algorithms.end())
        << spec.name;
  }
  ASSERT_EQ(cfg.tiers.size(), 2u);
  // Plan axis: the clean control, lying silence (i.i.d. + bursty), and
  // mote death (crash, crash+reboot).
  ASSERT_EQ(cfg.plans.size(), 5u);
  EXPECT_TRUE(std::any_of(cfg.plans.begin(), cfg.plans.end(),
                          [](const auto& p) { return p.crash_rate > 0; }));
  EXPECT_TRUE(std::any_of(cfg.plans.begin(), cfg.plans.end(), [](const auto& p) {
    return p.process != faults::FaultPlan::LossProcess::kNone;
  }));
}

TEST(CountingChaos, SeededCampaignIsGreen) {
  auto cfg = counting_campaign_config(29);
  cfg.sessions_per_cell = 3;  // 3 adapters x 2 tiers x 5 plans x 3 = 90
  cfg.max_exact_n = 32;
  cfg.max_packet_n = 8;
  const auto result = run_campaign(cfg);
  EXPECT_EQ(result.sessions,
            cfg.algorithms.size() * cfg.tiers.size() * cfg.plans.size() * 3u);
  EXPECT_TRUE(result.violating.empty())
      << result.violating.front().scenario.spec() << " -> "
      << result.violating.front().violations.front().message;
  EXPECT_EQ(result.false_yes, 0u);
  EXPECT_GT(result.faults_injected, 0u);
}

TEST(CountingChaos, ViolatingFreeSessionsReplayBitIdentically) {
  // Record one lossy exact-tier session per adapter and replay it: the
  // TraceChannel must reproduce outcome, query count and fault schedule.
  for (const auto& spec : core::counting_registry()) {
    ChaosScenario sc;
    sc.algorithm = "count:" + spec.name;
    sc.n = 20;
    sc.x = 9;
    sc.t = 8;
    sc.seed = 41;
    sc.plan = *faults::FaultPlan::parse("iid=0.1,crash=0.02,seed=6");
    const auto live = run_session(sc);
    EXPECT_TRUE(live.ok()) << sc.spec();
    const auto replayed = replay_session(sc, live.trace);
    EXPECT_EQ(replayed.outcome.decision, live.outcome.decision) << sc.spec();
    EXPECT_EQ(replayed.outcome.queries, live.outcome.queries) << sc.spec();
    EXPECT_EQ(replayed.trace, live.trace) << sc.spec();
    EXPECT_EQ(replayed.algo_rng_probe, live.algo_rng_probe) << sc.spec();
  }
}

}  // namespace
}  // namespace tcast::chaos
