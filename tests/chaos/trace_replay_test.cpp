// Record/replay fidelity: the tentpole guarantee that a FaultTrace
// recorded from a live FaultyChannel run replays bit-identically through a
// TraceChannel — same outcome, query count, fault log, and next raw RNG
// word — on the exact tier, on the packet tier (where the same trace
// drives frame-level crash/reboot/loss), and across tiers for crash
// schedules.
#include <gtest/gtest.h>

#include "chaos/chaos_engine.hpp"
#include "group/packet_channel.hpp"

namespace tcast::chaos {
namespace {

void expect_bit_identical(const SessionReport& live,
                          const SessionReport& replay) {
  EXPECT_EQ(live.outcome.decision, replay.outcome.decision);
  EXPECT_EQ(live.outcome.queries, replay.outcome.queries);
  EXPECT_EQ(live.outcome.rounds, replay.outcome.rounds);
  EXPECT_EQ(live.outcome.confirmed_positives,
            replay.outcome.confirmed_positives);
  EXPECT_EQ(live.outcome.remaining_candidates,
            replay.outcome.remaining_candidates);
  // The replayed channel re-records every injected fault; a faithful
  // replay reproduces the recorded schedule exactly.
  EXPECT_EQ(live.trace, replay.trace);
  // And consumes the identical RNG draw sequences.
  EXPECT_EQ(live.algo_rng_probe, replay.algo_rng_probe);
  EXPECT_EQ(live.channel_rng_probe, replay.channel_rng_probe);
}

TEST(TraceReplay, ExactTierReplaysBitIdentically) {
  ChaosScenario sc;
  sc.algorithm = "2tbins";
  sc.n = 24;
  sc.x = 8;
  sc.t = 8;
  sc.model = group::CollisionModel::kTwoPlus;
  sc.tier = Tier::kExact;
  sc.seed = 5;
  sc.plan = *faults::FaultPlan::parse(
      "ge=0.05:0.2:0:0.8,downgrade=0.2,crash=0.02,reboot=5,seed=21");
  const auto live = run_session(sc);
  EXPECT_FALSE(live.trace.events.empty());  // faults must actually fire
  const auto replay = replay_session(sc, live.trace);
  expect_bit_identical(live, replay);
}

TEST(TraceReplay, ExactTierReplayHoldsAcrossAlgorithms) {
  for (const char* algo : {"expinc", "abns:t", "prob-abns"}) {
    ChaosScenario sc;
    sc.algorithm = algo;
    sc.n = 20;
    sc.x = 9;
    sc.t = 6;
    sc.model = group::CollisionModel::kOnePlus;
    sc.tier = Tier::kExact;
    sc.seed = 11;
    sc.plan = *faults::FaultPlan::parse("iid=0.2,crash=0.03,seed=4");
    const auto live = run_session(sc);
    const auto replay = replay_session(sc, live.trace);
    expect_bit_identical(live, replay);
  }
}

TEST(TraceReplay, PacketTierReplaysBitIdentically) {
  // Frame-level fault determinism: crash/reboot power radios off/on on the
  // sim clock and loss deafens the initiator, yet the recorded trace must
  // replay the identical schedule and verdict through the same stack.
  ChaosScenario sc;
  sc.algorithm = "2tbins";
  sc.n = 6;
  sc.x = 3;
  sc.t = 2;
  sc.model = group::CollisionModel::kOnePlus;
  sc.tier = Tier::kPacket;
  sc.seed = 9;
  sc.plan =
      *faults::FaultPlan::parse("iid=0.25,crash=0.05,reboot=3,seed=6");
  const auto live = run_session(sc);
  // Seed chosen so all three frame-level fault kinds fire: a crash, a
  // false-empty, and a reboot of the crashed mote.
  EXPECT_FALSE(live.trace.events.empty());
  const auto replay = replay_session(sc, live.trace);
  expect_bit_identical(live, replay);
}

TEST(TraceReplay, CrashTraceReplaysIdenticalVerdictAcrossTiers) {
  // A crash/reboot schedule recorded on the exact tier must produce the
  // identical verdict when the same trace replays on the packet tier —
  // there the crash is a radio powering off mid-exchange, not a filtered
  // query set. (1+ model: no capture identities to diverge.)
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ChaosScenario sc;
    sc.algorithm = "2tbins";
    sc.n = 7;
    sc.x = 4;
    sc.t = 3;
    sc.model = group::CollisionModel::kOnePlus;
    sc.tier = Tier::kExact;
    sc.seed = seed;
    sc.plan = *faults::FaultPlan::parse("crash=0.1,reboot=4,seed=2");
    const auto live = run_session(sc);
    const auto exact_replay = replay_session(sc, live.trace);
    ChaosScenario packet_sc = sc;
    packet_sc.tier = Tier::kPacket;
    const auto packet_replay = replay_session(packet_sc, live.trace);
    EXPECT_EQ(exact_replay.outcome.decision,
              packet_replay.outcome.decision)
        << "seed " << seed;
    EXPECT_EQ(exact_replay.outcome.queries, packet_replay.outcome.queries)
        << "seed " << seed;
    EXPECT_EQ(exact_replay.trace, packet_replay.trace) << "seed " << seed;
  }
}

TEST(TraceReplay, FrameLevelCrashKillsMoteMidExchange) {
  // Direct packet-tier check of the mid-backcast death: the mote receives
  // the poll (its radio is on when the frame lands) but powers off half a
  // turnaround before its reply would fire, so the initiator hears
  // silence and the radio is verifiably down afterwards.
  std::vector<bool> positive = {true, true};
  group::PacketChannel::Config cfg;
  cfg.seed = 3;
  group::PacketChannel packet(positive, cfg);
  const auto nodes = packet.all_nodes();
  ASSERT_NE(packet.fault_control(), nullptr);
  EXPECT_TRUE(packet.query_set(nodes).nonempty());
  packet.fail_node(0);
  packet.fail_node(1);
  EXPECT_FALSE(packet.node_is_down(0));  // death is armed, not instant
  const auto r = packet.query_set(nodes);
  EXPECT_EQ(r.kind, group::BinQueryResult::Kind::kEmpty);
  EXPECT_TRUE(packet.node_is_down(0));
  EXPECT_TRUE(packet.node_is_down(1));
  // restore_node powers the motes back on and forces a re-announce.
  packet.fault_control()->restore_node(0);
  EXPECT_FALSE(packet.node_is_down(0));
  EXPECT_TRUE(packet.query_set(nodes).nonempty());
}

TEST(TraceReplay, FrameLevelLossDeafensExactlyOneQuery) {
  std::vector<bool> positive = {true, true, true};
  group::PacketChannel::Config cfg;
  cfg.seed = 4;
  group::PacketChannel packet(positive, cfg);
  const auto nodes = packet.all_nodes();
  packet.fault_control()->suppress_next_query();
  EXPECT_EQ(packet.query_set(nodes).kind,
            group::BinQueryResult::Kind::kEmpty);
  // One-shot: the next query hears the replies again.
  EXPECT_TRUE(packet.query_set(nodes).nonempty());
}

}  // namespace
}  // namespace tcast::chaos
