// Minimized chaos reproducers, checked in verbatim as emitted by the
// shrinker (chaos_campaign --unsafe-gate --shrink --emit-stanza). Each
// stanza replays a scenario+trace pair that once tripped a conformance
// monitor, pinning the bug class forever.
//
// Reproducer0: the engine's loss-soundness hole. With the "activity ⇒ ≥2"
// credit left on despite a lossy channel (unsafe=1), three downgraded
// captures are enough to make 2tbins count three lone positives twice
// each and answer "yes" on an x=10 < t=12 instance. Found by the seeded
// campaign in chaos_engine_test.cpp; shrunk 4 -> 3 events (29 probes).
#include <gtest/gtest.h>

#include "chaos/chaos_engine.hpp"

namespace tcast::chaos {
namespace {

TEST(ChaosRegressions, Reproducer0) {
  const auto sc = tcast::chaos::ChaosScenario::parse(
      "algo=2tbins;n=18;x=10;t=12;model=2+;tier=exact;"
      "seed=4421707398744400091;"
      "plan=ge=0.3:0.2:0:0.8,downgrade=0.4,seed=1054781993601844392;"
      "unsafe=1");
  const auto trace = tcast::faults::FaultTrace::parse(
      "lossy=1,0:dg:17,1:dg:14,12:dg:12");
  ASSERT_TRUE(sc.has_value());
  ASSERT_TRUE(trace.has_value());
  const auto rep = tcast::chaos::replay_session(*sc, *trace);
  EXPECT_FALSE(rep.violations.empty());
  // The violation is specifically the false "yes" the unsafe gate allows.
  EXPECT_TRUE(rep.false_yes());
}

TEST(ChaosRegressions, Reproducer0IsFixedByTheGuardedGate) {
  // The identical scenario+trace with the soundness gate back in place
  // replays clean: activity is no longer credited as ≥2 under loss.
  auto sc = *tcast::chaos::ChaosScenario::parse(
      "algo=2tbins;n=18;x=10;t=12;model=2+;tier=exact;"
      "seed=4421707398744400091;"
      "plan=ge=0.3:0.2:0:0.8,downgrade=0.4,seed=1054781993601844392;"
      "unsafe=1");
  sc.break_counts_two_gate = false;
  const auto trace = *tcast::faults::FaultTrace::parse(
      "lossy=1,0:dg:17,1:dg:14,12:dg:12");
  const auto rep = tcast::chaos::replay_session(sc, trace);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_FALSE(rep.false_yes());
}

}  // namespace
}  // namespace tcast::chaos
