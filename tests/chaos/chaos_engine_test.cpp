// ChaosEngine: scenario spec round-trips, single-session verdicts, and the
// campaign loop — zero violations for the guarded engine across the grid,
// deterministic results whatever the worker count, and real violations the
// moment the known loss-soundness hole is re-opened.
#include <gtest/gtest.h>

#include "chaos/chaos_engine.hpp"

namespace tcast::chaos {
namespace {

TEST(ChaosScenario, SpecRoundTripsExactly) {
  ChaosScenario sc;
  sc.algorithm = "abns:2t";
  sc.n = 33;
  sc.x = 12;
  sc.t = 9;
  sc.model = group::CollisionModel::kTwoPlus;
  sc.tier = Tier::kPacket;
  sc.seed = 77;
  sc.plan = *faults::FaultPlan::parse("ge=0.02:0.25:0:0.7,crash=0.01,seed=5");
  sc.retry = core::RetryPolicy::fixed(3);
  sc.break_counts_two_gate = true;
  const auto back = ChaosScenario::parse(sc.spec());
  ASSERT_TRUE(back.has_value()) << sc.spec();
  EXPECT_EQ(*back, sc) << sc.spec();
}

TEST(ChaosScenario, DefaultFieldsRoundTrip) {
  const ChaosScenario sc;
  const auto back = ChaosScenario::parse(sc.spec());
  ASSERT_TRUE(back.has_value()) << sc.spec();
  EXPECT_EQ(*back, sc);
}

TEST(ChaosScenario, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "",
      "algo=2tbins;n",          // token without '='
      "algo=;n=4",              // empty algorithm
      "algo=2tbins;n=x",        // non-numeric
      "algo=2tbins;model=3+",   // unknown model
      "algo=2tbins;tier=cloud", // unknown tier
      "algo=2tbins;plan=bogus=1",
      "algo=2tbins;retry=sometimes",
      "algo=2tbins;unsafe=2",
      "algo=2tbins;n=4;x=9",    // x > n
      "algo=2tbins;what=1",     // unknown key
  };
  for (const char* text : bad)
    EXPECT_FALSE(ChaosScenario::parse(text).has_value()) << text;
}

TEST(ChaosEngine, CleanSessionHasNoViolationsOnBothTiers) {
  for (const Tier tier : {Tier::kExact, Tier::kPacket}) {
    ChaosScenario sc;
    sc.algorithm = "2tbins";
    sc.n = 8;
    sc.x = 5;
    sc.t = 4;
    sc.tier = tier;
    sc.seed = 3;
    const auto rep = run_session(sc);
    EXPECT_TRUE(rep.ok()) << to_string(tier) << ": "
                          << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().message);
    EXPECT_TRUE(rep.outcome.decision);  // x >= t, exact stack
    EXPECT_TRUE(rep.trace.events.empty());
  }
}

TEST(ChaosEngine, SessionsAreDeterministic) {
  ChaosScenario sc;
  sc.algorithm = "expinc";
  sc.n = 16;
  sc.x = 6;
  sc.t = 5;
  sc.seed = 19;
  sc.plan = *faults::FaultPlan::parse("iid=0.1,crash=0.02,seed=8");
  const auto a = run_session(sc);
  const auto b = run_session(sc);
  EXPECT_EQ(a.outcome.decision, b.outcome.decision);
  EXPECT_EQ(a.outcome.queries, b.outcome.queries);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.algo_rng_probe, b.algo_rng_probe);
}

CampaignConfig small_campaign(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.algorithms = {"2tbins", "expinc"};
  cfg.tiers = {Tier::kExact};
  cfg.sessions_per_cell = 3;
  cfg.seed = seed;
  cfg.max_exact_n = 24;
  return cfg;
}

TEST(ChaosEngine, GuardedCampaignReportsZeroViolations) {
  const auto result = run_campaign(small_campaign(101));
  EXPECT_EQ(result.sessions,
            2u * default_plan_grid(101).size() * 3u);
  EXPECT_TRUE(result.violating.empty())
      << result.violating.front().scenario.spec();
  EXPECT_EQ(result.false_yes, 0u);  // loss can never manufacture positives
  EXPECT_GT(result.faults_injected, 0u);
}

TEST(ChaosEngine, CampaignIsDeterministicAcrossWorkerCounts) {
  ThreadPool solo(1);
  auto cfg = small_campaign(7);
  const auto wide = run_campaign(cfg);
  cfg.pool = &solo;
  const auto narrow = run_campaign(cfg);
  EXPECT_EQ(wide.sessions, narrow.sessions);
  EXPECT_EQ(wide.faults_injected, narrow.faults_injected);
  EXPECT_EQ(wide.false_yes, narrow.false_yes);
  EXPECT_EQ(wide.false_no, narrow.false_no);
  ASSERT_EQ(wide.violating.size(), narrow.violating.size());
  for (std::size_t i = 0; i < wide.violating.size(); ++i) {
    EXPECT_EQ(wide.violating[i].scenario, narrow.violating[i].scenario);
    EXPECT_EQ(wide.violating[i].trace, narrow.violating[i].trace);
  }
}

TEST(ChaosEngine, BrokenGateCampaignIsCaughtByTheMonitors) {
  // Re-open the engine's loss-soundness hole (activity still counted as
  // ≥2 under loss) and the campaign must catch it in the act: a false
  // "yes" flagged by the outcome monitor on some 2+ lossy session.
  CampaignConfig cfg;
  cfg.algorithms = {"2tbins"};
  cfg.tiers = {Tier::kExact};
  faults::FaultPlan heavy;
  heavy.process = faults::FaultPlan::LossProcess::kGilbertElliott;
  heavy.ge_enter_bad = 0.3;
  heavy.ge_exit_bad = 0.2;
  heavy.ge_loss_bad = 0.8;
  // The hole needs a downgraded capture to exploit: a lone positive whose
  // decode failure reads as activity gets credited as ≥2.
  heavy.capture_downgrade = 0.4;
  cfg.plans = {heavy};
  cfg.sessions_per_cell = 64;
  cfg.seed = 11;
  cfg.max_exact_n = 32;
  cfg.break_counts_two_gate = true;
  const auto result = run_campaign(cfg);
  EXPECT_FALSE(result.violating.empty());
  EXPECT_GT(result.false_yes, 0u);
}

}  // namespace
}  // namespace tcast::chaos
