// Wire codec and framing tests: the protocol doc promises
// parse(encode(r)) == r and that a hostile frame poisons the reader
// instead of the process.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tcast::service {
namespace {

TEST(RequestCodec, QueryRoundTrips) {
  Request req;
  req.kind = RequestKind::kQuery;
  req.population = "fleet";
  req.t = 17;
  req.algorithm = "abns:t";
  req.deadline_ms = 50;
  req.approx = ApproxMode::kNever;
  const auto parsed = Request::parse(req.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, req);
}

TEST(RequestCodec, LoadRoundTrips) {
  Request req;
  req.kind = RequestKind::kLoad;
  req.population = "p.0";
  req.n = 256;
  req.x = 40;
  req.seed = 12345;
  req.tier = BackendTier::kPacket;
  const auto parsed = Request::parse(req.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, req);
}

TEST(RequestCodec, ControlVerbsRoundTrip) {
  for (const auto kind :
       {RequestKind::kPing, RequestKind::kStats, RequestKind::kList,
        RequestKind::kShutdown}) {
    Request req;
    req.kind = kind;
    const auto parsed = Request::parse(req.encode());
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(parsed->kind, kind);
  }
  Request kill;
  kill.kind = RequestKind::kKillShard;
  kill.shard = 3;
  const auto parsed = Request::parse(kill.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, RequestKind::kKillShard);
  EXPECT_EQ(parsed->shard, 3u);
}

TEST(RequestCodec, RejectsGarbage) {
  EXPECT_FALSE(Request::parse("").has_value());
  EXPECT_FALSE(Request::parse("frobnicate pop=x").has_value());
  EXPECT_FALSE(Request::parse("query").has_value());  // missing pop
  EXPECT_FALSE(Request::parse("query pop=x bogus-key=1").has_value());
  EXPECT_FALSE(Request::parse("load pop=x n=notanumber").has_value());
}

TEST(ResponseCodec, VerdictRoundTrips) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.decision = true;
  resp.mode = AnswerMode::kExact;
  resp.queries = 42;
  resp.shard = 1;
  resp.latency_us = 730;
  const auto parsed = Response::parse(resp.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, resp);
}

TEST(ResponseCodec, ApproximateAnswerCarriesItsBand) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.decision = false;
  resp.mode = AnswerMode::kApproximate;
  resp.estimate = 3.25;
  resp.epsilon = 0.35;
  resp.confidence = 0.9;
  resp.queries = 18;
  const auto parsed = Response::parse(resp.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mode, AnswerMode::kApproximate);
  EXPECT_DOUBLE_EQ(parsed->estimate, 3.25);
  EXPECT_DOUBLE_EQ(parsed->epsilon, 0.35);
  EXPECT_DOUBLE_EQ(parsed->confidence, 0.9);
}

TEST(ResponseCodec, TypedErrorRoundTrips) {
  Response resp;
  resp.status = StatusCode::kOverloaded;
  resp.retry_after_ms = 12;
  resp.message = "queue full, come back later";
  const auto parsed = Response::parse(resp.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, StatusCode::kOverloaded);
  EXPECT_EQ(parsed->retry_after_ms, 12u);
  EXPECT_EQ(parsed->message, resp.message);
}

TEST(Framing, RoundTripsThroughArbitraryChunking) {
  std::string stream;
  append_frame(stream, "first payload");
  append_frame(stream, "");
  append_frame(stream, "third");

  // Feed byte by byte: the reader must reassemble regardless of chunking.
  FrameReader reader;
  for (const char c : stream) reader.feed(&c, 1);

  EXPECT_EQ(reader.next(), "first payload");
  EXPECT_EQ(reader.next(), "");
  EXPECT_EQ(reader.next(), "third");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.error().has_value());
}

TEST(Framing, OversizeFramePoisonsTheReader) {
  const std::uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  FrameReader reader;
  reader.feed(header, sizeof header);
  EXPECT_TRUE(reader.error().has_value());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StatusCodes, RoundTripAndRetryability) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kOverloaded,
        StatusCode::kDeadlineExceeded, StatusCode::kShardDown,
        StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kShuttingDown}) {
    EXPECT_EQ(parse_status(to_string(code)), code);
  }
  EXPECT_TRUE(is_retryable(StatusCode::kOverloaded));
  EXPECT_TRUE(is_retryable(StatusCode::kShardDown));
  EXPECT_TRUE(is_retryable(StatusCode::kShuttingDown));
  EXPECT_FALSE(is_retryable(StatusCode::kOk));
  EXPECT_FALSE(is_retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(is_retryable(StatusCode::kNotFound));
  EXPECT_FALSE(is_retryable(StatusCode::kInvalidArgument));
}

}  // namespace
}  // namespace tcast::service
