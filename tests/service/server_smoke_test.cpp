// End-to-end smoke over the real transport: an in-process UnixServer on a
// temp socket, a UnixClient speaking the framed protocol, pump thread
// running — the whole tcastd stack minus the process boundary. Labeled
// service_smoke so CI's main matrix can run exactly this.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

namespace tcast::service {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/tcast_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

Request parse_or_die(const std::string& line) {
  const auto req = Request::parse(line);
  EXPECT_TRUE(req.has_value()) << line;
  return req.value_or(Request{});
}

TEST(ServerSmoke, LoadQueryStatsShutdownOverTheSocket) {
  TcastService svc(ServiceConfig{});
  svc.start_pump_thread();
  UnixServer server(svc, temp_socket_path("smoke"));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread loop([&] { server.run(); });

  UnixClient client(server.socket_path());
  ASSERT_TRUE(client.connect(&error)) << error;

  auto resp = client.call(parse_or_die("ping"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->message, "pong");

  resp = client.call(parse_or_die("load pop=fleet n=128 x=40 seed=7"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);

  resp = client.call(
      parse_or_die("query pop=fleet t=40 approx=never deadline-ms=5000"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_TRUE(resp->decision);  // x=40 >= t=40
  EXPECT_EQ(resp->mode, AnswerMode::kExact);

  resp = client.call(parse_or_die("query pop=fleet t=41 approx=never"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_FALSE(resp->decision);

  resp = client.call(parse_or_die("query pop=ghost t=1"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kNotFound);

  resp = client.call(parse_or_die("stats"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_NE(resp->message.find("completed_exact="), std::string::npos);

  resp = client.call(parse_or_die("shutdown"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);

  loop.join();  // run() exits once the service enters shutdown
  svc.stop_pump_thread();
}

TEST(ServerSmoke, RetryLoopRecoversFromAKilledShard) {
  ServiceConfig cfg;
  cfg.shards = 1;  // the kill below must hit the population's shard
  TcastService svc(cfg);
  svc.start_pump_thread();
  UnixServer server(svc, temp_socket_path("retry"));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread loop([&] { server.run(); });

  UnixClient client(server.socket_path());
  ASSERT_TRUE(client.connect(&error)) << error;
  ASSERT_EQ(client.call(parse_or_die("load pop=p n=64 x=10 seed=3"))->status,
            StatusCode::kOk);

  ASSERT_EQ(client.call(parse_or_die("kill shard=0"))->status,
            StatusCode::kOk);

  // Plain call: typed kShardDown, not a hang.
  auto resp = client.call(parse_or_die("query pop=p t=5"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kShardDown);

  // Reboot, then the retry loop must land a verdict.
  ASSERT_EQ(client.call(parse_or_die("reboot shard=0"))->status,
            StatusCode::kOk);
  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.base_ms = 1;
  RngStream rng(1, 0);
  std::size_t attempts = 0;
  resp = client.call_with_retries(parse_or_die("query pop=p t=5"), policy,
                                  rng, &attempts);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_TRUE(resp->decision);
  EXPECT_GE(attempts, 1u);

  server.stop();
  loop.join();
  svc.stop_pump_thread();
}

TEST(ServerSmoke, UnparseableRequestGetsATypedResponse) {
  TcastService svc(ServiceConfig{});
  svc.start_pump_thread();
  UnixServer server(svc, temp_socket_path("badreq"));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread loop([&] { server.run(); });

  // UnixClient only sends well-formed requests, so speak raw frames here.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  std::string framed;
  append_frame(framed, "this is not a protocol line");
  ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0),
            static_cast<ssize_t>(framed.size()));

  FrameReader reader;
  std::optional<std::string> payload;
  char buf[512];
  while (!payload.has_value()) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<std::size_t>(n));
    payload = reader.next();
  }
  const auto resp = Response::parse(*payload);
  ASSERT_TRUE(resp.has_value()) << *payload;
  EXPECT_EQ(resp->status, StatusCode::kInvalidArgument);
  ::close(fd);

  server.stop();
  loop.join();
  svc.stop_pump_thread();
}

}  // namespace
}  // namespace tcast::service
