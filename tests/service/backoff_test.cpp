// Client retry policy: what retries, and that delays stay inside the
// jittered exponential envelope while honoring server hints — plus a
// seeded statistical suite pinning the jitter DISTRIBUTION (not just its
// bounds): the draw must actually fill the envelope [(1-j)·d, d], its mean
// must sit at the envelope's center, the cap must be approached
// monotonically across attempts, and a server hint must lift the whole
// envelope, not just the floor.
#include "service/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace tcast::service {
namespace {

TEST(Backoff, RetriesOnlyRetryableStatusesWithinBudget) {
  BackoffPolicy policy;
  policy.max_retries = 2;
  EXPECT_TRUE(policy.should_retry(StatusCode::kOverloaded, 0));
  EXPECT_TRUE(policy.should_retry(StatusCode::kShardDown, 1));
  EXPECT_FALSE(policy.should_retry(StatusCode::kOverloaded, 2));
  EXPECT_FALSE(policy.should_retry(StatusCode::kOk, 0));
  EXPECT_FALSE(policy.should_retry(StatusCode::kDeadlineExceeded, 0));
  EXPECT_FALSE(policy.should_retry(StatusCode::kInvalidArgument, 0));
}

TEST(Backoff, DelayStaysInTheJitteredExponentialEnvelope) {
  BackoffPolicy policy;  // base 2ms, x2, jitter 0.5
  RngStream rng(7, 0);
  for (std::size_t attempt = 0; attempt < 6; ++attempt) {
    const double full =
        static_cast<double>(policy.base_ms) *
        std::pow(policy.multiplier, static_cast<double>(attempt));
    const auto cap = std::min<double>(full, static_cast<double>(policy.max_ms));
    for (int i = 0; i < 50; ++i) {
      const auto d = policy.delay_ms(attempt, 0, rng);
      EXPECT_LE(static_cast<double>(d), cap + 1.0) << "attempt " << attempt;
      EXPECT_GE(static_cast<double>(d), (1.0 - policy.jitter) * cap - 1.0)
          << "attempt " << attempt;
    }
  }
}

TEST(Backoff, ServerHintActsAsFloor) {
  BackoffPolicy policy;  // base 2ms: schedule alone would allow ~2ms
  RngStream rng(7, 1);
  for (int i = 0; i < 50; ++i) {
    const auto d = policy.delay_ms(0, 500, rng);
    // The hint (500ms) dominates the 2ms exponential term; jitter may
    // shave at most `jitter` off the combined delay.
    EXPECT_GE(static_cast<double>(d), (1.0 - policy.jitter) * 500.0 - 1.0);
  }
}

TEST(Backoff, DelayNeverExceedsMax) {
  BackoffPolicy policy;
  policy.max_ms = 100;
  RngStream rng(7, 2);
  for (std::size_t attempt = 0; attempt < 12; ++attempt)
    EXPECT_LE(policy.delay_ms(attempt, 0, rng), 100u);
}

struct Envelope {
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  double mean = 0.0;
};

Envelope sample_envelope(const BackoffPolicy& policy, std::size_t attempt,
                         std::uint64_t hint, RngStream& rng,
                         std::size_t draws = 4000) {
  Envelope e;
  double sum = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    const auto d = policy.delay_ms(attempt, hint, rng);
    e.min = std::min(e.min, d);
    e.max = std::max(e.max, d);
    sum += static_cast<double>(d);
  }
  e.mean = sum / static_cast<double>(draws);
  return e;
}

TEST(Backoff, JitterFillsTheWholeEnvelopeStatistically) {
  // 4000 seeded draws per attempt: the observed extremes must come within
  // 2% of the theoretical envelope edges (a bounds-only test passes even
  // if jitter silently collapses to a constant), and the mean must sit at
  // the envelope center — uniform jitter, not merely bounded jitter.
  BackoffPolicy policy;  // base 2ms, x2, max 2000ms, jitter 0.5
  RngStream rng(0xbacc, 1);
  for (const std::size_t attempt : {std::size_t{2}, std::size_t{5}}) {
    const double d = std::min(
        static_cast<double>(policy.base_ms) *
            std::pow(policy.multiplier, static_cast<double>(attempt)),
        static_cast<double>(policy.max_ms));
    const double lo = (1.0 - policy.jitter) * d;
    const double span = d - lo;
    const auto e = sample_envelope(policy, attempt, 0, rng);
    EXPECT_LE(static_cast<double>(e.min), lo + 0.02 * span + 1.0)
        << "attempt " << attempt;
    EXPECT_GE(static_cast<double>(e.max), d - 0.02 * span - 1.0)
        << "attempt " << attempt;
    EXPECT_LE(static_cast<double>(e.max), d + 1.0) << "attempt " << attempt;
    EXPECT_GE(static_cast<double>(e.min), lo - 1.0) << "attempt " << attempt;
    // Uniform over [lo, d] ⇒ mean at the center; 4000 draws put the
    // standard error around span/110, so 5% of span is a ~5σ band.
    EXPECT_NEAR(e.mean, (lo + d) / 2.0, 0.05 * span + 1.0)
        << "attempt " << attempt;
  }
}

TEST(Backoff, EnvelopeGrowsMonotonicallyThenPinsAtTheCap) {
  // The per-attempt envelope mean must be nondecreasing across attempts
  // and saturate exactly once the exponential schedule crosses max_ms —
  // the cap is a ceiling the schedule sticks to, not a wrap or a reset.
  BackoffPolicy policy;
  policy.base_ms = 3;
  policy.multiplier = 2.0;
  policy.max_ms = 96;  // caps from attempt 5 (3·2^5 = 96) onward
  RngStream rng(0xbacc, 2);
  double prev_mean = -1.0;
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    const auto e = sample_envelope(policy, attempt, 0, rng, 2000);
    EXPECT_GE(e.mean, prev_mean - 1.0) << "attempt " << attempt;
    EXPECT_LE(e.max, policy.max_ms) << "attempt " << attempt;
    prev_mean = e.mean;
    if (attempt >= 5) {
      // Saturated: the envelope is [(1-j)·max, max] regardless of attempt.
      const double lo = (1.0 - policy.jitter) * 96.0;
      EXPECT_NEAR(e.mean, (lo + 96.0) / 2.0, 0.05 * (96.0 - lo) + 1.0)
          << "attempt " << attempt;
    }
  }
}

TEST(Backoff, ServerHintLiftsTheWholeEnvelope) {
  // A hint above the schedule re-centers the whole distribution on the
  // hint's envelope: draws spread across [(1-j)·hint, hint] — the hint
  // overrides the exponential term rather than merely clipping the floor.
  BackoffPolicy policy;  // base 2ms: schedule says ~2ms at attempt 0
  RngStream rng(0xbacc, 3);
  const double hint = 800.0;
  const double lo = (1.0 - policy.jitter) * hint;
  const double span = hint - lo;
  const auto e = sample_envelope(policy, 0, 800, rng);
  EXPECT_GE(static_cast<double>(e.min), lo - 1.0);
  EXPECT_LE(static_cast<double>(e.max), hint + 1.0);
  EXPECT_LE(static_cast<double>(e.min), lo + 0.02 * span + 1.0);
  EXPECT_GE(static_cast<double>(e.max), hint - 0.02 * span - 1.0);
  EXPECT_NEAR(e.mean, (lo + hint) / 2.0, 0.05 * span + 1.0);
  // And the hint is ignored when the schedule already exceeds it.
  BackoffPolicy big;
  big.base_ms = 1000;
  const auto scheduled = sample_envelope(big, 0, 5, rng, 500);
  EXPECT_GE(static_cast<double>(scheduled.min),
            (1.0 - big.jitter) * 1000.0 - 1.0);
}

}  // namespace
}  // namespace tcast::service
