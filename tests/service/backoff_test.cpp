// Client retry policy: what retries, and that delays stay inside the
// jittered exponential envelope while honoring server hints.
#include "service/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace tcast::service {
namespace {

TEST(Backoff, RetriesOnlyRetryableStatusesWithinBudget) {
  BackoffPolicy policy;
  policy.max_retries = 2;
  EXPECT_TRUE(policy.should_retry(StatusCode::kOverloaded, 0));
  EXPECT_TRUE(policy.should_retry(StatusCode::kShardDown, 1));
  EXPECT_FALSE(policy.should_retry(StatusCode::kOverloaded, 2));
  EXPECT_FALSE(policy.should_retry(StatusCode::kOk, 0));
  EXPECT_FALSE(policy.should_retry(StatusCode::kDeadlineExceeded, 0));
  EXPECT_FALSE(policy.should_retry(StatusCode::kInvalidArgument, 0));
}

TEST(Backoff, DelayStaysInTheJitteredExponentialEnvelope) {
  BackoffPolicy policy;  // base 2ms, x2, jitter 0.5
  RngStream rng(7, 0);
  for (std::size_t attempt = 0; attempt < 6; ++attempt) {
    const double full =
        static_cast<double>(policy.base_ms) *
        std::pow(policy.multiplier, static_cast<double>(attempt));
    const auto cap = std::min<double>(full, static_cast<double>(policy.max_ms));
    for (int i = 0; i < 50; ++i) {
      const auto d = policy.delay_ms(attempt, 0, rng);
      EXPECT_LE(static_cast<double>(d), cap + 1.0) << "attempt " << attempt;
      EXPECT_GE(static_cast<double>(d), (1.0 - policy.jitter) * cap - 1.0)
          << "attempt " << attempt;
    }
  }
}

TEST(Backoff, ServerHintActsAsFloor) {
  BackoffPolicy policy;  // base 2ms: schedule alone would allow ~2ms
  RngStream rng(7, 1);
  for (int i = 0; i < 50; ++i) {
    const auto d = policy.delay_ms(0, 500, rng);
    // The hint (500ms) dominates the 2ms exponential term; jitter may
    // shave at most `jitter` off the combined delay.
    EXPECT_GE(static_cast<double>(d), (1.0 - policy.jitter) * 500.0 - 1.0);
  }
}

TEST(Backoff, DelayNeverExceedsMax) {
  BackoffPolicy policy;
  policy.max_ms = 100;
  RngStream rng(7, 2);
  for (std::size_t attempt = 0; attempt < 12; ++attempt)
    EXPECT_LE(policy.delay_ms(attempt, 0, rng), 100u);
}

}  // namespace
}  // namespace tcast::service
