// Deterministic overload-ladder tests against one Shard under a
// ManualClock: every rung — admission rejection, deadline shedding,
// degradation hysteresis, mid-run cancellation, kill/reboot — is a
// scripted event here, not a race.
#include "service/shard.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace tcast::service {
namespace {

Request load_req(const std::string& pop, std::size_t n, std::size_t x,
                 std::uint64_t seed = 7) {
  Request req;
  req.kind = RequestKind::kLoad;
  req.population = pop;
  req.n = n;
  req.x = x;
  req.seed = seed;
  return req;
}

Request query_req(const std::string& pop, std::size_t t,
                  std::uint64_t deadline_ms = 0,
                  ApproxMode approx = ApproxMode::kAllow) {
  Request req;
  req.kind = RequestKind::kQuery;
  req.population = pop;
  req.t = t;
  req.deadline_ms = deadline_ms;
  req.approx = approx;
  return req;
}

/// Submits and keeps the eventual response findable by index.
class Collector {
 public:
  void submit(Shard& shard, Request req) {
    const std::size_t slot = responses_.size();
    responses_.emplace_back();
    shard.submit(std::move(req), [this, slot](const Response& r) {
      responses_[slot] = r;
    });
  }

  const std::optional<Response>& at(std::size_t i) const {
    return responses_.at(i);
  }
  std::size_t resolved() const {
    std::size_t n = 0;
    for (const auto& r : responses_)
      if (r.has_value()) ++n;
    return n;
  }
  std::size_t size() const { return responses_.size(); }

 private:
  std::vector<std::optional<Response>> responses_;
};

ShardConfig config(const Clock& clock) {
  ShardConfig cfg;
  cfg.clock = &clock;
  cfg.checked = true;  // conformance guard on: violations must stay 0
  return cfg;
}

TEST(Shard, ExactVerdictsMatchGroundTruth) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 64, 20));
  shard.drain();
  for (const std::size_t t : {1u, 19u, 20u, 21u, 64u}) {
    out.submit(shard, query_req("p", t, 0, ApproxMode::kNever));
    shard.drain();
  }
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_TRUE(out.at(i).has_value());
    const Response& r = *out.at(i);
    ASSERT_EQ(r.status, StatusCode::kOk);
    EXPECT_EQ(r.mode, AnswerMode::kExact);
  }
  EXPECT_TRUE(out.at(1)->decision);    // t=1  <= x=20
  EXPECT_TRUE(out.at(2)->decision);    // t=19
  EXPECT_TRUE(out.at(3)->decision);    // t=20
  EXPECT_FALSE(out.at(4)->decision);   // t=21 > x
  EXPECT_FALSE(out.at(5)->decision);   // t=64
  EXPECT_EQ(shard.stats().conformance_violations, 0u);
}

TEST(Shard, FullQueueRejectsWithRetryAfterHint) {
  ManualClock clock;
  ShardConfig cfg = config(clock);
  cfg.queue_capacity = 2;
  Shard shard(cfg);
  Collector out;
  out.submit(shard, load_req("p", 32, 10));
  shard.drain();

  out.submit(shard, query_req("p", 5));  // queued
  out.submit(shard, query_req("p", 5));  // queued (queue now full)
  out.submit(shard, query_req("p", 5));  // rejected at admission
  ASSERT_TRUE(out.at(3).has_value());
  EXPECT_EQ(out.at(3)->status, StatusCode::kOverloaded);
  EXPECT_GE(out.at(3)->retry_after_ms, 1u);
  EXPECT_EQ(shard.stats().rejected_overload, 1u);

  shard.drain();
  EXPECT_EQ(out.resolved(), out.size());
  EXPECT_EQ(out.at(1)->status, StatusCode::kOk);
  EXPECT_EQ(out.at(2)->status, StatusCode::kOk);
}

TEST(Shard, DeadlineExpiredInQueueIsShedAsTypedError) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 32, 10));
  shard.drain();

  out.submit(shard, query_req("p", 5, /*deadline_ms=*/5));
  clock.advance_us(6000);  // budget blown while queued
  shard.drain();

  ASSERT_TRUE(out.at(1).has_value());
  EXPECT_EQ(out.at(1)->status, StatusCode::kDeadlineExceeded);
  const auto stats = shard.stats();
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.cancelled_deadline, 0u);  // never reached the engine
  EXPECT_EQ(stats.completed_exact, 0u);
}

/// Clock whose every read advances time: the deterministic way to make a
/// deadline expire *inside* an engine run (each cancel poll is a read).
class SteppingClock final : public Clock {
 public:
  explicit SteppingClock(TimeUs step) : step_(step) {}
  TimeUs now_us() const override {
    return t_.fetch_add(step_, std::memory_order_acq_rel);
  }

 private:
  TimeUs step_;
  mutable std::atomic<TimeUs> t_{0};
};

TEST(Shard, DeadlineTrippedMidRunIsACancelNotAVerdict) {
  SteppingClock clock(100);  // every look at the clock costs 100us
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 256, 100));
  shard.drain();

  // 2ms budget = 20 clock reads; a t=64 run over n=256 wants far more
  // cancel polls than that, so the token trips mid-run.
  out.submit(shard, query_req("p", 64, /*deadline_ms=*/2));
  shard.drain();

  ASSERT_TRUE(out.at(1).has_value());
  EXPECT_EQ(out.at(1)->status, StatusCode::kDeadlineExceeded);
  const auto stats = shard.stats();
  EXPECT_EQ(stats.cancelled_deadline, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);
  EXPECT_EQ(stats.completed_exact, 0u);  // no fabricated verdict
}

TEST(Shard, DegradationHysteresisEntersAndExits) {
  ManualClock clock;
  ShardConfig cfg = config(clock);
  cfg.queue_capacity = 16;
  cfg.degrade_enter = 4;
  cfg.degrade_exit = 1;
  cfg.batch_max = 1;
  Shard shard(cfg);
  Collector out;
  out.submit(shard, load_req("p", 64, 30));
  shard.drain();
  EXPECT_FALSE(shard.degraded());

  for (int i = 0; i < 4; ++i) out.submit(shard, query_req("p", 16));
  EXPECT_TRUE(shard.degraded());  // depth hit degrade_enter

  shard.drain();  // depth 4 -> 3: still above degrade_exit
  EXPECT_TRUE(shard.degraded());
  shard.drain();  // 3 -> 2
  EXPECT_TRUE(shard.degraded());
  shard.drain();  // 2 -> 1 == degrade_exit: recovery
  EXPECT_FALSE(shard.degraded());
  shard.drain();

  // Every queued query resolved kOk; the ones served while degraded took
  // the approximate path and, if tagged approximate, carry their band.
  const auto stats = shard.stats();
  EXPECT_EQ(out.resolved(), out.size());
  EXPECT_EQ(stats.completed_exact + stats.completed_approx, 4u);
  EXPECT_EQ(stats.degrade_entries, 1u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    const Response& r = *out.at(i);
    ASSERT_EQ(r.status, StatusCode::kOk);
    if (r.mode == AnswerMode::kApproximate) {
      EXPECT_GT(r.epsilon, 0.0);
      EXPECT_GT(r.confidence, 0.0);
    }
  }
  EXPECT_EQ(stats.conformance_violations, 0u);
}

TEST(Shard, ApproxNeverIsServedExactEvenWhileDegraded) {
  ManualClock clock;
  ShardConfig cfg = config(clock);
  cfg.degrade_enter = 2;
  cfg.degrade_exit = 0;
  cfg.batch_max = 8;
  Shard shard(cfg);
  Collector out;
  out.submit(shard, load_req("p", 64, 30));
  shard.drain();

  out.submit(shard, query_req("p", 16, 0, ApproxMode::kNever));
  out.submit(shard, query_req("p", 16, 0, ApproxMode::kNever));
  ASSERT_TRUE(shard.degraded());
  shard.drain();

  for (std::size_t i = 1; i <= 2; ++i) {
    ASSERT_EQ(out.at(i)->status, StatusCode::kOk);
    EXPECT_EQ(out.at(i)->mode, AnswerMode::kExact);
    EXPECT_TRUE(out.at(i)->decision);  // x=30 >= t=16
  }
}

TEST(Shard, ApproxRequireAnswersFromTheCountingPath) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 64, 30));
  shard.drain();
  out.submit(shard, query_req("p", 16, 0, ApproxMode::kRequire));
  shard.drain();
  const Response& r = *out.at(1);
  ASSERT_EQ(r.status, StatusCode::kOk);
  if (r.mode == AnswerMode::kApproximate) {
    EXPECT_GT(r.epsilon, 0.0);
    EXPECT_GT(r.confidence, 0.0);
    EXPECT_GT(r.estimate, 0.0);
  }
  const auto stats = shard.stats();
  EXPECT_EQ(stats.completed_exact + stats.completed_approx, 1u);
}

TEST(Shard, KilledShardFlushesQueueAndRecoversOnReboot) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 32, 10));
  shard.drain();

  out.submit(shard, query_req("p", 5));
  out.submit(shard, query_req("p", 5));
  shard.kill();
  shard.drain();  // a killed shard still drains: typed errors, no hangs

  for (std::size_t i = 1; i <= 2; ++i) {
    ASSERT_TRUE(out.at(i).has_value());
    EXPECT_EQ(out.at(i)->status, StatusCode::kShardDown);
    EXPECT_GE(out.at(i)->retry_after_ms, 1u);
  }
  EXPECT_EQ(shard.stats().cancelled_kill, 2u);

  shard.reboot();
  out.submit(shard, query_req("p", 5));  // populations survive the reboot
  shard.drain();
  ASSERT_TRUE(out.at(3).has_value());
  EXPECT_EQ(out.at(3)->status, StatusCode::kOk);
  EXPECT_TRUE(out.at(3)->decision);
}

TEST(Shard, ShutdownRejectsNewWorkAndFlushesQueued) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 32, 10));
  shard.drain();
  out.submit(shard, query_req("p", 5));
  shard.shutdown();
  out.submit(shard, query_req("p", 5));  // rejected synchronously
  ASSERT_TRUE(out.at(2).has_value());
  EXPECT_EQ(out.at(2)->status, StatusCode::kShuttingDown);
  shard.drain();  // queued work flushed, not hung
  ASSERT_TRUE(out.at(1).has_value());
  EXPECT_EQ(out.at(1)->status, StatusCode::kShuttingDown);
}

TEST(Shard, TypedErrorsForBadRequests) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, query_req("ghost", 5));
  out.submit(shard, load_req("p", 32, 10));
  shard.drain();
  EXPECT_EQ(out.at(0)->status, StatusCode::kNotFound);

  out.submit(shard, query_req("p", 0));    // t out of range
  out.submit(shard, query_req("p", 33));   // t > n
  out.submit(shard, load_req("big", 32, 40));  // x > n
  Request oracle = query_req("p", 5, 0, ApproxMode::kNever);
  oracle.algorithm = "oracle";
  out.submit(shard, std::move(oracle));
  Request unknown = query_req("p", 5, 0, ApproxMode::kNever);
  unknown.algorithm = "no-such-algo";
  out.submit(shard, std::move(unknown));
  shard.drain();
  for (std::size_t i = 2; i < out.size(); ++i) {
    ASSERT_TRUE(out.at(i).has_value()) << i;
    EXPECT_EQ(out.at(i)->status, StatusCode::kInvalidArgument) << i;
  }
}

TEST(Shard, AbnsWarmStartHitsThePlanCache) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  out.submit(shard, load_req("p", 128, 40));
  shard.drain();

  Request q = query_req("p", 20, 0, ApproxMode::kNever);
  q.algorithm = "abns:t";
  out.submit(shard, Request(q));
  shard.drain();
  auto stats = shard.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 0u);

  // Same (n, t, algorithm): the second run warm-starts from the cached
  // converged estimate.
  out.submit(shard, Request(q));
  shard.drain();
  stats = shard.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);

  ASSERT_EQ(out.at(1)->status, StatusCode::kOk);
  ASSERT_EQ(out.at(2)->status, StatusCode::kOk);
  EXPECT_TRUE(out.at(1)->decision);
  EXPECT_TRUE(out.at(2)->decision);
  EXPECT_EQ(stats.conformance_violations, 0u);
}

TEST(Shard, PacketTierServesVerdicts) {
  ManualClock clock;
  Shard shard(config(clock));
  Collector out;
  Request load = load_req("pk", 64, 25);
  load.tier = BackendTier::kPacket;
  out.submit(shard, std::move(load));
  shard.drain();
  out.submit(shard, query_req("pk", 10, 0, ApproxMode::kNever));
  shard.drain();
  ASSERT_TRUE(out.at(1).has_value());
  EXPECT_EQ(out.at(1)->status, StatusCode::kOk);
  EXPECT_TRUE(out.at(1)->decision);  // x=25 >= t=10
}

}  // namespace
}  // namespace tcast::service
