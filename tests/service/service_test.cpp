// TcastService routing and control-plane tests: sharded populations,
// control verbs, kill/reboot via requests, shutdown flush. Pumped by hand
// under a ManualClock — no pump thread, no races.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace tcast::service {
namespace {

struct Harness {
  ManualClock clock;
  TcastService svc;

  explicit Harness(ServiceConfig cfg = {}) : svc(patch(cfg, clock)) {}

  static ServiceConfig patch(ServiceConfig cfg, const Clock& clock) {
    cfg.clock = &clock;
    cfg.checked = true;
    return cfg;
  }

  std::optional<Response> roundtrip(Request req) {
    std::optional<Response> out;
    svc.submit(std::move(req), [&](const Response& r) { out = r; });
    svc.drain_all();
    return out;
  }
};

Request make_load(const std::string& pop, std::size_t n, std::size_t x) {
  Request req;
  req.kind = RequestKind::kLoad;
  req.population = pop;
  req.n = n;
  req.x = x;
  req.seed = 11;
  return req;
}

Request make_query(const std::string& pop, std::size_t t) {
  Request req;
  req.kind = RequestKind::kQuery;
  req.population = pop;
  req.t = t;
  req.approx = ApproxMode::kNever;
  return req;
}

TEST(Service, PingPongs) {
  Harness h;
  Request req;
  req.kind = RequestKind::kPing;
  const auto resp = h.roundtrip(std::move(req));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->message, "pong");
}

TEST(Service, LoadQueryDropAcrossShards) {
  Harness h;
  // Enough names to hit multiple shards with high probability; correctness
  // must not depend on which shard a name lands on.
  for (int p = 0; p < 6; ++p) {
    const std::string pop = "pop" + std::to_string(p);
    const auto load = h.roundtrip(make_load(pop, 64, 20));
    ASSERT_TRUE(load.has_value());
    ASSERT_EQ(load->status, StatusCode::kOk) << pop;
    const auto yes = h.roundtrip(make_query(pop, 20));
    ASSERT_EQ(yes->status, StatusCode::kOk);
    EXPECT_TRUE(yes->decision);
    const auto no = h.roundtrip(make_query(pop, 21));
    ASSERT_EQ(no->status, StatusCode::kOk);
    EXPECT_FALSE(no->decision);
  }

  Request drop;
  drop.kind = RequestKind::kDrop;
  drop.population = "pop0";
  EXPECT_EQ(h.roundtrip(std::move(drop))->status, StatusCode::kOk);
  EXPECT_EQ(h.roundtrip(make_query("pop0", 5))->status,
            StatusCode::kNotFound);
}

TEST(Service, ListAndStatsReflectState) {
  Harness h;
  ASSERT_EQ(h.roundtrip(make_load("alpha", 32, 4))->status, StatusCode::kOk);
  ASSERT_EQ(h.roundtrip(make_load("beta", 32, 4))->status, StatusCode::kOk);

  Request list;
  list.kind = RequestKind::kList;
  const auto listed = h.roundtrip(std::move(list));
  ASSERT_EQ(listed->status, StatusCode::kOk);
  EXPECT_NE(listed->message.find("alpha"), std::string::npos);
  EXPECT_NE(listed->message.find("beta"), std::string::npos);

  ASSERT_EQ(h.roundtrip(make_query("alpha", 4))->status, StatusCode::kOk);
  Request stats;
  stats.kind = RequestKind::kStats;
  const auto s = h.roundtrip(std::move(stats));
  ASSERT_EQ(s->status, StatusCode::kOk);
  EXPECT_NE(s->message.find("shard="), std::string::npos);
  EXPECT_NE(s->message.find("plan_hits="), std::string::npos);
  EXPECT_NE(s->message.find("p99_us="), std::string::npos);
}

TEST(Service, KillAndRebootShardViaRequests) {
  Harness h;
  ASSERT_EQ(h.roundtrip(make_load("pop", 32, 10))->status, StatusCode::kOk);
  const std::size_t idx = h.svc.shard_of("pop");

  Request kill;
  kill.kind = RequestKind::kKillShard;
  kill.shard = idx;
  ASSERT_EQ(h.roundtrip(std::move(kill))->status, StatusCode::kOk);

  const auto down = h.roundtrip(make_query("pop", 5));
  ASSERT_TRUE(down.has_value());  // liveness even on a dead shard
  EXPECT_EQ(down->status, StatusCode::kShardDown);

  Request reboot;
  reboot.kind = RequestKind::kRebootShard;
  reboot.shard = idx;
  ASSERT_EQ(h.roundtrip(std::move(reboot))->status, StatusCode::kOk);
  const auto ok = h.roundtrip(make_query("pop", 5));
  ASSERT_EQ(ok->status, StatusCode::kOk);
  EXPECT_TRUE(ok->decision);
}

TEST(Service, KillShardIndexOutOfRangeIsTyped) {
  Harness h;
  Request kill;
  kill.kind = RequestKind::kKillShard;
  kill.shard = 99;
  EXPECT_EQ(h.roundtrip(std::move(kill))->status,
            StatusCode::kInvalidArgument);
}

TEST(Service, ShutdownFlushesAndRejects) {
  Harness h;
  ASSERT_EQ(h.roundtrip(make_load("pop", 32, 10))->status, StatusCode::kOk);

  // Queue a query, then shut down before pumping: the queued query must be
  // flushed with a typed error, not hang.
  std::optional<Response> queued;
  h.svc.submit(make_query("pop", 5), [&](const Response& r) { queued = r; });

  Request shutdown;
  shutdown.kind = RequestKind::kShutdown;
  std::optional<Response> ack;
  h.svc.submit(std::move(shutdown), [&](const Response& r) { ack = r; });
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, StatusCode::kOk);

  h.svc.drain_all();
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->status, StatusCode::kShuttingDown);

  EXPECT_EQ(h.roundtrip(make_query("pop", 5))->status,
            StatusCode::kShuttingDown);
  Request ping;
  ping.kind = RequestKind::kPing;
  EXPECT_EQ(h.roundtrip(std::move(ping))->status, StatusCode::kShuttingDown);
}

}  // namespace
}  // namespace tcast::service
