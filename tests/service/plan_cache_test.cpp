// Per-shard bin-plan cache: LRU semantics and the hit/miss accounting
// surfaced in the stats response.
#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

namespace tcast::service {
namespace {

PlanKey key(std::size_t n, std::size_t t, const char* algo = "2tbins") {
  return PlanKey{n, t, algo};
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.lookup(key(64, 8)).has_value());
  cache.insert(key(64, 8), PlanEntry{16, 0.0});
  const auto plan = cache.lookup(key(64, 8));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->initial_bins, 16u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, KeyIsTheFullTriple) {
  PlanCache cache(8);
  cache.insert(key(64, 8, "2tbins"), PlanEntry{16, 0.0});
  EXPECT_FALSE(cache.lookup(key(64, 8, "abns:t")).has_value());
  EXPECT_FALSE(cache.lookup(key(64, 9, "2tbins")).has_value());
  EXPECT_FALSE(cache.lookup(key(65, 8, "2tbins")).has_value());
  EXPECT_TRUE(cache.lookup(key(64, 8, "2tbins")).has_value());
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.insert(key(1, 1), PlanEntry{1, 0.0});
  cache.insert(key(2, 2), PlanEntry{2, 0.0});
  // Touch (1,1) so (2,2) becomes the LRU entry.
  EXPECT_TRUE(cache.lookup(key(1, 1)).has_value());
  cache.insert(key(3, 3), PlanEntry{3, 0.0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(key(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(key(2, 2)).has_value());
  EXPECT_TRUE(cache.lookup(key(3, 3)).has_value());
}

TEST(PlanCache, InsertRefreshesExistingEntry) {
  PlanCache cache(2);
  cache.insert(key(64, 8), PlanEntry{16, 0.0});
  cache.insert(key(64, 8), PlanEntry{16, 7.5});
  EXPECT_EQ(cache.size(), 1u);
  const auto plan = cache.lookup(key(64, 8));
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->p_estimate, 7.5);
}

}  // namespace
}  // namespace tcast::service
