// Service-level chaos: trace codec, campaign determinism, the seeded
// zero-violation battery, and the ddmin shrinker's contract.
#include "service/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace tcast::service {
namespace {

TEST(ServiceOpCodec, EveryKindRoundTrips) {
  std::vector<ServiceOp> ops;
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kLoad;
    op.pop = "p0";
    op.n = 64;
    op.x = 20;
    op.seed = 99;
    ops.push_back(op);
  }
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kQuery;
    op.pop = "p0";
    op.t = 16;
    op.deadline_ms = 5;
    op.approx = ApproxMode::kNever;
    ops.push_back(op);
  }
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kKill;
    op.shard = 1;
    ops.push_back(op);
  }
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kReboot;
    op.shard = 1;
    ops.push_back(op);
  }
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kAdvance;
    op.advance_us = 2500;
    ops.push_back(op);
  }
  {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kPump;
    ops.push_back(op);
  }

  for (const ServiceOp& op : ops) {
    const auto parsed = ServiceOp::parse(op.encode());
    ASSERT_TRUE(parsed.has_value()) << op.encode();
    EXPECT_EQ(*parsed, op) << op.encode();
  }

  const auto trace = parse_trace(encode_trace(ops));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(*trace, ops);
}

TEST(ServiceChaos, OpGenerationIsAPureFunctionOfTheSeed) {
  ServiceCampaignConfig cfg;
  cfg.seed = 42;
  cfg.ops = 120;
  const auto a = generate_service_ops(cfg);
  const auto b = generate_service_ops(cfg);
  EXPECT_EQ(a, b);

  cfg.seed = 43;
  EXPECT_NE(generate_service_ops(cfg), a);

  // The script actually exercises the fault surface.
  const auto has = [&](ServiceOp::Kind k) {
    return std::any_of(a.begin(), a.end(),
                       [&](const ServiceOp& op) { return op.kind == k; });
  };
  EXPECT_TRUE(has(ServiceOp::Kind::kQuery));
  EXPECT_TRUE(has(ServiceOp::Kind::kKill));
  EXPECT_TRUE(has(ServiceOp::Kind::kReboot));
  EXPECT_TRUE(has(ServiceOp::Kind::kPump));
}

TEST(ServiceChaos, SeededCampaignsUpholdTheServiceContract) {
  // The robustness acceptance bar: shards die and reboot mid-query,
  // deadlines expire inside rounds, queues overflow — and still every
  // request resolves, no exact verdict is wrong, every estimate is tagged
  // and within its claimed band at the acceptance floor.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ServiceCampaignConfig cfg;
    cfg.seed = seed;
    cfg.ops = 250;
    const auto result = run_service_campaign(cfg);
    EXPECT_TRUE(result.report.ok())
        << "seed " << seed << ": " << result.report.summary();
    EXPECT_TRUE(result.minimized.empty());
    EXPECT_EQ(result.report.hangs, 0u) << "seed " << seed;
    EXPECT_EQ(result.report.wrong_exact, 0u) << "seed " << seed;
    EXPECT_EQ(result.report.untagged_approx, 0u) << "seed " << seed;
    EXPECT_EQ(result.report.conformance_violations, 0u) << "seed " << seed;
    // The campaign must actually have exercised the service.
    EXPECT_GT(result.report.submitted, 50u) << "seed " << seed;
    EXPECT_EQ(result.report.resolved, result.report.submitted);
  }
}

TEST(ServiceChaos, ReplayIsDeterministic) {
  ServiceCampaignConfig cfg;
  cfg.seed = 5;
  cfg.ops = 150;
  const auto ops = generate_service_ops(cfg);
  const auto a = run_service_ops(ops, cfg);
  const auto b = run_service_ops(ops, cfg);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.ok_exact, b.ok_exact);
  EXPECT_EQ(a.ok_approx, b.ok_approx);
  EXPECT_EQ(a.typed_errors, b.typed_errors);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(ServiceChaos, ShrinkerFindsALocallyMinimalReproducer) {
  // Synthetic failure: "the trace contains a kill op". ddmin must shrink
  // an interleaved 60-op script to exactly one op.
  ServiceCampaignConfig cfg;
  cfg.seed = 9;
  cfg.ops = 60;
  auto ops = generate_service_ops(cfg);
  const auto failing = [](std::span<const ServiceOp> candidate) {
    return std::any_of(
        candidate.begin(), candidate.end(),
        [](const ServiceOp& op) { return op.kind == ServiceOp::Kind::kKill; });
  };
  ASSERT_TRUE(failing(ops));  // otherwise the scenario is vacuous
  const auto minimized = shrink_service_ops(std::move(ops), failing);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0].kind, ServiceOp::Kind::kKill);
}

TEST(ServiceChaos, ShrinkerReturnsInputWhenPredicateNeverFires) {
  ServiceCampaignConfig cfg;
  cfg.seed = 9;
  cfg.ops = 20;
  auto ops = generate_service_ops(cfg);
  const auto original = ops;
  const auto minimized = shrink_service_ops(
      std::move(ops), [](std::span<const ServiceOp>) { return false; });
  EXPECT_EQ(minimized, original);
}

}  // namespace
}  // namespace tcast::service
