// backcast primitive tests on the packet-level substrate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rcd/backcast.hpp"
#include "sim/simulator.hpp"

namespace tcast::rcd {
namespace {

struct BackcastWorld {
  explicit BackcastWorld(std::size_t participants,
                         radio::ChannelConfig cfg = {}, std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::move(cfg)) {
    initiator_radio =
        std::make_unique<radio::Radio>(channel, kNoNode, kInitiatorAddr);
    initiator_radio->power_on();
    initiator = std::make_unique<BackcastInitiator>(*initiator_radio);
    initiator_radio->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          initiator->on_frame(f, info);
        });
    positive.assign(participants, false);
    for (std::size_t i = 0; i < participants; ++i) {
      auto radio = std::make_unique<radio::Radio>(
          channel, static_cast<NodeId>(i), participant_addr(static_cast<NodeId>(i)));
      radio->power_on();
      auto responder = std::make_unique<BackcastResponder>(
          *radio, [this, i](std::uint8_t) { return positive[i]; });
      auto* r = responder.get();
      radio->set_receive_handler(
          [r](const radio::Frame& f, const radio::RxInfo&) { r->on_frame(f); });
      radios.push_back(std::move(radio));
      responders.push_back(std::move(responder));
    }
  }

  void announce(const std::vector<std::uint16_t>& wire) {
    bool done = false;
    initiator->announce(1, 1, wire, [&done] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  BackcastInitiator::PollResult poll(std::uint16_t bin) {
    BackcastInitiator::PollResult result;
    bool done = false;
    initiator->poll_bin(bin, [&](BackcastInitiator::PollResult r) {
      result = r;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return result;
  }

  sim::Simulator sim;
  radio::Channel channel;
  std::unique_ptr<radio::Radio> initiator_radio;
  std::unique_ptr<BackcastInitiator> initiator;
  std::vector<bool> positive;
  std::vector<std::unique_ptr<radio::Radio>> radios;
  std::vector<std::unique_ptr<BackcastResponder>> responders;
};

TEST(Backcast, PredicateArmsOnlyPositiveAssignedNodes) {
  BackcastWorld w(4);
  w.positive = {true, false, true, false};
  w.announce({0, 0, 1, kNotInRound});
  EXPECT_EQ(w.responders[0]->armed_bin(), std::uint16_t{0});
  EXPECT_FALSE(w.responders[1]->armed_bin().has_value());  // negative
  EXPECT_EQ(w.responders[2]->armed_bin(), std::uint16_t{1});
  EXPECT_FALSE(w.responders[3]->armed_bin().has_value());  // excluded
  EXPECT_EQ(w.radios[0]->alt_address(), radio::kEphemeralBase + 0);
  EXPECT_EQ(w.radios[2]->alt_address(), radio::kEphemeralBase + 1);
}

TEST(Backcast, EmptyBinIsSilent) {
  BackcastWorld w(4);
  w.positive = {false, false, false, false};
  w.announce({0, 0, 1, 1});
  EXPECT_FALSE(w.poll(0).nonempty);
  EXPECT_FALSE(w.poll(1).nonempty);
}

TEST(Backcast, SinglePositiveYieldsOneHack) {
  BackcastWorld w(4);
  w.positive = {false, true, false, false};
  w.announce({0, 0, 1, 1});
  const auto r = w.poll(0);
  EXPECT_TRUE(r.nonempty);
  EXPECT_EQ(r.superposed, 1u);
  EXPECT_FALSE(w.poll(1).nonempty);
}

TEST(Backcast, MultiplePositivesSuperpose) {
  BackcastWorld w(6);
  w.positive = {true, true, true, true, false, false};
  w.announce({0, 0, 0, 0, 0, 0});
  const auto r = w.poll(0);
  EXPECT_TRUE(r.nonempty);
  EXPECT_EQ(r.superposed, 4u);
}

TEST(Backcast, ReAnnounceRebins) {
  BackcastWorld w(2);
  w.positive = {true, true};
  w.announce({0, 1});
  EXPECT_TRUE(w.poll(0).nonempty);
  w.announce({1, 0});  // swap bins
  EXPECT_TRUE(w.poll(0).nonempty);
  EXPECT_EQ(w.responders[0]->armed_bin(), std::uint16_t{1});
  EXPECT_EQ(w.responders[1]->armed_bin(), std::uint16_t{0});
}

TEST(Backcast, FalseNegativeInjection) {
  radio::ChannelConfig cfg;
  cfg.hack = radio::HackReceptionModel(1.0, 1.0);  // all HACKs lost
  BackcastWorld w(3, cfg);
  w.positive = {true, true, true};
  w.announce({0, 0, 0});
  EXPECT_FALSE(w.poll(0).nonempty);  // false negative, by construction
}

TEST(Backcast, NoFalsePositivesEver) {
  // Even with an aggressive loss/noise configuration, silence cannot become
  // a HACK: the initiator only reports nonempty on a decoded HACK.
  radio::ChannelConfig cfg;
  cfg.clean_loss = 0.5;
  BackcastWorld w(5, cfg, 99);
  w.positive = {false, false, false, false, false};
  w.announce({0, 0, 0, 0, 0});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(w.poll(0).nonempty);
}

TEST(Backcast, PollsAreCounted) {
  BackcastWorld w(2);
  w.positive = {true, false};
  w.announce({0, 1});
  w.poll(0);
  w.poll(1);
  w.poll(0);
  EXPECT_EQ(w.initiator->polls_sent(), 3u);
}

TEST(Backcast, StaleHackFromPreviousPollIgnored) {
  // A HACK for sequence s must not satisfy the poll with sequence s+1.
  BackcastWorld w(1);
  w.positive = {true};
  w.announce({0});
  EXPECT_TRUE(w.poll(0).nonempty);
  w.positive = {false};
  w.announce({kNotInRound});
  EXPECT_FALSE(w.poll(0).nonempty);
}

}  // namespace
}  // namespace tcast::rcd
