// pollcast primitive tests: CCA-based 1+ detection plus 2+ capture.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rcd/pollcast.hpp"
#include "sim/simulator.hpp"

namespace tcast::rcd {
namespace {

struct PollcastWorld {
  explicit PollcastWorld(std::size_t participants,
                         radio::ChannelConfig cfg = {}, std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::move(cfg)) {
    initiator_radio =
        std::make_unique<radio::Radio>(channel, kNoNode, kInitiatorAddr);
    initiator_radio->power_on();
    initiator = std::make_unique<PollcastInitiator>(*initiator_radio);
    initiator_radio->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          initiator->on_frame(f, info);
        });
    initiator_radio->set_activity_handler(
        [this](SimTime s, SimTime e) { initiator->on_activity(s, e); });
    positive.assign(participants, false);
    for (std::size_t i = 0; i < participants; ++i) {
      auto radio = std::make_unique<radio::Radio>(
          channel, static_cast<NodeId>(i),
          participant_addr(static_cast<NodeId>(i)));
      radio->power_on();
      auto responder = std::make_unique<PollcastResponder>(
          *radio, [this, i](std::uint8_t) { return positive[i]; });
      auto* r = responder.get();
      radio->set_receive_handler(
          [r](const radio::Frame& f, const radio::RxInfo&) { r->on_frame(f); });
      radios.push_back(std::move(radio));
      responders.push_back(std::move(responder));
    }
  }

  void announce(const std::vector<std::uint16_t>& wire) {
    bool done = false;
    initiator->announce(1, 1, wire, [&done] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  PollcastInitiator::PollResult poll(std::uint16_t bin) {
    PollcastInitiator::PollResult result;
    bool done = false;
    initiator->poll_bin(bin, [&](PollcastInitiator::PollResult r) {
      result = r;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return result;
  }

  sim::Simulator sim;
  radio::Channel channel;
  std::unique_ptr<radio::Radio> initiator_radio;
  std::unique_ptr<PollcastInitiator> initiator;
  std::vector<bool> positive;
  std::vector<std::unique_ptr<radio::Radio>> radios;
  std::vector<std::unique_ptr<PollcastResponder>> responders;
};

TEST(Pollcast, SilenceOnEmptyBin) {
  PollcastWorld w(4);
  w.positive = {false, false, false, false};
  w.announce({0, 0, 0, 0});
  const auto r = w.poll(0);
  EXPECT_FALSE(r.activity);
  EXPECT_FALSE(r.captured.has_value());
}

TEST(Pollcast, LoneReplyIsCapturedWithIdentity) {
  PollcastWorld w(4);
  w.positive = {false, false, true, false};
  w.announce({0, 0, 0, 0});
  const auto r = w.poll(0);
  EXPECT_TRUE(r.activity);
  ASSERT_TRUE(r.captured.has_value());
  EXPECT_EQ(*r.captured, NodeId{2});
}

TEST(Pollcast, CollisionWithoutCaptureIsActivityOnly) {
  PollcastWorld w(4);  // default channel: NoCaptureModel
  w.positive = {true, true, true, false};
  w.announce({0, 0, 0, 0});
  const auto r = w.poll(0);
  EXPECT_TRUE(r.activity);
  EXPECT_FALSE(r.captured.has_value());
}

TEST(Pollcast, CaptureEffectYieldsSomeIdentity) {
  radio::ChannelConfig cfg;
  cfg.capture = std::make_shared<radio::GeometricCaptureModel>(1.0, 1.0);
  PollcastWorld w(3, cfg);
  w.positive = {true, true, false};
  w.announce({0, 0, 0});
  const auto r = w.poll(0);
  EXPECT_TRUE(r.activity);
  ASSERT_TRUE(r.captured.has_value());
  EXPECT_TRUE(*r.captured == NodeId{0} || *r.captured == NodeId{1});
}

TEST(Pollcast, BinFilteringRespected) {
  PollcastWorld w(4);
  w.positive = {true, true, true, true};
  w.announce({0, 0, 1, 1});
  // Polling bin 1 must not trigger bin 0's nodes.
  const auto r = w.poll(1);
  EXPECT_TRUE(r.activity);
  // All four positive, but the bin-1 reply collides only between nodes 2,3.
  const auto r0 = w.poll(0);
  EXPECT_TRUE(r0.activity);
}

TEST(Pollcast, ExcludedNodesStaySilent) {
  PollcastWorld w(2);
  w.positive = {true, true};
  w.announce({kNotInRound, kNotInRound});
  const auto r = w.poll(0);
  EXPECT_FALSE(r.activity);
}

TEST(Pollcast, RepeatedPollsAreIndependent) {
  PollcastWorld w(2);
  w.positive = {true, false};
  w.announce({0, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(w.poll(0).activity);
    EXPECT_FALSE(w.poll(1).activity);
  }
}

}  // namespace
}  // namespace tcast::rcd
