// Two concurrent backcast sessions on the CC2420's two hardware address
// slots (paper Sec. IV-D.1: "CC2420 radio supports two hardware addresses
// ... enabling two concurrent backcasts at most").
//
// Two initiators serve two different predicates; every participant runs one
// responder per slot. After one announce each, the initiators interleave
// polls freely — neither session needs re-arming when the other polls.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rcd/backcast.hpp"
#include "sim/simulator.hpp"

namespace tcast::rcd {
namespace {

constexpr std::uint8_t kPredA = 1;  // e.g. "temperature above limit"
constexpr std::uint8_t kPredB = 2;  // e.g. "battery low"

struct DualWorld {
  explicit DualWorld(std::size_t participants, std::uint64_t seed = 1)
      : sim(seed), channel(sim, {}) {
    // Initiator A on the short slot, initiator B on the extended slot.
    radio_a = std::make_unique<radio::Radio>(channel, kNoNode,
                                             kInitiatorAddr);
    radio_a->power_on();
    init_a = std::make_unique<BackcastInitiator>(
        *radio_a, BackcastInitiator::Config{.slot = AddressSlot::kShort});
    radio_a->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          init_a->on_frame(f, info);
        });

    radio_b = std::make_unique<radio::Radio>(channel, kNoNode,
                                             kSecondInitiatorAddr);
    radio_b->power_on();
    init_b = std::make_unique<BackcastInitiator>(
        *radio_b, BackcastInitiator::Config{.slot = AddressSlot::kExtended});
    radio_b->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          init_b->on_frame(f, info);
        });

    pos_a.assign(participants, false);
    pos_b.assign(participants, false);
    for (std::size_t i = 0; i < participants; ++i) {
      auto radio = std::make_unique<radio::Radio>(
          channel, static_cast<NodeId>(i),
          participant_addr(static_cast<NodeId>(i)));
      radio->power_on();
      auto eval = [this, i](std::uint8_t pred) {
        return pred == kPredA ? pos_a[i] : pos_b[i];
      };
      auto responder_a = std::make_unique<BackcastResponder>(
          *radio, eval,
          BackcastResponder::Config{.slot = AddressSlot::kShort,
                                    .served_predicate = kPredA});
      auto responder_b = std::make_unique<BackcastResponder>(
          *radio, eval,
          BackcastResponder::Config{.slot = AddressSlot::kExtended,
                                    .served_predicate = kPredB});
      auto* ra = responder_a.get();
      auto* rb = responder_b.get();
      radio->set_receive_handler(
          [ra, rb](const radio::Frame& f, const radio::RxInfo&) {
            if (!ra->on_frame(f)) rb->on_frame(f);
          });
      radios.push_back(std::move(radio));
      responders_a.push_back(std::move(responder_a));
      responders_b.push_back(std::move(responder_b));
    }
  }

  void announce(BackcastInitiator& init, std::uint8_t pred,
                const std::vector<std::uint16_t>& wire) {
    bool done = false;
    init.announce(pred, pred, wire, [&done] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  bool poll(BackcastInitiator& init, std::uint16_t bin) {
    bool nonempty = false, done = false;
    init.poll_bin(bin, [&](BackcastInitiator::PollResult r) {
      nonempty = r.nonempty;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return nonempty;
  }

  sim::Simulator sim;
  radio::Channel channel;
  std::unique_ptr<radio::Radio> radio_a, radio_b;
  std::unique_ptr<BackcastInitiator> init_a, init_b;
  std::vector<bool> pos_a, pos_b;
  std::vector<std::unique_ptr<radio::Radio>> radios;
  std::vector<std::unique_ptr<BackcastResponder>> responders_a, responders_b;
};

TEST(DualBackcast, BothSessionsArmIndependentSlots) {
  DualWorld w(4);
  w.pos_a = {true, false, true, false};
  w.pos_b = {false, true, true, false};
  w.announce(*w.init_a, kPredA, {0, 0, 1, 1});
  w.announce(*w.init_b, kPredB, {1, 1, 0, 0});
  // Node 2 is positive for both: armed on both slots simultaneously.
  EXPECT_EQ(w.radios[2]->alt_address(), radio::kEphemeralBase + 1);
  EXPECT_EQ(w.radios[2]->ext_alt_address(), kEphemeralBaseExt + 0);
  // Node 0 only serves A; node 1 only serves B.
  EXPECT_TRUE(w.radios[0]->alt_address().has_value());
  EXPECT_FALSE(w.radios[0]->ext_alt_address().has_value());
  EXPECT_FALSE(w.radios[1]->alt_address().has_value());
  EXPECT_TRUE(w.radios[1]->ext_alt_address().has_value());
}

TEST(DualBackcast, InterleavedPollsStayIsolated) {
  DualWorld w(6);
  w.pos_a = {true, true, false, false, false, false};
  w.pos_b = {false, false, false, false, true, true};
  w.announce(*w.init_a, kPredA, {0, 1, 0, 1, 0, 1});
  w.announce(*w.init_b, kPredB, {0, 1, 0, 1, 0, 1});
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(w.poll(*w.init_a, 0));    // node 0 positive for A
    EXPECT_TRUE(w.poll(*w.init_b, 0));    // node 4 positive for B
    EXPECT_TRUE(w.poll(*w.init_a, 1));    // node 1
    EXPECT_TRUE(w.poll(*w.init_b, 1));    // node 5
  }
}

TEST(DualBackcast, SessionsDoNotCrossTalk) {
  DualWorld w(4);
  w.pos_a = {true, true, true, true};
  w.pos_b = {false, false, false, false};
  w.announce(*w.init_a, kPredA, {0, 0, 0, 0});
  w.announce(*w.init_b, kPredB, {0, 0, 0, 0});
  EXPECT_TRUE(w.poll(*w.init_a, 0));
  // B's predicate holds nowhere: its poll must be silent even though every
  // node is armed (on the *other* slot) for A.
  EXPECT_FALSE(w.poll(*w.init_b, 0));
}

TEST(DualBackcast, ReannouncingOneSessionLeavesTheOtherArmed) {
  DualWorld w(3);
  w.pos_a = {true, false, false};
  w.pos_b = {true, true, true};
  w.announce(*w.init_a, kPredA, {0, 0, 0});
  w.announce(*w.init_b, kPredB, {0, 0, 0});
  EXPECT_TRUE(w.poll(*w.init_a, 0));
  EXPECT_TRUE(w.poll(*w.init_b, 0));
  // A rebins; B's arming must survive untouched.
  w.announce(*w.init_a, kPredA, {1, 1, 1});
  EXPECT_TRUE(w.poll(*w.init_a, 1));
  EXPECT_TRUE(w.poll(*w.init_b, 0));
  EXPECT_EQ(w.radios[1]->ext_alt_address(), kEphemeralBaseExt + 0);
}

TEST(DualBackcast, HacksReachTheRightInitiator) {
  // A HACK answers the frame's sender: B's polls must never satisfy A.
  DualWorld w(2);
  w.pos_a = {false, false};
  w.pos_b = {true, true};
  w.announce(*w.init_a, kPredA, {0, 0});
  w.announce(*w.init_b, kPredB, {0, 0});
  bool a_saw = false;
  w.init_a->poll_bin(0, [&](BackcastInitiator::PollResult r) {
    a_saw = r.nonempty;
  });
  w.sim.run();
  EXPECT_FALSE(a_saw);
  EXPECT_TRUE(w.poll(*w.init_b, 0));
}

}  // namespace
}  // namespace tcast::rcd
