// Metamorphic conformance relations (docs/CONFORMANCE.md):
//   M1 — order-preserving node relabeling (id → offset + id·stride) leaves
//        decision and query count bit-identical;
//   M2 — relabeling the bin query order (in-order vs nonempty-first
//        accounting) leaves the decision unchanged;
//   M3 — under the deterministic configuration (contiguous bins, in-order,
//        1+ exact) seed shifts leave deterministic algorithms bit-identical
//        and every algorithm's decision unchanged;
//   M4 — counting estimates are permutation-invariant in the node ids
//        (relabeling leaves estimate and query count bit-identical) and
//        monotone in distribution: adding positives never lowers the mean
//        estimate at fixed seeds.
#include <gtest/gtest.h>

#include "conformance/count_monitor.hpp"
#include "conformance/harness.hpp"

namespace tcast::conformance {
namespace {

TEST(Metamorphic, NodeRelabelingPreservesDecisionAndQueryCount) {
  RngStream scenario_rng(0x3e7a, 11);
  const std::pair<NodeId, NodeId> maps[] = {
      {100, 1},  // pure shift
      {0, 3},    // pure stride
      {17, 5},   // both
  };
  for (std::size_t i = 0; i < 40; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    for (const auto& spec : core::algorithm_registry()) {
      for (const auto& [offset, stride] : maps) {
        const auto report =
            metamorphic_relabel_check(spec, sc, offset, stride);
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Metamorphic, BinOrderRelabelingPreservesDecision) {
  RngStream scenario_rng(0xb1b0, 12);
  for (std::size_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      const auto report = metamorphic_bin_order_check(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

TEST(Metamorphic, SeedShiftPreservesDeterministicQueryCounts) {
  RngStream scenario_rng(0x5eed, 13);
  for (std::size_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      for (const std::uint64_t shift : {1ULL, 0x9e3779b9ULL}) {
        const auto report = metamorphic_seed_shift_check(
            spec, sc, shift, has_deterministic_counts(spec.name));
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Metamorphic, ProbAbnsIsClassifiedNondeterministic) {
  EXPECT_FALSE(has_deterministic_counts("prob-abns"));
  EXPECT_TRUE(has_deterministic_counts("2tbins"));
  EXPECT_TRUE(has_deterministic_counts("abns:t"));
  // The count:* adapters consume estimator RNG, so M3's bit-identical
  // query-count relation must not apply to them.
  EXPECT_FALSE(has_deterministic_counts("count:nz-geom"));
  EXPECT_FALSE(has_deterministic_counts("count:beep-exact"));
}

TEST(Metamorphic, M4CountEstimatesArePermutationInvariantInNodeIds) {
  RngStream scenario_rng(0x4e1a, 14);
  const std::pair<NodeId, NodeId> maps[] = {
      {100, 1},  // pure shift
      {0, 3},    // pure stride
      {17, 5},   // both
  };
  for (std::size_t i = 0; i < 30; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    for (const auto& spec : core::counting_registry()) {
      for (const auto& [offset, stride] : maps) {
        const auto report =
            metamorphic_count_relabel_check(spec, sc, offset, stride);
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Metamorphic, M4MeanEstimateIsMonotoneWhenPositivesAreAdded) {
  // Monotone in distribution, not per-sample: at fixed seeds the mean over
  // 300 trials must not drop when x grows. A small slack absorbs the
  // Monte-Carlo noise of the approximate estimators (the exact counter gets
  // none).
  constexpr std::size_t kN = 96, kTrials = 300;
  for (const auto& spec : core::counting_registry()) {
    double prev_mean = -1.0;
    std::size_t prev_x = 0;
    for (const std::size_t x : {0u, 3u, 9u, 24u, 48u, 96u}) {
      const auto report =
          measure_count_accuracy(spec, kN, x, kTrials, 0x304 + x);
      const double slack = spec.exact ? 0.0 : 0.08 * prev_mean;
      EXPECT_GE(report.mean_estimate, prev_mean - slack)
          << spec.name << " x " << prev_x << " -> " << x;
      prev_mean = report.mean_estimate;
      prev_x = x;
    }
  }
}

}  // namespace
}  // namespace tcast::conformance
