// Metamorphic conformance relations (docs/CONFORMANCE.md):
//   M1 — order-preserving node relabeling (id → offset + id·stride) leaves
//        decision and query count bit-identical;
//   M2 — relabeling the bin query order (in-order vs nonempty-first
//        accounting) leaves the decision unchanged;
//   M3 — under the deterministic configuration (contiguous bins, in-order,
//        1+ exact) seed shifts leave deterministic algorithms bit-identical
//        and every algorithm's decision unchanged.
#include <gtest/gtest.h>

#include "conformance/harness.hpp"

namespace tcast::conformance {
namespace {

TEST(Metamorphic, NodeRelabelingPreservesDecisionAndQueryCount) {
  RngStream scenario_rng(0x3e7a, 11);
  const std::pair<NodeId, NodeId> maps[] = {
      {100, 1},  // pure shift
      {0, 3},    // pure stride
      {17, 5},   // both
  };
  for (std::size_t i = 0; i < 40; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    for (const auto& spec : core::algorithm_registry()) {
      for (const auto& [offset, stride] : maps) {
        const auto report =
            metamorphic_relabel_check(spec, sc, offset, stride);
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Metamorphic, BinOrderRelabelingPreservesDecision) {
  RngStream scenario_rng(0xb1b0, 12);
  for (std::size_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      const auto report = metamorphic_bin_order_check(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

TEST(Metamorphic, SeedShiftPreservesDeterministicQueryCounts) {
  RngStream scenario_rng(0x5eed, 13);
  for (std::size_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      for (const std::uint64_t shift : {1ULL, 0x9e3779b9ULL}) {
        const auto report = metamorphic_seed_shift_check(
            spec, sc, shift, has_deterministic_counts(spec.name));
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Metamorphic, ProbAbnsIsClassifiedNondeterministic) {
  EXPECT_FALSE(has_deterministic_counts("prob-abns"));
  EXPECT_TRUE(has_deterministic_counts("2tbins"));
  EXPECT_TRUE(has_deterministic_counts("abns:t"));
}

}  // namespace
}  // namespace tcast::conformance
