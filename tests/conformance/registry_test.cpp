// Registry surface tests: lookup negative paths and the smoke guarantee
// that every registered algorithm completes (with the correct decision) on
// a small scenario under both collision models.
#include <gtest/gtest.h>

#include <set>

#include "core/registry.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

TEST(Registry, UnknownNameReturnsNullptr) {
  EXPECT_EQ(find_algorithm("no-such-algorithm"), nullptr);
  EXPECT_EQ(find_algorithm(""), nullptr);
  EXPECT_EQ(find_algorithm("2tbins "), nullptr);  // no trimming
  EXPECT_EQ(find_algorithm("2TBINS"), nullptr);   // case-sensitive
}

TEST(Registry, KnownNamesResolveToThemselves) {
  for (const auto& spec : algorithm_registry()) {
    const AlgorithmSpec* found = find_algorithm(spec.name);
    ASSERT_NE(found, nullptr) << spec.name;
    EXPECT_EQ(found->name, spec.name);
    EXPECT_NE(found->run, nullptr) << spec.name;
    EXPECT_FALSE(found->description.empty()) << spec.name;
  }
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : algorithm_registry())
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate registry name: " << spec.name;
}

TEST(Registry, EverySpecCompletesOn16NodesUnderBothModels) {
  for (const auto model :
       {group::CollisionModel::kOnePlus, group::CollisionModel::kTwoPlus}) {
    for (const auto& spec : algorithm_registry()) {
      for (const std::size_t x : {0u, 3u, 7u, 16u}) {
        RngStream rng(1234 + x, model == group::CollisionModel::kOnePlus);
        group::ExactChannel::Config cfg;
        cfg.model = model;
        auto channel =
            group::ExactChannel::with_random_positives(16, x, rng, cfg);
        const std::size_t t = 5;
        const auto out =
            spec.run(channel, channel.all_nodes(), t, rng, EngineOptions{});
        EXPECT_EQ(out.decision, x >= t)
            << spec.name << " model=" << group::to_string(model)
            << " x=" << x;
        EXPECT_EQ(out.queries, channel.queries_used())
            << spec.name << " model=" << group::to_string(model)
            << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace tcast::core
