// Conformance audit of the counting portfolio:
//   * checked randomized sweeps (online invariants + count-outcome checks,
//     both models, with and without loss);
//   * counting differential mode (exact estimators = ground truth, x = 0
//     proven, on the loss-free tier);
//   * the threshold-via-count adapters against the direct threshold
//     algorithms on clean channels (satellite: registry-wide differential);
//   * the lossy-exactness gate: CheckedChannel must refuse estimators that
//     claim exact counts / confidence 1 on channels declaring lossy()
//     (mirroring the PR 2 ≥2-activity gate);
//   * the statistical (1±ε)-acceptance monitor at fixed seeds.
#include <gtest/gtest.h>

#include <algorithm>

#include "conformance/count_monitor.hpp"
#include "conformance/harness.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

TEST(CountingConformance, SweepIsViolationFreeAcrossTheRegistry) {
  RngStream scenario_rng(0xc041, 21);
  for (std::size_t i = 0; i < 120; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    for (const auto& spec : core::counting_registry()) {
      const auto report = check_counting_algorithm(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

TEST(CountingConformance, DifferentialModeHoldsOnRandomScenarios) {
  RngStream scenario_rng(0xc042, 22);
  for (std::size_t i = 0; i < 80; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    for (const auto& report : counting_differential_check(sc)) {
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

// Satellite: adapter verdicts must match the direct threshold algorithms on
// clean channels. differential_check drives every registry entry — the
// count:* adapters included — and flags any decision diverging from ground
// truth, so unanimity here IS the adapter-vs-direct comparison.
TEST(CountingConformance, AdaptersAgreeWithDirectAlgorithmsCleanChannels) {
  RngStream scenario_rng(0xc043, 23);
  std::size_t adapters_seen = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    const auto reports = differential_check(sc);
    for (const auto& report : reports) {
      EXPECT_TRUE(report.ok()) << report.summary();
      if (report.algorithm.starts_with("count:")) ++adapters_seen;
    }
  }
  EXPECT_EQ(adapters_seen, 60 * core::counting_registry().size());
}

// Satellite: the lossy-exactness gate. A fabricated outcome claiming an
// exact count (or confidence 1) on a channel that declares lossy() must be
// rejected — silence under loss proves nothing, exactly like the ≥2
// activity inference PR 2 gated.
TEST(CountingConformance, CheckedChannelRefusesExactnessClaimsUnderLoss) {
  RngStream rng(0xc044);
  auto exact = group::ExactChannel::with_random_positives(16, 4, rng);
  LossyChannel lossy(exact, 0.2, rng);
  CheckedChannel::Config cfg;
  cfg.exact_semantics = false;
  cfg.two_plus_activity_counts_two = false;
  CheckedChannel checked(lossy, exact.all_nodes(), cfg);

  core::CountOutcome claim;
  claim.estimate = 4.0;
  claim.exact = true;  // unsound: loss could have eaten the evidence
  claim.confidence = 1.0;
  claim.queries = 0;
  checked.check_count_outcome(claim);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.violations().front().category,
            Violation::Category::kTruth);
}

TEST(CountingConformance, RealEstimatorsNeverClaimExactnessUnderLoss) {
  RngStream scenario_rng(0xc045, 24);
  for (std::size_t i = 0; i < 60; ++i) {
    Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    if (!sc.lossy()) sc.loss_prob = 0.15;
    for (const auto& spec : core::counting_registry()) {
      const auto report = check_counting_algorithm(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_FALSE(report.outcome.exact) << spec.name;
      EXPECT_LT(report.outcome.confidence, 1.0) << spec.name;
    }
  }
}

// The statistical (1±ε)-acceptance battery. Tolerance: over T fixed-seed
// trials the within-band count is Binomial(T, p) with p ≥ 1 − δ under the
// claim, so the empirical fraction must stay above
// 1 − δ − z·sqrt(δ(1−δ)/T); at z = 3 and T = 400 a correct estimator
// fails a cell with probability ≲ 1.3e-3 (see count_monitor.hpp for the
// full derivation). x ≥ 4 on the grid: below that the ±ε band spans less
// than one integer and the claim is vacuous either way.
TEST(CountingConformance, StatisticalEnvelopeHoldsOnTheGrid) {
  constexpr std::size_t kTrials = 400;
  const core::CountOptions opts;  // the claimed defaults: ε=0.35, δ=0.1
  const double floor = acceptance_floor(opts.delta, kTrials);
  for (const char* name : {"nz-geom", "geom-scan"}) {
    const auto* spec = core::find_counting_algorithm(name);
    ASSERT_NE(spec, nullptr);
    for (const std::size_t n : {128u, 512u}) {
      for (const std::size_t x :
           {std::size_t{4}, std::size_t{8}, std::size_t{16}, std::size_t{32},
            std::size_t{64}, n / 4}) {
        const auto report = measure_count_accuracy(
            *spec, n, x, kTrials, 0xe57 + n + 1000 * x, opts);
        EXPECT_GE(report.within_fraction(), floor)
            << name << " n=" << n << " x=" << x
            << " within=" << report.within
            << " mean_rel_err=" << report.mean_abs_rel_err;
      }
    }
  }
}

TEST(CountingConformance, ExactCounterIsAlwaysWithinBand) {
  const auto* spec = core::find_counting_algorithm("beep-exact");
  ASSERT_NE(spec, nullptr);
  const auto report = measure_count_accuracy(*spec, 128, 17, 100, 0xbee);
  EXPECT_EQ(report.within, report.trials);
  EXPECT_EQ(report.mean_abs_rel_err, 0.0);
  EXPECT_EQ(report.mean_estimate, 17.0);
}

}  // namespace
}  // namespace tcast::conformance
