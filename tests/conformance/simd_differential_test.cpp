// Registry-wide SIMD differential suite: every algorithm, on randomized
// scenarios, must be bit-identical across every SIMD dispatch level this
// CPU supports — forced via simd::force_level() — in both channel modes
// (word-image fast path and the retained scalar reference walk). The
// observable surface is the same one the fast-path differential locks
// down: decision, every ThresholdOutcome counter, the channel's query
// count, and the post-run RNG word (same draw consumption).
//
// A second suite runs the full conformance harness — CheckedChannel with
// all monitors online — at every forced level, proving the vector kernels
// don't just agree with each other but stay inside the paper's soundness
// contract under adversarial checking.
//
// CI runs this under the sanitizer matrix via `ctest -L conformance`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/simd_kernels.hpp"
#include "conformance/harness.hpp"
#include "conformance/scenario.hpp"
#include "core/registry.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

class ForcedLevel {
 public:
  explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
  ~ForcedLevel() { simd::clear_forced_level(); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
};

struct RunRecord {
  core::ThresholdOutcome outcome;
  QueryCount channel_queries = 0;
  std::uint64_t next_rng_word = 0;
};

RunRecord run_scenario(const Scenario& sc, const core::AlgorithmSpec& spec,
                       bool fast_path) {
  RngStream rng(sc.seed, 0x51D);
  group::ExactChannel::Config cfg;
  cfg.model = sc.model;
  cfg.node_set_fast_path = fast_path;
  auto channel =
      group::ExactChannel::with_random_positives(sc.n, sc.x, rng, cfg);
  RunRecord rec;
  rec.outcome =
      spec.run(channel, channel.all_nodes(), sc.t, rng, sc.engine_options());
  rec.channel_queries = channel.queries_used();
  rec.next_rng_word = rng.bits();
  return rec;
}

void expect_identical(const RunRecord& got, const RunRecord& want) {
  EXPECT_EQ(got.outcome.decision, want.outcome.decision);
  EXPECT_EQ(got.outcome.queries, want.outcome.queries);
  EXPECT_EQ(got.outcome.rounds, want.outcome.rounds);
  EXPECT_EQ(got.outcome.confirmed_positives, want.outcome.confirmed_positives);
  EXPECT_EQ(got.outcome.remaining_candidates,
            want.outcome.remaining_candidates);
  EXPECT_EQ(got.outcome.retries, want.outcome.retries);
  EXPECT_EQ(got.outcome.faults_seen, want.outcome.faults_seen);
  EXPECT_EQ(got.channel_queries, want.channel_queries);
  EXPECT_EQ(got.next_rng_word, want.next_rng_word);
}

TEST(SimdDifferential, RegistryWideAllLevelsMatchScalarReference) {
  const auto levels = simd::supported_levels();
  RngStream scenario_rng(0x51Dfa57, 7);
  for (std::size_t i = 0; i < 40; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      // Ground truth: scalar kernels under the scalar reference walk — the
      // configuration with no SIMD anywhere.
      RunRecord want;
      {
        ForcedLevel forced(simd::Level::kScalar);
        want = run_scenario(sc, spec, /*fast_path=*/false);
      }
      for (const simd::Level level : levels) {
        ForcedLevel forced(level);
        for (const bool fast_path : {false, true}) {
          SCOPED_TRACE(spec.name + " level=" + simd::to_string(level) +
                       (fast_path ? " fast" : " reference") + " [" +
                       sc.describe() + "]");
          expect_identical(run_scenario(sc, spec, fast_path), want);
        }
      }
    }
  }
}

TEST(SimdDifferential, ConformanceHarnessPassesAtEveryForcedLevel) {
  for (const simd::Level level : simd::supported_levels()) {
    ForcedLevel forced(level);
    RngStream per_level(0x51Dfa58, 9);  // same scenarios at every level
    for (std::size_t i = 0; i < 8; ++i) {
      const Scenario sc = random_scenario(per_level, /*allow_lossy=*/false);
      for (const auto& spec : core::algorithm_registry()) {
        const auto report = check_algorithm(spec, sc);
        EXPECT_TRUE(report.ok())
            << spec.name << " level=" << simd::to_string(level) << " ["
            << sc.describe() << "]\n"
            << report.summary();
      }
    }
  }
}

}  // namespace
}  // namespace tcast::conformance
