// The registry-driven conformance sweep: every algorithm in
// core::algorithm_registry() is driven through ≥200 randomized scenarios
// (population, positives, threshold, collision model, engine options, and
// injected loss) under a CheckedChannel, which asserts the full invariant
// set online — see docs/CONFORMANCE.md. A failure prints the replayable
// scenario description.
#include <gtest/gtest.h>

#include "conformance/harness.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

constexpr std::size_t kScenariosPerAlgorithm = 240;

class ConformanceSweep
    : public ::testing::TestWithParam<const core::AlgorithmSpec*> {};

TEST_P(ConformanceSweep, RandomizedScenariosSatisfyAllInvariants) {
  const core::AlgorithmSpec& spec = *GetParam();
  RngStream scenario_rng(0xc0f0c0f0ULL, 7);
  std::size_t exact_runs = 0;
  for (std::size_t i = 0; i < kScenariosPerAlgorithm; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/true);
    if (!sc.lossy()) ++exact_runs;
    const auto report = check_algorithm(spec, sc);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
  // The mix must actually exercise the strict (exact-semantics) checks.
  EXPECT_GT(exact_runs, kScenariosPerAlgorithm / 4);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredAlgorithms, ConformanceSweep,
    ::testing::ValuesIn([] {
      std::vector<const core::AlgorithmSpec*> specs;
      for (const auto& spec : core::algorithm_registry())
        specs.push_back(&spec);
      return specs;
    }()),
    [](const ::testing::TestParamInfo<const core::AlgorithmSpec*>& param) {
      std::string name = param.param->name;
      for (char& c : name)
        if (c == ':' || c == '-') c = '_';
      return name;
    });

TEST(ConformanceSweep, CoversEveryRegisteredAlgorithm) {
  // The parameterized suite above is instantiated straight from the
  // registry; this guards against an accidentally empty instantiation.
  EXPECT_GE(core::algorithm_registry().size(), 8u);
}

TEST(CheckedChannelTranscript, AnnouncementsRecordFullBinStructure) {
  // The satellite fix: InstrumentedChannel must keep the announced bin
  // partition, not just a counter — the partition checks depend on it.
  RngStream rng(99, 0);
  auto exact = group::ExactChannel::with_random_positives(24, 10, rng);
  CheckedChannel checked(exact, exact.all_nodes(), {});
  const auto* spec = core::find_algorithm("2tbins");
  ASSERT_NE(spec, nullptr);
  const auto out =
      spec->run(checked, exact.all_nodes(), 4, rng, core::EngineOptions{});
  EXPECT_TRUE(checked.ok());
  EXPECT_TRUE(out.decision);

  const auto& announcements = checked.instrumented().announcements();
  ASSERT_FALSE(announcements.empty());
  // Every announcement carries the full partition: 2t bins in round one,
  // jointly covering all 24 candidates exactly once.
  const auto& first = announcements.front();
  EXPECT_EQ(first.bins.size(), 8u);  // 2t = 8
  EXPECT_EQ(first.at_query, 0u);
  std::size_t covered = 0;
  std::vector<char> seen(24, 0);
  for (const auto& bin : first.bins) {
    for (const NodeId id : bin) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = 1;
      ++covered;
    }
  }
  EXPECT_EQ(covered, 24u);
  // And the transcript still records per-query results alongside.
  EXPECT_EQ(checked.instrumented().transcript().size(),
            static_cast<std::size_t>(out.queries));
}

TEST(CheckedChannel, LossyRunsKeepOneSidedSoundness) {
  // Dedicated lossy sweep: heavy loss, every algorithm; `true` answers must
  // stay certificates even when silence lies. The tally aggregates the
  // wrong answers per algorithm and histograms them by loss rate — the
  // per-scenario degradation profile of the sweep.
  RngStream scenario_rng(0x10555ULL, 3);
  WrongAnswerTally tally;
  for (std::size_t i = 0; i < 160; ++i) {
    Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    sc.loss_prob = 0.35;
    sc.seed = scenario_rng.bits();
    for (const auto& spec : core::algorithm_registry()) {
      const auto report = check_algorithm(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
      tally.record(spec.name, sc, report.outcome);
    }
  }
  // The tally must agree with the one-sided invariant: loss produces false
  // "no" answers (they are the price of silence lying) but never a false
  // "yes" — and at 35% loss the sweep does visibly degrade.
  EXPECT_EQ(tally.false_yes(), 0u) << tally.report();
  EXPECT_GT(tally.false_no(), 0u) << tally.report();
  RecordProperty("wrong_answer_report", tally.report());
}

TEST(WrongAnswerTally, ExactSweepHasCleanProfile) {
  // On the exact tier the same tally must stay empty in both columns.
  RngStream scenario_rng(0x7157ULL, 5);
  WrongAnswerTally tally;
  for (std::size_t i = 0; i < 40; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      const auto report = check_algorithm(spec, sc);
      EXPECT_TRUE(report.ok()) << report.summary();
      tally.record(spec.name, sc, report.outcome);
    }
  }
  EXPECT_EQ(tally.false_yes(), 0u) << tally.report();
  EXPECT_EQ(tally.false_no(), 0u) << tally.report();
  EXPECT_EQ(tally.runs(), 40 * core::algorithm_registry().size());
  // The report renders the per-algorithm table either way.
  EXPECT_NE(tally.report().find("wrong answers over"), std::string::npos);
}

}  // namespace
}  // namespace tcast::conformance
