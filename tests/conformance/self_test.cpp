// Conformance self-test: the harness must FAIL on intentionally broken
// algorithms — a harness that cannot reject a liar proves nothing. Each
// case registers a deliberately wrong AlgorithmSpec (never in the real
// registry) and asserts the exact violation category is raised; a final
// case aims a lying *channel* at the CheckedChannel.
#include <gtest/gtest.h>

#include <algorithm>

#include "conformance/harness.hpp"
#include "group/binning.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

bool has_category(const ConformanceReport& report, Violation::Category c) {
  return std::any_of(
      report.violations.begin(), report.violations.end(),
      [c](const Violation& v) { return v.category == c; });
}

Scenario fixed_scenario(std::size_t n, std::size_t x, std::size_t t) {
  Scenario sc;
  sc.n = n;
  sc.x = x;
  sc.t = t;
  sc.model = group::CollisionModel::kOnePlus;
  sc.ordering = core::BinOrdering::kInOrder;
  sc.seed = 0xbadc0deULL;
  return sc;
}

TEST(ConformanceSelfTest, CatchesWrongDecision) {
  core::AlgorithmSpec broken{
      "broken-always-true", "answers true without querying", false,
      [](group::QueryChannel&, std::span<const NodeId>, std::size_t,
         RngStream&, const core::EngineOptions&) {
        core::ThresholdOutcome out;
        out.decision = true;  // a lie whenever x < t
        return out;
      },
      {}};
  const auto report = check_algorithm(broken, fixed_scenario(20, 2, 10));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_category(report, Violation::Category::kOutcome))
      << report.summary();
}

TEST(ConformanceSelfTest, CatchesRequeryOfDisposedNodes) {
  core::AlgorithmSpec broken{
      "broken-requery", "re-queries a bin it already proved empty", false,
      [](group::QueryChannel& ch, std::span<const NodeId> nodes, std::size_t,
         RngStream&, const core::EngineOptions&) {
        const std::vector<NodeId> probe = {nodes.front()};
        const auto a = group::BinAssignment::contiguous(probe, 1);
        ch.announce(a);
        ch.query_bin(a, 0);  // x = 0 ⇒ empty ⇒ bin disposed
        ch.query_bin(a, 0);  // unsound: proven-negative node re-queried
        core::ThresholdOutcome out;
        out.decision = false;
        out.queries = 2;
        return out;
      },
      {}};
  const auto report = check_algorithm(broken, fixed_scenario(8, 0, 3));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_category(report, Violation::Category::kRequery))
      << report.summary();
}

TEST(ConformanceSelfTest, CatchesNonPartitionAnnouncements) {
  core::AlgorithmSpec broken{
      "broken-partition", "announces overlapping bins and foreign nodes",
      false,
      [](group::QueryChannel& ch, std::span<const NodeId> nodes, std::size_t,
         RngStream& rng, const core::EngineOptions&) {
        // A node in two bins…
        const std::vector<NodeId> dup = {nodes[0], nodes[0], nodes[1]};
        ch.announce(group::BinAssignment::random_equal(dup, 2, rng));
        // …and a node that is not a participant at all.
        const std::vector<NodeId> foreign = {
            static_cast<NodeId>(nodes.size() + 5)};
        ch.announce(group::BinAssignment::contiguous(foreign, 1));
        core::ThresholdOutcome out;
        out.decision = false;  // correct for x < t
        return out;
      },
      {}};
  const auto report = check_algorithm(broken, fixed_scenario(8, 1, 5));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_category(report, Violation::Category::kPartition))
      << report.summary();
}

TEST(ConformanceSelfTest, CatchesWorstCaseBoundOverrun) {
  const Scenario sc = fixed_scenario(20, 15, 5);
  const auto bound = static_cast<std::size_t>(
      registered_query_bound("broken-spin", sc.n, sc.t));
  core::AlgorithmSpec broken{
      "broken-spin", "burns queries far past the registered bound", false,
      [bound](group::QueryChannel& ch, std::span<const NodeId> nodes,
              std::size_t, RngStream&, const core::EngineOptions&) {
        for (std::size_t i = 0; i < bound + 5; ++i) ch.query_set(nodes);
        core::ThresholdOutcome out;
        out.decision = true;  // correct for x ≥ t, but at an absurd cost
        out.queries = ch.queries_used();
        return out;
      },
      {}};
  const auto report = check_algorithm(broken, sc);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_category(report, Violation::Category::kBound))
      << report.summary();
}

TEST(ConformanceSelfTest, CatchesQueryAccountingDrift) {
  core::AlgorithmSpec broken{
      "broken-accounting", "reports fewer queries than it spent", false,
      [](group::QueryChannel& ch, std::span<const NodeId> nodes, std::size_t,
         RngStream&, const core::EngineOptions&) {
        ch.query_set(nodes);
        core::ThresholdOutcome out;
        out.decision = true;
        out.queries = 0;  // lies about the paper's cost metric
        return out;
      },
      {}};
  const auto report = check_algorithm(broken, fixed_scenario(12, 9, 4));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_category(report, Violation::Category::kOutcome))
      << report.summary();
}

// A channel that reports silence on non-empty bins while claiming exact
// semantics — the CheckedChannel must flag the false negative itself.
class LyingChannel final : public group::QueryChannel {
 public:
  explicit LyingChannel(group::ExactChannel& truth)
      : QueryChannel(truth.model()), truth_(&truth) {}

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return truth_->oracle_positive_count(nodes);
  }

 protected:
  group::BinQueryResult do_query_set(std::span<const NodeId>) override {
    return group::BinQueryResult::empty();  // silence, whatever the truth
  }

 private:
  group::ExactChannel* truth_;
};

TEST(ConformanceSelfTest, CatchesLyingChannels) {
  RngStream rng(7, 0);
  auto exact = group::ExactChannel::with_random_positives(10, 6, rng);
  LyingChannel liar(exact);
  CheckedChannel checked(liar, exact.all_nodes(), {});
  const auto r = checked.query_set(exact.all_nodes());
  EXPECT_EQ(r.kind, group::BinQueryResult::Kind::kEmpty);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.violations().front().category,
            Violation::Category::kTruth);
}

// A channel that declares lossy(); configuring the ≥2-activity inference
// on it is itself a conformance violation — the engine's soundness gate
// should have cleared the bit before the run ever started.
class DeclaredLossyChannel final : public group::QueryChannel {
 public:
  explicit DeclaredLossyChannel(group::ExactChannel& truth)
      : QueryChannel(truth.model()), truth_(&truth) {}

  bool lossy() const override { return true; }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return truth_->oracle_positive_count(nodes);
  }

 protected:
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override {
    return truth_->query_set(nodes);
  }

 private:
  group::ExactChannel* truth_;
};

TEST(ConformanceSelfTest, CatchesCountsTwoClaimedOnLossyChannels) {
  RngStream rng(13, 0);
  group::ExactChannel::Config ecfg;
  ecfg.model = group::CollisionModel::kTwoPlus;
  auto exact =
      group::ExactChannel::with_random_positives(10, 6, rng, ecfg);
  DeclaredLossyChannel lossy(exact);

  CheckedChannel::Config ccfg;
  ccfg.exact_semantics = false;
  ccfg.two_plus_activity_counts_two = true;  // unsound on a lossy channel
  CheckedChannel checked(lossy, exact.all_nodes(), ccfg);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.violations().front().category,
            Violation::Category::kTruth);

  // Mirroring the engine's gate (counts_two cleared) is clean.
  ccfg.two_plus_activity_counts_two = false;
  CheckedChannel gated(lossy, exact.all_nodes(), ccfg);
  EXPECT_TRUE(gated.ok());
}

}  // namespace
}  // namespace tcast::conformance
