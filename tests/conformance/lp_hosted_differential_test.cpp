// Registry-wide differential: every packet-tier chaos session must be
// bit-identical between the scalar single-queue simulator path and the
// LP-hosted parallel-kernel path (PacketChannel::Config::lp_hosted). The
// hosted world runs the identical event schedule through the kernel's
// conservative windows — same outcome, same query counts, same recorded
// fault trace, same RNG probes — and a trace recorded on either path
// replays faithfully on the other.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "core/registry.hpp"
#include "faults/fault_plan.hpp"

namespace tcast::chaos {
namespace {

ChaosScenario packet_scenario(const std::string& algorithm, std::size_t n,
                              std::size_t x, std::size_t t,
                              std::uint64_t seed) {
  ChaosScenario sc;
  sc.algorithm = algorithm;
  sc.n = n;
  sc.x = x;
  sc.t = t;
  sc.tier = Tier::kPacket;
  sc.seed = seed;
  return sc;
}

void expect_reports_identical(const SessionReport& a, const SessionReport& b,
                              const std::string& context) {
  EXPECT_EQ(a.outcome.decision, b.outcome.decision) << context;
  EXPECT_EQ(a.outcome.queries, b.outcome.queries) << context;
  EXPECT_EQ(a.outcome.rounds, b.outcome.rounds) << context;
  EXPECT_EQ(a.outcome.retries, b.outcome.retries) << context;
  EXPECT_EQ(a.outcome.faults_seen, b.outcome.faults_seen) << context;
  EXPECT_EQ(a.trace, b.trace) << context;
  EXPECT_EQ(a.algo_rng_probe, b.algo_rng_probe) << context;
  EXPECT_EQ(a.channel_rng_probe, b.channel_rng_probe) << context;
  EXPECT_EQ(a.violations.size(), b.violations.size()) << context;
}

TEST(LpHostedDifferential, EveryAlgorithmBitIdenticalHostedVsScalar) {
  std::uint64_t seed = 0x10AD;
  for (const core::AlgorithmSpec& spec : core::algorithm_registry()) {
    if (spec.needs_oracle) continue;  // oracle baselines aren't chaos subjects
    for (const std::size_t x : {std::size_t{1}, std::size_t{5}}) {
      ChaosScenario direct = packet_scenario(spec.name, 8, x, 3, ++seed);
      ChaosScenario hosted = direct;
      hosted.lp_hosted = true;

      const SessionReport rd = run_session(direct);
      const SessionReport rh = run_session(hosted);
      expect_reports_identical(rd, rh, spec.name + " x=" + std::to_string(x));
      EXPECT_TRUE(rd.ok()) << spec.name;
      EXPECT_TRUE(rh.ok()) << spec.name;
    }
  }
}

TEST(LpHostedDifferential, BitIdenticalUnderFaultPlans) {
  // The same parity must hold with fault injection live — crash/reboot and
  // loss schedules recorded on one path must be drawn and applied
  // identically on the other (the fault RNG never touches the simulator).
  std::uint64_t seed = 0xFA17;
  const auto plans = default_plan_grid(/*seed=*/21);
  ASSERT_GT(plans.size(), 2u);
  for (const auto& plan : plans) {
    ChaosScenario direct = packet_scenario("2tbins", 8, 5, 4, ++seed);
    direct.plan = plan;
    ChaosScenario hosted = direct;
    hosted.lp_hosted = true;

    const SessionReport rd = run_session(direct);
    const SessionReport rh = run_session(hosted);
    expect_reports_identical(rd, rh, "plan=" + plan.to_spec());
  }
}

TEST(LpHostedDifferential, TraceRecordedOnOnePathReplaysOnTheOther) {
  std::uint64_t seed = 0x2EC0;
  const auto plans = default_plan_grid(/*seed=*/33);
  for (const core::AlgorithmSpec& spec : core::algorithm_registry()) {
    if (spec.needs_oracle) continue;
    ChaosScenario direct = packet_scenario(spec.name, 8, 4, 3, ++seed);
    direct.plan = plans[1 + (seed % (plans.size() - 1))];
    ChaosScenario hosted = direct;
    hosted.lp_hosted = true;

    // Record on the scalar path, replay on the hosted path (and back).
    const SessionReport recorded = run_session(direct);
    const SessionReport on_hosted = replay_session(hosted, recorded.trace);
    expect_reports_identical(recorded, on_hosted, spec.name + " d->h");

    const SessionReport recorded_h = run_session(hosted);
    const SessionReport on_direct = replay_session(direct, recorded_h.trace);
    expect_reports_identical(recorded_h, on_direct, spec.name + " h->d");
  }
}

TEST(LpHostedDifferential, SpecRoundTripsLpFlag) {
  ChaosScenario sc = packet_scenario("2tbins", 8, 4, 3, 5);
  sc.lp_hosted = true;
  const auto parsed = ChaosScenario::parse(sc.spec());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sc);
  EXPECT_TRUE(parsed->lp_hosted);
}

}  // namespace
}  // namespace tcast::chaos
