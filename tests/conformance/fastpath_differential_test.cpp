// Differential proof for the NodeSet fast path (group/exact_channel.hpp):
// with identical seeds, every registry algorithm must produce bit-identical
// results whether ExactChannel answers queries through the word image
// (node_set_fast_path = true) or through the retained scalar reference walk
// (false). "Bit-identical" is the full observable surface: the decision,
// every ThresholdOutcome counter, the channel's query count, and the
// post-run RNG state (same number of draws consumed — proven by comparing
// the next raw output word).
//
// A second suite proves the batched sweep engine (perf/sweep_engine.hpp)
// inherits the property: fast vs reference sweeps agree bitwise for every
// worker count, so workspace recycling is unobservable too.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "conformance/scenario.hpp"
#include "core/registry.hpp"
#include "group/exact_channel.hpp"
#include "perf/sweep_engine.hpp"

namespace tcast::conformance {
namespace {

struct RunRecord {
  core::ThresholdOutcome outcome;
  QueryCount channel_queries = 0;
  /// One raw engine word drawn AFTER the run: equal iff both runs consumed
  /// the same number of draws from the same stream.
  std::uint64_t next_rng_word = 0;
};

RunRecord run_scenario(const Scenario& sc, const core::AlgorithmSpec& spec,
                       bool fast_path) {
  RngStream rng(sc.seed, 0x9e77);
  group::ExactChannel::Config cfg;
  cfg.model = sc.model;
  cfg.node_set_fast_path = fast_path;
  auto channel =
      group::ExactChannel::with_random_positives(sc.n, sc.x, rng, cfg);
  RunRecord rec;
  rec.outcome =
      spec.run(channel, channel.all_nodes(), sc.t, rng, sc.engine_options());
  rec.channel_queries = channel.queries_used();
  rec.next_rng_word = rng.bits();
  return rec;
}

void expect_identical(const RunRecord& fast, const RunRecord& ref) {
  EXPECT_EQ(fast.outcome.decision, ref.outcome.decision);
  EXPECT_EQ(fast.outcome.queries, ref.outcome.queries);
  EXPECT_EQ(fast.outcome.rounds, ref.outcome.rounds);
  EXPECT_EQ(fast.outcome.confirmed_positives, ref.outcome.confirmed_positives);
  EXPECT_EQ(fast.outcome.remaining_candidates,
            ref.outcome.remaining_candidates);
  EXPECT_EQ(fast.outcome.retries, ref.outcome.retries);
  EXPECT_EQ(fast.outcome.faults_seen, ref.outcome.faults_seen);
  EXPECT_EQ(fast.channel_queries, ref.channel_queries);
  EXPECT_EQ(fast.next_rng_word, ref.next_rng_word);
}

TEST(FastPathDifferential, RegistryWideFastMatchesReference) {
  RngStream scenario_rng(0xfa57, 31);
  for (std::size_t i = 0; i < 150; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    for (const auto& spec : core::algorithm_registry()) {
      SCOPED_TRACE(spec.name + " on [" + sc.describe() + "]");
      expect_identical(run_scenario(sc, spec, /*fast_path=*/true),
                       run_scenario(sc, spec, /*fast_path=*/false));
    }
  }
}

TEST(FastPathDifferential, WideBinCountsFallBackIdentically) {
  // bins > kMaxBinsForWords disables the word image, so this exercises the
  // fast path's span route (still .at()-free) against the reference on the
  // largest populations the scenario vocabulary allows, with thresholds
  // driving 2t well past 64 bins.
  RngStream scenario_rng(0xfa57, 32);
  for (std::size_t i = 0; i < 40; ++i) {
    Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    sc.n = 96;
    sc.t = 48 + scenario_rng.uniform_below(49);  // 2t ∈ [96, 192] bins
    if (sc.x > sc.n) sc.x = sc.n;
    for (const auto& spec : core::algorithm_registry()) {
      SCOPED_TRACE(spec.name + " on [" + sc.describe() + "]");
      expect_identical(run_scenario(sc, spec, /*fast_path=*/true),
                       run_scenario(sc, spec, /*fast_path=*/false));
    }
  }
}

void expect_bitwise_equal(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

std::vector<std::size_t> worker_counts_under_test() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

perf::QuerySweepSpec sweep_spec(const std::string& algorithm,
                                group::CollisionModel model) {
  perf::QuerySweepSpec spec;
  spec.algorithm = algorithm;
  spec.n = 96;
  spec.trials = 50;  // not a multiple of any chunk size
  spec.seed = 0xabad1dea;
  spec.channel.model = model;
  for (const std::size_t x : {std::size_t{0}, std::size_t{5}, std::size_t{16},
                              std::size_t{48}, std::size_t{96}})
    spec.points.push_back({x, 16, perf::sweep_point_id(9, 1, x)});
  return spec;
}

TEST(FastPathDifferential, SweepEngineFastMatchesReferenceAcrossWorkerCounts) {
  for (const auto model :
       {group::CollisionModel::kOnePlus, group::CollisionModel::kTwoPlus}) {
    for (const char* algorithm : {"2tbins", "expinc"}) {
      // Reference: scalar path on a single worker — the pre-PR ground truth.
      ThreadPool reference_pool(1);
      perf::QuerySweepSpec ref = sweep_spec(algorithm, model);
      ref.channel.node_set_fast_path = false;
      ref.pool = &reference_pool;
      const auto reference = perf::run_query_sweep(ref);

      for (const std::size_t workers : worker_counts_under_test()) {
        ThreadPool pool(workers);
        perf::QuerySweepSpec fast = sweep_spec(algorithm, model);
        fast.pool = &pool;  // node_set_fast_path defaults to true
        const auto got = perf::run_query_sweep(fast);
        ASSERT_EQ(got.queries.size(), reference.queries.size());
        SCOPED_TRACE(std::string(algorithm) + " model=" +
                     group::to_string(model) +
                     " workers=" + std::to_string(workers));
        for (std::size_t p = 0; p < got.queries.size(); ++p)
          expect_bitwise_equal(got.queries[p], reference.queries[p]);
      }
    }
  }
}

}  // namespace
}  // namespace tcast::conformance
