// Differential conformance: every registered algorithm plus the sequential
// baseline runs on the same scenario stream; all decisions must agree with
// the oracle ground truth (and therefore with each other).
#include <gtest/gtest.h>

#include "conformance/harness.hpp"

namespace tcast::conformance {
namespace {

TEST(Differential, AllAlgorithmsAgreeWithGroundTruthOnSharedStream) {
  RngStream scenario_rng(0xd1ff, 21);
  for (std::size_t i = 0; i < 120; ++i) {
    const Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
    const auto reports = differential_check(sc);
    // Registry + the sequential baseline.
    ASSERT_EQ(reports.size(), core::algorithm_registry().size() + 1);
    for (const auto& report : reports)
      EXPECT_TRUE(report.ok()) << report.summary();
    // Cross-check: unanimous decisions across the whole panel.
    for (const auto& report : reports)
      EXPECT_EQ(report.outcome.decision, sc.ground_truth())
          << report.algorithm << " on [" << sc.describe() << "]";
  }
}

TEST(Differential, LossyScenariosAreCheckedLossFree) {
  // differential_check strips the loss injection (algorithms may
  // legitimately disagree under loss); decisions must then be exact.
  RngStream scenario_rng(0xd1ff, 22);
  Scenario sc = random_scenario(scenario_rng, /*allow_lossy=*/false);
  sc.loss_prob = 0.25;
  for (const auto& report : differential_check(sc)) {
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_FALSE(report.scenario.lossy());
  }
}

}  // namespace
}  // namespace tcast::conformance
