#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tcast {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, WorkerCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      hits.size(), [&hits](std::size_t i) { ++hits[i]; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; }, &pool);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(
      10, [&order](std::size_t i) { order.push_back(i); }, &pool);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);  // sequential and ordered
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(
      10000, [&sum](std::size_t i) { sum += static_cast<long long>(i); },
      &pool);
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace tcast
