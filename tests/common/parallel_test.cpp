#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace tcast {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, WorkerCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      hits.size(), [&hits](std::size_t i) { ++hits[i]; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; }, &pool);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(
      10, [&order](std::size_t i) { order.push_back(i); }, &pool);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);  // sequential and ordered
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(
      10000, [&sum](std::size_t i) { sum += static_cast<long long>(i); },
      &pool);
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPool, RunBatchVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  pool.run_batch(
      hits.size(),
      [](void* raw, std::size_t i) { ++(*static_cast<Ctx*>(raw)->hits)[i]; },
      &ctx);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BackToBackBatchesDoNotLeakIndices) {
  // Regression guard for the stale-snapshot race: a worker still holding the
  // previous batch's end must never consume the next batch's cursor.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> seen{0};
    struct Ctx {
      std::atomic<std::size_t>* seen;
    } ctx{&seen};
    const std::size_t n = 1 + static_cast<std::size_t>(round % 17);
    pool.run_batch(
        n,
        [](void* raw, std::size_t) {
          static_cast<Ctx*>(raw)->seen->fetch_add(1,
                                                  std::memory_order_relaxed);
        },
        &ctx);
    ASSERT_EQ(seen.load(), n) << "round " << round;
  }
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(2);
  ThreadPool b(2);
  EXPECT_FALSE(a.on_worker_thread());
  std::atomic<int> checks{0};
  a.submit([&] {
    if (a.on_worker_thread() && !b.on_worker_thread()) ++checks;
  });
  a.wait_idle();
  EXPECT_EQ(checks.load(), 1);
}

TEST(ParallelFor, NestedCallRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        // Re-entrant parallel_for on the same pool must degrade to an inline
        // loop on this worker, not wait on the pool.
        parallel_for(
            5, [&inner_total](std::size_t) { ++inner_total; }, &pool);
      },
      &pool);
  EXPECT_EQ(inner_total.load(), 8 * 5);
}

// Nested waiting is a programming error and must die loudly (TCAST_CHECK ->
// abort), not deadlock. Death tests fork, so use the threadsafe style.
TEST(ThreadPoolDeathTest, WaitIdleFromWorkerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.submit([&pool] { pool.wait_idle(); });
        // Give the worker time to hit the check; the abort tears us down.
        std::this_thread::sleep_for(std::chrono::seconds(5));
      },
      "wait_idle from a worker");
}

TEST(ThreadPoolDeathTest, RunBatchFromWorkerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.submit([&pool] {
          pool.run_batch(
              4, [](void*, std::size_t) {}, nullptr);
        });
        std::this_thread::sleep_for(std::chrono::seconds(5));
      },
      "run_batch from a worker");
}

}  // namespace
}  // namespace tcast
