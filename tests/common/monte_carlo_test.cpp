#include "common/monte_carlo.hpp"

#include <gtest/gtest.h>

namespace tcast {
namespace {

TEST(MonteCarlo, TrialCountHonoured) {
  MonteCarloConfig cfg;
  cfg.trials = 123;
  const auto s = run_trials(cfg, [](RngStream&) { return 1.0; });
  EXPECT_EQ(s.count(), 123u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(MonteCarlo, BitIdenticalAcrossWorkerCounts) {
  MonteCarloConfig cfg1, cfg4;
  ThreadPool p1(1), p4(4);
  cfg1.trials = cfg4.trials = 500;
  cfg1.pool = &p1;
  cfg4.pool = &p4;
  const auto trial = [](RngStream& rng) { return rng.normal(5.0, 2.0); };
  const auto a = run_trials(cfg1, trial);
  const auto b = run_trials(cfg4, trial);
  EXPECT_EQ(a.mean(), b.mean());  // bit-exact, not just close
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(MonteCarlo, ExperimentIdChangesStreams) {
  MonteCarloConfig a, b;
  a.trials = b.trials = 200;
  a.experiment_id = 1;
  b.experiment_id = 2;
  const auto trial = [](RngStream& rng) { return rng.uniform01(); };
  EXPECT_NE(run_trials(a, trial).mean(), run_trials(b, trial).mean());
}

TEST(MonteCarlo, TrialsSeeIndependentStreams) {
  MonteCarloConfig cfg;
  cfg.trials = 100;
  const auto s =
      run_trials(cfg, [](RngStream& rng) { return rng.uniform01(); });
  // If all trials shared a stream state they'd all return the same value.
  EXPECT_GT(s.variance(), 0.01);
}

TEST(MonteCarlo, BoolTrialsCountSuccesses) {
  MonteCarloConfig cfg;
  cfg.trials = 2000;
  const auto p =
      run_bool_trials(cfg, [](RngStream& rng) { return rng.bernoulli(0.25); });
  EXPECT_EQ(p.trials(), 2000u);
  EXPECT_NEAR(p.value(), 0.25, 0.03);
}

TEST(MonteCarlo, DeterminismRegressionAcrossThreadCounts) {
  // The documented contract in monte_carlo.hpp: merged stats are bit-exact
  // for ANY worker count given the same root seed. Regression-pin it for
  // 1, 2 and 8 workers, for both run_trials and run_multi_trials, on a
  // trial that consumes a non-trivial amount of RNG state.
  const auto trial = [](RngStream& rng) {
    double acc = 0.0;
    for (int i = 0; i < 17; ++i) acc += rng.normal(1.0, 3.0);
    return acc;
  };
  const auto multi_trial = [&trial](RngStream& rng,
                                    std::vector<double>& out) {
    out[0] = trial(rng);
    out[1] = rng.uniform01();
  };

  ThreadPool p1(1), p2(2), p8(8);
  ThreadPool* pools[] = {&p1, &p2, &p8};

  MonteCarloConfig base;
  base.trials = 777;
  base.seed = 0xfeedULL;
  base.experiment_id = 5;

  std::vector<RunningStats> single;
  std::vector<std::vector<RunningStats>> multi;
  for (ThreadPool* pool : pools) {
    MonteCarloConfig cfg = base;
    cfg.pool = pool;
    single.push_back(run_trials(cfg, trial));
    multi.push_back(run_multi_trials(cfg, 2, multi_trial));
  }
  for (std::size_t i = 1; i < single.size(); ++i) {
    EXPECT_EQ(single[0].mean(), single[i].mean());  // bit-exact
    EXPECT_EQ(single[0].variance(), single[i].variance());
    EXPECT_EQ(single[0].min(), single[i].min());
    EXPECT_EQ(single[0].max(), single[i].max());
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_EQ(multi[0][m].mean(), multi[i][m].mean());
      EXPECT_EQ(multi[0][m].variance(), multi[i][m].variance());
    }
  }
}

TEST(MonteCarlo, MultiMetricKeepsMetricsApart) {
  MonteCarloConfig cfg;
  cfg.trials = 50;
  const auto stats = run_multi_trials(
      cfg, 2, [](RngStream&, std::vector<double>& out) {
        out[0] = 1.0;
        out[1] = 2.0;
      });
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats[1].mean(), 2.0);
}

}  // namespace
}  // namespace tcast
