#include "common/series.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tcast {
namespace {

TEST(SeriesTable, DeclaresSeriesIdempotently) {
  SeriesTable t("x");
  EXPECT_EQ(t.series("a"), 0u);
  EXPECT_EQ(t.series("b"), 1u);
  EXPECT_EQ(t.series("a"), 0u);
  EXPECT_EQ(t.series_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(SeriesTable, SetAndAtRoundTrip) {
  SeriesTable t("x");
  t.set(1.0, "a", 10.0);
  t.set(2.0, "a", 20.0);
  t.set(1.0, "b", 0.5);
  EXPECT_EQ(t.at(1.0, "a"), 10.0);
  EXPECT_EQ(t.at(2.0, "a"), 20.0);
  EXPECT_EQ(t.at(1.0, "b"), 0.5);
  EXPECT_FALSE(t.at(2.0, "b").has_value());  // missing cell
  EXPECT_FALSE(t.at(3.0, "a").has_value());  // missing row
  EXPECT_FALSE(t.at(1.0, "zzz").has_value());  // missing series
}

TEST(SeriesTable, AxisIsSortedAscending) {
  SeriesTable t("x");
  t.set(5.0, "a", 1);
  t.set(1.0, "a", 1);
  t.set(3.0, "a", 1);
  EXPECT_EQ(t.axis(), (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(SeriesTable, LateSeriesBackfillsExistingRows) {
  SeriesTable t("x");
  t.set(1.0, "a", 10.0);
  t.set(1.0, "late", 99.0);  // declared after row 1 existed
  t.set(2.0, "late", 98.0);
  EXPECT_EQ(t.at(1.0, "late"), 99.0);
  EXPECT_EQ(t.at(2.0, "late"), 98.0);
}

TEST(SeriesTable, PrintAlignsAndFillsGapsWithDash) {
  SeriesTable t("x");
  t.set(1.0, "alpha", 10.0);
  t.set(2.0, "beta", 0.125);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);  // the two missing cells
}

TEST(SeriesTable, IntegersPrintWithoutDecimals) {
  SeriesTable t("x");
  t.set(3.0, "a", 42.0);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_EQ(os.str().find("42.000"), std::string::npos);
}

TEST(SeriesTable, CsvFormat) {
  SeriesTable t("x");
  t.set(1.0, "a", 10.0);
  t.set(1.0, "b", 0.5);
  t.set(2.0, "a", 20.0);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,a,b\n1,10,0.500\n2,20,\n");
}

TEST(SeriesTable, EmptyTablePrintsHeaderOnly) {
  SeriesTable t("x");
  t.series("a");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,a\n");
}

TEST(Banner, FormatsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig 1");
  EXPECT_EQ(os.str(), "\n== Fig 1 ==\n");
}

}  // namespace
}  // namespace tcast
