// Property tests for NodeSet against a std::set oracle, plus targeted
// word-boundary cases for the selection helpers (first_member / nth_member)
// and a draw-compatibility proof for random_equal_partition_into: it must
// reproduce the historical shuffle-then-deal binning bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/node_set.hpp"
#include "common/rng.hpp"

namespace tcast {
namespace {

std::vector<NodeId> members_of(const NodeSet& s) {
  std::vector<NodeId> out;
  s.append_members(out);
  return out;
}

TEST(NodeSet, StartsEmpty) {
  NodeSet s(130);
  EXPECT_EQ(s.universe(), 130u);
  EXPECT_EQ(s.word_count(), 3u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.first_member(), kNoNode);
  EXPECT_TRUE(members_of(s).empty());
}

TEST(NodeSet, WordsForRoundsUp) {
  EXPECT_EQ(NodeSet::words_for(0), 0u);
  EXPECT_EQ(NodeSet::words_for(1), 1u);
  EXPECT_EQ(NodeSet::words_for(64), 1u);
  EXPECT_EQ(NodeSet::words_for(65), 2u);
  EXPECT_EQ(NodeSet::words_for(128), 2u);
  EXPECT_EQ(NodeSet::words_for(129), 3u);
}

TEST(NodeSet, InsertEraseTestMatchSetOracle) {
  constexpr std::size_t kUniverse = 200;  // spans >3 words, partial last word
  RngStream rng(0xbadc0ffee, 1);
  NodeSet s(kUniverse);
  std::set<NodeId> oracle;
  for (int step = 0; step < 4000; ++step) {
    const auto id = static_cast<NodeId>(rng.uniform_below(kUniverse));
    if (rng.bernoulli(0.5)) {
      EXPECT_EQ(s.insert(id), oracle.insert(id).second);
    } else {
      EXPECT_EQ(s.erase(id), oracle.erase(id) > 0);
    }
    ASSERT_EQ(s.count(), oracle.size());
    EXPECT_EQ(s.empty(), oracle.empty());
    // Spot-check membership of an unrelated id every step.
    const auto probe = static_cast<NodeId>(rng.uniform_below(kUniverse));
    EXPECT_EQ(s.test(probe), oracle.count(probe) > 0);
  }
  // Full-extension check at the end: identical ascending member lists.
  const std::vector<NodeId> expected(oracle.begin(), oracle.end());
  EXPECT_EQ(members_of(s), expected);
}

TEST(NodeSet, ClearKeepsUniverse) {
  NodeSet s(100);
  s.insert(3);
  s.insert(99);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.universe(), 100u);
  EXPECT_FALSE(s.test(3));
  EXPECT_FALSE(s.test(99));
}

TEST(NodeSet, FirstMemberAcrossWordBoundaries) {
  NodeSet s(256);
  for (const NodeId id : {NodeId{255}, NodeId{128}, NodeId{127}, NodeId{64},
                          NodeId{63}, NodeId{1}, NodeId{0}}) {
    s.insert(id);
    EXPECT_EQ(s.first_member(), id);  // inserting in descending order
  }
}

TEST(NodeSet, NthMemberWordBoundaries) {
  // Members straddling every word boundary of a 4-word set: selection must
  // carry the rank across words correctly.
  NodeSet s(256);
  const std::vector<NodeId> ids = {0, 5, 63, 64, 65, 127, 128, 200, 255};
  for (const NodeId id : ids) s.insert(id);
  ASSERT_EQ(s.count(), ids.size());
  for (std::size_t n = 0; n < ids.size(); ++n)
    EXPECT_EQ(s.nth_member(n), ids[n]) << "rank " << n;
}

TEST(NodeSet, NthMemberMatchesSortedOracleOnRandomSets) {
  RngStream rng(0x5eed, 2);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t universe = 1 + rng.uniform_below(300);
    NodeSet s(universe);
    std::set<NodeId> oracle;
    const std::size_t inserts = rng.uniform_below(universe + 1);
    for (std::size_t i = 0; i < inserts; ++i) {
      const auto id = static_cast<NodeId>(rng.uniform_below(universe));
      s.insert(id);
      oracle.insert(id);
    }
    ASSERT_EQ(s.count(), oracle.size());
    std::size_t n = 0;
    for (const NodeId id : oracle) EXPECT_EQ(s.nth_member(n++), id);
  }
}

TEST(NodeSet, IntersectsAndIntersectionCount) {
  NodeSet a(192), b(192);
  EXPECT_FALSE(NodeSet::intersects(a.words(), b.words()));
  EXPECT_EQ(NodeSet::intersection_count(a.words(), b.words()), 0u);

  a.insert(10);
  a.insert(70);
  a.insert(130);
  b.insert(11);
  b.insert(71);
  EXPECT_FALSE(NodeSet::intersects(a.words(), b.words()));

  b.insert(130);  // shared member in the last word only
  EXPECT_TRUE(NodeSet::intersects(a.words(), b.words()));
  EXPECT_EQ(NodeSet::intersection_count(a.words(), b.words()), 1u);

  b.insert(10);
  b.insert(70);
  EXPECT_EQ(NodeSet::intersection_count(a.words(), b.words()), 3u);
}

TEST(NodeSet, IntersectionWithShorterImageIgnoresTail) {
  // A shorter word image has no members beyond its last word; members of the
  // longer set past that point must not count.
  NodeSet wide(192), narrow(64);
  wide.insert(5);
  wide.insert(100);
  wide.insert(180);
  narrow.insert(5);
  EXPECT_TRUE(NodeSet::intersects(wide.words(), narrow.words()));
  EXPECT_EQ(NodeSet::intersection_count(wide.words(), narrow.words()), 1u);
  EXPECT_EQ(NodeSet::intersection_count(narrow.words(), wide.words()), 1u);

  narrow.erase(5);
  narrow.insert(40);
  EXPECT_FALSE(NodeSet::intersects(wide.words(), narrow.words()));
  EXPECT_FALSE(NodeSet::intersects(narrow.words(), wide.words()));
}

TEST(NodeSet, RemoveWordsReportsActualRemovals) {
  NodeSet alive(256), gone(256);
  for (NodeId id = 0; id < 256; id += 3) alive.insert(id);
  const std::size_t before = alive.count();
  // `gone` overlaps `alive` only partially; remove_words must report the
  // overlap, not gone.count().
  for (NodeId id = 0; id < 256; id += 6) gone.insert(id);   // all in alive
  gone.insert(1);                                           // not in alive
  gone.insert(7);                                           // not in alive
  std::size_t expected_overlap = 0;
  gone.for_each([&](NodeId id) { expected_overlap += alive.test(id); });
  const std::size_t removed = alive.remove_words(gone.words());
  EXPECT_EQ(removed, expected_overlap);
  EXPECT_EQ(alive.count(), before - removed);
  alive.for_each([&](NodeId id) { EXPECT_FALSE(gone.test(id)); });
  // Removing again is a no-op.
  EXPECT_EQ(alive.remove_words(gone.words()), 0u);
}

TEST(NodeSet, ForEachVisitsAscending) {
  NodeSet s(300);
  for (const NodeId id : {NodeId{299}, NodeId{64}, NodeId{0}, NodeId{63},
                          NodeId{128}})
    s.insert(id);
  std::vector<NodeId> visited;
  s.for_each([&visited](NodeId id) { visited.push_back(id); });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(visited, members_of(s));
  EXPECT_EQ(visited.size(), 5u);
}

// The historical random-equal construction the partitioner must reproduce:
// shuffle, then deal round-robin into per-bin vectors.
std::vector<std::vector<NodeId>> shuffle_then_deal(std::vector<NodeId> items,
                                                   std::size_t bins,
                                                   RngStream& rng) {
  rng.shuffle(std::span<NodeId>(items));
  std::vector<std::vector<NodeId>> out(bins);
  for (std::size_t i = 0; i < items.size(); ++i)
    out[i % bins].push_back(items[i]);
  return out;
}

TEST(NodeSetPartition, MatchesShuffleThenDealBitForBit) {
  RngStream scenario_rng(0xfeed, 3);
  std::vector<NodeId> arena;
  std::vector<std::size_t> offsets;
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t n = scenario_rng.uniform_below(97);
    const std::size_t bins = 1 + scenario_rng.uniform_below(20);
    std::vector<NodeId> items(n);
    for (std::size_t i = 0; i < n; ++i) items[i] = static_cast<NodeId>(i * 2);

    // Two RNG streams with identical state: one for the oracle, one for the
    // partitioner. Draw-compatibility means both end up in the same state.
    RngStream oracle_rng(0xabc, static_cast<std::uint64_t>(rep));
    RngStream fast_rng(0xabc, static_cast<std::uint64_t>(rep));
    const auto expected = shuffle_then_deal(items, bins, oracle_rng);

    std::vector<NodeId> fast_items = items;
    random_equal_partition_into(std::span<NodeId>(fast_items), bins, fast_rng,
                                arena, offsets);

    ASSERT_EQ(offsets.size(), bins + 1);
    EXPECT_EQ(offsets.front(), 0u);
    EXPECT_EQ(offsets.back(), n);
    for (std::size_t b = 0; b < bins; ++b) {
      ASSERT_LE(offsets[b], offsets[b + 1]);
      const std::vector<NodeId> got(arena.begin() + static_cast<std::ptrdiff_t>(offsets[b]),
                                    arena.begin() + static_cast<std::ptrdiff_t>(offsets[b + 1]));
      EXPECT_EQ(got, expected[b]) << "bin " << b;
    }
    // Same number of draws consumed: the next raw output must agree.
    EXPECT_EQ(oracle_rng.bits(), fast_rng.bits());
  }
}

TEST(NodeSetPartition, BinSizesDifferByAtMostOne) {
  RngStream rng(0x1234, 4);
  std::vector<NodeId> items(37);
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i] = static_cast<NodeId>(i);
  std::vector<NodeId> arena;
  std::vector<std::size_t> offsets;
  random_equal_partition_into(std::span<NodeId>(items), 5, rng, arena,
                              offsets);
  std::size_t min_size = items.size(), max_size = 0;
  for (std::size_t b = 0; b < 5; ++b) {
    const std::size_t size = offsets[b + 1] - offsets[b];
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

}  // namespace
}  // namespace tcast
