#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tcast {
namespace {

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, AddPlacesInCorrectBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(3.9);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi boundary also lands in last bin
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.density(0), 0.75);
  EXPECT_DOUBLE_EQ(h.density(1), 0.25);
}

TEST(Histogram, QuantileOfUniformMass) {
  Histogram h(0.0, 100.0, 100);
  RngStream rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform_real(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty → lo
  h.add(5.0);
  EXPECT_GE(h.quantile(1.0), 4.0);
}

TEST(Histogram, AsciiRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);  // modal bin full
  EXPECT_NE(art.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace tcast
