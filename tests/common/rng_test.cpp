#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace tcast {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, SameSeedSameSequence) {
  Xoshiro256pp a(7, 3), b(7, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, DifferentStreamsDiverge) {
  Xoshiro256pp a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 256; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngStream, UniformBelowStaysInRange) {
  RngStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_below(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(RngStream, UniformBelowCoversAllResidues) {
  RngStream rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngStream, UniformBelowIsRoughlyUniform) {
  RngStream rng(3);
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i)
    counts[static_cast<std::size_t>(rng.uniform_below(8))]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 / 5);  // within 20%
  }
}

TEST(RngStream, UniformIntInclusiveBounds) {
  RngStream rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngStream, Uniform01HalfOpen) {
  RngStream rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngStream, BernoulliMatchesProbability) {
  RngStream rng(6);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngStream, BernoulliDegenerate) {
  RngStream rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngStream, NormalMomentsAreSane) {
  RngStream rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngStream, NormalScaled) {
  RngStream rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngStream, ShuffleIsAPermutation) {
  RngStream rng(10);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

TEST(RngStream, SampleSubsetProperties) {
  RngStream rng(11);
  const auto s = rng.sample_subset(50, 10);
  ASSERT_EQ(s.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());  // distinct
  for (const NodeId id : s) EXPECT_LT(id, 50u);
}

TEST(RngStream, SampleSubsetFullAndEmpty) {
  RngStream rng(12);
  EXPECT_TRUE(rng.sample_subset(5, 0).empty());
  const auto all = rng.sample_subset(5, 5);
  EXPECT_EQ(all, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(RngStream, SampleSubsetIsUniform) {
  // Each element of [0,10) should appear in a 3-subset with prob 3/10.
  RngStream rng(13);
  std::array<int, 10> counts{};
  const int trials = 30000;
  for (int i = 0; i < trials; ++i)
    for (const NodeId id : rng.sample_subset(10, 3))
      counts[static_cast<std::size_t>(id)]++;
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
}

TEST(TrialStreamId, DistinctForDistinctTrials) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t e = 0; e < 10; ++e)
    for (std::uint64_t t = 0; t < 100; ++t)
      ids.insert(trial_stream_id(e, t));
  EXPECT_EQ(ids.size(), 1000u);
}

}  // namespace
}  // namespace tcast
