#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"

namespace tcast {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
  RunningStats s;
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

/// Property: merging partial accumulators equals accumulating everything.
class StatsMergeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StatsMergeTest, MergeEqualsSequential) {
  const auto [na, nb] = GetParam();
  RngStream rng(static_cast<std::uint64_t>(na * 1000 + nb));
  RunningStats a, b, all;
  for (int i = 0; i < na; ++i) {
    const double v = rng.normal(3.0, 7.0);
    a.add(v);
    all.add(v);
  }
  for (int i = 0; i < nb; ++i) {
    const double v = rng.normal(-2.0, 0.5);
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatsMergeTest,
                         ::testing::Values(std::tuple{0, 0}, std::tuple{0, 5},
                                           std::tuple{5, 0}, std::tuple{1, 1},
                                           std::tuple{100, 1},
                                           std::tuple{1, 100},
                                           std::tuple{1000, 1000}));

TEST(RunningStats, SemShrinksWithSamples) {
  RngStream rng(99);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.sem(), large.sem());
}

TEST(RunningStats, ToStringContainsFields) {
  RunningStats s;
  s.add(1);
  s.add(2);
  const auto str = s.to_string();
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("n=2"), std::string::npos);
}

TEST(Proportion, ValueAndHalfWidth) {
  Proportion p;
  for (int i = 0; i < 100; ++i) p.add(i < 30);
  EXPECT_DOUBLE_EQ(p.value(), 0.3);
  EXPECT_EQ(p.trials(), 100u);
  EXPECT_EQ(p.successes(), 30u);
  // 1.96 * sqrt(0.3*0.7/100) ≈ 0.0898
  EXPECT_NEAR(p.half_width95(), 0.0898, 0.001);
}

TEST(Proportion, EmptyIsZero) {
  Proportion p;
  EXPECT_EQ(p.value(), 0.0);
  EXPECT_EQ(p.half_width95(), 0.0);
}

}  // namespace
}  // namespace tcast
