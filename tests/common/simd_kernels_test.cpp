// Property battery for the SIMD word-set kernels (common/simd_kernels.hpp):
// every kernel × every dispatch level this CPU can run, against two
// independent oracles — a std::bitset walk over the packed words and a
// sorted-id-vector set algebra — on randomized inputs that pin the
// word-boundary geometry (vector-width multiples, off-by-one tails, the
// empty span) and the bin-count batch's special-cased small images.
//
// The contract under test is strict bit-exactness: for ANY input, every
// level returns the same answer as the scalar reference. That is what lets
// the dispatcher pick a level at runtime (or a test force one) without the
// figure pipeline noticing.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_kernels.hpp"

namespace tcast::simd {
namespace {

/// Forces a dispatch level for one scope; always restores automatic
/// dispatch, including when an assertion fails mid-test.
class ForcedLevel {
 public:
  explicit ForcedLevel(Level level) { force_level(level); }
  ~ForcedLevel() { clear_forced_level(); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
};

// Word counts that straddle every vector geometry in play: 0; scalar-only
// tails; exactly one AVX2 block (4) and one AVX-512 block (8) with ±1
// neighbours; and multi-block spans with and without tails.
const std::size_t kWordCounts[] = {0,  1,  2,  3,  4,  5,  7,  8,
                                   9,  15, 16, 17, 24, 31, 32, 33};

/// Mixed-density random words: dense, sparse, empty, and full words all
/// appear, so carries/tails see both all-zero and all-one patterns.
std::vector<std::uint64_t> random_words(RngStream& rng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    switch (rng.uniform_below(5)) {
      case 0: w = 0; break;
      case 1: w = ~std::uint64_t{0}; break;
      case 2: w = rng.bits() & rng.bits() & rng.bits(); break;  // sparse
      default: w = rng.bits(); break;
    }
  }
  return out;
}

// --- Oracle 1: per-word std::bitset algebra. -------------------------------

bool intersect_bitset_oracle(const std::vector<std::uint64_t>& a,
                             const std::vector<std::uint64_t>& b,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((std::bitset<64>(a[i]) & std::bitset<64>(b[i])).any()) return true;
  return false;
}

std::size_t and_popcount_bitset_oracle(const std::vector<std::uint64_t>& a,
                                       const std::vector<std::uint64_t>& b,
                                       std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += (std::bitset<64>(a[i]) & std::bitset<64>(b[i])).count();
  return total;
}

// --- Oracle 2: sorted id vectors + std::set_intersection. ------------------

std::vector<std::uint32_t> ids_of(const std::vector<std::uint64_t>& words,
                                  std::size_t n) {
  std::vector<std::uint32_t> ids;
  for (std::size_t w = 0; w < n; ++w)
    for (std::uint32_t bit = 0; bit < 64; ++bit)
      if (words[w] & (std::uint64_t{1} << bit))
        ids.push_back(static_cast<std::uint32_t>(w * 64 + bit));
  return ids;  // ascending by construction
}

std::size_t intersection_size_sorted_oracle(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b,
    std::size_t n) {
  const auto ia = ids_of(a, n);
  const auto ib = ids_of(b, n);
  std::vector<std::uint32_t> both;
  std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                        std::back_inserter(both));
  return both.size();
}

TEST(SimdKernels, SupportedLevelsAreCoherent) {
  const auto levels = supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  EXPECT_NE(std::find(levels.begin(), levels.end(), best_supported()),
            levels.end());
  for (const Level level : levels) {
    ForcedLevel forced(level);
    EXPECT_EQ(active_level(), level) << to_string(level);
  }
}

TEST(SimdKernels, IntersectMatchesBitsetOracleAtEveryLevel) {
  RngStream rng(0x51D0001, 1);
  for (const std::size_t n : kWordCounts) {
    for (std::size_t rep = 0; rep < 60; ++rep) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);
      const bool want = intersect_bitset_oracle(a, b, n);
      for (const Level level : supported_levels()) {
        ForcedLevel forced(level);
        EXPECT_EQ(words_intersect(a.data(), b.data(), n), want)
            << "n=" << n << " level=" << to_string(level);
      }
    }
  }
}

TEST(SimdKernels, IntersectSeesALoneBitInTheTailLane) {
  // A single shared bit placed in every word position, including the last
  // partial vector lane — the classic masked-tail bug this suite exists to
  // catch.
  for (const std::size_t n : kWordCounts) {
    for (std::size_t w = 0; w < n; ++w) {
      std::vector<std::uint64_t> a(n, 0), b(n, 0);
      a[w] = std::uint64_t{1} << 63;
      b[w] = std::uint64_t{1} << 63;
      for (const Level level : supported_levels()) {
        ForcedLevel forced(level);
        EXPECT_TRUE(words_intersect(a.data(), b.data(), n))
            << "n=" << n << " word=" << w << " level=" << to_string(level);
        b[w] >>= 1;  // now disjoint
        EXPECT_FALSE(words_intersect(a.data(), b.data(), n))
            << "n=" << n << " word=" << w << " level=" << to_string(level);
        b[w] <<= 1;
      }
    }
  }
}

TEST(SimdKernels, AndPopcountMatchesBothOraclesAtEveryLevel) {
  RngStream rng(0x51D0002, 1);
  for (const std::size_t n : kWordCounts) {
    for (std::size_t rep = 0; rep < 40; ++rep) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);
      const std::size_t bitset_want = and_popcount_bitset_oracle(a, b, n);
      ASSERT_EQ(bitset_want, intersection_size_sorted_oracle(a, b, n));
      for (const Level level : supported_levels()) {
        ForcedLevel forced(level);
        EXPECT_EQ(words_and_popcount(a.data(), b.data(), n), bitset_want)
            << "n=" << n << " level=" << to_string(level);
      }
    }
  }
}

TEST(SimdKernels, AndnotCountClearsExactlyTheIntersection) {
  RngStream rng(0x51D0003, 1);
  for (const std::size_t n : kWordCounts) {
    for (std::size_t rep = 0; rep < 40; ++rep) {
      const auto dst0 = random_words(rng, n);
      const auto mask = random_words(rng, n);
      const std::size_t removed_want =
          and_popcount_bitset_oracle(dst0, mask, n);
      for (const Level level : supported_levels()) {
        ForcedLevel forced(level);
        auto dst = dst0;
        EXPECT_EQ(words_andnot_count(dst.data(), mask.data(), n),
                  removed_want)
            << "n=" << n << " level=" << to_string(level);
        for (std::size_t w = 0; w < n; ++w)
          EXPECT_EQ(dst[w], dst0[w] & ~mask[w])
              << "n=" << n << " word=" << w << " level=" << to_string(level);
        // Idempotence: nothing left to clear on the second pass.
        EXPECT_EQ(words_andnot_count(dst.data(), mask.data(), n), 0u)
            << "n=" << n << " level=" << to_string(level);
      }
    }
  }
}

TEST(SimdKernels, BinIntersectionCountsMatchesPerBinOracle) {
  RngStream rng(0x51D0004, 1);
  // Geometries cover the n==1 and n==2 (pair-kernel) special cases with
  // vector-block and tail bin counts, asymmetric pos/bin word sizes in both
  // directions, and wide multi-word images.
  const std::size_t pos_word_counts[] = {1, 2, 3, 5, 8, 10};
  const std::size_t words_per_bin_counts[] = {1, 2, 3, 5, 9};
  const std::size_t bin_counts[] = {0, 1, 2, 3, 4, 5, 7, 31, 32, 33};
  for (const std::size_t pos_words : pos_word_counts) {
    for (const std::size_t wpb : words_per_bin_counts) {
      for (const std::size_t bins : bin_counts) {
        const auto pos = random_words(rng, pos_words);
        const auto arena = random_words(rng, wpb * bins);
        const std::size_t n = std::min(pos_words, wpb);
        std::vector<std::uint32_t> want(bins, 0);
        for (std::size_t b = 0; b < bins; ++b) {
          std::size_t c = 0;
          for (std::size_t w = 0; w < n; ++w)
            c += (std::bitset<64>(pos[w]) &
                  std::bitset<64>(arena[b * wpb + w]))
                     .count();
          want[b] = static_cast<std::uint32_t>(c);
        }
        for (const Level level : supported_levels()) {
          ForcedLevel forced(level);
          std::vector<std::uint32_t> got(bins, 0xdeadbeef);
          if (bins == 0) got.assign(1, 0xdeadbeef);  // non-null out
          bin_intersection_counts(pos.data(), pos_words, arena.data(), wpb,
                                  bins, got.data());
          for (std::size_t b = 0; b < bins; ++b)
            EXPECT_EQ(got[b], want[b])
                << "pos_words=" << pos_words << " wpb=" << wpb
                << " bins=" << bins << " bin=" << b
                << " level=" << to_string(level);
          if (bins == 0)
            EXPECT_EQ(got[0], 0xdeadbeef) << "wrote past zero bins";
        }
      }
    }
  }
}

TEST(SimdKernels, AllLevelsAgreePairwiseOnLargeRandomInputs) {
  // No oracle: every level must agree with every other on inputs large
  // enough that all vector paths take their main loops and their tails.
  RngStream rng(0x51D0005, 1);
  const auto levels = supported_levels();
  for (std::size_t rep = 0; rep < 20; ++rep) {
    const std::size_t n = 16 + rng.uniform_below(33);  // 16..48 words
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    std::vector<std::size_t> counts;
    std::vector<bool> hits;
    for (const Level level : levels) {
      ForcedLevel forced(level);
      counts.push_back(words_and_popcount(a.data(), b.data(), n));
      hits.push_back(words_intersect(a.data(), b.data(), n));
    }
    for (std::size_t i = 1; i < levels.size(); ++i) {
      EXPECT_EQ(counts[i], counts[0])
          << to_string(levels[i]) << " vs " << to_string(levels[0]);
      EXPECT_EQ(hits[i], hits[0])
          << to_string(levels[i]) << " vs " << to_string(levels[0]);
    }
  }
}

}  // namespace
}  // namespace tcast::simd
