// Emulated mote bench: configuration plumbing, reboot semantics, error
// census, and the Fig-4 experiment driver.
#include <gtest/gtest.h>

#include "testbed/controller.hpp"
#include "testbed/experiment.hpp"

namespace tcast::testbed {
namespace {

Testbed::Config ideal_bench(std::size_t n, std::uint64_t seed = 1) {
  Testbed::Config cfg;
  cfg.participants = n;
  cfg.seed = seed;
  cfg.radio_irregularity = false;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  return cfg;
}

TEST(Testbed, ConfigureSetsPredicates) {
  Testbed bench(ideal_bench(4));
  bench.configure_predicates({true, false, true, false});
  EXPECT_TRUE(bench.is_positive(0));
  EXPECT_FALSE(bench.is_positive(1));
  EXPECT_TRUE(bench.is_positive(2));
  EXPECT_EQ(bench.positive_count(bench.all_nodes()), 2u);
}

TEST(Testbed, RebootClearsPredicates) {
  Testbed bench(ideal_bench(4));
  bench.configure_predicates({true, true, true, true});
  bench.reboot_all();
  EXPECT_EQ(bench.positive_count(bench.all_nodes()), 0u);
}

TEST(Testbed, IdealBenchAnswersCorrectlyAcrossGrid) {
  Testbed bench(ideal_bench(12));
  RngStream workload(7);
  for (std::size_t t : {2u, 4u, 6u}) {
    for (std::size_t x = 0; x <= 12; x += 2) {
      bench.reboot_all();
      std::vector<bool> positive(12, false);
      for (const NodeId id : workload.sample_subset(12, x))
        positive[static_cast<std::size_t>(id)] = true;
      bench.configure_predicates(positive);
      const auto r = bench.run_query(t);
      EXPECT_TRUE(r.correct) << "t=" << t << " x=" << x;
      EXPECT_EQ(r.outcome.decision, x >= t);
    }
  }
}

TEST(Testbed, BinEventsRecordGroundTruth) {
  Testbed bench(ideal_bench(6));
  bench.configure_predicates({true, true, false, false, false, false});
  bench.channel().clear_bin_events();
  bench.run_query(2);
  ASSERT_FALSE(bench.channel().bin_events().empty());
  for (const auto& event : bench.channel().bin_events())
    EXPECT_EQ(event.observed_nonempty, event.true_positives > 0);
}

TEST(Testbed, IrregularBenchOnlyFalseNegatives) {
  Testbed::Config cfg;
  cfg.participants = 12;
  cfg.seed = 3;
  cfg.radio_irregularity = true;
  Testbed bench(cfg);
  RngStream workload(11);
  std::size_t phantom = 0, missed = 0, queried = 0;
  for (int run = 0; run < 40; ++run) {
    bench.reboot_all();
    std::vector<bool> positive(12, false);
    for (const NodeId id : workload.sample_subset(12, 6))
      positive[static_cast<std::size_t>(id)] = true;
    bench.configure_predicates(positive);
    bench.channel().clear_bin_events();
    bench.run_query(4);
    for (const auto& e : bench.channel().bin_events()) {
      ++queried;
      if (e.true_positives == 0 && e.observed_nonempty) ++phantom;
      if (e.true_positives > 0 && !e.observed_nonempty) ++missed;
    }
  }
  EXPECT_GT(queried, 0u);
  EXPECT_EQ(phantom, 0u);  // backcast cannot false-positive
}

TEST(MoteExperiment, SmallRunProducesFullGrid) {
  MoteExperimentConfig cfg;
  cfg.participants = 6;
  cfg.thresholds = {2, 3};
  cfg.runs_per_point = 5;
  const auto results = run_mote_experiment(cfg);
  EXPECT_EQ(results.points.size(), 2u * 7u);  // 2 thresholds × x ∈ [0,6]
  EXPECT_EQ(results.total_runs, 2u * 7u * 5u);
  EXPECT_GT(results.total_queries, 0u);
  for (const auto& p : results.points) EXPECT_EQ(p.runs, 5u);
}

TEST(MoteExperiment, IdealRadioNeverErrs) {
  MoteExperimentConfig cfg;
  cfg.participants = 6;
  cfg.thresholds = {2};
  cfg.runs_per_point = 10;
  cfg.radio_irregularity = false;
  const auto results = run_mote_experiment(cfg);
  EXPECT_EQ(results.false_negative_runs, 0u);
  EXPECT_EQ(results.false_positive_runs, 0u);
  for (const auto& entry : results.census) {
    EXPECT_EQ(entry.missed, 0u);
    EXPECT_EQ(entry.phantom, 0u);
  }
}

TEST(MoteExperiment, IrregularRadioErrorProfileMatchesPaper) {
  // Full-size run (smaller repeat count for test speed): error rate in low
  // single-digit percent, zero false positives, misses dominated by k = 1.
  MoteExperimentConfig cfg;
  cfg.participants = 12;
  cfg.thresholds = {2, 4, 6};
  cfg.runs_per_point = 12;
  const auto results = run_mote_experiment(cfg);
  EXPECT_EQ(results.false_positive_runs, 0u);
  EXPECT_LT(results.run_error_rate(), 0.06);
  std::size_t missed_k1 = 0, missed_rest = 0;
  for (const auto& entry : results.census) {
    EXPECT_EQ(entry.phantom, 0u);
    if (entry.k == 1)
      missed_k1 += entry.missed;
    else
      missed_rest += entry.missed;
  }
  EXPECT_GE(missed_k1, missed_rest);
}

}  // namespace
}  // namespace tcast::testbed
