#include "testbed/serial_port.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcast::testbed {
namespace {

TEST(SerialPort, CommandArrivesAfterOneLatency) {
  sim::Simulator sim;
  SerialPort port(sim, 3 * kMillisecond);
  std::vector<SimTime> deliveries;
  port.bind_mote([&](const Command& cmd) {
    EXPECT_TRUE(std::holds_alternative<RebootCmd>(cmd));
    deliveries.push_back(sim.now());
  });
  port.send_command(RebootCmd{});
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 3 * kMillisecond);
}

TEST(SerialPort, ResponseArrivesAfterOneLatency) {
  sim::Simulator sim;
  SerialPort port(sim, kMillisecond);
  std::vector<Response> responses;
  port.bind_laptop([&](const Response& r) { responses.push_back(r); });
  port.send_response(Response{.ok = true, .decision = true, .queries = 7});
  sim.run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].decision);
  EXPECT_EQ(responses[0].queries, 7u);
  EXPECT_EQ(sim.now(), kMillisecond);
}

TEST(SerialPort, CommandsPreserveOrder) {
  sim::Simulator sim;
  SerialPort port(sim, kMillisecond);
  std::vector<bool> positives;
  port.bind_mote([&](const Command& cmd) {
    if (const auto* cfg = std::get_if<ConfigureCmd>(&cmd))
      positives.push_back(cfg->predicate_positive);
  });
  port.send_command(ConfigureCmd{.predicate_positive = true});
  port.send_command(ConfigureCmd{.predicate_positive = false});
  port.send_command(ConfigureCmd{.predicate_positive = true});
  sim.run();
  EXPECT_EQ(positives, (std::vector<bool>{true, false, true}));
}

TEST(SerialPortDeathTest, UnboundEndpointsAbort) {
  sim::Simulator sim;
  SerialPort port(sim, kMillisecond);
  EXPECT_DEATH(port.send_command(RebootCmd{}), "no mote");
  EXPECT_DEATH(port.send_response(Response{}), "no laptop");
}

}  // namespace
}  // namespace tcast::testbed
