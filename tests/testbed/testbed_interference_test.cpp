// The bench under cross-traffic: the paper's Kansei future-work scenario
// run on the emulated testbed.
#include <gtest/gtest.h>

#include "testbed/controller.hpp"

namespace tcast::testbed {
namespace {

Testbed::Config noisy_bench(double duty, std::uint64_t seed) {
  Testbed::Config cfg;
  cfg.participants = 8;
  cfg.seed = seed;
  cfg.radio_irregularity = false;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  cfg.interference_duty = duty;
  return cfg;
}

TEST(TestbedInterference, SerialPlaneSurvivesCrossTraffic) {
  Testbed bench(noisy_bench(0.3, 1));
  // configure + reboot + configure: all must settle despite the perpetual
  // interferer keeping the simulator queue non-empty.
  bench.configure_predicates(
      {true, false, true, false, true, false, true, false});
  EXPECT_EQ(bench.positive_count(bench.all_nodes()), 4u);
  bench.reboot_all();
  EXPECT_EQ(bench.positive_count(bench.all_nodes()), 0u);
  bench.configure_predicates(
      {true, true, false, false, false, false, false, false});
  EXPECT_EQ(bench.positive_count(bench.all_nodes()), 2u);
}

TEST(TestbedInterference, QueriesTerminateAndNeverFalsePositive) {
  Testbed bench(noisy_bench(0.25, 2));
  std::vector<bool> empty(8, false);
  bench.configure_predicates(empty);
  for (int run = 0; run < 15; ++run) {
    bench.channel().clear_bin_events();
    const auto result = bench.run_query(2);
    // Backcast-based tcast cannot conjure positives out of foreign noise.
    EXPECT_FALSE(result.outcome.decision);
    EXPECT_TRUE(result.correct);
    for (const auto& e : bench.channel().bin_events())
      EXPECT_FALSE(e.observed_nonempty);
  }
}

TEST(TestbedInterference, FalseNegativesAppearUnderHeavyTraffic) {
  Testbed bench(noisy_bench(0.4, 3));
  std::vector<bool> all(8, true);
  std::size_t missed = 0, queried = 0;
  for (int run = 0; run < 25; ++run) {
    bench.reboot_all();
    bench.configure_predicates(all);
    bench.channel().clear_bin_events();
    (void)bench.run_query(4);
    for (const auto& e : bench.channel().bin_events()) {
      if (e.true_positives > 0) {
        ++queried;
        if (!e.observed_nonempty) ++missed;
      }
    }
  }
  EXPECT_GT(queried, 0u);
  EXPECT_GT(missed, 0u);  // HACKs do get clobbered at 40% duty
}

TEST(TestbedInterference, CleanBenchUnaffectedByZeroDuty) {
  Testbed bench(noisy_bench(0.0, 4));
  bench.configure_predicates(
      {true, true, true, true, false, false, false, false});
  const auto result = bench.run_query(4);
  EXPECT_TRUE(result.outcome.decision);
  EXPECT_TRUE(result.correct);
}

}  // namespace
}  // namespace tcast::testbed
