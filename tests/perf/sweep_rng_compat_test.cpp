// RNG-draw compatibility for the batched sweep engine (perf/sweep_engine):
// the lane-parallel, workspace-recycling sweep must consume exactly the
// draw sequence of the sequential fresh-construction engine — trial (p, i)
// always runs on RngStream(seed, trial_stream_id(experiment_id, i)),
// whatever lane executes it and whatever state the recycled workspace is
// in. Proven three ways:
//
//   1. The whole sweep grid, bitwise, against a hand-rolled sequential
//      loop that constructs a fresh channel per trial (the pre-batching
//      engine), across worker counts.
//   2. Per-trial: the persistent-engine entry point (run_with_engine on a
//      rebound RoundEngine) leaves the trial stream in exactly the state
//      the fresh-engine path leaves it — same outcome, same next raw word.
//   3. Draw-count accounting: a trial's stream, replayed standalone,
//      reaches the same state — so no lane can leak draws into a
//      neighbouring trial.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/registry.hpp"
#include "core/round_engine.hpp"
#include "group/exact_channel.hpp"
#include "perf/sweep_engine.hpp"

namespace tcast::perf {
namespace {

QuerySweepSpec base_spec(const std::string& algorithm,
                         group::CollisionModel model) {
  QuerySweepSpec spec;
  spec.algorithm = algorithm;
  spec.n = 64;
  spec.trials = 30;
  spec.seed = 0xd0a30cafeULL;
  spec.channel.model = model;
  for (const std::size_t x : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                              std::size_t{16}, std::size_t{40},
                              std::size_t{64}})
    spec.points.push_back({x, 8, sweep_point_id(7, 2, x)});
  return spec;
}

/// The sequential reference: a fresh ExactChannel and a fresh engine per
/// trial, no workspace, no lanes — the draw-consumption ground truth.
std::vector<RunningStats> sequential_sweep(const QuerySweepSpec& spec) {
  const auto* algo = core::find_algorithm(spec.algorithm);
  std::vector<RunningStats> out(spec.points.size());
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    for (std::size_t i = 0; i < spec.trials; ++i) {
      RngStream rng(spec.seed,
                    trial_stream_id(spec.points[p].experiment_id, i));
      auto channel = group::ExactChannel::with_random_positives(
          spec.n, spec.points[p].x, rng, spec.channel);
      const auto outcome = algo->run(channel, channel.all_nodes(),
                                     spec.points[p].t, rng, spec.engine);
      out[p].add(static_cast<double>(outcome.queries));
    }
  }
  return out;
}

void expect_bitwise_equal(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(SweepRngCompat, BatchedSweepMatchesSequentialFreshConstruction) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const auto model :
       {group::CollisionModel::kOnePlus, group::CollisionModel::kTwoPlus}) {
    for (const char* algorithm : {"2tbins", "expinc", "abns:2t", "oracle"}) {
      const QuerySweepSpec spec = base_spec(algorithm, model);
      const auto want = sequential_sweep(spec);
      for (const std::size_t workers : {std::size_t{1}, std::size_t{3}, hw}) {
        ThreadPool pool(workers);
        QuerySweepSpec lane = spec;
        lane.pool = &pool;
        const auto got = run_query_sweep(lane);
        ASSERT_EQ(got.queries.size(), want.size());
        SCOPED_TRACE(std::string(algorithm) + " model=" +
                     group::to_string(model) +
                     " workers=" + std::to_string(workers));
        for (std::size_t p = 0; p < want.size(); ++p)
          expect_bitwise_equal(got.queries[p], want[p]);
      }
    }
  }
}

TEST(SweepRngCompat, PersistentEngineConsumesIdenticalDrawSequence) {
  // The sweep lane's persistent RoundEngine (rebind + run_with_engine) vs
  // the fresh-engine path every algorithm exposes through run(): same
  // outcome AND the trial stream parked on the same next word, for every
  // registry algorithm that has the engine entry point.
  for (const auto& spec : core::algorithm_registry()) {
    if (!spec.run_with_engine) continue;
    RngStream scratch(0xe6171, 0);
    auto fresh_ch = group::ExactChannel::all_negative(48, scratch, {});
    auto reuse_ch = group::ExactChannel::all_negative(48, scratch, {});
    core::RoundEngine engine(reuse_ch, scratch, {});
    for (std::size_t trial = 0; trial < 25; ++trial) {
      const std::size_t x = trial % 13;
      const std::size_t t = 6;

      RngStream fresh_rng(0xe6172, trial_stream_id(42, trial));
      fresh_ch.rebind_rng(fresh_rng);
      fresh_ch.assign_random_positives(x, fresh_rng);
      fresh_ch.reset_query_counter();
      const auto want =
          spec.run(fresh_ch, fresh_ch.all_nodes(), t, fresh_rng, {});
      const std::uint64_t want_word = fresh_rng.bits();

      RngStream reuse_rng(0xe6172, trial_stream_id(42, trial));
      reuse_ch.rebind_rng(reuse_rng);
      reuse_ch.assign_random_positives(x, reuse_rng);
      reuse_ch.reset_query_counter();
      engine.rebind(reuse_ch, reuse_rng, {});
      const auto got =
          spec.run_with_engine(engine, reuse_ch.all_nodes(), t);
      const std::uint64_t got_word = reuse_rng.bits();

      SCOPED_TRACE(spec.name + " trial " + std::to_string(trial));
      EXPECT_EQ(got.decision, want.decision);
      EXPECT_EQ(got.queries, want.queries);
      EXPECT_EQ(got.rounds, want.rounds);
      EXPECT_EQ(got.confirmed_positives, want.confirmed_positives);
      EXPECT_EQ(got.remaining_candidates, want.remaining_candidates);
      EXPECT_EQ(reuse_ch.queries_used(), fresh_ch.queries_used());
      EXPECT_EQ(got_word, want_word);
    }
  }
}

TEST(SweepRngCompat, TrialStreamsAreIsolatedAcrossLanes) {
  // Replaying any single trial standalone must land its stream on the same
  // word as during the full batched sweep — i.e. no trial's draws depend
  // on which trials ran before it on the same lane workspace. Spot-checked
  // by running the batch, then replaying each trial alone and comparing
  // the outcome it contributes.
  const QuerySweepSpec spec = base_spec("2tbins", group::CollisionModel::kOnePlus);
  const auto* algo = core::find_algorithm(spec.algorithm);
  const auto batch = run_query_sweep(spec);
  ASSERT_EQ(batch.queries.size(), spec.points.size());
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    RunningStats replayed;
    for (std::size_t i = 0; i < spec.trials; ++i) {
      RngStream rng(spec.seed,
                    trial_stream_id(spec.points[p].experiment_id, i));
      auto channel = group::ExactChannel::with_random_positives(
          spec.n, spec.points[p].x, rng, spec.channel);
      const auto outcome = algo->run(channel, channel.all_nodes(),
                                     spec.points[p].t, rng, spec.engine);
      replayed.add(static_cast<double>(outcome.queries));
    }
    SCOPED_TRACE("point " + std::to_string(p));
    expect_bitwise_equal(batch.queries[p], replayed);
  }
}

}  // namespace
}  // namespace tcast::perf
