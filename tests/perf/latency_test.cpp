// LatencyRecorder: exact scalar stats, percentile accuracy, and the
// stride-doubling decimation's bounded-memory guarantee — plus a
// randomized property suite pinning the percentile math to a
// sort-the-whole-sample oracle, including the empty, single-sample, and
// buffer-saturation corners.
#include "perf/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace tcast::perf {
namespace {

TEST(PercentileOf, InterpolatesOverTheSortedSample) {
  std::vector<std::uint64_t> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({7}, 0.99), 7.0);
}

TEST(LatencyRecorder, ExactStatsOverASmallSample) {
  LatencyRecorder rec;
  for (const std::uint64_t v : {5u, 1u, 9u, 3u, 7u}) rec.record(v);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(LatencyRecorder, DecimationKeepsMemoryBoundedAndQuantilesSane) {
  // 100k samples of 0..999 repeating through a 1k-cap recorder: counts
  // stay exact, and the retained systematic sample still estimates the
  // uniform quantiles well.
  LatencyRecorder rec(1024);
  const std::uint64_t total = 100'000;
  for (std::uint64_t i = 0; i < total; ++i) rec.record(i % 1000);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, total);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 999u);
  EXPECT_NEAR(s.mean, 499.5, 0.5);
  EXPECT_NEAR(s.p50, 500.0, 50.0);
  EXPECT_NEAR(s.p99, 990.0, 50.0);
}

/// Sorted-oracle quantile: sort a copy, nearest-rank with interpolation —
/// independently re-derived, not a call back into percentile_of.
double oracle_percentile(std::vector<std::uint64_t> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(xs[lo]) +
         frac * (static_cast<double>(xs[hi]) - static_cast<double>(xs[lo]));
}

TEST(LatencyRecorder, PercentilesMatchSortedOracleBelowCapacity) {
  // Under the cap nothing is decimated, so every reported percentile must
  // equal the oracle EXACTLY — across sample counts that hit the rank
  // interpolation from every side, with duplicate-heavy and adversarially
  // skewed values.
  RngStream rng(0x1a7e, 1);
  for (const std::size_t count :
       {std::size_t{2}, std::size_t{3}, std::size_t{10}, std::size_t{99},
        std::size_t{100}, std::size_t{101}, std::size_t{255}}) {
    for (std::size_t rep = 0; rep < 20; ++rep) {
      LatencyRecorder rec(1 << 10);
      std::vector<std::uint64_t> xs;
      for (std::size_t i = 0; i < count; ++i) {
        // Heavy-tailed-ish: mostly small, occasional huge values, and runs
        // of exact duplicates.
        std::uint64_t v = rng.uniform_below(100);
        if (rng.uniform_below(10) == 0) v = 1'000'000 + rng.uniform_below(9);
        xs.push_back(v);
        rec.record(v);
      }
      const auto s = rec.summarize();
      EXPECT_EQ(s.count, count);
      EXPECT_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
      EXPECT_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
      for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const double want = oracle_percentile(xs, q);
        const double got = q == 0.5    ? s.p50
                           : q == 0.9  ? s.p90
                           : q == 0.99 ? s.p99
                                       : s.p999;
        EXPECT_DOUBLE_EQ(got, want)
            << "count=" << count << " q=" << q;
      }
    }
  }
}

TEST(LatencyRecorder, EmptyRecorderSummarizesToZeros) {
  const auto s = LatencyRecorder(16).summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p999, 0.0);
}

TEST(LatencyRecorder, SingleSampleIsEveryPercentile) {
  LatencyRecorder rec(16);
  rec.record(1234);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 1234u);
  EXPECT_EQ(s.max, 1234u);
  EXPECT_DOUBLE_EQ(s.mean, 1234.0);
  EXPECT_DOUBLE_EQ(s.p50, 1234.0);
  EXPECT_DOUBLE_EQ(s.p90, 1234.0);
  EXPECT_DOUBLE_EQ(s.p99, 1234.0);
  EXPECT_DOUBLE_EQ(s.p999, 1234.0);
}

TEST(LatencyRecorder, SaturatedRecorderTracksTheFullSampleOracle) {
  // Far past the cap, the stride-doubled systematic sample must still
  // estimate the full-population quantiles: scalar stats stay EXACT, and
  // the decimated percentiles land within a few percent of the oracle over
  // the complete (never-retained) sample.
  RngStream rng(0x1a7e, 2);
  LatencyRecorder rec(256);
  std::vector<std::uint64_t> all;
  double sum = 0.0;
  for (std::size_t i = 0; i < 50'000; ++i) {
    const std::uint64_t v = 10 + rng.uniform_below(10'000);
    all.push_back(v);
    sum += static_cast<double>(v);
    rec.record(v);
  }
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, all.size());
  EXPECT_EQ(s.min, *std::min_element(all.begin(), all.end()));
  EXPECT_EQ(s.max, *std::max_element(all.begin(), all.end()));
  EXPECT_DOUBLE_EQ(s.mean, sum / static_cast<double>(all.size()));
  EXPECT_NEAR(s.p50, oracle_percentile(all, 0.5), 500.0);
  EXPECT_NEAR(s.p90, oracle_percentile(all, 0.9), 500.0);
  EXPECT_NEAR(s.p99, oracle_percentile(all, 0.99), 600.0);
}

TEST(LatencyRecorder, ResetClearsEverything) {
  LatencyRecorder rec;
  rec.record(42);
  rec.reset();
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

}  // namespace
}  // namespace tcast::perf
