// LatencyRecorder: exact scalar stats, percentile accuracy, and the
// stride-doubling decimation's bounded-memory guarantee.
#include "perf/latency.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tcast::perf {
namespace {

TEST(PercentileOf, InterpolatesOverTheSortedSample) {
  std::vector<std::uint64_t> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({7}, 0.99), 7.0);
}

TEST(LatencyRecorder, ExactStatsOverASmallSample) {
  LatencyRecorder rec;
  for (const std::uint64_t v : {5u, 1u, 9u, 3u, 7u}) rec.record(v);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(LatencyRecorder, DecimationKeepsMemoryBoundedAndQuantilesSane) {
  // 100k samples of 0..999 repeating through a 1k-cap recorder: counts
  // stay exact, and the retained systematic sample still estimates the
  // uniform quantiles well.
  LatencyRecorder rec(1024);
  const std::uint64_t total = 100'000;
  for (std::uint64_t i = 0; i < total; ++i) rec.record(i % 1000);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, total);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 999u);
  EXPECT_NEAR(s.mean, 499.5, 0.5);
  EXPECT_NEAR(s.p50, 500.0, 50.0);
  EXPECT_NEAR(s.p99, 990.0, 50.0);
}

TEST(LatencyRecorder, ResetClearsEverything) {
  LatencyRecorder rec;
  rec.record(42);
  rec.reset();
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

}  // namespace
}  // namespace tcast::perf
