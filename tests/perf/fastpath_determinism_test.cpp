// The optimization contract of this PR: the templated Monte-Carlo fast paths
// must be BIT-identical to the pre-existing std::function shims, for every
// worker count. Any drift here means the optimization changed observable
// results and must be rejected.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/monte_carlo.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tcast {
namespace {

double trial_metric(RngStream& rng) {
  // Irregular enough that any reordering or stream reuse shows up.
  const double a = rng.uniform01();
  const double b = rng.normal(0.0, 2.0);
  return a + 0.25 * b + (rng.bernoulli(0.3) ? 1.0 : 0.0);
}

void expect_bitwise_equal(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  // Bit-exact, not approximately equal: the reduction order is part of the
  // determinism contract.
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

std::vector<std::size_t> worker_counts_under_test() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

TEST(FastPathDeterminism, RunTrialsTemplateMatchesShimAcrossWorkerCounts) {
  const std::function<double(RngStream&)> erased = trial_metric;
  for (const std::size_t workers : worker_counts_under_test()) {
    ThreadPool pool(workers);
    MonteCarloConfig cfg;
    cfg.trials = 501;  // odd, not a multiple of any chunk size
    cfg.experiment_id = 7;
    cfg.pool = &pool;
    const RunningStats fast = run_trials(cfg, trial_metric);
    const RunningStats shim = run_trials(cfg, erased);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_bitwise_equal(fast, shim);
  }
}

TEST(FastPathDeterminism, RunTrialsIdenticalAcrossWorkerCounts) {
  MonteCarloConfig base;
  base.trials = 501;
  base.experiment_id = 11;
  ThreadPool reference_pool(1);
  base.pool = &reference_pool;
  const RunningStats reference = run_trials(base, trial_metric);
  for (const std::size_t workers : worker_counts_under_test()) {
    ThreadPool pool(workers);
    MonteCarloConfig cfg = base;
    cfg.pool = &pool;
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_bitwise_equal(run_trials(cfg, trial_metric), reference);
  }
}

TEST(FastPathDeterminism, RunBoolTrialsTemplateMatchesShim) {
  const auto trial = [](RngStream& rng) { return rng.bernoulli(0.42); };
  const std::function<bool(RngStream&)> erased = trial;
  for (const std::size_t workers : worker_counts_under_test()) {
    ThreadPool pool(workers);
    MonteCarloConfig cfg;
    cfg.trials = 333;
    cfg.experiment_id = 13;
    cfg.pool = &pool;
    const Proportion fast = run_bool_trials(cfg, trial);
    const Proportion shim = run_bool_trials(cfg, erased);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(fast.trials(), shim.trials());
    EXPECT_EQ(fast.successes(), shim.successes());
    EXPECT_EQ(fast.value(), shim.value());
  }
}

TEST(FastPathDeterminism, SpanFastPathMatchesVectorCompatPath) {
  const auto span_trial = [](RngStream& rng, std::span<double> out) {
    out[0] = rng.uniform01();
    out[1] = rng.normal(1.0, 0.5);
    out[2] = out[0] * out[1];
  };
  // Same math through the vector-compat overload (needs a vector-only
  // signature so overload resolution picks the compat path).
  const std::function<void(RngStream&, std::vector<double>&)> vec_trial =
      [&span_trial](RngStream& rng, std::vector<double>& out) {
        span_trial(rng, std::span<double>(out));
      };
  for (const std::size_t workers : worker_counts_under_test()) {
    ThreadPool pool(workers);
    MonteCarloConfig cfg;
    cfg.trials = 257;
    cfg.experiment_id = 17;
    cfg.pool = &pool;
    const auto fast = run_multi_trials(cfg, 3, span_trial);
    const auto compat = run_multi_trials(cfg, 3, vec_trial);
    ASSERT_EQ(fast.size(), 3u);
    ASSERT_EQ(compat.size(), 3u);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    for (std::size_t m = 0; m < 3; ++m)
      expect_bitwise_equal(fast[m], compat[m]);
  }
}

TEST(FastPathDeterminism, NestedParallelForStillDeterministic) {
  // A trial that itself calls parallel_for must run its inner loop inline
  // (worker-thread re-entry) and still produce worker-count-independent
  // results.
  const auto trial = [](RngStream& rng) {
    double acc = rng.uniform01();
    parallel_for(4, [&acc](std::size_t i) {
      acc += static_cast<double>(i) * 1e-3;
    });
    return acc;
  };
  ThreadPool one(1);
  ThreadPool many(4);
  MonteCarloConfig cfg;
  cfg.trials = 64;
  cfg.experiment_id = 19;
  cfg.pool = &one;
  const RunningStats serial = run_trials(cfg, trial);
  cfg.pool = &many;
  const RunningStats parallel = run_trials(cfg, trial);
  expect_bitwise_equal(serial, parallel);
}

}  // namespace
}  // namespace tcast
