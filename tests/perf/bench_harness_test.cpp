// Self-tests for the benchmarking harness: the statistics it reports
// (min/median/MAD), the tcast-bench-v1 JSON schema round-trip, and the
// registry runner itself.
#include "perf/bench_harness.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "perf/json.hpp"

namespace tcast::perf {
namespace {

TEST(BenchStats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({9.0, 7.0, 1.0, 3.0, 5.0}), 5.0);
}

TEST(BenchStats, MedianEvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({10.0, 10.0, 10.0, 40.0}), 10.0);
}

TEST(BenchStats, MedianUnaffectedByOutlier) {
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(BenchStats, MadOnKnownSamples) {
  // median = 3, deviations {2,1,0,1,2} -> MAD 1.
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 3.0, 4.0, 5.0}), 1.0);
  // Constant series has zero spread.
  EXPECT_DOUBLE_EQ(mad_of({7.0, 7.0, 7.0}), 0.0);
  // median = 2.5, deviations {1.5,0.5,0.5,1.5} -> MAD 1.
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 3.0, 4.0}), 1.0);
}

TEST(BenchStats, SummarizeComputesAllSixStats) {
  const std::vector<Sample> samples{
      {0.010, 0.009}, {0.030, 0.029}, {0.020, 0.019}};
  const Summary s = summarize(samples);
  EXPECT_EQ(s.reps, 3u);
  EXPECT_DOUBLE_EQ(s.wall_min_s, 0.010);
  EXPECT_DOUBLE_EQ(s.wall_median_s, 0.020);
  EXPECT_DOUBLE_EQ(s.wall_mad_s, 0.010);
  EXPECT_DOUBLE_EQ(s.cpu_min_s, 0.009);
  EXPECT_DOUBLE_EQ(s.cpu_median_s, 0.019);
  EXPECT_DOUBLE_EQ(s.cpu_mad_s, 0.010);
}

TEST(BenchJson, ValueRoundTrip) {
  const JsonValue v(JsonValue::Object{
      {"name", "x/y"},
      {"flag", true},
      {"nothing", nullptr},
      {"n", 0.1},  // not exactly representable: exercises %.17g
      {"list", JsonValue::Array{JsonValue(1.0), JsonValue("two")}},
  });
  std::string error;
  const auto parsed = parse_json(v.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, v);
  // Compact form round-trips too.
  const auto compact = parse_json(v.dump(0), &error);
  ASSERT_TRUE(compact.has_value()) << error;
  EXPECT_EQ(*compact, v);
}

TEST(BenchJson, StringEscapes) {
  const JsonValue v(std::string("a\"b\\c\nd\te"));
  std::string error;
  const auto parsed = parse_json(v.dump(0), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, v);
  // \u escapes from foreign writers decode as UTF-8.
  const auto esc = parse_json("\"\\u0041\\u00e9\"", &error);
  ASSERT_TRUE(esc.has_value()) << error;
  EXPECT_EQ(esc->as_string(), "A\xc3\xa9");
}

TEST(BenchJson, ParseErrorsAreReported) {
  for (const char* bad : {"", "{", "[1,", "{\"a\" 1}", "tru", "1 2",
                          "\"unterminated", "{\"a\":}", "nan"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

BenchResult sample_result(const std::string& name) {
  BenchResult r;
  r.name = name;
  r.unit = "trial";
  r.params = {{"metrics", 3.0}, {"rng_draws_per_trial", 1.0}};
  r.items = 200000;
  r.timing.reps = 11;
  r.timing.wall_min_s = 0.004;
  r.timing.wall_median_s = 0.0042;
  r.timing.wall_mad_s = 0.0001;
  r.timing.cpu_min_s = 0.03;
  r.timing.cpu_median_s = 0.031;
  r.timing.cpu_mad_s = 0.0002;
  return r;
}

TEST(BenchJson, BenchResultRoundTrip) {
  const BenchResult r = sample_result("common/run_trials/fast");
  const auto back = BenchResult::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, r.name);
  EXPECT_EQ(back->unit, r.unit);
  EXPECT_EQ(back->items, r.items);
  EXPECT_EQ(back->params, r.params);
  EXPECT_EQ(back->timing.reps, r.timing.reps);
  EXPECT_DOUBLE_EQ(back->timing.wall_median_s, r.timing.wall_median_s);
  EXPECT_DOUBLE_EQ(back->timing.cpu_mad_s, r.timing.cpu_mad_s);
  EXPECT_DOUBLE_EQ(back->items_per_s(), r.items_per_s());
}

TEST(BenchJson, ReportRoundTripThroughText) {
  Report rep;
  rep.git_sha = "0123456789abcdef";
  rep.quick = true;
  rep.host = host_info();
  rep.results.push_back(sample_result("common/run_trials/fast"));
  rep.results.push_back(sample_result("sim/event_queue/schedule_pop"));

  std::string error;
  const auto parsed = parse_json(rep.to_json_string(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto back = Report::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->schema, "tcast-bench-v1");
  EXPECT_EQ(back->git_sha, rep.git_sha);
  EXPECT_TRUE(back->quick);
  EXPECT_EQ(back->host.compiler, rep.host.compiler);
  EXPECT_EQ(back->host.build_type, rep.host.build_type);
  EXPECT_EQ(back->host.hardware_threads, rep.host.hardware_threads);
  ASSERT_EQ(back->results.size(), 2u);
  EXPECT_EQ(back->results[0].name, "common/run_trials/fast");
  EXPECT_EQ(back->results[1].name, "sim/event_queue/schedule_pop");
}

TEST(BenchJson, ReportRejectsWrongSchema) {
  Report rep;
  rep.results.push_back(sample_result("x"));
  JsonValue v = rep.to_json();
  v.as_object().insert_or_assign("schema", JsonValue("tcast-bench-v999"));
  EXPECT_FALSE(Report::from_json(v).has_value());
}

TEST(BenchRegistry, RunsBodiesAndReportsItems) {
  BenchRegistry registry;
  int calls = 0;
  registry.add(Benchmark{"t/counting",
                         "op",
                         {{"k", 2.0}},
                         [&calls](bool quick) -> std::uint64_t {
                           ++calls;
                           return quick ? 10 : 100;
                         }});
  RunOptions opts;
  opts.quick = true;
  opts.reps = 3;
  opts.warmup = 1;
  std::ostringstream progress;
  const auto results = registry.run(opts, &progress);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 timed
  EXPECT_EQ(results[0].items, 10u);
  EXPECT_EQ(results[0].timing.reps, 3u);
  EXPECT_EQ(results[0].params.at("k"), 2.0);
  EXPECT_NE(progress.str().find("t/counting"), std::string::npos);
}

TEST(BenchRegistry, FilterSelectsBySubstring) {
  BenchRegistry registry;
  registry.add(Benchmark{"a/x", "op", {}, [](bool) { return 1ULL; }});
  registry.add(Benchmark{"b/y", "op", {}, [](bool) { return 1ULL; }});
  RunOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.warmup = 0;
  opts.filter = "b/";
  const auto results = registry.run(opts, nullptr);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "b/y");
}

TEST(BenchRegistry, QuickModeShrinksReps) {
  RunOptions opts;
  opts.quick = false;
  const std::size_t full = opts.effective_reps();
  opts.quick = true;
  EXPECT_LT(opts.effective_reps(), full);
  EXPECT_GE(opts.effective_reps(), 3u);  // still enough for a median + MAD
}

TEST(BenchHarness, ClocksAdvance) {
  const double w0 = wall_now();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(wall_now(), w0);
  EXPECT_GT(cpu_now(), 0.0);
}

}  // namespace
}  // namespace tcast::perf
