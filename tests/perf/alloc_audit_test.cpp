// Allocation audit for the query hot paths (`ctest -L perf`): after a
// warm-up that grows every reusable buffer to steady state, issuing
// queries must touch the heap ZERO times — on the exact tier (ExactChannel
// announce/query/bin-count cache, the RoundEngine round loop, the division-
// free uniform_below reciprocal cache) and on the packet tier (the full
// PHY/MAC exchange per query). Heap traffic per query is how "fast" code
// quietly regresses: capacity churn is invisible to differential tests and
// ruins the sweep throughput the figures are built on.
//
// The audit counts every global operator new/delete. Sanitizer builds
// interpose the allocator and add their own bookkeeping allocations, so
// the suite skips itself there (CI's sanitizer matrix excludes `-L perf`
// anyway).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/registry.hpp"
#include "core/round_engine.hpp"
#include "group/binning.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"
#include "radio/hack_model.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting global allocator: route through malloc/free and tally news.
// Deletes are uncounted — the audit asserts "no allocation", and every
// alloc/free pair starts with a new.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(align),
                                  sizeof(void*)),
                     size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tcast {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

TEST(AllocAudit, CountingAllocatorSeesVectorGrowth) {
  // Fixture self-test: the counter must actually observe heap traffic.
  const std::uint64_t before = news();
  std::vector<int> v(4096);
  EXPECT_GT(news(), before);
}

TEST(AllocAudit, ExactTierQueriesAreAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizer allocator interposed";
  RngStream rng(0xa110c, 1);
  auto channel = group::ExactChannel::with_random_positives(128, 16, rng);
  std::vector<NodeId> candidates(channel.all_nodes().begin(),
                                 channel.all_nodes().end());
  group::BinAssignment a;

  // Warm-up: one full announce/query cycle grows the assignment arenas,
  // the channel's count cache, and the reciprocal cache to steady state.
  a.assign_random_equal_inplace(std::span<NodeId>(candidates), 32, rng);
  channel.announce(a);
  for (std::size_t idx = 0; idx < a.bin_count(); ++idx)
    (void)channel.query_bin(a, idx);

  const std::uint64_t before = news();
  for (std::size_t round = 0; round < 50; ++round) {
    a.assign_random_equal_inplace(std::span<NodeId>(candidates), 32, rng);
    channel.announce(a);
    (void)channel.oracle_bin_counts(a);
    for (std::size_t idx = 0; idx < a.bin_count(); ++idx)
      (void)channel.query_bin(a, idx);
  }
  EXPECT_EQ(news(), before)
      << "exact-tier announce/query cycle touched the heap";
}

TEST(AllocAudit, ExactTierEngineTrialsAreAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizer allocator interposed";
  // The full sweep inner loop: re-seed ground truth, rebind the persistent
  // engine, run the algorithm end to end. After one warm-up trial per
  // algorithm, whole trials must be heap-silent — this is the property the
  // batched sweep engine's throughput rests on.
  RngStream rng(0xa110c, 2);
  auto channel = group::ExactChannel::all_negative(128, rng, {});
  core::RoundEngine engine(channel, rng, {});
  for (const auto& spec : core::algorithm_registry()) {
    if (!spec.run_with_engine) continue;
    // Two passes over the same trial grid. The first is warm-up: buffer
    // sizes depend on the trial shape (expinc grows its bin count with x),
    // so only a full pass reaches every buffer's high-water mark. The
    // second pass must then be heap-silent — the steady state the batched
    // sweep engine runs in.
    std::uint64_t before = 0;
    for (std::size_t pass = 0; pass < 2; ++pass) {
      if (pass == 1) before = news();
      for (std::size_t trial = 0; trial < 30; ++trial) {
        RngStream trial_rng(0xa110d, trial_stream_id(77, trial));
        channel.rebind_rng(trial_rng);
        channel.assign_random_positives(trial % 33, trial_rng);
        channel.reset_query_counter();
        engine.rebind(channel, trial_rng, {});
        (void)spec.run_with_engine(engine, channel.all_nodes(), 16);
      }
    }
    EXPECT_EQ(news(), before) << spec.name << " trials touched the heap";
  }
}

TEST(AllocAudit, PacketTierQueriesAreAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizer allocator interposed";
  std::vector<bool> truth(48, false);
  for (std::size_t i = 0; i < 48; i += 5) truth[i] = true;
  group::PacketChannel::Config cfg;
  cfg.model = group::CollisionModel::kOnePlus;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  group::PacketChannel channel(truth, cfg);

  group::BinAssignment a;
  a.assign_contiguous(channel.all_nodes(), 8);
  channel.announce(a);
  // Warm-up: every bin once (grows the wire map, frame buffers, and the
  // simulator's event queue to their steady-state capacity).
  for (std::size_t idx = 0; idx < a.bin_count(); ++idx)
    (void)channel.query_bin(a, idx);

  const std::uint64_t before = news();
  for (std::size_t rep = 0; rep < 20; ++rep)
    for (std::size_t idx = 0; idx < a.bin_count(); ++idx)
      (void)channel.query_bin(a, idx);
  EXPECT_EQ(news(), before) << "packet-tier query touched the heap";
}

}  // namespace
}  // namespace tcast
