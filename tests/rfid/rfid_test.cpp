// RFID substrate: tag field, Gen2 census baseline, and tcast-over-tags.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/monte_carlo.hpp"
#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "rfid/gen2.hpp"
#include "rfid/rcd_channel.hpp"
#include "rfid/tag.hpp"

namespace tcast::rfid {
namespace {

constexpr Sku kSku = 42;

TEST(TagField, MakeBuildsRequestedPopulation) {
  RngStream rng(1);
  const auto field = TagField::make(100, 17, kSku, rng);
  EXPECT_EQ(field.size(), 100u);
  EXPECT_EQ(field.matching_count(kSku), 17u);
  std::set<std::uint64_t> epcs;
  for (const Tag& t : field.tags()) epcs.insert(t.epc);
  EXPECT_EQ(epcs.size(), 100u);  // EPCs unique
}

TEST(TagField, NonMatchingSkusAreDistinctFromTarget) {
  RngStream rng(2);
  const auto field = TagField::make(50, 10, kSku, rng);
  std::size_t matches = 0;
  for (const Tag& t : field.tags())
    if (t.sku == kSku) ++matches;
  EXPECT_EQ(matches, 10u);
}

TEST(TagField, DepowerRemovesResponders) {
  RngStream rng(3);
  auto field = TagField::make(1000, 500, kSku, rng);
  field.depower_fraction(0.4, rng);
  const auto alive = field.matching_count(kSku);
  EXPECT_LT(alive, 400u);
  EXPECT_GT(alive, 200u);
}

TEST(Gen2, CensusReadsEveryTag) {
  RngStream rng(4);
  for (const std::size_t population : {0u, 1u, 10u, 100u, 500u}) {
    const auto result = run_inventory(population, rng);
    EXPECT_EQ(result.reads, population);
    EXPECT_TRUE(result.complete) << population;
  }
}

TEST(Gen2, CensusSlotsScaleRoughlyLinearly) {
  MonteCarloConfig mc;
  mc.trials = 50;
  const auto mean_slots = [&mc](std::size_t population) {
    mc.experiment_id = population;
    return run_trials(mc, [population](RngStream& rng) {
             return static_cast<double>(
                 run_inventory(population, rng).slots);
           })
        .mean();
  };
  const double at100 = mean_slots(100);
  const double at400 = mean_slots(400);
  // FSA with Q adaptation: throughput bounded, so ~2.5-8 slots per tag.
  EXPECT_GT(at100, 100.0);
  EXPECT_LT(at100, 800.0);
  EXPECT_GT(at400 / at100, 2.0);
  EXPECT_LT(at400 / at100, 8.0);
}

TEST(Gen2, EarlyStopHonoursThreshold) {
  RngStream rng(5);
  const auto result = inventory_threshold(300, 10, rng);
  EXPECT_TRUE(result.decision);
  EXPECT_EQ(result.reads, 10u);
  RngStream rng2(6);
  const auto full = run_inventory(300, rng2);
  EXPECT_LT(result.slots, full.slots);
}

TEST(Gen2, ThresholdFalseWhenPopulationTooSmall) {
  RngStream rng(7);
  const auto result = inventory_threshold(5, 10, rng);
  EXPECT_FALSE(result.decision);
  EXPECT_EQ(result.reads, 5u);
}

TEST(Gen2, ZeroThresholdTrivial) {
  RngStream rng(8);
  const auto result = inventory_threshold(100, 0, rng);
  EXPECT_TRUE(result.decision);
  EXPECT_EQ(result.slots, 0u);
}

TEST(RcdTagChannel, SlotSemantics) {
  RngStream rng(9);
  auto field = TagField::make(8, 0, kSku, rng);
  field.tag(2).sku = kSku;
  RcdTagChannel::Config cfg;
  cfg.sku = kSku;
  RcdTagChannel ch(field, rng, cfg);
  const auto all = field.all_ids();
  const auto r = ch.query_set(all);
  ASSERT_EQ(r.kind, group::BinQueryResult::Kind::kCaptured);
  EXPECT_EQ(r.captured, NodeId{2});

  field.tag(5).sku = kSku;  // two repliers now
  const auto r2 = ch.query_set(all);
  EXPECT_TRUE(r2.nonempty());

  field.tag(2).sku = 0;
  field.tag(5).sku = 0;
  EXPECT_FALSE(ch.query_set(all).nonempty());
}

TEST(RcdTagChannel, DepoweredTagsAreSilent) {
  RngStream rng(10);
  auto field = TagField::make(4, 4, kSku, rng);
  for (NodeId id = 0; id < 4; ++id) field.tag(id).powered = false;
  RcdTagChannel::Config cfg;
  cfg.sku = kSku;
  RcdTagChannel ch(field, rng, cfg);
  EXPECT_FALSE(ch.query_set(field.all_ids()).nonempty());
}

TEST(RcdTagChannel, MissProbabilityDropsLoneReplies) {
  RngStream rng(11);
  auto field = TagField::make(4, 1, kSku, rng);
  RcdTagChannel::Config cfg;
  cfg.sku = kSku;
  cfg.miss_prob = 1.0;
  RcdTagChannel ch(field, rng, cfg);
  EXPECT_FALSE(ch.query_set(field.all_ids()).nonempty());
}

/// The headline property: every tcast algorithm answers the stock question
/// correctly over the tag substrate.
class RfidThresholdGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RfidThresholdGrid, AllAlgorithmsDecideCorrectly) {
  const auto [matching, t] = GetParam();
  constexpr std::size_t kTotal = 256;
  for (const auto& spec : core::algorithm_registry()) {
    RngStream rng(matching * 37 + t);
    const auto field = TagField::make(kTotal, matching, kSku, rng);
    RcdTagChannel::Config cfg;
    cfg.sku = kSku;
    RcdTagChannel ch(field, rng, cfg);
    const auto out =
        spec.run(ch, field.all_ids(), t, rng, core::EngineOptions{});
    EXPECT_EQ(out.decision, matching >= t)
        << spec.name << " matching=" << matching << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RfidThresholdGrid,
    ::testing::Combine(::testing::Values<std::size_t>(0, 3, 16, 50, 200),
                       ::testing::Values<std::size_t>(1, 16, 64)));

TEST(RfidThreshold, TcastBeatsEarlyStoppedCensusForScarceStock) {
  // x ≪ t: the census must inventory essentially everything to disprove the
  // threshold; tcast eliminates in bulk.
  MonteCarloConfig mc;
  mc.trials = 60;
  constexpr std::size_t kTotal = 1024, kMatching = 4, kT = 50;
  mc.experiment_id = 1;
  const double tcast_slots =
      run_trials(mc, [](RngStream& rng) {
        const auto field = TagField::make(kTotal, kMatching, kSku, rng);
        RcdTagChannel::Config cfg;
        cfg.sku = kSku;
        RcdTagChannel ch(field, rng, cfg);
        return static_cast<double>(
            core::run_two_t_bins(ch, field.all_ids(), kT, rng).queries);
      }).mean();
  mc.experiment_id = 2;
  const double census_slots =
      run_trials(mc, [](RngStream& rng) {
        return static_cast<double>(
            inventory_threshold(kMatching, kT, rng).slots);
      }).mean();
  // Census over only the matching tags is small here (Select pre-filters),
  // but tcast must also beat the *unfiltered* census of the whole pallet,
  // which is the honest baseline when the mask cannot pre-filter:
  mc.experiment_id = 3;
  const double full_census =
      run_trials(mc, [](RngStream& rng) {
        return static_cast<double>(run_inventory(kTotal, rng).slots);
      }).mean();
  EXPECT_LT(tcast_slots, full_census);
  (void)census_slots;
}

}  // namespace
}  // namespace tcast::rfid
