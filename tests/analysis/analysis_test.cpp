// Closed-form analysis: estimators (Eqs. 2, 4, 5, 6), bounds, the sampling
// plan optimiser and the Chernoff/Hoeffding repeat counts.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bimodal.hpp"
#include "analysis/bounds.hpp"
#include "analysis/chernoff.hpp"
#include "analysis/estimators.hpp"
#include "common/rng.hpp"

namespace tcast::analysis {
namespace {

TEST(Estimators, OptimalBinCountIsPPlusOne) {
  // Eq. 4 by direct verification: g(p+1) ≥ g(b) for b in a wide scan.
  for (const std::size_t p : {1u, 3u, 10u, 40u}) {
    const double at_opt = expected_eliminated_per_query(
        1000, p, static_cast<double>(optimal_bin_count(p)));
    for (double b = 1.0; b <= 200.0; b += 1.0) {
      EXPECT_GE(at_opt + 1e-9, expected_eliminated_per_query(1000, p, b))
          << "p=" << p << " b=" << b;
    }
  }
}

TEST(Estimators, ExpectedEmptyBinsMatchesSimulation) {
  RngStream rng(1);
  const std::size_t b = 10, p = 7, trials = 40000;
  double empty_total = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    int occupied[10] = {};
    for (std::size_t i = 0; i < p; ++i)
      occupied[rng.uniform_below(b)] = 1;
    int empties = 0;
    for (const int o : occupied)
      if (!o) ++empties;
    empty_total += empties;
  }
  EXPECT_NEAR(empty_total / static_cast<double>(trials),
              expected_empty_bins(b, static_cast<double>(p)), 0.05);
}

TEST(Estimators, EstimatePInvertsExpectedEmptyBins) {
  // Eq. 6 is the inverse of Eq. 5: p = estimate_p(e_expected(b, p), b).
  for (const std::size_t b : {4u, 10u, 33u}) {
    for (const double p : {1.0, 5.0, 20.0}) {
      const double e = expected_empty_bins(b, p);
      const auto e_int = static_cast<std::size_t>(std::round(e));
      if (e_int == 0 || e_int == b) continue;  // guard regions
      const double est = estimate_p(e_int, b, /*fallback=*/999.0);
      EXPECT_NEAR(est, p, p * 0.5 + 1.5) << "b=" << b << " p=" << p;
    }
  }
}

TEST(Estimators, EstimatePGuards) {
  EXPECT_DOUBLE_EQ(estimate_p(0, 8, 123.0), 123.0);  // all full → fallback
  EXPECT_DOUBLE_EQ(estimate_p(8, 8, 123.0), 0.0);    // all empty → p = 0
  EXPECT_DOUBLE_EQ(estimate_p(1, 1, 123.0), 123.0);  // b = 1 → no info
}

TEST(Estimators, NonemptyProbabilityBasics) {
  EXPECT_DOUBLE_EQ(nonempty_probability(4.0, 0.0), 0.0);
  EXPECT_NEAR(nonempty_probability(2.0, 1.0), 0.5, 1e-12);
  EXPECT_GT(nonempty_probability(4.0, 10.0), nonempty_probability(4.0, 2.0));
  EXPECT_LE(nonempty_probability(4.0, 1000.0), 1.0);
}

TEST(Bounds, TwoTBinsUpperBoundShape) {
  EXPECT_NEAR(two_t_bins_upper_bound(128, 16), 32.0 * 2.0, 1e-9);
  EXPECT_GT(two_t_bins_upper_bound(1024, 16),
            two_t_bins_upper_bound(128, 16));
  // Small N clamps to at least one round.
  EXPECT_GE(two_t_bins_upper_bound(16, 16), 32.0);
}

TEST(Bounds, LowerBoundBelowUpperBound) {
  for (const std::size_t n : {64u, 256u, 4096u}) {
    for (const std::size_t t : {2u, 8u, 32u}) {
      if (t * 2 >= n) continue;
      EXPECT_LE(threshold_query_lower_bound(n, t),
                two_t_bins_upper_bound(n, t))
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(Bounds, ZeroXCostClosedForm) {
  EXPECT_DOUBLE_EQ(two_t_bins_zero_x_cost(128, 16), 112.0 / 4.0);
  EXPECT_DOUBLE_EQ(two_t_bins_zero_x_cost(16, 16), 0.0);
}

TEST(Bounds, OracleBinCountPiecewise) {
  // x ≤ t/2 → x + 1
  EXPECT_DOUBLE_EQ(oracle_bin_count(128, 16, 0), 1.0);
  EXPECT_DOUBLE_EQ(oracle_bin_count(128, 16, 8), 9.0);
  // t/2 < x ≤ t → 3x − t
  EXPECT_DOUBLE_EQ(oracle_bin_count(128, 16, 16), 32.0);  // = 2t at x = t
  EXPECT_DOUBLE_EQ(oracle_bin_count(128, 16, 12), 20.0);
  // x > t → t(1 + (n−x)/(n−t+1))
  EXPECT_NEAR(oracle_bin_count(128, 16, 128), 16.0, 1e-9);  // x = n → t
  EXPECT_GT(oracle_bin_count(128, 16, 20), 16.0);
}

TEST(Bimodal, SymmetricConstruction) {
  const auto d = BimodalDistribution::symmetric(128, 32.0, 4.0);
  EXPECT_DOUBLE_EQ(d.mu1, 32.0);
  EXPECT_DOUBLE_EQ(d.mu2, 96.0);
  EXPECT_DOUBLE_EQ(d.separation(), 32.0);
  EXPECT_DOUBLE_EQ(d.t_l(), 40.0);
  EXPECT_DOUBLE_EQ(d.t_r(), 88.0);
}

TEST(Bimodal, SamplesClusterAroundModes) {
  const auto dist = BimodalDistribution::symmetric(128, 40.0, 3.0);
  RngStream rng(1);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto s = dist.sample(128, rng);
    EXPECT_LE(s.x, 128u);
    if (s.from_high_mode) {
      ++high;
      EXPECT_NEAR(static_cast<double>(s.x), 104.0, 20.0);
    } else {
      ++low;
      EXPECT_NEAR(static_cast<double>(s.x), 24.0, 20.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / (low + high), 0.5, 0.03);
}

TEST(Bimodal, SamplesAreClamped) {
  BimodalDistribution d;
  d.mu1 = -50.0;
  d.sigma1 = 1.0;
  d.mu2 = 500.0;
  d.sigma2 = 1.0;
  RngStream rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto s = d.sample(64, rng);
    EXPECT_LE(s.x, 64u);
  }
}

TEST(Chernoff, OptimalSamplingBinMaximisesGap) {
  const double t_l = 16, t_r = 96;
  const double b_star = optimal_sampling_bin(t_l, t_r);
  const auto gap = [&](double b) {
    return nonempty_probability(b, t_r) - nonempty_probability(b, t_l);
  };
  const double best = gap(b_star);
  for (double b = 1.5; b < 400.0; b *= 1.25)
    EXPECT_GE(best + 1e-9, gap(b)) << "b=" << b;
}

TEST(Chernoff, PlanProbabilitiesOrdered) {
  const auto plan = make_sampling_plan(16, 96);
  EXPECT_GT(plan.q_high, plan.q_low);
  EXPECT_GT(plan.gap(), 0.0);
  EXPECT_DOUBLE_EQ(plan.m1(10), 10.0 * plan.q_low);
  EXPECT_DOUBLE_EQ(plan.m2(10), 10.0 * plan.q_high);
  EXPECT_GT(plan.decision_cut(10), plan.m1(10));
  EXPECT_LT(plan.decision_cut(10), plan.m2(10));
}

TEST(Chernoff, PaperRepeatsInThePapersBallpark) {
  // Sec. VI-A's example (n=128, μ1=16, μ2=96) reports 19 repeats at δ=1%
  // and 12 at δ=5%. The paper does not state its b or ε, so we assert the
  // formula lands in the same ballpark with the gap-optimal plan and keeps
  // the paper's ordering/ratio.
  const auto plan = make_sampling_plan(16.0 + 2 * 4, 96.0 - 2 * 4);
  const double eps = plan.gap() / 2.0;
  const auto r1 = paper_repeats(0.01, eps);
  const auto r5 = paper_repeats(0.05, eps);
  EXPECT_GE(r1, 12u);
  EXPECT_LE(r1, 40u);
  EXPECT_GE(r5, 6u);
  EXPECT_LT(r5, r1);
  EXPECT_NEAR(static_cast<double>(r1) / static_cast<double>(r5),
              std::log(100.0) / std::log(20.0), 0.25);
}

TEST(Chernoff, RepeatsDecreaseWithLooserDelta) {
  EXPECT_GT(paper_repeats(0.01, 0.3), paper_repeats(0.1, 0.3));
  EXPECT_GT(hoeffding_repeats(0.01, 0.3), hoeffding_repeats(0.1, 0.3));
}

TEST(Chernoff, RepeatsDecreaseWithWiderGap) {
  EXPECT_GT(hoeffding_repeats(0.05, 0.1), hoeffding_repeats(0.05, 0.5));
  EXPECT_GT(paper_repeats(0.05, 0.1), paper_repeats(0.05, 0.5));
}

TEST(Chernoff, DegenerateLowBoundaryHandled) {
  const double b = optimal_sampling_bin(0.0, 32.0);
  EXPECT_GT(b, 1.0);
  const auto plan = make_sampling_plan(0.0, 32.0);
  EXPECT_DOUBLE_EQ(plan.q_low, 0.0);
  EXPECT_GT(plan.q_high, 0.5);
}

}  // namespace
}  // namespace tcast::analysis
