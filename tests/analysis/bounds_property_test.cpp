// Property tests for analysis/bounds and analysis/chernoff: monotonicity
// across (N, t) grids, dominance relations between the bounds, and
// agreement of the Chernoff/Hoeffding tail bound with an empirical
// Monte-Carlo error estimate at spot points.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/chernoff.hpp"
#include "common/monte_carlo.hpp"

namespace tcast::analysis {
namespace {

TEST(BoundsProperty, UpperBoundMonotoneInPopulation) {
  for (const std::size_t t : {1u, 4u, 16u, 64u}) {
    double prev = 0.0;
    for (std::size_t n = t; n <= 4096; n *= 2) {
      const double b = two_t_bins_upper_bound(n, t);
      EXPECT_GE(b, prev) << "n=" << n << " t=" << t;
      EXPECT_GE(b, 2.0 * static_cast<double>(t));  // at least one round
      prev = b;
    }
  }
}

TEST(BoundsProperty, LowerBoundMonotoneInPopulationAndBelowUpper) {
  for (const std::size_t t : {1u, 4u, 16u}) {
    double prev = 0.0;
    for (std::size_t n = 2 * t; n <= 4096; n *= 2) {
      const double lo = threshold_query_lower_bound(n, t);
      EXPECT_GE(lo, prev) << "n=" << n << " t=" << t;
      prev = lo;
      // The Ω-shape must not cross the paper's upper bound on any grid
      // point (constant-free forms, so compare directly).
      EXPECT_LE(lo, two_t_bins_upper_bound(n, t) + 1e-9)
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(BoundsProperty, ZeroXCostMonotone) {
  // (n − t)/(n/2t) = 2t(1 − t/n): increasing in n for fixed t, and
  // increasing in t while t ≤ n/2.
  for (const std::size_t t : {2u, 8u, 32u}) {
    double prev = 0.0;
    for (std::size_t n = 2 * t; n <= 2048; n *= 2) {
      const double c = two_t_bins_zero_x_cost(n, t);
      EXPECT_GE(c, prev);
      EXPECT_LE(c, 2.0 * static_cast<double>(t));  // never a full round more
      prev = c;
    }
  }
  for (std::size_t n : {64u, 256u}) {
    double prev = 0.0;
    for (std::size_t t = 1; t <= n / 2; t *= 2) {
      const double c = two_t_bins_zero_x_cost(n, t);
      EXPECT_GE(c, prev) << "n=" << n << " t=" << t;
      prev = c;
    }
  }
}

TEST(BoundsProperty, OracleBinCountPositiveAndPiecewiseSane) {
  for (const std::size_t n : {16u, 128u}) {
    for (const std::size_t t : {1u, 8u, 16u}) {
      for (std::size_t x = 0; x <= n; ++x) {
        const double b = oracle_bin_count(n, t, x);
        EXPECT_GE(b, 1.0);
        // The paper's b(x) never exceeds 2t + x + 1 anywhere on the grid.
        EXPECT_LE(b, 2.0 * static_cast<double>(t) +
                         static_cast<double>(x) + 1.0)
            << "n=" << n << " t=" << t << " x=" << x;
      }
    }
  }
}

TEST(BoundsProperty, EngineBoundDominatesEveryAnalyticCost) {
  // The conformance harness's per-run ceiling must sit above every
  // analytic cost form on the whole grid — otherwise it would flag
  // healthy runs.
  for (std::size_t n = 1; n <= 512; n = n * 2 + 1) {
    for (std::size_t t = 1; t <= n; t = t * 2 + 1) {
      const double ceiling = engine_query_bound(n, t);
      EXPECT_GT(ceiling, two_t_bins_upper_bound(n, t));
      EXPECT_GT(ceiling, two_t_bins_zero_x_cost(n, t));
      EXPECT_GT(ceiling, static_cast<double>(n));  // a full roll-call
    }
  }
}

TEST(ChernoffProperty, RepeatCountsMonotone) {
  // More confidence (smaller δ) or a smaller gap must never need fewer
  // repeats, for both the paper's Eq.-10 form and the Hoeffding form.
  for (const double gap : {0.1, 0.3, 0.6}) {
    std::size_t prev = 0;
    for (const double delta : {0.2, 0.1, 0.05, 0.01, 0.001}) {
      const std::size_t r = hoeffding_repeats(delta, gap);
      EXPECT_GE(r, prev) << "gap=" << gap << " delta=" << delta;
      prev = r;
    }
  }
  for (const double delta : {0.1, 0.01}) {
    std::size_t prev = 0;
    for (const double gap : {0.8, 0.4, 0.2, 0.1, 0.05}) {
      const std::size_t r = hoeffding_repeats(delta, gap);
      EXPECT_GE(r, prev) << "gap=" << gap << " delta=" << delta;
      prev = r;
      EXPECT_GE(paper_repeats(delta, gap),
                paper_repeats(delta, gap * 2.0));
    }
  }
}

TEST(ChernoffProperty, SamplingPlanGapIsPositiveAndOptimal) {
  for (const auto& [tl, tr] : {std::pair{4.0, 16.0}, {8.0, 48.0},
                               {20.0, 30.0}}) {
    const auto plan = make_sampling_plan(tl, tr);
    EXPECT_GT(plan.gap(), 0.0);
    // The closed-form b* must beat nearby b on the gap it maximises.
    for (const double factor : {0.8, 1.25}) {
      const auto other = make_sampling_plan(tl, tr, plan.b * factor);
      EXPECT_GE(plan.gap() + 1e-12, other.gap())
          << "tl=" << tl << " tr=" << tr << " factor=" << factor;
    }
  }
}

TEST(ChernoffProperty, TailBoundAgreesWithMonteCarloAtSpotPoints) {
  // At three spot points, simulate the repeated sampled-bin test at the
  // boundary rates and compare the empirical failure probability with the
  // two-sided Hoeffding tail 2·exp(−r·Δq²/2) that hoeffding_repeats
  // inverts. The bound must hold (with 3σ statistical slack) and must not
  // be vacuous at the spot points chosen.
  struct Spot {
    double t_l, t_r;
    std::size_t repeats;
  };
  for (const Spot spot : {Spot{4.0, 16.0, 9}, Spot{8.0, 48.0, 5},
                          Spot{16.0, 24.0, 199}}) {
    const auto plan = make_sampling_plan(spot.t_l, spot.t_r);
    const double cut = plan.decision_cut(spot.repeats);
    const double tail =
        2.0 * std::exp(-static_cast<double>(spot.repeats) *
                       plan.gap() * plan.gap() / 2.0);

    MonteCarloConfig cfg;
    cfg.trials = 4000;
    cfg.experiment_id =
        static_cast<std::uint64_t>(spot.repeats) * 1000 +
        static_cast<std::uint64_t>(spot.t_r);
    const auto failure = run_bool_trials(cfg, [&](RngStream& rng) {
      // Low mode at rate q_low: failure = count lands above the cut;
      // high mode at q_high: failure = count at or below the cut. Draw
      // one of the two modes per trial — the union bound the tail covers.
      const bool high = rng.bernoulli(0.5);
      const double q = high ? plan.q_high : plan.q_low;
      std::size_t nonempty = 0;
      for (std::size_t i = 0; i < spot.repeats; ++i)
        if (rng.bernoulli(q)) ++nonempty;
      const bool decided_high = static_cast<double>(nonempty) > cut;
      return decided_high != high;
    });

    const double empirical = failure.value();
    const double se = std::sqrt(
        empirical * (1.0 - empirical) / static_cast<double>(cfg.trials) +
        1e-12);
    EXPECT_LE(empirical - 3.0 * se, tail)
        << "t_l=" << spot.t_l << " t_r=" << spot.t_r
        << " r=" << spot.repeats << " empirical=" << empirical
        << " bound=" << tail;
    EXPECT_LT(tail, 1.0);  // the spot points keep the bound informative
  }
}

}  // namespace
}  // namespace tcast::analysis
