#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcast::sim {
namespace {

TEST(Timer, OneShotFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.start_one_shot(100);
  EXPECT_TRUE(t.is_running());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.is_running());
  EXPECT_EQ(sim.now(), 100);
}

TEST(Timer, StopPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.start_one_shot(100);
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RestartReplacesDeadline) {
  Simulator sim;
  std::vector<SimTime> times;
  Timer t(sim, [&] { times.push_back(sim.now()); });
  t.start_one_shot(100);
  t.start_one_shot(50);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{50}));
}

TEST(Timer, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> times;
  Timer t(sim, [&times, &sim, &t] {
    times.push_back(sim.now());
    if (times.size() == 4) t.stop();
  });
  t.start_periodic(10);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Timer, CallbackCanRearmOneShot) {
  Simulator sim;
  std::vector<SimTime> times;
  Timer t(sim, [&times, &sim, &t] {
    times.push_back(sim.now());
    if (times.size() < 3) t.start_one_shot(5);
  });
  t.start_one_shot(5);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10, 15}));
}

TEST(Timer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.start_one_shot(10);
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, PeriodicSwitchToOneShotInCallback) {
  Simulator sim;
  std::vector<SimTime> times;
  Timer t(sim, [&times, &sim, &t] {
    times.push_back(sim.now());
    if (times.size() == 1) t.start_one_shot(3);  // abandon the period
  });
  t.start_periodic(10);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 13}));
}

}  // namespace
}  // namespace tcast::sim
