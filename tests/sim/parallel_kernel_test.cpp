// Unit tests for the conservative parallel kernel (sim/parallel/kernel):
// horizon/EIT behaviour, the post/connect contract, and — the property the
// whole design exists for — bit-identical execution under any worker count.
#include "sim/parallel/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace tcast::sim::parallel {
namespace {

TEST(ParallelKernel, SingleLpRunsToQuiescence) {
  ParallelKernel k;
  LogicalProcess& lp = k.add_lp(/*seed=*/3, /*stream=*/0);
  std::vector<SimTime> fired;
  lp.sim().schedule_at(10, [&] { fired.push_back(10); });
  lp.sim().schedule_at(5, [&] { fired.push_back(5); });
  EXPECT_EQ(k.run(), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(k.stats().events, 2u);
  EXPECT_EQ(k.stats().messages, 0u);
}

TEST(ParallelKernel, AdoptedLpSharesCallerSimulator) {
  Simulator sim(7);
  ParallelKernel k;
  LogicalProcess& lp = k.adopt_lp(sim);
  EXPECT_EQ(&lp.sim(), &sim);
  bool ran = false;
  sim.schedule_at(4, [&] { ran = true; });
  k.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 4);
}

TEST(ParallelKernel, RanksAssignedDensely) {
  ParallelKernel k;
  Simulator host(1);
  EXPECT_EQ(k.add_lp(1, 0).rank(), 0u);
  EXPECT_EQ(k.adopt_lp(host).rank(), 1u);
  EXPECT_EQ(k.add_lp(1, 2).rank(), 2u);
  EXPECT_EQ(k.lp_count(), 3u);
}

TEST(ParallelKernel, CrossLpMessageArrivesAtExactTimestamp) {
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  k.connect(a, b, /*lookahead=*/10);
  SimTime arrival = -1;
  a.sim().schedule_at(5, [&] {
    k.post(a, b, /*time=*/15, /*priority=*/0,
           [&] { arrival = b.sim().now(); });
  });
  k.run();
  EXPECT_EQ(arrival, 15);
  EXPECT_EQ(k.stats().messages, 1u);
}

TEST(ParallelKernel, PingPongCountsRoundTrips) {
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  const SimTime kL = 3;
  k.connect(a, b, kL);
  k.connect(b, a, kL);
  int volleys = 0;
  // Mutually recursive rallies: each side answers until 8 volleys landed.
  std::function<void()> on_a;
  std::function<void()> on_b;
  on_b = [&] {
    ++volleys;
    if (volleys < 8)
      k.post(b, a, b.sim().now() + kL, 0, [&] { on_a(); });
  };
  on_a = [&] {
    ++volleys;
    if (volleys < 8)
      k.post(a, b, a.sim().now() + kL, 0, [&] { on_b(); });
  };
  a.sim().schedule_at(0, [&] { k.post(a, b, kL, 0, [&] { on_b(); }); });
  k.run();
  EXPECT_EQ(volleys, 8);
  // Alternating one-hop messages: the conservative horizon admits exactly
  // one volley per window, so every window is "stalled" (one active LP).
  EXPECT_EQ(k.stats().messages, 8u);
  EXPECT_GE(k.stats().stalled_windows, 7u);
}

TEST(ParallelKernel, UnlinkedLpsDrainInOneWindow) {
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  for (SimTime t = 1; t <= 5; ++t) {
    a.sim().schedule_at(t, [] {});
    b.sim().schedule_at(t * 100, [] {});
  }
  k.run();
  // No links → both EITs are unbounded → both LPs drain fully in window 1.
  EXPECT_EQ(k.stats().windows, 1u);
  EXPECT_EQ(k.stats().events, 10u);
  EXPECT_EQ(k.stats().stalled_windows, 0u);
}

TEST(ParallelKernel, RunUntilStopsAtDeadlineAndKeepsFutureEvents) {
  ParallelKernel k;
  LogicalProcess& lp = k.add_lp(1, 0);
  int fired = 0;
  lp.sim().schedule_at(10, [&] { ++fired; });
  lp.sim().schedule_at(20, [&] { ++fired; });
  lp.sim().schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(k.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(lp.sim().pending());
  EXPECT_EQ(k.run_until(30), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(ParallelKernel, RunUntilFlagStopsWatchMidWindow) {
  ParallelKernel k;
  LogicalProcess& watch = k.add_lp(1, 0);
  int fired = 0;
  bool done = false;
  for (SimTime t = 1; t <= 10; ++t)
    watch.sim().schedule_at(t, [&] {
      ++fired;
      if (fired == 3) done = true;
    });
  k.run_until_flag(watch, [&] { return done; });
  // The flag is checked before every event of the watched LP: exactly the
  // three events that flip it run, the rest stay queued.
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(watch.sim().pending_count(), 7u);
}

TEST(ParallelKernelDeath, PostBelowLookaheadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  k.connect(a, b, /*lookahead=*/10);
  a.sim().schedule_at(5, [&] {
    k.post(a, b, /*time=*/14, 0, [] {});  // 14 < now(5) + lookahead(10)
  });
  EXPECT_DEATH(k.run(), "lookahead");
}

TEST(ParallelKernelDeath, PostWithoutLinkAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  EXPECT_DEATH(k.post(a, b, 100, 0, [] {}), "");
}

TEST(ParallelKernelDeath, ZeroLookaheadLinkAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParallelKernel k;
  LogicalProcess& a = k.add_lp(1, 0);
  LogicalProcess& b = k.add_lp(1, 1);
  EXPECT_DEATH(k.connect(a, b, 0), "");
}

// --- Determinism across worker counts ---------------------------------
//
// A randomized multi-LP world: a ring of LPs, each running a self-
// rescheduling local process that draws jittered gaps from its LP-local
// RNG and occasionally posts to a ring neighbour (timestamp = now + link
// lookahead + jitter). The observable is the exact global execution log
// (lp, time, tag) plus each LP's next raw RNG word — any divergence in
// event order, message routing, or RNG consumption shows up.

struct RingLog {
  std::vector<std::tuple<LpRank, SimTime, int>> entries;
  std::vector<std::uint64_t> rng_words;
};

RingLog run_ring(std::size_t lp_count, std::size_t workers,
                 std::uint64_t seed) {
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  KernelConfig cfg;
  cfg.pool = pool.get();
  ParallelKernel k(cfg);

  const SimTime kL = 7;
  std::vector<LogicalProcess*> lps;
  for (std::size_t i = 0; i < lp_count; ++i)
    lps.push_back(&k.add_lp(seed, i));
  for (std::size_t i = 0; i < lp_count; ++i) {
    LogicalProcess& next = *lps[(i + 1) % lp_count];
    k.connect(*lps[i], next, kL);
  }

  RingLog log;
  std::mutex mu;  // log order is canonicalized below; mutex just for safety
  auto record = [&](LpRank r, SimTime t, int tag) {
    std::lock_guard<std::mutex> hold(mu);
    log.entries.emplace_back(r, t, tag);
  };

  const SimTime kEnd = 500;
  std::function<void(std::size_t)> tick = [&](std::size_t i) {
    LogicalProcess& lp = *lps[i];
    Simulator& s = lp.sim();
    record(lp.rank(), s.now(), 0);
    // ~1 in 4 ticks also pokes the ring neighbour.
    if (s.rng().uniform_below(4) == 0) {
      LogicalProcess& nb = *lps[(i + 1) % lp_count];
      const SimTime at =
          s.now() + kL + static_cast<SimTime>(s.rng().uniform_below(5));
      k.post(lp, nb, at, 1, [&record, &nb, at] {
        record(nb.rank(), at, 1);
      });
    }
    const SimTime gap = 1 + static_cast<SimTime>(s.rng().uniform_below(9));
    if (s.now() + gap <= kEnd)
      s.schedule_at(s.now() + gap, [&tick, i] { tick(i); });
  };
  for (std::size_t i = 0; i < lp_count; ++i) {
    lps[i]->sim().schedule_at(static_cast<SimTime>(1 + i), [&tick, i] {
      tick(i);
    });
  }
  k.run();

  // Canonical order: the concurrent drains may interleave log *appends*,
  // but the per-LP sequences and the set of entries must be identical.
  std::sort(log.entries.begin(), log.entries.end());
  for (LogicalProcess* lp : lps) {
    RngStream probe = lp->sim().rng();  // copy forks deterministically
    log.rng_words.push_back(probe.bits());
  }
  return log;
}

TEST(ParallelKernel, RingWorldBitIdenticalAcrossWorkerCounts) {
  const RingLog inline_run = run_ring(6, 1, 0xA11CE);
  EXPECT_FALSE(inline_run.entries.empty());
  for (const std::size_t workers : {2u, 4u}) {
    const RingLog pooled = run_ring(6, workers, 0xA11CE);
    EXPECT_EQ(pooled.entries, inline_run.entries) << workers << " workers";
    EXPECT_EQ(pooled.rng_words, inline_run.rng_words)
        << workers << " workers";
  }
}

TEST(ParallelKernel, RingWorldSeedSensitive) {
  const RingLog a = run_ring(6, 1, 0xA11CE);
  const RingLog b = run_ring(6, 1, 0xB0B);
  EXPECT_NE(a.entries, b.entries);
}

}  // namespace
}  // namespace tcast::sim::parallel
