#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcast::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(10, [&ran] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledTombstoneSkippedByNextTime) {
  EventQueue q;
  const auto early = q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(42, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i)
    ids.push_back(q.schedule(i, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < 20; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 10u);
  for (const int v : fired) EXPECT_EQ(v % 2, 1);
}

}  // namespace
}  // namespace tcast::sim
