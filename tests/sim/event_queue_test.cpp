#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <tuple>
#include <vector>

namespace tcast::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(10, [&ran] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledTombstoneSkippedByNextTime) {
  EventQueue q;
  const auto early = q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(42, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.time, 42);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, LowerPriorityValueFiresFirstAtEqualTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(5, EventPriority{2}, [&] { fired.push_back(2); });
  q.schedule(5, EventPriority{-1}, [&] { fired.push_back(-1); });
  q.schedule(5, EventPriority{0}, [&] { fired.push_back(0); });
  q.schedule(4, EventPriority{9}, [&] { fired.push_back(9); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{9, -1, 0, 2}));  // time beats priority
}

TEST(EventQueue, EqualTimeAndPriorityFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i)
    q.schedule(7, EventPriority{3}, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, DefaultScheduleIsPriorityZero) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1, [&] { fired.push_back(0); });  // implicit priority 0
  q.schedule(1, EventPriority{-5}, [&] { fired.push_back(-5); });
  q.schedule(1, EventPriority{5}, [&] { fired.push_back(5); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{-5, 0, 5}));
}

// Cross-check the optimized 4-ary heap against a std::multiset oracle over
// the full (time, priority, seq) total order, under 10k randomized
// schedule/pop/cancel interleavings.
TEST(EventQueue, RandomizedInterleavingsMatchMultisetOracle) {
  using Key = std::tuple<SimTime, EventPriority, EventId>;
  EventQueue q;
  std::set<Key> oracle;  // keys are unique: EventId is a tie-breaker
  std::vector<EventId> live;
  std::mt19937_64 rng(0x5eedu);
  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<SimTime> time_dist(0, 200);
  std::uniform_int_distribution<EventPriority> prio_dist(-3, 3);

  const auto key_of = [&](EventId id) -> Key {
    for (const Key& k : oracle)
      if (std::get<2>(k) == id) return k;
    ADD_FAILURE() << "id " << id << " missing from oracle";
    return {};
  };

  for (int step = 0; step < 10'000; ++step) {
    const int op = op_dist(rng);
    if (op < 5 || oracle.empty()) {  // schedule
      const SimTime t = time_dist(rng);
      const EventPriority p = prio_dist(rng);
      const EventId id = q.schedule(t, p, [] {});
      oracle.insert(Key{t, p, id});
      live.push_back(id);
    } else if (op < 7) {  // cancel a random live event
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t at = pick(rng);
      const EventId id = live[at];
      oracle.erase(key_of(id));
      EXPECT_TRUE(q.cancel(id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else {  // pop: must match the oracle's minimum exactly
      const Key expected = *oracle.begin();
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.next_time(), std::get<0>(expected));
      const auto fired = q.pop();
      EXPECT_EQ(fired.time, std::get<0>(expected));
      EXPECT_EQ(fired.id, std::get<2>(expected));
      oracle.erase(oracle.begin());
      live.erase(std::find(live.begin(), live.end(), fired.id));
    }
    ASSERT_EQ(q.size(), oracle.size());
    ASSERT_EQ(q.empty(), oracle.empty());
  }
  // Drain what is left; the full pop order must equal the oracle's order.
  while (!oracle.empty()) {
    const Key expected = *oracle.begin();
    const auto fired = q.pop();
    ASSERT_EQ(fired.time, std::get<0>(expected));
    ASSERT_EQ(fired.id, std::get<2>(expected));
    oracle.erase(oracle.begin());
  }
  EXPECT_TRUE(q.empty());
}

// The parallel kernel's usage pattern, stressed against the oracle: one
// queue per LP, windows that drain each queue strictly below a horizon,
// MAC-style cancel+reschedule churn, and sorted cross-LP batch insertion
// at the window barrier (exactly ParallelKernel::route_outboxes' order).
// Every pop must still match the per-queue (time, priority, seq) oracle.
TEST(EventQueue, LpShardedWindowsWithRescheduleChurnMatchOracle) {
  using Key = std::tuple<SimTime, EventPriority, EventId>;
  constexpr std::size_t kLps = 4;
  struct Lp {
    EventQueue q;
    std::set<Key> oracle;
    std::vector<Key> live;  // cancellable (non-barrier) events
    SimTime now = 0;
  };
  std::vector<Lp> lps(kLps);
  std::mt19937_64 rng(0xC3115u);
  std::uniform_int_distribution<SimTime> jitter(0, 40);
  std::uniform_int_distribution<EventPriority> prio_dist(-2, 2);

  const auto seed_events = [&](Lp& lp, int count) {
    std::uniform_int_distribution<int> churn(0, 3);
    for (int i = 0; i < count; ++i) {
      const SimTime t = lp.now + 1 + jitter(rng);
      const EventPriority p = prio_dist(rng);
      const EventId id = lp.q.schedule(t, p, [] {});
      lp.oracle.insert(Key{t, p, id});
      lp.live.push_back(Key{t, p, id});
      // ~1 in 4 scheduled events is immediately rescheduled (the CSMA
      // backoff-restart pattern): cancel, then re-enter at a new time.
      if (churn(rng) == 0) {
        lp.oracle.erase(Key{t, p, id});
        lp.live.pop_back();
        ASSERT_TRUE(lp.q.cancel(id));
        const SimTime t2 = lp.now + 1 + jitter(rng);
        const EventId id2 = lp.q.schedule(t2, p, [] {});
        lp.oracle.insert(Key{t2, p, id2});
        lp.live.push_back(Key{t2, p, id2});
      }
    }
  };
  for (Lp& lp : lps) seed_events(lp, 40);

  for (int window = 0; window < 60; ++window) {
    // Per-LP horizon, as compute_horizons would hand out.
    for (Lp& lp : lps) {
      const SimTime horizon = lp.now + 15;
      while (!lp.q.empty() && lp.q.next_time() < horizon) {
        const Key expected = *lp.oracle.begin();
        const auto fired = lp.q.pop();
        ASSERT_EQ(fired.time, std::get<0>(expected));
        ASSERT_EQ(fired.id, std::get<2>(expected));
        lp.oracle.erase(lp.oracle.begin());
        std::erase_if(lp.live,
                      [&](const Key& k) { return std::get<2>(k) == fired.id; });
        lp.now = fired.time;
        // Occasionally cancel a random still-live event mid-drain (a
        // reply arriving kills the pending timeout).
        if (!lp.live.empty() && jitter(rng) < 8) {
          std::uniform_int_distribution<std::size_t> pick(0,
                                                          lp.live.size() - 1);
          const Key victim = lp.live[pick(rng)];
          ASSERT_TRUE(lp.q.cancel(std::get<2>(victim)));
          lp.oracle.erase(victim);
          std::erase_if(lp.live, [&](const Key& k) { return k == victim; });
        }
      }
      lp.now = horizon;
    }
    // Barrier: each LP receives a batch of cross-LP messages, sorted by
    // (time, priority) before insertion — schedule order then supplies
    // the deterministic seq tie-break, as route_outboxes relies on.
    for (std::size_t dst = 0; dst < kLps; ++dst) {
      Lp& lp = lps[dst];
      std::vector<std::pair<SimTime, EventPriority>> batch;
      std::uniform_int_distribution<int> batch_size(0, 5);
      for (int i = batch_size(rng); i > 0; --i)
        batch.emplace_back(lp.now + 1 + jitter(rng), prio_dist(rng));
      std::sort(batch.begin(), batch.end());
      for (const auto& [t, p] : batch) {
        const EventId id = lp.q.schedule(t, p, [] {});
        lp.oracle.insert(Key{t, p, id});
        lp.live.push_back(Key{t, p, id});
      }
    }
    // Background churn keeps every queue busy across windows.
    for (Lp& lp : lps) seed_events(lp, 3);
  }

  // Final drain: full pop order equals the oracle order on every LP.
  for (Lp& lp : lps) {
    ASSERT_EQ(lp.q.size(), lp.oracle.size());
    while (!lp.oracle.empty()) {
      const Key expected = *lp.oracle.begin();
      const auto fired = lp.q.pop();
      ASSERT_EQ(fired.time, std::get<0>(expected));
      ASSERT_EQ(fired.id, std::get<2>(expected));
      lp.oracle.erase(lp.oracle.begin());
    }
    EXPECT_TRUE(lp.q.empty());
  }
}

TEST(EventQueue, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i)
    ids.push_back(q.schedule(i, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < 20; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 10u);
  for (const int v : fired) EXPECT_EQ(v % 2, 1);
}

}  // namespace
}  // namespace tcast::sim
