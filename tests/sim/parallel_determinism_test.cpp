// Worker-count determinism suite for the LP-sharded cell world: the same
// config must produce a bit-identical WorldDigest — traffic counters,
// cluster counts, final clocks, next raw RNG word per cell, merged fault
// log, kernel event/message totals — under no pool, a 2-worker pool, and a
// hardware-sized pool. Plus fault-replay parity: feeding a run's planned
// schedule back as the explicit fault list reproduces the digest exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "sim/parallel/cell_world.hpp"

namespace tcast::sim::parallel {
namespace {

CellWorldConfig small_world(std::uint64_t seed) {
  CellWorldConfig cfg;
  cfg.cells = 5;
  cfg.motes_per_cell = 6;
  cfg.seed = seed;
  cfg.duration = 120 * kMillisecond;
  cfg.beacon_period = 12 * kMillisecond;
  cfg.clean_loss = 0.05;
  cfg.random_faults = 4;
  return cfg;
}

struct RunOutput {
  WorldDigest digest;
  std::vector<FaultSpec> planned;
  KernelStats stats;
};

RunOutput run_world(CellWorldConfig cfg, ThreadPool* pool) {
  cfg.pool = pool;
  CellWorld world(cfg);
  world.run();
  return {world.digest(), world.planned_faults(), world.stats()};
}

TEST(CellWorldDeterminism, DigestBitIdenticalAcrossWorkerCounts) {
  const CellWorldConfig cfg = small_world(0xD5);
  const RunOutput inline_run = run_world(cfg, nullptr);

  // The world must actually be busy: beacons flowing, faults landing,
  // cross-cell messages routed — otherwise this test proves nothing.
  std::uint64_t sent = 0, received = 0;
  for (const CellDigest& c : inline_run.digest.cells) {
    sent += c.frames_sent;
    received += c.frames_received;
  }
  EXPECT_GT(sent, 50u);
  EXPECT_GT(received, sent);  // broadcast: many receivers per send
  EXPECT_EQ(inline_run.digest.faults.size(), 2 * cfg.random_faults);
  EXPECT_GT(inline_run.digest.messages, 0u);

  const std::size_t hw =
      std::max(2u, std::thread::hardware_concurrency());
  for (const std::size_t workers : {std::size_t{2}, std::size_t{hw}}) {
    ThreadPool pool(workers);
    const RunOutput pooled = run_world(cfg, &pool);
    EXPECT_EQ(pooled.digest, inline_run.digest) << workers << " workers";
    EXPECT_EQ(pooled.planned, inline_run.planned) << workers << " workers";
    // Window structure is part of the determinism contract too: identical
    // horizons → identical window/message counts whatever the pool.
    EXPECT_EQ(pooled.stats.windows, inline_run.stats.windows);
    EXPECT_EQ(pooled.stats.messages, inline_run.stats.messages);
  }
}

TEST(CellWorldDeterminism, SeedChangesDigest) {
  const RunOutput a = run_world(small_world(0xD5), nullptr);
  const RunOutput b = run_world(small_world(0xD6), nullptr);
  EXPECT_NE(a.digest, b.digest);
}

TEST(CellWorldDeterminism, PlannedFaultReplayReproducesDigest) {
  const CellWorldConfig recorded_cfg = small_world(0x7E57);
  const RunOutput recorded = run_world(recorded_cfg, nullptr);
  ASSERT_EQ(recorded.planned.size(), recorded_cfg.random_faults);

  // Replay: the planned schedule becomes the explicit fault list and the
  // random drawing is turned off. The control-plane RNG then never draws,
  // but fault *application* is identical — and since fault randomness
  // lives entirely on the control LP, every cell digest (incl. its RNG
  // probe) and the applied-fault log must reproduce bit-for-bit.
  CellWorldConfig replay_cfg = recorded_cfg;
  replay_cfg.random_faults = 0;
  replay_cfg.faults = recorded.planned;
  const RunOutput replayed = run_world(replay_cfg, nullptr);

  EXPECT_EQ(replayed.digest.cells, recorded.digest.cells);
  EXPECT_EQ(replayed.digest.faults, recorded.digest.faults);

  // And replay under a pool agrees with replay inline.
  ThreadPool pool(2);
  const RunOutput replayed_pooled = run_world(replay_cfg, &pool);
  EXPECT_EQ(replayed_pooled.digest, replayed.digest);
}

TEST(CellWorldDeterminism, FaultsActuallySilenceMotes) {
  // One mote crashed for the whole run sends (almost) nothing: only
  // beacons already armed before the crash may still fire. Compare
  // against the identical world without the fault.
  CellWorldConfig cfg;
  cfg.cells = 3;
  cfg.motes_per_cell = 4;
  cfg.seed = 9;
  cfg.duration = 100 * kMillisecond;
  cfg.beacon_period = 10 * kMillisecond;

  const RunOutput clean = run_world(cfg, nullptr);

  FaultSpec crash;
  crash.cell = 1;
  crash.mote = 2;
  crash.down_at = cfg.cross_cell_delay;  // earliest announceable instant
  crash.up_at = cfg.duration;            // never reboots inside the run
  cfg.faults = {crash};
  const RunOutput faulty = run_world(cfg, nullptr);

  ASSERT_EQ(faulty.digest.faults.size(), 2u);
  EXPECT_TRUE(faulty.digest.faults[0].down);
  EXPECT_LT(faulty.digest.cells[1].frames_sent,
            clean.digest.cells[1].frames_sent);
}

TEST(CellWorldDeterminism, StatsReflectConservativeWindows) {
  const RunOutput out = run_world(small_world(0xBEE), nullptr);
  EXPECT_GT(out.stats.windows, 0u);
  EXPECT_GT(out.stats.events, 0u);
  EXPECT_GE(out.stats.relax_passes, out.stats.windows);
  // digest() mirrors the kernel totals.
  EXPECT_EQ(out.digest.events, out.stats.events);
  EXPECT_EQ(out.digest.messages, out.stats.messages);
}

}  // namespace
}  // namespace tcast::sim::parallel
