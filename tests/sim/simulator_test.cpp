#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcast::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(5, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(9, [&] { seen.push_back(sim.now()); });
  const auto executed = sim.run();
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(seen, (std::vector<SimTime>{5, 9}));
  EXPECT_EQ(sim.now(), 9);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(7, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 17);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5, [&] { ++fired; });
  sim.schedule_at(15, [&] { ++fired; });
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);  // clock parked at the deadline
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtDeadlineRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(10, [&] { ran = true; });
  sim.run_until(10);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunStepsBounded) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(sim.run_steps(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_count(), 7u);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(5, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] {
    order.push_back(1);
    sim.schedule_after(0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RngIsDeterministicPerSeed) {
  Simulator a(42, 7), b(42, 7), c(43, 7);
  EXPECT_EQ(a.rng().bits(), b.rng().bits());
  EXPECT_NE(a.rng().bits(), c.rng().bits());
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(5, [] {}), "past");
}

}  // namespace
}  // namespace tcast::sim
