// Randomised differential test: the event-queue/simulator pair against a
// naive reference model (sorted vector), over thousands of random
// schedule/cancel/run interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace tcast::sim {
namespace {

struct Reference {
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Entry> pending;
  std::uint64_t next_seq = 0;

  std::uint64_t schedule(SimTime t, int tag) {
    pending.push_back({t, next_seq, tag});
    return next_seq++;
  }
  bool cancel(std::uint64_t seq) {
    const auto it = std::find_if(pending.begin(), pending.end(),
                                 [seq](const Entry& e) {
                                   return e.seq == seq;
                                 });
    if (it == pending.end()) return false;
    pending.erase(it);
    return true;
  }
  /// Fires everything with time ≤ deadline in (time, seq) order.
  std::vector<int> run_until(SimTime deadline) {
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.time != b.time ? a.time < b.time
                                               : a.seq < b.seq;
                     });
    std::vector<int> fired;
    std::size_t i = 0;
    for (; i < pending.size() && pending[i].time <= deadline; ++i)
      fired.push_back(pending[i].tag);
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(i));
    return fired;
  }
};

class SimulatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, MatchesReferenceModel) {
  RngStream rng(GetParam());
  Simulator sim;
  Reference ref;
  std::vector<int> sim_fired;
  // seq (reference) -> EventId (simulator)
  std::map<std::uint64_t, EventId> ids;

  int next_tag = 0;
  for (int step = 0; step < 400; ++step) {
    const auto action = rng.uniform_below(10);
    if (action < 6) {
      // Schedule at a random future time.
      const SimTime t = sim.now() + static_cast<SimTime>(rng.uniform_below(50));
      const int tag = next_tag++;
      const auto seq = ref.schedule(t, tag);
      ids[seq] = sim.schedule_at(
          t, [&sim_fired, tag] { sim_fired.push_back(tag); });
    } else if (action < 8 && !ids.empty()) {
      // Cancel a random still-tracked event (may already have fired).
      auto it = ids.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.uniform_below(ids.size())));
      const bool ref_ok = ref.cancel(it->first);
      const bool sim_ok = sim.cancel(it->second);
      EXPECT_EQ(ref_ok, sim_ok);
      ids.erase(it);
    } else {
      // Advance both worlds to a random deadline.
      const SimTime deadline =
          sim.now() + static_cast<SimTime>(rng.uniform_below(80));
      sim_fired.clear();
      sim.run_until(deadline);
      const auto expected = ref.run_until(deadline);
      EXPECT_EQ(sim_fired, expected) << "step " << step;
    }
  }
  // Drain both completely.
  sim_fired.clear();
  sim.run();
  const auto expected =
      ref.run_until(std::numeric_limits<SimTime>::max() / 2);
  EXPECT_EQ(sim_fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace tcast::sim
