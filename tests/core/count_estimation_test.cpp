#include "core/count_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/monte_carlo.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::ExactChannel;

TEST(CountEstimation, ZeroIsExactInOneQuery) {
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(128, 0, rng);
  const auto est = estimate_positive_count(ch, ch.all_nodes(), rng);
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.estimate, 0.0);
  EXPECT_EQ(est.queries, 1u);
}

TEST(CountEstimation, QueryBudgetIsLogarithmicPlusRepeats) {
  RngStream rng(2);
  auto ch = ExactChannel::with_random_positives(1024, 5, rng);
  CountEstimateOptions opts;
  const auto est = estimate_positive_count(ch, ch.all_nodes(), rng, opts);
  // 1 anchor + ≤ (log2(1024)+3)·probe + refine.
  EXPECT_LE(est.queries, 1 + 13 * opts.probe_repeats + opts.refine_repeats);
}

/// Property sweep: the mean estimate tracks the true count within a
/// multiplicative band across two decades of x.
class CountEstimationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CountEstimationSweep, MeanEstimateWithinBand) {
  const std::size_t x = GetParam();
  constexpr std::size_t kN = 512;
  MonteCarloConfig mc;
  mc.trials = 200;
  mc.experiment_id = 9000 + x;
  const auto stats = run_trials(mc, [x](RngStream& rng) {
    auto ch = ExactChannel::with_random_positives(kN, x, rng);
    return estimate_positive_count(ch, ch.all_nodes(), rng).estimate;
  });
  EXPECT_GE(stats.mean(), static_cast<double>(x) * 0.6) << "x=" << x;
  EXPECT_LE(stats.mean(), static_cast<double>(x) * 1.6) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(TwoDecades, CountEstimationSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

// Statistical acceptance on an (N, x) grid at fixed seeds: the estimate
// must land inside the analytic (1±ε) envelope in at least the guaranteed
// fraction of trials.
//
// Envelope derivation. The refining level observes p̂, the non-empty
// fraction over R = refine_repeats (30) draws of p = 1 − (1−q)^x with the
// acceptance rule pinning p into ≈ [0.25, 0.65]. Hoeffding:
// P(|p̂−p| ≥ γ) ≤ 2·exp(−2Rγ²), so γ = sqrt(ln(2/δ)/(2R)) ≈ 0.223 at
// δ = 0.1. The inversion x̂ = ln(1−p̂)/ln(1−q) amplifies that by
// |dx̂/dp̂|·p̂→rel ≤ 1/min_p (1−p)·ln(1/(1−p)) ≈ 1/0.216 ≈ 4.6 over the
// accepted p-range, giving |x̂−x| ≤ 4.6·0.223·x ≈ 1.0·x with probability
// ≥ 1 − δ. So the claim audited here is ε = 1.0, δ = 0.1 (the empirical
// error is far tighter, ≈ ±23% mean — see CountEstimationSweep).
//
// Test tolerance. Over T fixed-seed trials the within-band count is
// Binomial(T, p≥1−δ); three sigmas of slack,
// floor = 1 − δ − 3·sqrt(δ(1−δ)/T), holds a correct estimator's per-cell
// false-alarm rate under ≈ 1.3e-3.
TEST(CountEstimation, StatisticalAcceptanceOnTheGrid) {
  constexpr double kEps = 1.0, kDelta = 0.1;
  constexpr std::size_t kTrials = 300;
  const double floor =
      1.0 - kDelta - 3.0 * std::sqrt(kDelta * (1.0 - kDelta) / kTrials);
  for (const std::size_t n : {256u, 1024u}) {
    for (const std::size_t x : {8u, 32u, 128u}) {
      MonteCarloConfig mc;
      mc.trials = kTrials;
      mc.experiment_id = 9500 + n + x;
      const auto within = run_trials(mc, [n, x](RngStream& rng) {
        auto ch = ExactChannel::with_random_positives(n, x, rng);
        const double est =
            estimate_positive_count(ch, ch.all_nodes(), rng).estimate;
        return std::abs(est - static_cast<double>(x)) <=
                       kEps * static_cast<double>(x)
                   ? 1.0
                   : 0.0;
      });
      EXPECT_GE(within.mean(), floor) << "n=" << n << " x=" << x;
    }
  }
}

TEST(CountEstimation, FullSetEstimatesHigh) {
  RngStream rng(3);
  auto ch = ExactChannel::with_random_positives(64, 64, rng);
  const auto est = estimate_positive_count(ch, ch.all_nodes(), rng);
  EXPECT_GE(est.estimate, 20.0);
  EXPECT_LE(est.estimate, 64.0);  // clamped to n
}

TEST(CountEstimation, MoreRepeatsTightenTheEstimate) {
  constexpr std::size_t kN = 256, kX = 40;
  const auto spread = [&](std::size_t repeats, std::uint64_t id) {
    MonteCarloConfig mc;
    mc.trials = 150;
    mc.experiment_id = id;
    return run_trials(mc, [repeats](RngStream& rng) {
             auto ch = ExactChannel::with_random_positives(kN, kX, rng);
             CountEstimateOptions opts;
             opts.refine_repeats = repeats;
             return estimate_positive_count(ch, ch.all_nodes(), rng, opts)
                 .estimate;
           })
        .stddev();
  };
  EXPECT_GT(spread(8, 1), spread(64, 2));
}

TEST(IntervalQuery, VerdictMatchesGroundTruthOnGrid) {
  constexpr std::size_t kN = 64, kLo = 8, kHi = 24;
  for (std::size_t x = 0; x <= kN; x += 4) {
    RngStream rng(500 + x);
    auto ch = ExactChannel::with_random_positives(kN, x, rng);
    const auto out = run_interval_query(ch, ch.all_nodes(), kLo, kHi, rng);
    IntervalVerdict expected = IntervalVerdict::kInside;
    if (x < kLo) expected = IntervalVerdict::kBelow;
    if (x >= kHi) expected = IntervalVerdict::kAbove;
    EXPECT_EQ(out.verdict, expected) << "x=" << x;
    EXPECT_GT(out.queries, 0u);
  }
}

TEST(IntervalQuery, BelowCostsOneSession) {
  RngStream rng(4);
  auto ch = ExactChannel::with_random_positives(64, 0, rng);
  const auto out = run_interval_query(ch, ch.all_nodes(), 8, 24, rng);
  EXPECT_EQ(out.verdict, IntervalVerdict::kBelow);
  // One 2tBins elimination pass, no second session.
  EXPECT_LE(out.queries, 20u);
}

TEST(IntervalQuery, ToStringNames) {
  EXPECT_STREQ(to_string(IntervalVerdict::kBelow), "below");
  EXPECT_STREQ(to_string(IntervalVerdict::kInside), "inside");
  EXPECT_STREQ(to_string(IntervalVerdict::kAbove), "above");
}

TEST(IntervalQueryDeathTest, RejectsEmptyInterval) {
  RngStream rng(5);
  auto ch = ExactChannel::with_random_positives(16, 4, rng);
  EXPECT_DEATH(run_interval_query(ch, ch.all_nodes(), 8, 8, rng), "t_lo");
}

}  // namespace
}  // namespace tcast::core
