// Unit tests for the counting portfolio (core/counting): registry shape,
// exactness contracts, query ceilings, and the threshold-via-count adapter
// on clean channels. Statistical acceptance and lossy-channel behaviour are
// covered by tests/conformance/counting_conformance_test.cpp.
#include "core/counting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/monte_carlo.hpp"
#include "core/registry.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::CollisionModel;
using group::ExactChannel;

TEST(CountingRegistry, HasTheThreePortfolioEstimators) {
  EXPECT_GE(counting_registry().size(), 3u);
  ASSERT_NE(find_counting_algorithm("nz-geom"), nullptr);
  ASSERT_NE(find_counting_algorithm("geom-scan"), nullptr);
  ASSERT_NE(find_counting_algorithm("beep-exact"), nullptr);
  EXPECT_EQ(find_counting_algorithm("no-such-estimator"), nullptr);
  EXPECT_TRUE(find_counting_algorithm("beep-exact")->exact);
  EXPECT_FALSE(find_counting_algorithm("nz-geom")->exact);
}

TEST(CountingRegistry, EveryEstimatorHasAThresholdAdapterEntry) {
  for (const auto& spec : counting_registry()) {
    const auto* adapter = find_algorithm("count:" + spec.name);
    ASSERT_NE(adapter, nullptr) << spec.name;
    EXPECT_FALSE(adapter->needs_oracle);
  }
}

TEST(BeepExact, MatchesGroundTruthOnGridBothModels) {
  for (const auto model : {CollisionModel::kOnePlus,
                           CollisionModel::kTwoPlus}) {
    for (std::size_t x = 0; x <= 64; x += 7) {
      RngStream rng(100 + x, model == CollisionModel::kTwoPlus ? 1 : 0);
      ExactChannel::Config cfg;
      cfg.model = model;
      auto ch = ExactChannel::with_random_positives(64, x, rng, cfg);
      const auto out = run_beep_exact_count(ch, ch.all_nodes(), rng, {});
      EXPECT_EQ(out.estimate, static_cast<double>(x)) << "x=" << x;
      EXPECT_TRUE(out.exact);
      EXPECT_EQ(out.confidence, 1.0);
      EXPECT_EQ(out.queries, ch.queries_used());
      // Every confirmed identity must be unique-able to a real positive.
      auto ids = out.confirmed;
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      EXPECT_LE(ids.size(), x);
    }
  }
}

TEST(NzGeom, ProvesZeroExactlyInOneQuery) {
  RngStream rng(7);
  auto ch = ExactChannel::with_random_positives(256, 0, rng);
  const auto out = run_newport_zheng_count(ch, ch.all_nodes(), rng);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.estimate, 0.0);
  EXPECT_EQ(out.confidence, 1.0);
  EXPECT_EQ(out.queries, 1u);
}

TEST(NzGeom, EmptyParticipantsAreAnExactZero) {
  RngStream rng(8);
  auto ch = ExactChannel::with_random_positives(16, 4, rng);
  const auto out = run_newport_zheng_count(ch, {}, rng);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.estimate, 0.0);
  EXPECT_EQ(out.queries, 0u);
}

TEST(NzGeom, MeanEstimateTracksTruthAcrossDecades) {
  constexpr std::size_t kN = 512;
  for (const std::size_t x : {4u, 16u, 64u, 256u}) {
    MonteCarloConfig mc;
    mc.trials = 200;
    mc.experiment_id = 9100 + x;
    const auto stats = run_trials(mc, [x](RngStream& rng) {
      auto ch = ExactChannel::with_random_positives(kN, x, rng);
      return run_newport_zheng_count(ch, ch.all_nodes(), rng).estimate;
    });
    EXPECT_GE(stats.mean(), static_cast<double>(x) * 0.7) << "x=" << x;
    EXPECT_LE(stats.mean(), static_cast<double>(x) * 1.4) << "x=" << x;
  }
}

TEST(CountingBounds, SamplingEstimatorsStayUnderTheirCeiling) {
  for (const char* name : {"nz-geom", "geom-scan"}) {
    const auto* spec = find_counting_algorithm(name);
    ASSERT_NE(spec, nullptr);
    for (const std::size_t n : {1u, 3u, 16u, 97u, 512u}) {
      for (const std::size_t x : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
        RngStream rng(40 + n + x);
        auto ch = ExactChannel::with_random_positives(n, x, rng);
        const auto out = spec->run(ch, ch.all_nodes(), rng, {});
        EXPECT_LE(static_cast<double>(out.queries),
                  sampling_estimator_query_bound(n))
            << name << " n=" << n << " x=" << x;
      }
    }
  }
}

TEST(CountingBounds, BeepExactStaysUnderItsCeiling) {
  // Adversarial loads for splitting: all-positive (maximum tree), the
  // half-full middle, and 2+ capture churn (each capture re-queries the
  // remainder of its segment).
  for (const auto model : {CollisionModel::kOnePlus,
                           CollisionModel::kTwoPlus}) {
    for (const std::size_t n : {1u, 2u, 7u, 64u, 257u, 512u}) {
      for (const std::size_t x : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
        RngStream rng(60 + n + x, model == CollisionModel::kTwoPlus ? 1 : 0);
        ExactChannel::Config cfg;
        cfg.model = model;
        auto ch = ExactChannel::with_random_positives(n, x, rng, cfg);
        const auto out = run_beep_exact_count(ch, ch.all_nodes(), rng, {});
        EXPECT_EQ(out.estimate, static_cast<double>(x));
        EXPECT_LE(static_cast<double>(out.queries), beep_exact_query_bound(n))
            << "n=" << n << " x=" << x;
      }
    }
  }
}

TEST(ThresholdViaCount, DegenerateEdgesResolveWithoutQueries) {
  RngStream rng(9);
  auto ch = ExactChannel::with_random_positives(8, 3, rng);
  for (const char* estimator : {"nz-geom", "geom-scan", "beep-exact"}) {
    auto t0 = run_threshold_via_count(ch, ch.all_nodes(), 0, rng, estimator);
    EXPECT_TRUE(t0.decision);
    EXPECT_EQ(t0.queries, 0u);
    auto big =
        run_threshold_via_count(ch, ch.all_nodes(), 9, rng, estimator);
    EXPECT_FALSE(big.decision);
    EXPECT_EQ(big.queries, 0u);
  }
  EXPECT_EQ(ch.queries_used(), 0u);
}

TEST(ThresholdViaCount, MatchesGroundTruthOnCleanChannels) {
  for (const auto model : {CollisionModel::kOnePlus,
                           CollisionModel::kTwoPlus}) {
    for (const char* estimator : {"nz-geom", "geom-scan", "beep-exact"}) {
      for (std::size_t x = 0; x <= 48; x += 5) {
        for (const std::size_t t : {1u, 8u, 24u, 48u}) {
          RngStream rng(200 + x + 100 * t,
                        model == CollisionModel::kTwoPlus ? 1 : 0);
          ExactChannel::Config cfg;
          cfg.model = model;
          auto ch = ExactChannel::with_random_positives(48, x, rng, cfg);
          const auto out =
              run_threshold_via_count(ch, ch.all_nodes(), t, rng, estimator);
          EXPECT_EQ(out.decision, x >= t)
              << estimator << " x=" << x << " t=" << t;
          EXPECT_EQ(out.queries, ch.queries_used());
          EXPECT_LE(out.confirmed_positives, x);
        }
      }
    }
  }
}

TEST(ThresholdViaCountDeathTest, RejectsUnknownEstimator) {
  RngStream rng(10);
  auto ch = ExactChannel::with_random_positives(8, 2, rng);
  EXPECT_DEATH(
      run_threshold_via_count(ch, ch.all_nodes(), 2, rng, "no-such"),
      "unknown counting algorithm");
}

}  // namespace
}  // namespace tcast::core
