// ABNS-specific behaviour: the p-estimate dynamics and the probabilistic
// variants, beyond the correctness grid in round_engine_test.
#include <gtest/gtest.h>

#include "common/monte_carlo.hpp"
#include "core/abns.hpp"
#include "core/probabilistic_abns.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::ExactChannel;

TEST(AbnsPolicy, InitialBinsArePZeroPlusOne) {
  AbnsPolicy policy(AbnsOptions{.p0 = 8.0});
  std::vector<NodeId> nodes(100);
  EXPECT_EQ(policy.initial_bins(nodes, 4), 9u);
}

TEST(AbnsPolicy, DefaultSeedIsTwoT) {
  AbnsPolicy policy(AbnsOptions{});
  std::vector<NodeId> nodes(100);
  EXPECT_EQ(policy.initial_bins(nodes, 5), 11u);  // 2t + 1
}

TEST(AbnsPolicy, EstimateDropsWhenManyBinsEmpty) {
  AbnsPolicy policy(AbnsOptions{.p0 = 20.0});
  std::vector<NodeId> nodes(100);
  policy.initial_bins(nodes, 10);
  RoundStats stats;
  stats.bins = 21;
  stats.empty_bins = 19;  // nearly everything silent → x is small
  stats.remaining_threshold = 10;
  const auto next = policy.next_bins(stats, nodes);
  EXPECT_LT(next, 21u);
  EXPECT_LT(policy.current_estimate(), 20.0);
}

TEST(AbnsPolicy, AllFullGuardGrowsEstimate) {
  AbnsPolicy policy(AbnsOptions{.p0 = 4.0});
  std::vector<NodeId> nodes(100);
  policy.initial_bins(nodes, 10);
  RoundStats stats;
  stats.bins = 5;
  stats.empty_bins = 0;  // Eq. 6 undefined: fallback must grow p
  stats.remaining_threshold = 10;
  const auto next = policy.next_bins(stats, nodes);
  EXPECT_GE(next, 10u);
  EXPECT_GE(policy.current_estimate(), 8.0);
}

TEST(AbnsPolicy, CapturedPositivesLeaveTheEstimate) {
  AbnsPolicy policy(AbnsOptions{.p0 = 10.0});
  std::vector<NodeId> nodes(100);
  policy.initial_bins(nodes, 10);
  RoundStats with_captures;
  with_captures.bins = 11;
  with_captures.empty_bins = 4;
  with_captures.captured = 3;
  RoundStats without = with_captures;
  without.captured = 0;
  AbnsPolicy policy2(AbnsOptions{.p0 = 10.0});
  policy2.initial_bins(nodes, 10);
  const auto bins_with = policy.next_bins(with_captures, nodes);
  const auto bins_without = policy2.next_bins(without, nodes);
  EXPECT_LT(bins_with, bins_without);
}

TEST(Abns, EstimateConvergesTowardsTrueX) {
  // Run ABNS on a known instance and check the final estimate is in the
  // right ballpark (coarse: the estimator is intentionally rough).
  MonteCarloConfig mc;
  mc.trials = 200;
  const auto mean_queries_p0 = [&](double p0, std::size_t x) {
    mc.experiment_id = static_cast<std::uint64_t>(p0 * 1000) + x;
    return run_trials(mc, [p0, x](RngStream& rng) {
             auto ch = ExactChannel::with_random_positives(128, x, rng);
             return static_cast<double>(
                 run_abns(ch, ch.all_nodes(), 16, rng, AbnsOptions{p0})
                     .queries);
           })
        .mean();
  };
  // Fig. 5's qualitative content: for x ≪ t, seeding low (p0 = t) beats
  // seeding high (p0 = 2t).
  EXPECT_LT(mean_queries_p0(16.0, 2), mean_queries_p0(32.0, 2));
}

TEST(ProbabilisticAbns, MatchesGroundTruthOnGrid) {
  for (std::size_t x = 0; x <= 64; x += 4) {
    RngStream rng(7000 + x);
    auto ch = ExactChannel::with_random_positives(64, x, rng);
    const auto out =
        run_probabilistic_abns(ch, ch.all_nodes(), 8, rng);
    EXPECT_EQ(out.decision, x >= 8) << "x=" << x;
  }
}

TEST(ProbabilisticAbns, HintQueryIsCounted) {
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(64, 0, rng);
  const auto out = run_probabilistic_abns(ch, ch.all_nodes(), 8, rng);
  EXPECT_FALSE(out.decision);
  EXPECT_GE(out.queries, 1u);
  EXPECT_EQ(out.queries, ch.queries_used());
}

TEST(ProbabilisticAbns, SmallThresholdFallsBackCleanly) {
  RngStream rng(2);
  auto ch = ExactChannel::with_random_positives(16, 3, rng);
  const auto out = run_probabilistic_abns(ch, ch.all_nodes(), 1, rng);
  EXPECT_TRUE(out.decision);
}

TEST(ProbabilisticAbns, BeatsBothFixedSeedsOnAverageAtSmallX) {
  // Fig. 6: probabilistic ABNS ≈ min(ABNS(t), ABNS(2t)) at the extremes.
  MonteCarloConfig mc;
  mc.trials = 300;
  const std::size_t n = 128, t = 16, x = 2;
  const auto mean_of = [&](auto&& runner, std::uint64_t id) {
    mc.experiment_id = id;
    return run_trials(mc, [&runner, n, x, t](RngStream& rng) {
             auto ch = ExactChannel::with_random_positives(n, x, rng);
             return static_cast<double>(runner(ch, rng, t).queries);
           })
        .mean();
  };
  const double prob = mean_of(
      [](ExactChannel& ch, RngStream& rng, std::size_t t2) {
        return run_probabilistic_abns(ch, ch.all_nodes(), t2, rng);
      },
      1);
  const double abns2t = mean_of(
      [](ExactChannel& ch, RngStream& rng, std::size_t t2) {
        return run_abns(ch, ch.all_nodes(), t2, rng,
                        AbnsOptions{2.0 * static_cast<double>(t2)});
      },
      2);
  EXPECT_LT(prob, abns2t);
}

}  // namespace
}  // namespace tcast::core
