// Differential validation against the paper's pseudocode.
//
// This file transcribes Algorithm 1 (2tBins) and Algorithm 2 (Exponential
// Increase) literally — line comments cite the paper — and checks that the
// production RoundEngine produces the *same decision* on the same instances
// in the 1+ model, and the same query count when both use the same bin
// ordering and binning draws. Any engine refactor that drifts from the
// published algorithms breaks this suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/exponential_increase.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

/// Literal Algorithm 1 / 2. `double_bins=false` → 2tBins (b = 2t each
/// round); true → Exponential Increase (b = 2, doubling). 1+ model;
/// bins queried in index order (no early-skip idealization).
struct PseudocodeResult {
  bool decision;
  std::size_t queries;
};

PseudocodeResult paper_algorithm(const std::vector<bool>& positive,
                                 std::size_t t, RngStream& rng,
                                 bool double_bins) {
  std::vector<NodeId> n;  // "n set of voters" (Alg. 1 line 1)
  for (std::size_t i = 0; i < positive.size(); ++i)
    n.push_back(static_cast<NodeId>(i));
  std::size_t queries = 0;
  if (t == 0) return {true, queries};
  if (n.size() < t) return {false, queries};

  std::size_t binNum = double_bins ? 2 : 2 * t;  // Alg. 2 line 1
  for (;;) {                                     // "ForEach round Do"
    std::size_t silentBins = 0;                  // line 3
    // line 4: group nodes in n into binNum equal-sized bins randomly
    const std::size_t bins = std::min(std::max<std::size_t>(binNum, 1),
                                      std::max<std::size_t>(n.size(), 1));
    std::vector<NodeId> shuffled = n;
    rng.shuffle(shuffled);
    std::vector<std::vector<NodeId>> groups(bins);
    for (std::size_t i = 0; i < shuffled.size(); ++i)
      groups[i % bins].push_back(shuffled[i]);

    for (std::size_t g = 0; g < groups.size(); ++g) {  // line 5
      ++queries;  // line 6: multicast the poll predicate P to group g
      const bool silent = std::none_of(
          groups[g].begin(), groups[g].end(), [&positive](NodeId id) {
            return positive[static_cast<std::size_t>(id)];
          });
      if (silent) {  // line 7
        for (const NodeId id : groups[g]) std::erase(n, id);  // line 8
        ++silentBins;  // line 9
      }
      // line 11: If g.index − silentBins ≥ t  (non-empty groups so far)
      if ((g + 1) - silentBins >= t) return {true, queries};
      // line 14: If |n| < t
      if (n.size() < t) return {false, queries};
    }
    if (double_bins) binNum *= 2;  // Alg. 2 line 18
    // Anti-livelock mirror of the engine (the published pseudocode can spin
    // when every bin stays non-empty at a fixed bin count; the engine
    // doubles — relevant only to Alg. 1 when 2t cannot grow, which the
    // termination checks make unreachable for t ≥ 1).
  }
}

class PseudocodeDiff : public ::testing::TestWithParam<bool> {};

TEST_P(PseudocodeDiff, DecisionsAgreeEverywhere) {
  const bool double_bins = GetParam();
  for (const std::size_t nsize : {1u, 6u, 16u, 48u}) {
    for (const std::size_t t : {1u, 3u, 8u, 20u}) {
      for (std::size_t x = 0; x <= nsize; ++x) {
        RngStream rng_paper(nsize * 1009 + t * 13 + x);
        std::vector<bool> positive(nsize, false);
        for (const NodeId id : rng_paper.sample_subset(nsize, x))
          positive[static_cast<std::size_t>(id)] = true;

        const auto paper =
            paper_algorithm(positive, t, rng_paper, double_bins);

        RngStream rng_engine(nsize * 2027 + t * 7 + x);
        group::ExactChannel channel(positive, rng_engine);
        EngineOptions opts;
        opts.ordering = BinOrdering::kInOrder;
        const auto engine =
            double_bins
                ? run_exponential_increase(channel, channel.all_nodes(), t,
                                           rng_engine, opts)
                : run_two_t_bins(channel, channel.all_nodes(), t, rng_engine,
                                 opts);

        EXPECT_EQ(engine.decision, paper.decision)
            << "n=" << nsize << " t=" << t << " x=" << x;
        EXPECT_EQ(engine.decision, x >= t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, PseudocodeDiff,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "ExpIncrease" : "TwoTBins";
                         });

TEST(PseudocodeDiff, QueryCountsAgreeWhenDrawsAreShared) {
  // Bit-level agreement: drive BOTH implementations from the same RNG
  // stream so the random binning coincides, then demand identical query
  // counts, not just decisions. (The engine consumes the stream through
  // BinAssignment::random_equal which matches the transcription's
  // shuffle-and-deal exactly.)
  for (const std::size_t nsize : {12u, 32u}) {
    for (const std::size_t t : {2u, 5u}) {
      for (std::size_t x = 0; x <= nsize; x += 3) {
        std::vector<bool> positive(nsize, false);
        {
          RngStream pick(nsize + t + x);
          for (const NodeId id : pick.sample_subset(nsize, x))
            positive[static_cast<std::size_t>(id)] = true;
        }
        RngStream rng_a(42, 7);
        const auto paper = paper_algorithm(positive, t, rng_a, false);

        RngStream rng_b(42, 7);
        group::ExactChannel channel(positive, rng_b);
        EngineOptions opts;
        opts.ordering = BinOrdering::kInOrder;
        const auto engine = run_two_t_bins(channel, channel.all_nodes(), t,
                                           rng_b, opts);
        EXPECT_EQ(engine.decision, paper.decision);
        EXPECT_EQ(engine.queries, paper.queries)
            << "n=" << nsize << " t=" << t << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace tcast::core
