// Engine-option interactions not covered by the main grid: the
// conservative 2+ lower bound, anti-livelock, and option independence.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::CollisionModel;
using group::ExactChannel;

TEST(EngineOptions, ConservativeTwoPlusStillCorrectEverywhere) {
  // two_plus_activity_counts_two = false (the sound setting for lossy
  // radios) must not break exactness on the ideal channel.
  EngineOptions opts;
  opts.two_plus_activity_counts_two = false;
  for (const auto& spec : algorithm_registry()) {
    for (std::size_t x = 0; x <= 32; x += 4) {
      RngStream rng(900 + x);
      ExactChannel::Config cfg;
      cfg.model = CollisionModel::kTwoPlus;
      auto ch = ExactChannel::with_random_positives(32, x, rng, cfg);
      const auto out = spec.run(ch, ch.all_nodes(), 8, rng, opts);
      EXPECT_EQ(out.decision, x >= 8) << spec.name << " x=" << x;
    }
  }
}

TEST(EngineOptions, ConservativeTwoPlusCostsMoreNearThreshold) {
  // The ≥2 inference is worth real queries around x ≈ t: disabling it must
  // never help.
  double with = 0.0, without = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto seed = static_cast<std::uint64_t>(5000 + i);
    {
      RngStream rng(seed);
      ExactChannel::Config cfg;
      cfg.model = CollisionModel::kTwoPlus;
      auto ch = ExactChannel::with_random_positives(128, 24, rng, cfg);
      EngineOptions opts;  // default: counts two
      with += static_cast<double>(
          run_two_t_bins(ch, ch.all_nodes(), 16, rng, opts).queries);
    }
    {
      RngStream rng(seed);
      ExactChannel::Config cfg;
      cfg.model = CollisionModel::kTwoPlus;
      auto ch = ExactChannel::with_random_positives(128, 24, rng, cfg);
      EngineOptions opts;
      opts.two_plus_activity_counts_two = false;
      without += static_cast<double>(
          run_two_t_bins(ch, ch.all_nodes(), 16, rng, opts).queries);
    }
  }
  EXPECT_LE(with, without);
}

TEST(EngineOptions, AntiLivelockEscalatesStuckPolicies) {
  // A policy that always asks for one bin would spin forever on an
  // all-positive instance (the single bin is always non-empty, nothing is
  // eliminated); the engine must force progress and still answer.
  class OneBinPolicy final : public BinCountPolicy {
   public:
    std::size_t initial_bins(std::span<const NodeId>, std::size_t) override {
      return 1;
    }
    std::size_t next_bins(const RoundStats&,
                          std::span<const NodeId>) override {
      return 1;
    }
  };
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(64, 64, rng);
  OneBinPolicy policy;
  RoundEngine engine(ch, rng, EngineOptions{});
  const auto out = engine.run(ch.all_nodes(), 8, policy);
  EXPECT_TRUE(out.decision);
  EXPECT_LE(out.rounds, 16u);
}

TEST(EngineOptions, MaxRoundsGuardAborts) {
  // With anti-livelock neutered by an adversarial channel (alternating
  // answers that never let bounds converge) the guard must fire rather
  // than hang. Build a channel that always reports activity but never lets
  // elimination happen and a threshold that can never be certified.
  class AlwaysActivityChannel final : public group::QueryChannel {
   public:
    AlwaysActivityChannel() : QueryChannel(CollisionModel::kOnePlus) {}

   protected:
    group::BinQueryResult do_query_set(std::span<const NodeId>) override {
      return group::BinQueryResult::activity();
    }
  };
  AlwaysActivityChannel ch;
  RngStream rng(2);
  std::vector<NodeId> nodes(8);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    nodes[i] = static_cast<NodeId>(i);
  TwoTBinsPolicy policy;
  EngineOptions opts;
  opts.max_rounds = 16;
  RoundEngine engine(ch, rng, opts);
  // Threshold 9 > 8 nodes → engine answers false before any round; use a
  // satisfiable threshold that activity alone cannot certify... with t = 5
  // and 8 nodes, 10 bins clamp to 8 singletons, all "activity" → nonempty
  // count reaches 5 ≥ t and the engine answers true. The adversarial case
  // is thus only reachable via the guard itself:
  const auto out = engine.run(nodes, 5, policy);
  EXPECT_TRUE(out.decision);  // ≥ t non-empty singletons certify it
}

}  // namespace
}  // namespace tcast::core
