// Sec. VI probabilistic threshold test: accuracy, repeat scaling, plans.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/bimodal.hpp"
#include "common/monte_carlo.hpp"
#include "core/probabilistic_threshold.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using analysis::BimodalDistribution;
using group::ExactChannel;

/// One bimodal trial: draw x from the distribution, run the probabilistic
/// test, score the decision against the generating mode.
bool one_trial(RngStream& rng, const BimodalDistribution& dist, std::size_t n,
               std::size_t repeats) {
  const auto sample = dist.sample(n, rng);
  auto ch = ExactChannel::with_random_positives(n, sample.x, rng);
  ProbabilisticThresholdOptions opts;
  std::tie(opts.t_l, opts.t_r) = dist.decision_boundaries();
  opts.repeats = repeats;
  const auto out =
      run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng);
  return out.high_mode == sample.from_high_mode;
}

double accuracy(const BimodalDistribution& dist, std::size_t n,
                std::size_t repeats, std::uint64_t id) {
  MonteCarloConfig mc;
  mc.trials = 600;
  mc.experiment_id = id;
  return run_bool_trials(mc, [&dist, n, repeats](RngStream& rng) {
           return one_trial(rng, dist, n, repeats);
         })
      .value();
}

TEST(Probabilistic, QueryCountEqualsRepeatsExactly) {
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(128, 96, rng);
  ProbabilisticThresholdOptions opts;
  opts.t_l = 20;
  opts.t_r = 90;
  opts.repeats = 12;
  const auto out = run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng);
  EXPECT_EQ(out.queries, 12u);
  EXPECT_EQ(ch.queries_used(), 12u);
}

TEST(Probabilistic, WellSeparatedModesAreAccurate) {
  const auto dist = BimodalDistribution::symmetric(128, 48.0, 4.0);
  EXPECT_GE(accuracy(dist, 128, 9, 1), 0.9);  // paper: ≥90% for d > 32, r = 9
}

TEST(Probabilistic, AccuracyImprovesWithRepeats) {
  const auto dist = BimodalDistribution::symmetric(128, 24.0, 4.0);
  const double r1 = accuracy(dist, 128, 1, 10);
  const double r9 = accuracy(dist, 128, 9, 11);
  const double r19 = accuracy(dist, 128, 19, 12);
  EXPECT_GT(r9, r1);
  EXPECT_GE(r19, r9 - 0.02);  // monotone up to noise
}

TEST(Probabilistic, CloseModesAreHard) {
  // Paper: "when d ≈ 8, the probabilistic algorithm has a great difficulty
  // ... accuracies as low as 70%".
  const auto near = BimodalDistribution::symmetric(128, 8.0, 4.0);
  const auto far = BimodalDistribution::symmetric(128, 48.0, 4.0);
  EXPECT_LT(accuracy(near, 128, 9, 20), accuracy(far, 128, 9, 21));
}

TEST(Probabilistic, HighModeDetectedForLargeX) {
  RngStream rng(2);
  auto ch = ExactChannel::with_random_positives(128, 110, rng);
  ProbabilisticThresholdOptions opts;
  opts.t_l = 16;
  opts.t_r = 96;
  opts.repeats = 15;
  EXPECT_TRUE(
      run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng).high_mode);
}

TEST(Probabilistic, LowModeDetectedForZeroX) {
  RngStream rng(3);
  auto ch = ExactChannel::with_random_positives(128, 0, rng);
  ProbabilisticThresholdOptions opts;
  opts.t_l = 16;
  opts.t_r = 96;
  opts.repeats = 15;
  EXPECT_FALSE(
      run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng).high_mode);
}

TEST(Probabilistic, PlanFieldsAreConsistent) {
  RngStream rng(4);
  auto ch = ExactChannel::with_random_positives(64, 10, rng);
  ProbabilisticThresholdOptions opts;
  opts.t_l = 8;
  opts.t_r = 40;
  opts.repeats = 5;
  const auto out = run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng);
  EXPECT_GT(out.plan.b, 1.0);
  EXPECT_GT(out.plan.q_high, out.plan.q_low);
  EXPECT_LE(out.nonempty_seen, 5u);
}

TEST(Probabilistic, BOverrideRespected) {
  RngStream rng(5);
  auto ch = ExactChannel::with_random_positives(64, 10, rng);
  ProbabilisticThresholdOptions opts;
  opts.t_l = 8;
  opts.t_r = 40;
  opts.repeats = 3;
  opts.b_override = 17.0;
  const auto out = run_probabilistic_threshold(ch, ch.all_nodes(), opts, rng);
  EXPECT_DOUBLE_EQ(out.plan.b, 17.0);
}

}  // namespace
}  // namespace tcast::core
