// Core correctness properties of the round engine and every exact algorithm.
//
// THE invariant of the whole library: on an exact channel, every exact
// algorithm answers x ≥ t correctly, for every (n, x, t), in both collision
// models, under both bin orderings and both binning schemes.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "analysis/bounds.hpp"
#include "core/counting.hpp"
#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"
#include "group/instrumented_channel.hpp"

namespace tcast::core {
namespace {

using group::CollisionModel;
using group::ExactChannel;

struct GridCase {
  std::string algorithm;
  CollisionModel model;
  BinOrdering ordering;
};

class AlgorithmGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(AlgorithmGridTest, DecisionMatchesGroundTruthEverywhere) {
  const auto& param = GetParam();
  const auto* spec = find_algorithm(param.algorithm);
  ASSERT_NE(spec, nullptr);
  EngineOptions opts;
  opts.ordering = param.ordering;

  for (const std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    for (const std::size_t t : {1u, 2u, 5u, 16u, 40u}) {
      for (std::size_t x = 0; x <= n; x += (n > 8 ? 3 : 1)) {
        RngStream rng(n * 100003 + t * 101 + x);
        ExactChannel::Config ccfg;
        ccfg.model = param.model;
        auto channel = ExactChannel::with_random_positives(n, x, rng, ccfg);
        const auto nodes = channel.all_nodes();
        const auto out = spec->run(channel, nodes, t, rng, opts);
        EXPECT_EQ(out.decision, x >= t)
            << param.algorithm << " n=" << n << " x=" << x << " t=" << t;
      }
    }
  }
}

std::vector<GridCase> all_grid_cases() {
  std::vector<GridCase> cases;
  for (const auto& spec : algorithm_registry()) {
    for (const auto model :
         {CollisionModel::kOnePlus, CollisionModel::kTwoPlus}) {
      for (const auto ordering :
           {BinOrdering::kNonEmptyFirst, BinOrdering::kInOrder}) {
        cases.push_back({spec.name, model, ordering});
      }
    }
  }
  return cases;
}

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  auto sanitized = info.param.algorithm;
  for (auto& c : sanitized)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return sanitized +
         (info.param.model == CollisionModel::kOnePlus ? "_1p" : "_2p") +
         (info.param.ordering == BinOrdering::kNonEmptyFirst ? "_ideal"
                                                             : "_inorder");
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmGridTest,
                         ::testing::ValuesIn(all_grid_cases()),
                         grid_case_name);

TEST(RoundEngine, ZeroThresholdIsFreeTrue) {
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(10, 3, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 0, rng);
  EXPECT_TRUE(out.decision);
  EXPECT_EQ(out.queries, 0u);
}

TEST(RoundEngine, ImpossibleThresholdIsFreeFalse) {
  RngStream rng(2);
  auto ch = ExactChannel::with_random_positives(10, 10, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 11, rng);
  EXPECT_FALSE(out.decision);
  EXPECT_EQ(out.queries, 0u);
}

TEST(RoundEngine, EmptyParticipantSet) {
  RngStream rng(3);
  auto ch = ExactChannel::with_random_positives(4, 2, rng);
  const auto out = run_two_t_bins(ch, {}, 1, rng);
  EXPECT_FALSE(out.decision);
  EXPECT_EQ(out.queries, 0u);
}

TEST(RoundEngine, TwoTBinsRespectsUpperBound) {
  // Measured cost ≤ 2t·log2(N/2t) + one extra round of slack, everywhere.
  for (const std::size_t n : {64u, 128u, 256u}) {
    for (const std::size_t t : {2u, 8u, 16u}) {
      for (std::size_t x = 0; x <= n; x += n / 8) {
        RngStream rng(n + t * 13 + x * 7);
        auto ch = ExactChannel::with_random_positives(n, x, rng);
        const auto out = run_two_t_bins(ch, ch.all_nodes(), t, rng);
        const double bound =
            analysis::two_t_bins_upper_bound(n, t) + 2.0 * static_cast<double>(t);
        EXPECT_LE(static_cast<double>(out.queries), bound)
            << "n=" << n << " t=" << t << " x=" << x;
      }
    }
  }
}

TEST(RoundEngine, LargeXDecidesWithinTQueriesIdealOrdering) {
  // Paper Sec. IV-C: "when the number of positive replies is sufficiently
  // large, the result is found only in t queries".
  RngStream rng(5);
  auto ch = ExactChannel::with_random_positives(128, 128, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 16, rng);
  EXPECT_TRUE(out.decision);
  EXPECT_EQ(out.queries, 16u);
}

TEST(RoundEngine, ZeroXCostMatchesClosedForm) {
  // Paper Sec. IV-C: x = 0 costs (n − t)/(n/2t) queries (one pass of empty
  // bins until fewer than t candidates remain).
  RngStream rng(6);
  const std::size_t n = 128, t = 16;
  auto ch = ExactChannel::with_random_positives(n, 0, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), t, rng);
  EXPECT_FALSE(out.decision);
  const double closed = analysis::two_t_bins_zero_x_cost(n, t);
  EXPECT_NEAR(static_cast<double>(out.queries), closed, 2.0);
}

TEST(RoundEngine, TwoPlusNeverCostsMoreOnAverage) {
  // Fig. 2's claim, as a statistical property at the sweet spot x ≈ t − 1.
  const std::size_t n = 128, t = 16, x = 15;
  double q1 = 0, q2 = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    {
      RngStream rng(1000 + static_cast<std::uint64_t>(i));
      auto ch = ExactChannel::with_random_positives(n, x, rng);
      q1 += static_cast<double>(
          run_two_t_bins(ch, ch.all_nodes(), t, rng).queries);
    }
    {
      RngStream rng(1000 + static_cast<std::uint64_t>(i));
      ExactChannel::Config cfg;
      cfg.model = CollisionModel::kTwoPlus;
      auto ch = ExactChannel::with_random_positives(n, x, rng, cfg);
      q2 += static_cast<double>(
          run_two_t_bins(ch, ch.all_nodes(), t, rng).queries);
    }
  }
  EXPECT_LT(q2, q1);
}

TEST(RoundEngine, TwoPlusConfirmedPositivesAreReported) {
  RngStream rng(7);
  ExactChannel::Config cfg;
  cfg.model = CollisionModel::kTwoPlus;
  auto ch = ExactChannel::with_random_positives(64, 20, rng, cfg);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 16, rng);
  EXPECT_TRUE(out.decision);
  // With captures enabled some identities are typically confirmed.
  EXPECT_GE(out.confirmed_positives, 0u);
}

TEST(RoundEngine, SoundnessOfEveryInference) {
  // Transcript-level audit: the engine's `true` answers always coincide with
  // a channel state where x ≥ t actually holds (checked by the grid), and
  // its per-query behaviour never queries an empty candidate set.
  RngStream rng(8);
  ExactChannel inner({true, false, true, false, true, false, true, false},
                     rng);
  group::InstrumentedChannel ch(inner);
  const auto nodes = inner.all_nodes();
  const auto out = run_two_t_bins(ch, nodes, 3, rng);
  EXPECT_TRUE(out.decision);
  for (const auto& rec : ch.transcript()) {
    ASSERT_TRUE(rec.true_positives.has_value());
    EXPECT_EQ(rec.result.nonempty(), *rec.true_positives > 0);
  }
}

TEST(RoundEngine, ContiguousBinningAlsoCorrect) {
  EngineOptions opts;
  opts.scheme = BinningScheme::kContiguous;
  for (std::size_t x = 0; x <= 32; x += 4) {
    RngStream rng(100 + x);
    auto ch = ExactChannel::with_random_positives(32, x, rng);
    const auto out = run_two_t_bins(ch, ch.all_nodes(), 8, rng, opts);
    EXPECT_EQ(out.decision, x >= 8) << "x=" << x;
  }
}

TEST(RoundEngine, RoundsAreBoundedLogarithmically) {
  RngStream rng(9);
  auto ch = ExactChannel::with_random_positives(1024, 5, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 8, rng);
  EXPECT_LE(out.rounds, 12u);  // log2(1024/16) = 6 rounds + slack
}

TEST(Registry, LookupFindsAllAndRejectsUnknown) {
  EXPECT_GE(algorithm_registry().size(), 8u);
  EXPECT_NE(find_algorithm("2tbins"), nullptr);
  EXPECT_NE(find_algorithm("oracle"), nullptr);
  EXPECT_EQ(find_algorithm("definitely-not-an-algorithm"), nullptr);
  for (const auto& spec : algorithm_registry()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_NE(spec.run, nullptr);
  }
}

// Token that trips once the channel has spent `limit` queries — the
// deterministic analogue of a wall-clock deadline (a query budget).
class QueryBudgetToken final : public CancelToken {
 public:
  QueryBudgetToken(const group::QueryChannel& ch, QueryCount limit)
      : ch_(&ch), limit_(limit) {}
  bool cancelled() const override { return ch_->queries_used() >= limit_; }

 private:
  const group::QueryChannel* ch_;
  QueryCount limit_;
};

TEST(Cancellation, MidRunCancelNeverFabricatesAVerdict) {
  // The same instance decides `true` uncancelled; with a 3-query budget the
  // engine must stop mid-round with cancelled set instead of guessing.
  RngStream rng(11);
  auto ch = ExactChannel::with_random_positives(64, 40, rng);
  QueryBudgetToken budget(ch, 3);
  EngineOptions opts;
  opts.cancel = &budget;
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 16, rng, opts);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.queries, 3u);  // polled before every query

  RngStream rng2(11);
  auto ch2 = ExactChannel::with_random_positives(64, 40, rng2);
  const auto full = run_two_t_bins(ch2, ch2.all_nodes(), 16, rng2);
  EXPECT_FALSE(full.cancelled);
  EXPECT_TRUE(full.decision);
}

TEST(Cancellation, AlreadyTrippedTokenCancelsBeforeAnyQuery) {
  RngStream rng(12);
  auto ch = ExactChannel::with_random_positives(32, 10, rng);
  FlagCancelToken token;
  token.cancel();
  EngineOptions opts;
  opts.cancel = &token;
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 4, rng, opts);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.queries, 0u);
}

TEST(Cancellation, UntrippedTokenIsBitIdenticalToNoToken) {
  for (const auto& spec : algorithm_registry()) {
    if (spec.needs_oracle) continue;
    RngStream rng_a(21);
    auto ch_a = ExactChannel::with_random_positives(48, 20, rng_a);
    const auto plain = spec.run(ch_a, ch_a.all_nodes(), 12, rng_a, {});

    RngStream rng_b(21);
    auto ch_b = ExactChannel::with_random_positives(48, 20, rng_b);
    FlagCancelToken token;
    EngineOptions opts;
    opts.cancel = &token;
    const auto tokened = spec.run(ch_b, ch_b.all_nodes(), 12, rng_b, opts);

    EXPECT_EQ(plain.decision, tokened.decision) << spec.name;
    EXPECT_EQ(plain.queries, tokened.queries) << spec.name;
    EXPECT_FALSE(tokened.cancelled) << spec.name;
    EXPECT_EQ(rng_a.bits(), rng_b.bits()) << spec.name;
  }
}

TEST(Cancellation, CountingAdapterPropagatesCancel) {
  // Budget chosen to trip inside the estimation phase; the adapter must
  // surface `cancelled` instead of falling through to a verdict.
  RngStream rng(31);
  auto ch = ExactChannel::with_random_positives(64, 30, rng);
  QueryBudgetToken budget(ch, 2);
  EngineOptions opts;
  opts.cancel = &budget;
  const auto out = run_threshold_via_count(ch, ch.all_nodes(), 8, rng,
                                           "nz-geom", opts);
  EXPECT_TRUE(out.cancelled);
  EXPECT_LE(out.queries, 3u);
}

}  // namespace
}  // namespace tcast::core
