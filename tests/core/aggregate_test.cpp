#include "core/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/monte_carlo.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::CollisionModel;
using group::ExactChannel;

/// Exhaustive correctness: exact counting is exact for every (n, x, model).
class ExactCountGrid
    : public ::testing::TestWithParam<group::CollisionModel> {};

TEST_P(ExactCountGrid, CountsExactlyEverywhere) {
  for (const std::size_t n : {1u, 2u, 7u, 32u, 100u}) {
    for (std::size_t x = 0; x <= n; x += (n > 16 ? 5 : 1)) {
      RngStream rng(n * 1361 + x);
      ExactChannel::Config cfg;
      cfg.model = GetParam();
      auto ch = ExactChannel::with_random_positives(n, x, rng, cfg);
      const auto out = run_exact_count(ch, ch.all_nodes(), rng);
      EXPECT_EQ(out.count, x) << "n=" << n << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, ExactCountGrid,
                         ::testing::Values(CollisionModel::kOnePlus,
                                           CollisionModel::kTwoPlus),
                         [](const auto& param_info) {
                           return param_info.param == CollisionModel::kOnePlus
                                      ? "OnePlus"
                                      : "TwoPlus";
                         });

TEST(ExactCount, EmptySetIsFree) {
  RngStream rng(1);
  auto ch = ExactChannel::with_random_positives(8, 3, rng);
  const auto out = run_exact_count(ch, {}, rng);
  EXPECT_EQ(out.count, 0u);
  EXPECT_EQ(out.queries, 0u);
}

TEST(ExactCount, ZeroPositivesCostsOneQuery) {
  RngStream rng(2);
  auto ch = ExactChannel::with_random_positives(1024, 0, rng);
  const auto out = run_exact_count(ch, ch.all_nodes(), rng);
  EXPECT_EQ(out.count, 0u);
  EXPECT_EQ(out.queries, 1u);
}

TEST(ExactCount, CostIsXLogNOverX) {
  // Binary splitting bound: queries ≤ c · (x+1) · log2(n/x + 2) + 1.
  MonteCarloConfig mc;
  mc.trials = 100;
  for (const std::size_t x : {1u, 8u, 64u}) {
    mc.experiment_id = x;
    const double mean = run_trials(mc, [x](RngStream& rng) {
                          auto ch = ExactChannel::with_random_positives(
                              1024, x, rng);
                          return static_cast<double>(
                              run_exact_count(ch, ch.all_nodes(), rng)
                                  .queries);
                        }).mean();
    const double bound =
        3.0 * (static_cast<double>(x) + 1.0) *
        (std::log2(1024.0 / static_cast<double>(x) + 2.0) + 1.0);
    EXPECT_LE(mean, bound) << "x=" << x;
  }
}

TEST(ExactCount, TwoPlusCapturesReduceQueries) {
  MonteCarloConfig mc;
  mc.trials = 150;
  const auto mean_queries = [&mc](CollisionModel model, std::uint64_t id) {
    mc.experiment_id = id;
    return run_trials(mc, [model](RngStream& rng) {
             ExactChannel::Config cfg;
             cfg.model = model;
             auto ch =
                 ExactChannel::with_random_positives(256, 24, rng, cfg);
             return static_cast<double>(
                 run_exact_count(ch, ch.all_nodes(), rng).queries);
           })
        .mean();
  };
  EXPECT_LT(mean_queries(CollisionModel::kTwoPlus, 2),
            mean_queries(CollisionModel::kOnePlus, 1));
}

TEST(SymmetricQuery, MajorityEverywhere) {
  const std::size_t n = 48;
  const auto majority = [n](std::size_t v) { return 2 * v > n; };
  for (std::size_t x = 0; x <= n; x += 3) {
    RngStream rng(700 + x);
    auto ch = ExactChannel::with_random_positives(n, x, rng);
    const auto out = run_symmetric_query(ch, ch.all_nodes(), majority, rng);
    EXPECT_EQ(out.value, 2 * x > n) << "x=" << x;
    EXPECT_GE(x, out.x_lo);
    EXPECT_LE(x, out.x_hi);
  }
}

TEST(SymmetricQuery, ParityForcesExactDetermination) {
  const std::size_t n = 33;
  const auto parity = [](std::size_t v) { return v % 2 == 1; };
  for (std::size_t x = 0; x <= n; x += 4) {
    RngStream rng(800 + x);
    auto ch = ExactChannel::with_random_positives(n, x, rng);
    const auto out = run_symmetric_query(ch, ch.all_nodes(), parity, rng);
    EXPECT_EQ(out.value, x % 2 == 1) << "x=" << x;
    EXPECT_EQ(out.x_lo, out.x_hi);  // parity varies everywhere → pinned x
    EXPECT_EQ(out.x_lo, x);
    EXPECT_LE(out.sessions, 7u);  // ⌈log2 34⌉ = 6 (+1 slack)
  }
}

TEST(SymmetricQuery, ThresholdDegeneratesToOneSession) {
  const std::size_t n = 64, t = 16;
  RngStream rng(3);
  auto ch = ExactChannel::with_random_positives(n, 40, rng);
  const auto out = run_symmetric_query(
      ch, ch.all_nodes(), [t](std::size_t v) { return v >= t; }, rng);
  EXPECT_TRUE(out.value);
  EXPECT_EQ(out.sessions, 1u);
}

TEST(SymmetricQuery, ConstantFunctionIsFree) {
  RngStream rng(4);
  auto ch = ExactChannel::with_random_positives(32, 10, rng);
  const auto out = run_symmetric_query(
      ch, ch.all_nodes(), [](std::size_t) { return true; }, rng);
  EXPECT_TRUE(out.value);
  EXPECT_EQ(out.queries, 0u);
  EXPECT_EQ(out.sessions, 0u);
}

TEST(SymmetricQuery, IntervalPredicate) {
  const std::size_t n = 40;
  const auto inside = [](std::size_t v) { return v >= 10 && v < 20; };
  for (const std::size_t x : {0u, 9u, 10u, 15u, 19u, 20u, 40u}) {
    RngStream rng(900 + x);
    auto ch = ExactChannel::with_random_positives(n, x, rng);
    const auto out = run_symmetric_query(ch, ch.all_nodes(), inside, rng);
    EXPECT_EQ(out.value, inside(x)) << "x=" << x;
  }
}

}  // namespace
}  // namespace tcast::core
