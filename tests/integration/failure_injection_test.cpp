// Failure injection: nodes dying mid-session, radios silently lossy,
// populations churning between rounds. The exactness guarantees are gone in
// these regimes by design — what we assert is the library's robustness
// contract: sessions terminate, never crash, never report impossible
// states, and errors skew in the direction the physics dictates (silence,
// i.e. false negatives — never phantom positives).
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"
#include "testbed/controller.hpp"

namespace tcast {
namespace {

/// A channel decorator that kills (depowers) a random positive node every
/// few queries — sensors failing while the session runs.
class DyingNodesChannel final : public group::QueryChannel {
 public:
  DyingNodesChannel(group::ExactChannel& inner, RngStream& rng,
                    std::size_t kill_every)
      : QueryChannel(inner.model()),
        inner_(&inner),
        rng_(&rng),
        kill_every_(kill_every) {}

  std::size_t killed() const { return killed_; }

 protected:
  group::BinQueryResult do_query_set(
      std::span<const NodeId> nodes) override {
    maybe_kill();
    return inner_->query_set(nodes);
  }

 private:
  void maybe_kill() {
    if (++since_kill_ < kill_every_) return;
    since_kill_ = 0;
    // Kill one currently-positive node, if any survive.
    const auto n = inner_->participant_count();
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
      const auto id = static_cast<NodeId>(rng_->uniform_below(n));
      if (inner_->is_positive(id)) {
        inner_->set_positive(id, false);
        ++killed_;
        return;
      }
    }
  }

  group::ExactChannel* inner_;
  RngStream* rng_;
  std::size_t kill_every_;
  std::size_t since_kill_ = 0;
  std::size_t killed_ = 0;
};

TEST(FailureInjection, SessionsTerminateWhileNodesDie) {
  for (const auto& spec : core::algorithm_registry()) {
    if (spec.needs_oracle) continue;  // oracle reads ground truth mid-kill
    RngStream rng(17);
    auto inner = group::ExactChannel::with_random_positives(64, 30, rng);
    DyingNodesChannel channel(inner, rng, /*kill_every=*/3);
    const auto out =
        spec.run(channel, inner.all_nodes(), 16, rng, core::EngineOptions{});
    // The ground truth moved under the algorithm; any decision is
    // defensible, but the session must terminate in bounded work.
    EXPECT_LE(out.rounds, 100u) << spec.name;
    EXPECT_LE(out.queries, 100000u) << spec.name;
  }
}

TEST(FailureInjection, MassExtinctionYieldsFalse) {
  // Every positive dies immediately: the only consistent answer is false.
  RngStream rng(18);
  auto inner = group::ExactChannel::with_random_positives(64, 20, rng);
  DyingNodesChannel channel(inner, rng, /*kill_every=*/1);
  const auto out = core::run_two_t_bins(channel, inner.all_nodes(), 21, rng);
  // t=21 > initial x=20, and killing only shrinks x.
  EXPECT_FALSE(out.decision);
}

TEST(FailureInjection, PacketTierLossyHacksOnlyCauseFalseNegatives) {
  // Heavy HACK loss: decisions may be wrong, but only in one direction —
  // the initiator can believe fewer positives, never more.
  for (int trial = 0; trial < 20; ++trial) {
    group::PacketChannel::Config cfg;
    cfg.channel.hack = radio::HackReceptionModel(0.5, 0.9);
    cfg.seed = 100 + static_cast<std::uint64_t>(trial);
    std::vector<bool> truth(12, false);
    for (int i = 0; i < 6; ++i) truth[static_cast<std::size_t>(i)] = true;
    group::PacketChannel ch(truth, cfg);
    RngStream rng(cfg.seed);
    core::EngineOptions opts;
    opts.ordering = core::BinOrdering::kInOrder;
    // Threshold 7 > x=6: even a lossy radio must never say true.
    const auto above = core::run_two_t_bins(ch, ch.all_nodes(), 7, rng, opts);
    EXPECT_FALSE(above.decision);
  }
}

TEST(FailureInjection, TestbedSurvivesMidRunReboot) {
  testbed::Testbed::Config cfg;
  cfg.participants = 6;
  cfg.seed = 9;
  testbed::Testbed bench(cfg);
  bench.configure_predicates({true, true, true, false, false, false});
  (void)bench.run_query(2);
  // Reboot wipes predicates; the next query must see an empty world and
  // answer false, with no stale ephemeral addresses leaking HACKs.
  bench.reboot_all();
  const auto result = bench.run_query(1);
  EXPECT_FALSE(result.outcome.decision);
  EXPECT_TRUE(result.correct);
}

TEST(FailureInjection, ChurnBetweenSessionsIsClean) {
  // The same channel serves many sessions while truth flips arbitrarily —
  // query counters and decisions must stay per-session consistent.
  RngStream rng(21);
  auto ch = group::ExactChannel::with_random_positives(32, 0, rng);
  for (std::size_t round = 0; round < 30; ++round) {
    const auto x = static_cast<std::size_t>(rng.uniform_below(33));
    for (NodeId id = 0; id < 32; ++id) ch.set_positive(id, false);
    for (const NodeId id : rng.sample_subset(32, x))
      ch.set_positive(id, true);
    const auto before = ch.queries_used();
    const auto out = core::run_two_t_bins(ch, ch.all_nodes(), 8, rng);
    EXPECT_EQ(out.decision, x >= 8) << "round " << round;
    EXPECT_EQ(out.queries, ch.queries_used() - before);
  }
}

}  // namespace
}  // namespace tcast
