// End-to-end tests of the public ThresholdSession facade on both tiers.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"

namespace tcast::core {
namespace {

TEST(Session, TcastOnExactTier) {
  RngStream rng(1);
  auto ch = group::ExactChannel::with_random_positives(64, 20, rng);
  ThresholdSession session(ch, ch.all_nodes(), rng);
  EXPECT_TRUE(session.tcast(8).decision);
  EXPECT_FALSE(session.tcast(32).decision);
  EXPECT_GT(session.total_queries(), 0u);
}

TEST(Session, EveryRegisteredAlgorithmRunsThroughTheFacade) {
  for (const auto& spec : algorithm_registry()) {
    RngStream rng(7);
    auto ch = group::ExactChannel::with_random_positives(32, 12, rng);
    ThresholdSession session(ch, ch.all_nodes(), rng);
    const auto out = session.tcast(8, spec.name);
    EXPECT_TRUE(out.decision) << spec.name;
  }
}

TEST(Session, TcastOnPacketTier) {
  std::vector<bool> truth(12, false);
  for (int i = 0; i < 5; ++i) truth[static_cast<std::size_t>(i)] = true;
  group::PacketChannel::Config cfg;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  group::PacketChannel ch(truth, cfg);
  RngStream rng(2);
  EngineOptions opts;
  opts.ordering = BinOrdering::kInOrder;
  ThresholdSession session(ch, ch.all_nodes(), rng, opts);
  EXPECT_TRUE(session.tcast(4).decision);
  EXPECT_FALSE(session.tcast(6).decision);
}

TEST(Session, ProbabilisticQuery) {
  RngStream rng(3);
  auto ch = group::ExactChannel::with_random_positives(128, 100, rng);
  ThresholdSession session(ch, ch.all_nodes(), rng);
  const auto out = session.probabilistic(16.0, 90.0, 11);
  EXPECT_TRUE(out.high_mode);
  EXPECT_EQ(out.queries, 11u);
}

TEST(Session, QueriesAccumulateAcrossCalls) {
  RngStream rng(4);
  auto ch = group::ExactChannel::with_random_positives(32, 10, rng);
  ThresholdSession session(ch, ch.all_nodes(), rng);
  session.tcast(4);
  const auto after_first = session.total_queries();
  session.tcast(4);
  EXPECT_GT(session.total_queries(), after_first);
}

TEST(SessionDeathTest, UnknownAlgorithmAborts) {
  RngStream rng(5);
  auto ch = group::ExactChannel::with_random_positives(8, 2, rng);
  ThresholdSession session(ch, ch.all_nodes(), rng);
  EXPECT_DEATH(session.tcast(2, "no-such-algo"), "unknown");
}

TEST(Session, ParticipantSubsetIsRespected) {
  // Query only the even nodes: the threshold is judged on that subset.
  RngStream rng(6);
  group::ExactChannel ch(
      {true, true, true, true, true, true, true, true}, rng);
  const std::vector<NodeId> evens = {0, 2, 4, 6};
  ThresholdSession session(ch, evens, rng);
  EXPECT_TRUE(session.tcast(4).decision);
  EXPECT_FALSE(session.tcast(5).decision);  // only 4 participants
}

}  // namespace
}  // namespace tcast::core
