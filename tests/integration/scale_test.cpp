// Scale and determinism: the library at RFID-fleet sizes, and the
// bit-reproducibility contract.
#include <gtest/gtest.h>

#include <chrono>

#include "analysis/bounds.hpp"
#include "common/stats.hpp"
#include "core/aggregate.hpp"
#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::ExactChannel;

TEST(Scale, SixtyFourThousandNodesStayWithinBounds) {
  constexpr std::size_t kN = 65536, kT = 128;
  for (const std::size_t x : {0u, 100u, 5000u, 65536u}) {
    RngStream rng(x + 1);
    auto ch = ExactChannel::with_random_positives(kN, x, rng);
    const auto out = run_two_t_bins(ch, ch.all_nodes(), kT, rng);
    EXPECT_EQ(out.decision, x >= kT) << "x=" << x;
    EXPECT_LE(static_cast<double>(out.queries),
              analysis::two_t_bins_upper_bound(kN, kT) +
                  2.0 * static_cast<double>(kT));
  }
}

TEST(Scale, SessionsCompleteQuicklyAtScale) {
  constexpr std::size_t kN = 65536;
  const auto start = std::chrono::steady_clock::now();
  RngStream rng(9);
  auto ch = ExactChannel::with_random_positives(kN, 1000, rng);
  const auto out = run_two_t_bins(ch, ch.all_nodes(), 256, rng);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(out.decision);
  // A 64k-node session is a few milliseconds of work; 2 s is a generous
  // regression tripwire.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(Scale, ExactCountAtScale) {
  RngStream rng(10);
  auto ch = ExactChannel::with_random_positives(16384, 37, rng);
  const auto out = run_exact_count(ch, ch.all_nodes(), rng);
  EXPECT_EQ(out.count, 37u);
}

TEST(Determinism, IdenticalSeedsGiveIdenticalSessions) {
  for (const auto& spec : algorithm_registry()) {
    ThresholdOutcome a, b;
    for (ThresholdOutcome* out : {&a, &b}) {
      RngStream rng(77, 5);
      auto ch = ExactChannel::with_random_positives(128, 20, rng);
      *out = spec.run(ch, ch.all_nodes(), 16, rng, EngineOptions{});
    }
    EXPECT_EQ(a.decision, b.decision) << spec.name;
    EXPECT_EQ(a.queries, b.queries) << spec.name;
    EXPECT_EQ(a.rounds, b.rounds) << spec.name;
  }
}

TEST(Determinism, DifferentSeedsVaryQueryCounts) {
  RunningStats queries;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    RngStream rng(seed);
    auto ch = ExactChannel::with_random_positives(128, 14, rng);
    queries.add(static_cast<double>(
        run_two_t_bins(ch, ch.all_nodes(), 16, rng).queries));
  }
  EXPECT_GT(queries.stddev(), 0.0);
}

}  // namespace
}  // namespace tcast::core
