// The paper's evaluation claims as regression tests.
//
// Each test asserts the *shape* a figure reports (who wins, where the
// crossovers sit) at reduced trial counts, so a change that silently breaks
// the science — not just the code — fails CI. EXPERIMENTS.md documents the
// same claims with full-trial numbers.
#include <gtest/gtest.h>

#include "analysis/bimodal.hpp"
#include "common/monte_carlo.hpp"
#include "core/abns.hpp"
#include "core/csma_baseline.hpp"
#include "core/oracle.hpp"
#include "core/probabilistic_abns.hpp"
#include "core/probabilistic_threshold.hpp"
#include "core/registry.hpp"
#include "core/sequential_baseline.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"

namespace tcast::core {
namespace {

using group::CollisionModel;
using group::ExactChannel;

constexpr std::size_t kN = 128, kT = 16;
constexpr std::size_t kTrials = 250;

double mean_queries(const char* algo, CollisionModel model, std::size_t x,
                    std::uint64_t id, std::size_t t = kT) {
  const auto* spec = find_algorithm(algo);
  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.experiment_id = id;
  return run_trials(mc, [&spec, model, x, t](RngStream& rng) {
           ExactChannel::Config cfg;
           cfg.model = model;
           auto ch = ExactChannel::with_random_positives(kN, x, rng, cfg);
           return static_cast<double>(
               spec->run(ch, ch.all_nodes(), t, rng, EngineOptions{})
                   .queries);
         })
      .mean();
}

TEST(Fig1Shape, TcastPeaksAtThresholdAndFlattensToT) {
  const double at_zero = mean_queries("2tbins", CollisionModel::kOnePlus, 0, 1);
  const double at_peak =
      mean_queries("2tbins", CollisionModel::kOnePlus, kT - 2, 2);
  const double at_large =
      mean_queries("2tbins", CollisionModel::kOnePlus, 96, 3);
  EXPECT_GT(at_peak, at_zero * 2);
  EXPECT_NEAR(at_large, static_cast<double>(kT), 0.5);
}

TEST(Fig1Shape, ExpIncreaseWinsSmallXLosesLargeX) {
  EXPECT_LT(mean_queries("expinc", CollisionModel::kOnePlus, 1, 4),
            mean_queries("2tbins", CollisionModel::kOnePlus, 1, 5));
  EXPECT_GT(mean_queries("expinc", CollisionModel::kOnePlus, 100, 6),
            mean_queries("2tbins", CollisionModel::kOnePlus, 100, 7));
}

TEST(Fig1Shape, CsmaScalesWithXAndCrossesTcast) {
  MonteCarloConfig mc;
  mc.trials = kTrials;
  const auto csma = [&mc](std::size_t x, std::uint64_t id) {
    mc.experiment_id = id;
    return run_trials(mc, [x](RngStream& rng) {
             return static_cast<double>(
                 run_csma_baseline(kN, x, kT, rng).outcome.queries);
           })
        .mean();
  };
  const double small = csma(2, 10);
  const double large = csma(100, 11);
  EXPECT_LT(small, mean_queries("2tbins", CollisionModel::kOnePlus, 2, 12));
  EXPECT_GT(large, 3 * mean_queries("2tbins", CollisionModel::kOnePlus, 100,
                                    13));
}

TEST(Fig1Shape, SequentialStartsNearNMinusX) {
  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.experiment_id = 14;
  const double at_small = run_trials(mc, [](RngStream& rng) {
                            return static_cast<double>(
                                run_sequential_baseline(kN, 2, kT, rng)
                                    .outcome.queries);
                          }).mean();
  EXPECT_GT(at_small, 100.0);
}

TEST(Fig2Shape, TwoPlusDominatesOnePlusWithPeakGapNearT) {
  double max_gap = 0.0;
  std::size_t argmax = 0;
  for (std::size_t x = 2; x <= 40; x += 4) {
    const double one =
        mean_queries("2tbins", CollisionModel::kOnePlus, x, 20 + x);
    const double two =
        mean_queries("2tbins", CollisionModel::kTwoPlus, x, 60 + x);
    EXPECT_LE(two, one * 1.05) << "x=" << x;  // 2+ never meaningfully worse
    if (one - two > max_gap) {
      max_gap = one - two;
      argmax = x;
    }
  }
  EXPECT_GE(argmax, 8u);   // the biggest win sits near x ≈ t
  EXPECT_LE(argmax, 24u);
}

TEST(Fig5Shape, TwoTBinsTracksOracleAboveHalfT) {
  for (const std::size_t x : {12u, 20u, 32u}) {
    const double tb = mean_queries("2tbins", CollisionModel::kOnePlus, x,
                                   100 + x);
    const double oracle = mean_queries("oracle", CollisionModel::kOnePlus, x,
                                       140 + x);
    EXPECT_LE(tb, oracle * 1.25) << "x=" << x;
  }
  // ...and the gap opens at small x.
  const double tb0 = mean_queries("2tbins", CollisionModel::kOnePlus, 0, 180);
  const double or0 = mean_queries("oracle", CollisionModel::kOnePlus, 0, 181);
  EXPECT_GT(tb0, or0 * 5);
}

TEST(Fig6Shape, ProbAbnsNearOracleAtBothEdges) {
  for (const std::size_t x : {0u, 2u, 20u, 48u}) {
    const double prob = mean_queries("prob-abns", CollisionModel::kOnePlus,
                                     x, 200 + x);
    const double oracle = mean_queries("oracle", CollisionModel::kOnePlus, x,
                                       260 + x);
    EXPECT_LE(prob, oracle + 0.35 * oracle + 8.0) << "x=" << x;
  }
}

TEST(Fig7Shape, ProbAbnsBeatsCsmaAboveThreshold) {
  constexpr std::size_t n = 32, t = 8;
  MonteCarloConfig mc;
  mc.trials = kTrials;
  for (const std::size_t x : {16u, 32u}) {
    mc.experiment_id = 300 + x;
    const double csma = run_trials(mc, [x, n, t](RngStream& rng) {
                          return static_cast<double>(
                              run_csma_baseline(n, x, t, rng)
                                  .outcome.queries);
                        }).mean();
    mc.experiment_id = 340 + x;
    const double prob = run_trials(mc, [x, n, t](RngStream& rng) {
                          auto ch =
                              ExactChannel::with_random_positives(n, x, rng);
                          return static_cast<double>(
                              run_probabilistic_abns(ch, ch.all_nodes(), t,
                                                     rng)
                                  .queries);
                        }).mean();
    EXPECT_LT(prob * 2, csma) << "x=" << x;
  }
}

TEST(Fig9Shape, AccuracyGrowsWithSeparationAndRepeats) {
  const auto accuracy = [](double d, std::size_t repeats, std::uint64_t id) {
    const auto dist = analysis::BimodalDistribution::symmetric(kN, d, 4.0);
    MonteCarloConfig mc;
    mc.trials = kTrials;
    mc.experiment_id = id;
    return run_bool_trials(mc, [&dist, repeats](RngStream& rng) {
             const auto sample = dist.sample(kN, rng);
             auto ch =
                 ExactChannel::with_random_positives(kN, sample.x, rng);
             ProbabilisticThresholdOptions popts;
             std::tie(popts.t_l, popts.t_r) = dist.decision_boundaries();
             popts.repeats = repeats;
             return run_probabilistic_threshold(ch, ch.all_nodes(), popts,
                                                rng)
                        .high_mode == sample.from_high_mode;
           })
        .value();
  };
  EXPECT_GE(accuracy(48.0, 9, 400), 0.9);   // paper: d > 32, r = 9 ⇒ ≥90%
  EXPECT_LE(accuracy(8.0, 9, 401), 0.8);    // paper: d ≈ 8 is hard
  EXPECT_GT(accuracy(24.0, 19, 402), accuracy(24.0, 1, 403));
}

}  // namespace
}  // namespace tcast::core
