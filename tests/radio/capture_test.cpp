#include "radio/capture.hpp"

#include <gtest/gtest.h>

namespace tcast::radio {
namespace {

TEST(GeometricCapture, LoneFrameAlwaysCaptures) {
  GeometricCaptureModel m(1.0, 0.5);
  RngStream rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto idx = m.captured_index(1, rng);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 0u);
  }
}

TEST(GeometricCapture, ClosedFormProbability) {
  GeometricCaptureModel m(0.8, 0.5);
  EXPECT_DOUBLE_EQ(m.capture_probability(1), 1.0);
  EXPECT_DOUBLE_EQ(m.capture_probability(2), 0.4);
  EXPECT_DOUBLE_EQ(m.capture_probability(3), 0.2);
}

TEST(GeometricCapture, EmpiricalRateMatchesClosedForm) {
  GeometricCaptureModel m(1.0, 0.5);
  RngStream rng(2);
  int captured = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (m.captured_index(3, rng)) ++captured;
  EXPECT_NEAR(static_cast<double>(captured) / trials,
              m.capture_probability(3), 0.02);
}

TEST(GeometricCapture, CapturedIndexIsUniform) {
  GeometricCaptureModel m(1.0, 1.0);  // always captures
  RngStream rng(3);
  int counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto idx = m.captured_index(4, rng);
    ASSERT_TRUE(idx.has_value());
    ++counts[*idx];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
}

TEST(GeometricCapture, ProbabilityDecreasesWithContenders) {
  GeometricCaptureModel m(1.0, 0.6);
  for (std::size_t k = 1; k < 10; ++k)
    EXPECT_GT(m.capture_probability(k), m.capture_probability(k + 1));
}

TEST(SinrCapture, LoneFrameAlwaysCaptures) {
  SinrCaptureModel m;
  RngStream rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(m.captured_index(1, rng));
}

TEST(SinrCapture, CaptureRateDecreasesWithContenders) {
  SinrCaptureModel m(3.0, 6.0);
  RngStream rng(5);
  const auto rate = [&](std::size_t k) {
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
      if (m.captured_index(k, rng)) ++hits;
    return static_cast<double>(hits) / 20000.0;
  };
  const double r2 = rate(2), r4 = rate(4), r8 = rate(8);
  EXPECT_GT(r2, r4);
  EXPECT_GT(r4, r8);
  EXPECT_GT(r2, 0.0);
}

TEST(SinrCapture, ZeroFadingNeverCapturesCollisions) {
  // Equal powers with no fading can never clear a 3 dB margin.
  SinrCaptureModel m(3.0, 0.0);
  RngStream rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.captured_index(2, rng));
}

TEST(NoCapture, OnlyLoneFrames) {
  NoCaptureModel m;
  RngStream rng(7);
  EXPECT_TRUE(m.captured_index(1, rng));
  for (std::size_t k = 2; k < 6; ++k)
    EXPECT_FALSE(m.captured_index(k, rng));
}

TEST(DefaultCaptureModel, IsUsable) {
  auto m = default_capture_model();
  RngStream rng(8);
  EXPECT_TRUE(m->captured_index(1, rng).has_value());
}

}  // namespace
}  // namespace tcast::radio
