#include "radio/hack_model.hpp"

#include <gtest/gtest.h>

namespace tcast::radio {
namespace {

TEST(HackModel, IdealNeverMisses) {
  const auto m = HackReceptionModel::ideal();
  RngStream rng(1);
  for (std::size_t k = 1; k <= 12; ++k) {
    EXPECT_EQ(m.miss_probability(k), 0.0);
    EXPECT_TRUE(m.decodes(k, rng));
  }
}

TEST(HackModel, MissProbabilityDecaysGeometrically) {
  HackReceptionModel m(0.04, 0.25);
  EXPECT_DOUBLE_EQ(m.miss_probability(1), 0.04);
  EXPECT_DOUBLE_EQ(m.miss_probability(2), 0.01);
  EXPECT_DOUBLE_EQ(m.miss_probability(3), 0.0025);
}

TEST(HackModel, SingleHackDominatesErrorBudget) {
  // The paper's observation: "majority of the false-negatives occur when the
  // queried group has only one positive node".
  HackReceptionModel m;  // calibrated defaults
  double tail = 0.0;
  for (std::size_t k = 2; k <= 12; ++k) tail += m.miss_probability(k);
  EXPECT_GT(m.miss_probability(1), tail);
}

TEST(HackModel, EmpiricalMissRate) {
  HackReceptionModel m(0.1, 0.5);
  RngStream rng(2);
  int missed = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    if (!m.decodes(2, rng)) ++missed;
  EXPECT_NEAR(static_cast<double>(missed) / trials, 0.05, 0.01);
}

TEST(HackModel, DefaultsAreThePaperCalibration) {
  HackReceptionModel m;
  EXPECT_NEAR(m.fn1(), 0.035, 1e-12);
  EXPECT_NEAR(m.beta(), 0.25, 1e-12);
}

}  // namespace
}  // namespace tcast::radio
