// Randomised property test of the collision-cluster channel: fire random
// transmission patterns from many radios and check the invariants that the
// RCD primitives rely on, against an independent overlap analysis.
#include <gtest/gtest.h>

#include <vector>

#include "radio/channel.hpp"
#include "radio/radio.hpp"
#include "sim/simulator.hpp"

namespace tcast::radio {
namespace {

struct Record {
  Frame frame;
  RxInfo info;
};

class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFuzz, DeliveryInvariantsHoldUnderRandomTraffic) {
  sim::Simulator sim(GetParam());
  ChannelConfig cfg;
  cfg.capture = std::make_shared<GeometricCaptureModel>(1.0, 0.5);
  Channel channel(sim, cfg);

  constexpr std::size_t kRadios = 6;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::vector<Record>> received(kRadios);
  std::vector<std::size_t> activities(kRadios, 0);
  for (std::size_t i = 0; i < kRadios; ++i) {
    radios.push_back(std::make_unique<Radio>(
        channel, static_cast<NodeId>(i), static_cast<ShortAddr>(100 + i)));
    radios.back()->power_on();
    radios.back()->set_auto_ack(false);
    radios.back()->set_receive_handler(
        [&received, i](const Frame& f, const RxInfo& info) {
          received[i].push_back({f, info});
        });
    radios.back()->set_activity_handler(
        [&activities, i](SimTime, SimTime) { ++activities[i]; });
  }

  // Independent record of what was put on the air, with intervals.
  struct AirFrame {
    std::size_t sender;
    SimTime start, end;
    std::uint8_t seq;
  };
  std::vector<AirFrame> air;

  RngStream rng(GetParam() * 7 + 1);
  std::uint8_t seq = 0;  // ≤ 240 frames per run keeps seq unique (uint8)
  for (int burst = 0; burst < 80; ++burst) {
    // Random gap, then 1-3 radios transmit at randomly staggered offsets.
    sim.run_until(sim.now() +
                  static_cast<SimTime>(rng.uniform_below(4000)) + 1);
    const auto senders = 1 + rng.uniform_below(3);
    for (std::uint64_t s = 0; s < senders; ++s) {
      const auto who = static_cast<std::size_t>(rng.uniform_below(kRadios));
      if (radios[who]->transmitting()) continue;
      Frame f;
      f.type = FrameType::kData;
      f.src = static_cast<ShortAddr>(100 + who);
      f.dest = kBroadcastAddr;
      f.seq = ++seq;
      f.data.resize(8 + rng.uniform_below(24));
      const SimTime start = sim.now();
      const SimTime end = start + channel.airtime(f);
      air.push_back({who, start, end, f.seq});
      radios[who]->transmit(std::move(f));
      // Maybe stagger the next overlapping sender.
      if (rng.bernoulli(0.5))
        sim.run_until(sim.now() +
                      static_cast<SimTime>(rng.uniform_below(300)));
    }
  }
  sim.run();

  // Invariant 1: every delivered frame was actually on the air, and its
  // receiver was not its sender.
  for (std::size_t r = 0; r < kRadios; ++r) {
    for (const auto& rec : received[r]) {
      const auto it = std::find_if(
          air.begin(), air.end(), [&rec](const AirFrame& a) {
            return a.seq == rec.frame.seq;
          });
      ASSERT_NE(it, air.end());
      EXPECT_NE(it->sender, r);
    }
  }

  // Invariant 2: a frame whose interval overlaps no other is delivered to
  // every other radio exactly once (clean channel, no loss configured),
  // with contenders == 1.
  for (const auto& a : air) {
    const bool isolated = std::none_of(
        air.begin(), air.end(), [&a](const AirFrame& b) {
          return &a != &b && a.start < b.end && b.start < a.end;
        });
    if (!isolated) continue;
    for (std::size_t r = 0; r < kRadios; ++r) {
      if (r == a.sender) continue;
      const auto copies = std::count_if(
          received[r].begin(), received[r].end(), [&a](const Record& rec) {
            return rec.frame.seq == a.seq;
          });
      EXPECT_EQ(copies, 1) << "radio " << r << " seq " << int{a.seq};
      const auto it = std::find_if(
          received[r].begin(), received[r].end(), [&a](const Record& rec) {
            return rec.frame.seq == a.seq;
          });
      if (it != received[r].end()) {
        EXPECT_EQ(it->info.contenders, 1u);
        EXPECT_FALSE(it->info.captured);
      }
    }
  }

  // Invariant 3: captured deliveries always report > 1 contenders.
  for (std::size_t r = 0; r < kRadios; ++r) {
    for (const auto& rec : received[r]) {
      if (rec.info.captured) {
        EXPECT_GT(rec.info.contenders, 1u);
      }
    }
  }

  // Invariant 4: activity indications are at least as frequent as
  // deliveries (every delivered cluster also announced energy).
  for (std::size_t r = 0; r < kRadios; ++r)
    EXPECT_GE(activities[r], received[r].size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz,
                         ::testing::Values(3, 7, 11, 19, 23, 31));

}  // namespace
}  // namespace tcast::radio
