// Interference source + the Sec. III-B robustness claims.
#include <gtest/gtest.h>

#include "group/packet_channel.hpp"
#include "radio/interference.hpp"

namespace tcast::radio {
namespace {

TEST(InterferenceSource, EmitsAtRoughlyTheConfiguredDuty) {
  sim::Simulator sim(1);
  Channel channel(sim, {});
  InterferenceSource::Config cfg;
  cfg.duty = 0.3;
  cfg.frame_bytes = 32;
  InterferenceSource source(channel, cfg);
  source.start();

  // Measure busy time with a listening observer radio.
  Radio observer(channel, 0, 1);
  observer.power_on();
  SimTime busy = 0;
  observer.set_activity_handler(
      [&busy](SimTime s, SimTime e) { busy += e - s; });
  const SimTime horizon = 10 * kSecond;
  sim.run_until(horizon);
  source.stop();
  EXPECT_GT(source.frames_emitted(), 100u);
  const double measured =
      static_cast<double>(busy) / static_cast<double>(horizon);
  EXPECT_NEAR(measured, 0.3, 0.06);
}

TEST(InterferenceSource, ZeroDutyStaysSilent) {
  sim::Simulator sim(1);
  Channel channel(sim, {});
  InterferenceSource source(channel, {.duty = 0.0});
  source.start();
  sim.run_until(kSecond);
  EXPECT_EQ(source.frames_emitted(), 0u);
}

TEST(InterferenceSource, StopHalts) {
  sim::Simulator sim(1);
  Channel channel(sim, {});
  InterferenceSource source(channel, {.duty = 0.2});
  source.start();
  sim.run_until(kSecond);
  source.stop();
  const auto emitted = source.frames_emitted();
  sim.run_until(2 * kSecond);
  EXPECT_EQ(source.frames_emitted(), emitted);
}

// --- The Sec. III-B claims, measured per-query on the packet tier ---

struct ErrorRates {
  double false_positive;  ///< empty neighbourhood read as non-empty
  double false_negative;  ///< positive neighbourhood read as silent
};

ErrorRates measure(group::RcdPrimitive primitive, double duty,
                   std::size_t positives, std::uint64_t seed) {
  constexpr std::size_t kNodes = 8;
  std::vector<bool> truth(kNodes, false);
  for (std::size_t i = 0; i < positives; ++i) truth[i] = true;
  group::PacketChannel::Config cfg;
  cfg.model = group::CollisionModel::kOnePlus;
  cfg.primitive = primitive;
  cfg.channel.hack = HackReceptionModel::ideal();
  cfg.interference_duty = duty;
  cfg.seed = seed;
  group::PacketChannel ch(truth, cfg);
  const auto nodes = ch.all_nodes();
  int fp = 0, fn = 0;
  const int queries = 300;
  for (int i = 0; i < queries; ++i) {
    const bool nonempty = ch.query_set(nodes).nonempty();
    if (positives == 0 && nonempty) ++fp;
    if (positives > 0 && !nonempty) ++fn;
  }
  return {static_cast<double>(fp) / queries,
          static_cast<double>(fn) / queries};
}

TEST(Interference, BackcastHasNoFalsePositives) {
  const auto rates = measure(group::RcdPrimitive::kBackcast, 0.3, 0, 7);
  EXPECT_EQ(rates.false_positive, 0.0);
}

TEST(Interference, PollcastSuffersFalsePositives) {
  // CCA-based RCD reads foreign energy in the vote window as a vote.
  const auto rates = measure(group::RcdPrimitive::kPollcast, 0.3, 0, 7);
  EXPECT_GT(rates.false_positive, 0.05);
}

TEST(Interference, BackcastFalseNegativesGrowWithDuty) {
  const auto calm = measure(group::RcdPrimitive::kBackcast, 0.0, 2, 9);
  const auto noisy = measure(group::RcdPrimitive::kBackcast, 0.4, 2, 9);
  EXPECT_EQ(calm.false_negative, 0.0);
  EXPECT_GT(noisy.false_negative, calm.false_negative);
}

TEST(Interference, NoInterferenceNoErrorsEitherPrimitive) {
  for (const auto primitive :
       {group::RcdPrimitive::kBackcast, group::RcdPrimitive::kPollcast}) {
    const auto empty = measure(primitive, 0.0, 0, 11);
    const auto full = measure(primitive, 0.0, 4, 11);
    EXPECT_EQ(empty.false_positive, 0.0);
    EXPECT_EQ(full.false_negative, 0.0);
  }
}

TEST(Interference, PacketChannelCountsForeignFrames) {
  group::PacketChannel::Config cfg;
  cfg.channel.hack = HackReceptionModel::ideal();
  cfg.interference_duty = 0.2;
  group::PacketChannel ch(std::vector<bool>(4, true), cfg);
  for (int i = 0; i < 50; ++i) ch.query_set(ch.all_nodes());
  EXPECT_GT(ch.interference_frames(), 0u);
}

}  // namespace
}  // namespace tcast::radio
