// Integration tests of Channel + Radio: delivery, collisions, HACK
// superposition, address recognition, auto-ack, CCA/activity, energy.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "radio/channel.hpp"
#include "radio/radio.hpp"
#include "sim/simulator.hpp"

namespace tcast::radio {
namespace {

struct World {
  explicit World(ChannelConfig cfg = {}, std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::move(cfg)) {}

  Radio& add(NodeId id, ShortAddr addr) {
    radios.push_back(std::make_unique<Radio>(channel, id, addr));
    radios.back()->power_on();
    return *radios.back();
  }

  sim::Simulator sim;
  Channel channel;
  std::vector<std::unique_ptr<Radio>> radios;
};

Frame data_frame(ShortAddr src, ShortAddr dest, std::size_t bytes = 8) {
  Frame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dest = dest;
  f.data.resize(bytes);
  return f;
}

TEST(ChannelRadio, CleanBroadcastReachesAllListeners) {
  World w;
  auto& tx = w.add(0, 10);
  auto& rx1 = w.add(1, 11);
  auto& rx2 = w.add(2, 12);
  int received = 0;
  const auto handler = [&received](const Frame& f, const RxInfo& info) {
    EXPECT_EQ(f.type, FrameType::kData);
    EXPECT_EQ(info.contenders, 1u);
    EXPECT_FALSE(info.captured);
    ++received;
  };
  rx1.set_receive_handler(handler);
  rx2.set_receive_handler(handler);
  tx.transmit(data_frame(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(received, 2);
}

TEST(ChannelRadio, SenderDoesNotHearItself) {
  World w;
  auto& tx = w.add(0, 10);
  w.add(1, 11);
  bool self_rx = false;
  tx.set_receive_handler([&](const Frame&, const RxInfo&) { self_rx = true; });
  tx.transmit(data_frame(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_FALSE(self_rx);
}

TEST(ChannelRadio, UnicastFilteredByAddress) {
  World w;
  auto& tx = w.add(0, 10);
  auto& hit = w.add(1, 11);
  auto& miss = w.add(2, 12);
  int hits = 0, misses = 0;
  hit.set_receive_handler([&](const Frame&, const RxInfo&) { ++hits; });
  miss.set_receive_handler([&](const Frame&, const RxInfo&) { ++misses; });
  tx.transmit(data_frame(10, 11));
  w.sim.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(misses, 0);
  EXPECT_EQ(miss.frames_received(), 0u);
}

TEST(ChannelRadio, AlternateAddressAccepts) {
  World w;
  auto& tx = w.add(0, 10);
  auto& rx = w.add(1, 11);
  rx.set_alt_address(0xE005);
  int got = 0;
  rx.set_receive_handler([&](const Frame&, const RxInfo&) { ++got; });
  tx.transmit(data_frame(10, 0xE005));
  w.sim.run();
  EXPECT_EQ(got, 1);
  rx.set_alt_address(std::nullopt);
  tx.transmit(data_frame(10, 0xE005));
  w.sim.run();
  EXPECT_EQ(got, 1);  // cleared: no longer accepted
}

TEST(ChannelRadio, SimultaneousDistinctFramesCollideWithoutCapture) {
  World w;  // default: NoCaptureModel
  auto& a = w.add(0, 10);
  auto& b = w.add(1, 11);
  auto& rx = w.add(2, 12);
  int received = 0;
  int activity = 0;
  rx.set_receive_handler([&](const Frame&, const RxInfo&) { ++received; });
  rx.set_activity_handler([&](SimTime, SimTime) { ++activity; });
  a.transmit(data_frame(10, kBroadcastAddr));
  b.transmit(data_frame(11, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(received, 0);  // destructive collision
  EXPECT_EQ(activity, 1);  // but energy was seen
}

TEST(ChannelRadio, CaptureModelCanRescueACollision) {
  ChannelConfig cfg;
  cfg.capture = std::make_shared<GeometricCaptureModel>(1.0, 1.0);  // always
  World w(cfg);
  auto& a = w.add(0, 10);
  auto& b = w.add(1, 11);
  auto& rx = w.add(2, 12);
  std::optional<RxInfo> info;
  rx.set_receive_handler(
      [&](const Frame&, const RxInfo& i) { info = i; });
  a.transmit(data_frame(10, kBroadcastAddr));
  b.transmit(data_frame(11, kBroadcastAddr));
  w.sim.run();
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->captured);
  EXPECT_EQ(info->contenders, 2u);
}

TEST(ChannelRadio, IdenticalHacksSuperposeNondestructively) {
  World w;
  auto& a = w.add(0, 10);
  auto& b = w.add(1, 11);
  auto& rx = w.add(2, 12);
  std::optional<RxInfo> info;
  rx.set_receive_handler([&](const Frame& f, const RxInfo& i) {
    EXPECT_EQ(f.type, FrameType::kHack);
    info = i;
  });
  Frame hack;
  hack.type = FrameType::kHack;
  hack.seq = 5;
  hack.dest = 12;
  a.transmit(hack);
  b.transmit(hack);
  w.sim.run();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->superposed, 2u);
}

TEST(ChannelRadio, HackFalseNegativeModelApplies) {
  ChannelConfig cfg;
  cfg.hack = HackReceptionModel(1.0, 1.0);  // always miss
  World w(cfg);
  auto& a = w.add(0, 10);
  auto& rx = w.add(1, 11);
  int received = 0, activity = 0;
  rx.set_receive_handler([&](const Frame&, const RxInfo&) { ++received; });
  rx.set_activity_handler([&](SimTime, SimTime) { ++activity; });
  Frame hack;
  hack.type = FrameType::kHack;
  hack.seq = 1;
  hack.dest = 11;
  a.transmit(hack);
  w.sim.run();
  EXPECT_EQ(received, 0);  // decode failed
  EXPECT_EQ(activity, 1);  // energy still present
}

TEST(ChannelRadio, AutoAckAfterOneTurnaround) {
  World w;
  auto& tx = w.add(0, 10);
  w.add(1, 11);
  std::optional<SimTime> hack_at;
  std::uint8_t hack_seq = 0;
  tx.set_receive_handler([&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kHack) {
      hack_at = w.sim.now();
      hack_seq = f.seq;
    }
  });
  Frame f = data_frame(10, 11);
  f.ack_request = true;
  f.seq = 42;
  const SimTime data_air = w.channel.airtime(f);
  Frame probe;
  probe.type = FrameType::kHack;
  const SimTime hack_air = w.channel.airtime(probe);
  tx.transmit(std::move(f));
  w.sim.run();
  ASSERT_TRUE(hack_at.has_value());
  EXPECT_EQ(hack_seq, 42);
  EXPECT_EQ(*hack_at, data_air + w.channel.phy().turnaround + hack_air);
}

TEST(ChannelRadio, NoAutoAckWithoutRequest) {
  World w;
  auto& tx = w.add(0, 10);
  w.add(1, 11);
  bool hacked = false;
  tx.set_receive_handler([&](const Frame& f, const RxInfo&) {
    hacked |= f.type == FrameType::kHack;
  });
  tx.transmit(data_frame(10, 11));  // ack_request defaults false
  w.sim.run();
  EXPECT_FALSE(hacked);
}

TEST(ChannelRadio, CcaSeesBusyChannel) {
  World w;
  auto& tx = w.add(0, 10);
  auto& other = w.add(1, 11);
  EXPECT_TRUE(other.cca_clear());
  tx.transmit(data_frame(10, kBroadcastAddr, 100));
  EXPECT_FALSE(other.cca_clear());
  w.sim.run();
  EXPECT_TRUE(other.cca_clear());
}

TEST(ChannelRadio, PoweredOffRadioReceivesNothing) {
  World w;
  auto& tx = w.add(0, 10);
  auto& rx = w.add(1, 11);
  int received = 0;
  rx.set_receive_handler([&](const Frame&, const RxInfo&) { ++received; });
  rx.power_off();
  tx.transmit(data_frame(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(received, 0);
}

TEST(ChannelRadio, CleanLossDropsFraction) {
  ChannelConfig cfg;
  cfg.clean_loss = 0.5;
  World w(cfg, 3);
  auto& tx = w.add(0, 10);
  auto& rx = w.add(1, 11);
  int received = 0;
  rx.set_receive_handler([&](const Frame&, const RxInfo&) { ++received; });
  const int sends = 2000;
  for (int i = 0; i < sends; ++i) {
    tx.transmit(data_frame(10, kBroadcastAddr));
    w.sim.run();
  }
  EXPECT_NEAR(static_cast<double>(received) / sends, 0.5, 0.05);
}

TEST(ChannelRadio, EnergyAccountsTxAndRxTime) {
  World w;
  auto& tx = w.add(0, 10);
  w.add(1, 11);
  Frame f = data_frame(10, kBroadcastAddr, 50);
  const SimTime air = w.channel.airtime(f);
  tx.transmit(std::move(f));
  w.sim.run();
  tx.energy().settle(w.sim.now());
  EXPECT_EQ(tx.energy().time_in(RadioState::kTx), air);
  EXPECT_GT(tx.energy().energy_mj(), 0.0);
}

TEST(ChannelRadio, HalfDuplexTransmitAborts) {
  World w;
  auto& tx = w.add(0, 10);
  w.add(1, 11);
  tx.transmit(data_frame(10, kBroadcastAddr, 100));
  EXPECT_DEATH(tx.transmit(data_frame(10, kBroadcastAddr)), "half-duplex");
}

TEST(ChannelRadio, ClusterCountTracksResolvedClusters) {
  World w;
  auto& a = w.add(0, 10);
  auto& b = w.add(1, 11);
  w.add(2, 12);
  a.transmit(data_frame(10, kBroadcastAddr));
  b.transmit(data_frame(11, kBroadcastAddr));  // same cluster
  w.sim.run();
  EXPECT_EQ(w.channel.clusters_resolved(), 1u);
  a.transmit(data_frame(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(w.channel.clusters_resolved(), 2u);
}

}  // namespace
}  // namespace tcast::radio
