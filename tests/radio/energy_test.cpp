#include "radio/energy.hpp"

#include <gtest/gtest.h>

namespace tcast::radio {
namespace {

TEST(EnergyMeter, AccumulatesTimePerState) {
  EnergyMeter meter;
  meter.transition(RadioState::kRx, 0);
  meter.transition(RadioState::kTx, 100);
  meter.transition(RadioState::kRx, 150);
  meter.transition(RadioState::kOff, 400);
  meter.settle(1000);
  EXPECT_EQ(meter.time_in(RadioState::kRx), 100 + 250);
  EXPECT_EQ(meter.time_in(RadioState::kTx), 50);
  EXPECT_EQ(meter.time_in(RadioState::kOff), 600);
}

TEST(EnergyMeter, ChargeUsesConfiguredCurrents) {
  EnergyConfig cfg;
  cfg.rx_ma = 10.0;
  cfg.tx_ma = 20.0;
  cfg.off_ma = 0.0;
  cfg.voltage = 3.0;
  EnergyMeter meter(cfg);
  meter.transition(RadioState::kRx, 0);
  meter.transition(RadioState::kTx, kSecond);  // 1 s RX
  meter.settle(2 * kSecond);                   // 1 s TX
  EXPECT_DOUBLE_EQ(meter.charge_mc(), 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(meter.energy_mj(), 3.0 * 30.0);
}

TEST(EnergyMeter, SettleIsIdempotent) {
  EnergyMeter meter;
  meter.transition(RadioState::kRx, 0);
  meter.settle(500);
  meter.settle(500);
  EXPECT_EQ(meter.time_in(RadioState::kRx), 500);
}

TEST(EnergyMeter, ListeningDominatesIdleBudget) {
  // The motivation for fewer queries: an always-listening radio burns
  // orders of magnitude more than a sleeping one.
  EnergyMeter listening, sleeping;
  listening.transition(RadioState::kRx, 0);
  sleeping.transition(RadioState::kOff, 0);
  listening.settle(10 * kSecond);
  sleeping.settle(10 * kSecond);
  EXPECT_GT(listening.energy_mj(), 1000.0 * sleeping.energy_mj());
}

TEST(EnergyMeterDeathTest, TimeCannotGoBackwards) {
  EnergyMeter meter;
  meter.transition(RadioState::kRx, 100);
  EXPECT_DEATH(meter.transition(RadioState::kTx, 50), "backwards");
}

}  // namespace
}  // namespace tcast::radio
