// Spatial (finite-range) channel: unit-disk reception, per-receiver
// collisions, hidden terminals, and neighbouring-region asymmetries.
#include <gtest/gtest.h>

#include "mac/csma.hpp"
#include "radio/channel.hpp"
#include "radio/radio.hpp"
#include "rcd/backcast.hpp"
#include "rcd/pollcast.hpp"
#include "sim/simulator.hpp"

namespace tcast::radio {
namespace {

Frame data(ShortAddr src, ShortAddr dest, std::size_t bytes = 8) {
  Frame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dest = dest;
  f.data.resize(bytes);
  return f;
}

struct SpatialWorld {
  explicit SpatialWorld(double range, std::uint64_t seed = 1)
      : sim(seed), channel(sim, make_cfg(range)) {}

  static ChannelConfig make_cfg(double range) {
    ChannelConfig cfg;
    cfg.range = range;
    return cfg;
  }

  Radio& add(NodeId id, ShortAddr addr, double x, double y) {
    radios.push_back(std::make_unique<Radio>(channel, id, addr));
    radios.back()->set_position(x, y);
    radios.back()->power_on();
    return *radios.back();
  }

  sim::Simulator sim;
  Channel channel;
  std::vector<std::unique_ptr<Radio>> radios;
};

TEST(Spatial, OutOfRangeReceiverHearsNothing) {
  SpatialWorld w(10.0);
  auto& tx = w.add(0, 10, 0, 0);
  auto& near = w.add(1, 11, 5, 0);
  auto& far = w.add(2, 12, 50, 0);
  int near_rx = 0, far_rx = 0, far_activity = 0;
  near.set_receive_handler([&](const Frame&, const RxInfo&) { ++near_rx; });
  far.set_receive_handler([&](const Frame&, const RxInfo&) { ++far_rx; });
  far.set_activity_handler([&](SimTime, SimTime) { ++far_activity; });
  tx.transmit(data(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(near_rx, 1);
  EXPECT_EQ(far_rx, 0);
  EXPECT_EQ(far_activity, 0);  // not even energy
}

TEST(Spatial, RangeBoundaryIsInclusive) {
  SpatialWorld w(10.0);
  auto& tx = w.add(0, 10, 0, 0);
  auto& edge = w.add(1, 11, 10.0, 0);  // exactly at range
  int rx = 0;
  edge.set_receive_handler([&](const Frame&, const RxInfo&) { ++rx; });
  tx.transmit(data(10, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(rx, 1);
}

TEST(Spatial, CcaIsLocal) {
  SpatialWorld w(10.0);
  auto& tx = w.add(0, 10, 0, 0);
  auto& near = w.add(1, 11, 5, 0);
  auto& far = w.add(2, 12, 100, 0);
  tx.transmit(data(10, kBroadcastAddr, 64));
  EXPECT_FALSE(near.cca_clear());  // hears the transmission
  EXPECT_TRUE(far.cca_clear());    // idle over there
  EXPECT_TRUE(w.channel.busy());   // global view still busy
  w.sim.run();
  EXPECT_TRUE(near.cca_clear());
}

TEST(Spatial, HiddenTerminalCollisionAtTheMiddle) {
  // A(0) --- R(10) --- B(20), range 12: A and B cannot hear each other but
  // both reach R. Simultaneous sends collide at R although each sender's
  // CCA was clear — the paper's hidden-terminal argument against CSMA.
  SpatialWorld w(12.0);
  auto& a = w.add(0, 10, 0, 0);
  auto& r = w.add(1, 11, 10, 0);
  auto& b = w.add(2, 12, 20, 0);
  int received = 0, activity = 0;
  r.set_receive_handler([&](const Frame&, const RxInfo&) { ++received; });
  r.set_activity_handler([&](SimTime, SimTime) { ++activity; });
  EXPECT_TRUE(a.cca_clear());
  EXPECT_TRUE(b.cca_clear());
  a.transmit(data(10, kBroadcastAddr));
  EXPECT_TRUE(b.cca_clear());  // A is hidden from B
  b.transmit(data(12, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(received, 0);  // destroyed at R
  EXPECT_EQ(activity, 1);
}

TEST(Spatial, DisjointCellsDeliverIndependently) {
  // Two far-apart pairs transmit simultaneously; both receivers decode —
  // spatial reuse that the single-collision-domain model cannot express.
  SpatialWorld w(10.0);
  auto& tx1 = w.add(0, 10, 0, 0);
  auto& rx1 = w.add(1, 11, 5, 0);
  auto& tx2 = w.add(2, 12, 1000, 0);
  auto& rx2 = w.add(3, 13, 1005, 0);
  int got1 = 0, got2 = 0;
  rx1.set_receive_handler([&](const Frame& f, const RxInfo& i) {
    EXPECT_EQ(f.src, 10);
    EXPECT_EQ(i.contenders, 1u);
    ++got1;
  });
  rx2.set_receive_handler([&](const Frame& f, const RxInfo& i) {
    EXPECT_EQ(f.src, 12);
    EXPECT_EQ(i.contenders, 1u);
    ++got2;
  });
  tx1.transmit(data(10, kBroadcastAddr));
  tx2.transmit(data(12, kBroadcastAddr));
  w.sim.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
}

TEST(Spatial, CsmaHiddenTerminalsCollideMoreThanExposedOnes) {
  // Statistical version with the CSMA MAC: hidden senders lose far more
  // frames at the shared receiver than mutually-audible senders do.
  const auto loss_rate = [](double separation) {
    SpatialWorld w(12.0, 42);
    auto& a = w.add(0, 10, 0, 0);
    auto& r = w.add(1, 11, separation / 2, 0);
    auto& b = w.add(2, 12, separation, 0);
    (void)r;
    int received = 0;
    w.radios[1]->set_receive_handler(
        [&](const Frame&, const RxInfo&) { ++received; });
    mac::CsmaMac ma(a), mb(b);
    const int rounds = 200;
    for (int i = 0; i < rounds; ++i) {
      ma.send(data(10, kBroadcastAddr));
      mb.send(data(12, kBroadcastAddr));
      w.sim.run();
    }
    return 1.0 - static_cast<double>(received) / (2.0 * rounds);
  };
  const double exposed = loss_rate(8.0);   // A and B hear each other
  const double hidden = loss_rate(20.0);   // A and B mutually hidden
  EXPECT_GT(hidden, exposed + 0.1);
}

TEST(Spatial, NeighbourRegionJamsRespondersNotInitiator) {
  // Foreign transmitter audible to the responder but NOT to the initiator:
  // pollcast's initiator-side CCA shows no false positive, yet the
  // responder can miss the poll — an asymmetry only a spatial model shows.
  SpatialWorld w(12.0, 7);
  auto& init_radio = w.add(kNoNode, rcd::kInitiatorAddr, 0, 0);
  auto& resp_radio = w.add(0, rcd::participant_addr(0), 10, 0);
  auto& jammer = w.add(kNoNode, 0xBEEF, 21, 0);  // hears/reaches resp only
  jammer.set_auto_ack(false);

  rcd::PollcastInitiator initiator(init_radio);
  bool resp_positive = true;
  rcd::PollcastResponder responder(
      resp_radio, [&resp_positive](std::uint8_t) { return resp_positive; });
  init_radio.set_receive_handler(
      [&](const Frame& f, const RxInfo& i) { initiator.on_frame(f, i); });
  init_radio.set_activity_handler(
      [&](SimTime s, SimTime e) { initiator.on_activity(s, e); });
  resp_radio.set_receive_handler(
      [&](const Frame& f, const RxInfo&) { responder.on_frame(f); });

  // Announce cleanly (jammer quiet), then poll while the jammer talks over
  // the responder's reception.
  bool announced = false;
  initiator.announce(1, 1, {0}, [&] { announced = true; });
  w.sim.run();
  ASSERT_TRUE(announced);

  // Jam continuously: long back-to-back foreign frames at the responder.
  for (int i = 0; i < 40; ++i) {
    w.sim.schedule_at(w.sim.now() + i * 2000, [&jammer] {
      if (!jammer.transmitting()) {
        Frame f;
        f.type = FrameType::kData;
        f.src = 0xBEEF;
        f.dest = 0xBEEF;
        f.data.resize(60);
        jammer.transmit(std::move(f));
      }
    });
  }
  bool got_result = false;
  rcd::PollcastInitiator::PollResult result;
  initiator.poll_bin(0, [&](rcd::PollcastInitiator::PollResult r) {
    result = r;
    got_result = true;
  });
  w.sim.run();
  ASSERT_TRUE(got_result);
  // The responder's poll reception collided with the jammer: no reply, and
  // since the jammer is out of the initiator's earshot, no energy either —
  // a clean false NEGATIVE with no false-positive pathway.
  EXPECT_FALSE(result.activity);
}

}  // namespace
}  // namespace tcast::radio
