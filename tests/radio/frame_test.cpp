#include "radio/frame.hpp"

#include <gtest/gtest.h>

namespace tcast::radio {
namespace {

TEST(Frame, HackAirBytesAreFixed) {
  Frame hack;
  hack.type = FrameType::kHack;
  // 4 preamble + 1 SFD + 1 LEN + 5 MPDU = 11 bytes, the 802.15.4 ACK PPDU.
  EXPECT_EQ(hack.air_bytes(), 11u);
}

TEST(Frame, DataPayloadGrowsAirtime) {
  Frame a, b;
  a.type = b.type = FrameType::kData;
  b.data.resize(40);
  EXPECT_EQ(b.air_bytes(), a.air_bytes() + 40);
}

TEST(Frame, PredicatePacksTwoNodesPerByte) {
  Frame f;
  f.type = FrameType::kPredicate;
  f.assignment.resize(12);
  const auto with12 = f.air_bytes();
  f.assignment.resize(13);
  EXPECT_EQ(f.air_bytes(), with12 + 1);  // 13 nodes need one more half-byte
  f.assignment.resize(14);
  EXPECT_EQ(f.air_bytes(), with12 + 1);  // 14 fits in the same extra byte
}

TEST(Frame, PollIsSmall) {
  Frame f;
  f.type = FrameType::kPoll;
  EXPECT_LE(f.air_bytes(), 32u);
}

TEST(Frame, HacksIdenticalRequiresSameSeq) {
  Frame a, b;
  a.type = b.type = FrameType::kHack;
  a.seq = b.seq = 9;
  EXPECT_TRUE(hacks_identical(a, b));
  b.seq = 10;
  EXPECT_FALSE(hacks_identical(a, b));
}

TEST(Frame, NonHacksNeverIdentical) {
  Frame a, b;
  a.type = FrameType::kReply;
  b.type = FrameType::kReply;
  a.seq = b.seq = 3;
  EXPECT_FALSE(hacks_identical(a, b));
}

TEST(Frame, MakeHackMirrorsSeqAndTargetsSender) {
  Frame f;
  f.type = FrameType::kPoll;
  f.seq = 77;
  f.src = 0x1234;
  const Frame hack = make_hack(f);
  EXPECT_EQ(hack.type, FrameType::kHack);
  EXPECT_EQ(hack.seq, 77);
  EXPECT_EQ(hack.dest, 0x1234);
}

TEST(Frame, ToStringMentionsTypeAndFlags) {
  Frame f;
  f.type = FrameType::kPoll;
  f.ack_request = true;
  const auto s = f.to_string();
  EXPECT_NE(s.find("POLL"), std::string::npos);
  EXPECT_NE(s.find("AR"), std::string::npos);
}

}  // namespace
}  // namespace tcast::radio
