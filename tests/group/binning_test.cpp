#include "group/binning.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "rcd/addressing.hpp"

namespace tcast::group {
namespace {

std::vector<NodeId> iota_nodes(std::size_t n) {
  std::vector<NodeId> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = static_cast<NodeId>(i);
  return nodes;
}

/// Property suite over (n, b): both partition schemes produce a partition —
/// every node in exactly one bin, sizes differ by at most one.
class PartitionTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionTest, RandomEqualIsBalancedPartition) {
  const auto [n, b] = GetParam();
  RngStream rng(n * 7919 + b);
  const auto nodes = iota_nodes(n);
  const auto a = BinAssignment::random_equal(nodes, b, rng);
  ASSERT_EQ(a.bin_count(), b);
  std::multiset<NodeId> seen;
  std::size_t min_size = n + 1, max_size = 0;
  for (std::size_t i = 0; i < b; ++i) {
    const auto bin = a.bin(i);
    seen.insert(bin.begin(), bin.end());
    min_size = std::min(min_size, bin.size());
    max_size = std::max(max_size, bin.size());
  }
  EXPECT_EQ(seen.size(), n);
  EXPECT_EQ(std::set<NodeId>(seen.begin(), seen.end()).size(), n);
  if (n > 0) {
    EXPECT_LE(max_size - min_size, 1u);
  }
  EXPECT_EQ(a.total_assigned(), n);
}

TEST_P(PartitionTest, ContiguousIsBalancedPartition) {
  const auto [n, b] = GetParam();
  const auto nodes = iota_nodes(n);
  const auto a = BinAssignment::contiguous(nodes, b);
  ASSERT_EQ(a.bin_count(), b);
  std::vector<NodeId> flattened;
  for (std::size_t i = 0; i < b; ++i) {
    const auto bin = a.bin(i);
    flattened.insert(flattened.end(), bin.begin(), bin.end());
    if (!bin.empty()) {
      EXPECT_TRUE(std::is_sorted(bin.begin(), bin.end()));
    }
  }
  EXPECT_EQ(flattened, nodes);  // contiguous preserves order exactly
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 5, 12, 100, 128),
                       ::testing::Values<std::size_t>(1, 2, 7, 32)));

TEST(Binning, RandomEqualVariesAcrossDraws) {
  RngStream rng(5);
  const auto nodes = iota_nodes(64);
  const auto a = BinAssignment::random_equal(nodes, 8, rng);
  const auto b = BinAssignment::random_equal(nodes, 8, rng);
  bool any_diff = false;
  for (std::size_t i = 0; i < 8 && !any_diff; ++i) {
    const auto ba = a.bin(i), bb = b.bin(i);
    any_diff = !std::equal(ba.begin(), ba.end(), bb.begin(), bb.end());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Binning, SampledInclusionRate) {
  RngStream rng(6);
  const auto nodes = iota_nodes(1000);
  double total = 0;
  const int draws = 200;
  for (int i = 0; i < draws; ++i)
    total += static_cast<double>(
        BinAssignment::sampled(nodes, 0.25, rng).bin(0).size());
  EXPECT_NEAR(total / draws / 1000.0, 0.25, 0.02);
}

TEST(Binning, SampledDegenerateProbabilities) {
  RngStream rng(7);
  const auto nodes = iota_nodes(10);
  EXPECT_EQ(BinAssignment::sampled(nodes, 0.0, rng).bin(0).size(), 0u);
  EXPECT_EQ(BinAssignment::sampled(nodes, 1.0, rng).bin(0).size(), 10u);
}

TEST(Binning, WireRoundTrip) {
  RngStream rng(8);
  const auto nodes = iota_nodes(10);
  const auto a = BinAssignment::random_equal(nodes, 3, rng);
  const auto wire = a.to_wire(12);  // universe larger than assigned set
  ASSERT_EQ(wire.size(), 12u);
  EXPECT_EQ(wire[10], rcd::kNotInRound);
  EXPECT_EQ(wire[11], rcd::kNotInRound);
  for (std::size_t bin = 0; bin < 3; ++bin)
    for (const NodeId id : a.bin(bin))
      EXPECT_EQ(wire[static_cast<std::size_t>(id)], bin);
}

TEST(Binning, WireMarksUnassignedNodes) {
  RngStream rng(9);
  const std::vector<NodeId> nodes = {2, 5, 7};
  const auto a = BinAssignment::random_equal(nodes, 2, rng);
  const auto wire = a.to_wire(8);
  std::size_t assigned = 0;
  for (const auto v : wire)
    if (v != rcd::kNotInRound) ++assigned;
  EXPECT_EQ(assigned, 3u);
  EXPECT_EQ(wire[0], rcd::kNotInRound);
}

}  // namespace
}  // namespace tcast::group
