// PacketChannel: the packet tier must agree with the abstract tier.
#include <gtest/gtest.h>

#include <tuple>

#include "core/registry.hpp"
#include "core/two_t_bins.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"

namespace tcast::group {
namespace {

std::vector<bool> random_truth(std::size_t n, std::size_t x,
                               std::uint64_t seed) {
  RngStream rng(seed);
  std::vector<bool> positive(n, false);
  for (const NodeId id : rng.sample_subset(n, x))
    positive[static_cast<std::size_t>(id)] = true;
  return positive;
}

PacketChannel::Config ideal_config(CollisionModel model) {
  PacketChannel::Config cfg;
  cfg.model = model;
  cfg.channel.hack = radio::HackReceptionModel::ideal();
  return cfg;
}

TEST(PacketChannel, OnePlusSemanticsMatchGroundTruth) {
  const auto truth = random_truth(8, 3, 1);
  PacketChannel ch(truth, ideal_config(CollisionModel::kOnePlus));
  // Query singletons: result must equal the node's truth.
  for (NodeId id = 0; id < 8; ++id) {
    const std::vector<NodeId> bin = {id};
    EXPECT_EQ(ch.query_set(bin).nonempty(),
              truth[static_cast<std::size_t>(id)])
        << "node " << id;
  }
  // Whole-set query: non-empty since x = 3.
  EXPECT_TRUE(ch.query_set(ch.all_nodes()).nonempty());
}

TEST(PacketChannel, TwoPlusCapturesLoneReplyIdentity) {
  std::vector<bool> truth(6, false);
  truth[4] = true;
  auto cfg = ideal_config(CollisionModel::kTwoPlus);
  PacketChannel ch(truth, cfg);
  const auto r = ch.query_set(ch.all_nodes());
  ASSERT_EQ(r.kind, BinQueryResult::Kind::kCaptured);
  EXPECT_EQ(r.captured, NodeId{4});
}

TEST(PacketChannel, TwoPlusCollisionIsActivity) {
  std::vector<bool> truth(6, true);
  auto cfg = ideal_config(CollisionModel::kTwoPlus);  // NoCapture by default
  PacketChannel ch(truth, cfg);
  const auto r = ch.query_set(ch.all_nodes());
  EXPECT_EQ(r.kind, BinQueryResult::Kind::kActivity);
}

TEST(PacketChannel, SimTimeAdvancesWithQueries) {
  PacketChannel ch(random_truth(8, 4, 2),
                   ideal_config(CollisionModel::kOnePlus));
  const auto before = ch.elapsed();
  ch.query_set(ch.all_nodes());
  EXPECT_GT(ch.elapsed(), before);
}

TEST(PacketChannel, EnergyIsAccumulated) {
  PacketChannel ch(random_truth(8, 4, 3),
                   ideal_config(CollisionModel::kOnePlus));
  ch.query_set(ch.all_nodes());
  EXPECT_GT(ch.initiator_energy_mj(), 0.0);
  EXPECT_GT(ch.participant_energy_mj(0), 0.0);
}

/// The flagship integration property: 2tBins run on the ideal packet tier
/// answers every instance exactly like the abstract tier does.
class PacketEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PacketEquivalenceTest, TwoTBinsAgreesWithGroundTruth) {
  const auto [x, t] = GetParam();
  const std::size_t n = 12;
  const auto truth = random_truth(n, x, 40 + x * 7 + t);
  PacketChannel ch(truth, ideal_config(CollisionModel::kOnePlus));
  RngStream rng(99 + x + t);
  core::EngineOptions opts;
  opts.ordering = core::BinOrdering::kInOrder;  // no oracle on packets
  const auto out = core::run_two_t_bins(ch, ch.all_nodes(), t, rng, opts);
  EXPECT_EQ(out.decision, x >= t) << "x=" << x << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PacketEquivalenceTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 3, 6, 9, 12),
                       ::testing::Values<std::size_t>(1, 2, 4, 6)));

TEST(PacketChannel, FalseNegativesAppearWithRadioIrregularity) {
  PacketChannel::Config cfg;
  cfg.model = CollisionModel::kOnePlus;
  cfg.channel.hack = radio::HackReceptionModel(1.0, 1.0);  // always miss
  std::vector<bool> truth(4, true);
  PacketChannel ch(truth, cfg);
  EXPECT_FALSE(ch.query_set(ch.all_nodes()).nonempty());  // false negative
}

TEST(PacketChannel, AnnounceIsFreeQueriesAreCounted) {
  PacketChannel ch(random_truth(8, 2, 5),
                   ideal_config(CollisionModel::kOnePlus));
  RngStream rng(1);
  const auto assignment =
      BinAssignment::random_equal(ch.all_nodes(), 4, rng);
  ch.announce(assignment);
  EXPECT_EQ(ch.queries_used(), 0u);
  ch.query_bin(assignment, 0);
  ch.query_bin(assignment, 1);
  EXPECT_EQ(ch.queries_used(), 2u);
}

TEST(PacketChannel, NoOracleOnThePacketTier) {
  PacketChannel ch(random_truth(8, 2, 6),
                   ideal_config(CollisionModel::kOnePlus));
  EXPECT_FALSE(ch.oracle_positive_count(ch.all_nodes()).has_value());
}

}  // namespace
}  // namespace tcast::group
