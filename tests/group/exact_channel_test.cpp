#include "group/exact_channel.hpp"

#include <gtest/gtest.h>

#include "group/instrumented_channel.hpp"

namespace tcast::group {
namespace {

std::vector<NodeId> ids(std::initializer_list<NodeId> list) { return list; }

TEST(ExactChannel, OnePlusSemantics) {
  RngStream rng(1);
  ExactChannel ch({false, true, true, false}, rng);
  EXPECT_EQ(ch.query_set(ids({0, 3})).kind, BinQueryResult::Kind::kEmpty);
  EXPECT_EQ(ch.query_set(ids({0, 1})).kind, BinQueryResult::Kind::kActivity);
  EXPECT_EQ(ch.query_set(ids({1, 2})).kind, BinQueryResult::Kind::kActivity);
  EXPECT_EQ(ch.queries_used(), 3u);
}

TEST(ExactChannel, TwoPlusLoneReplyAlwaysCaptured) {
  RngStream rng(2);
  ExactChannel::Config cfg;
  cfg.model = CollisionModel::kTwoPlus;
  ExactChannel ch({false, true, false}, rng, cfg);
  for (int i = 0; i < 20; ++i) {
    const auto r = ch.query_set(ids({0, 1, 2}));
    ASSERT_EQ(r.kind, BinQueryResult::Kind::kCaptured);
    EXPECT_EQ(r.captured, NodeId{1});
  }
}

TEST(ExactChannel, TwoPlusCollisionCaptureRate) {
  RngStream rng(3);
  ExactChannel::Config cfg;
  cfg.model = CollisionModel::kTwoPlus;
  cfg.capture = std::make_shared<radio::GeometricCaptureModel>(1.0, 0.5);
  ExactChannel ch({true, true}, rng, cfg);
  int captured = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto r = ch.query_set(ids({0, 1}));
    if (r.kind == BinQueryResult::Kind::kCaptured) {
      ++captured;
      EXPECT_TRUE(r.captured == 0u || r.captured == 1u);
    } else {
      EXPECT_EQ(r.kind, BinQueryResult::Kind::kActivity);
    }
  }
  EXPECT_NEAR(static_cast<double>(captured) / trials, 0.5, 0.02);
}

TEST(ExactChannel, OnePlusNeverCaptures) {
  RngStream rng(4);
  ExactChannel ch({true, true, true}, rng);
  for (int i = 0; i < 50; ++i)
    EXPECT_NE(ch.query_set(ids({0, 1, 2})).kind,
              BinQueryResult::Kind::kCaptured);
}

TEST(ExactChannel, OracleCountsExactly) {
  RngStream rng(5);
  ExactChannel ch({true, false, true, true, false}, rng);
  EXPECT_EQ(ch.oracle_positive_count(ids({0, 1})), 1u);
  EXPECT_EQ(ch.oracle_positive_count(ids({1, 4})), 0u);
  EXPECT_EQ(ch.oracle_positive_count(ids({0, 2, 3})), 3u);
  EXPECT_EQ(ch.positive_count(), 3u);
}

TEST(ExactChannel, WithRandomPositivesHasExactCount) {
  RngStream rng(6);
  for (std::size_t x : {0u, 1u, 7u, 32u}) {
    auto ch = ExactChannel::with_random_positives(32, x, rng);
    EXPECT_EQ(ch.positive_count(), x);
    EXPECT_EQ(ch.participant_count(), 32u);
    EXPECT_EQ(ch.oracle_positive_count(ch.all_nodes()), x);
  }
}

TEST(ExactChannel, SetPositiveUpdatesCount) {
  RngStream rng(7);
  ExactChannel ch({false, false}, rng);
  ch.set_positive(0, true);
  EXPECT_EQ(ch.positive_count(), 1u);
  ch.set_positive(0, true);  // idempotent
  EXPECT_EQ(ch.positive_count(), 1u);
  ch.set_positive(0, false);
  EXPECT_EQ(ch.positive_count(), 0u);
}

TEST(ExactChannel, EmptySetQueryIsEmpty) {
  RngStream rng(8);
  ExactChannel ch({true}, rng);
  EXPECT_EQ(ch.query_set({}).kind, BinQueryResult::Kind::kEmpty);
}

TEST(ExactChannel, QueryCounterResets) {
  RngStream rng(9);
  ExactChannel ch({true}, rng);
  ch.query_set(ids({0}));
  ch.reset_query_counter();
  EXPECT_EQ(ch.queries_used(), 0u);
}

TEST(InstrumentedChannel, RecordsTranscriptWithGroundTruth) {
  RngStream rng(10);
  ExactChannel inner({true, false, true}, rng);
  InstrumentedChannel ch(inner);
  ch.query_set(ids({0, 1}));
  ch.query_set(ids({1}));
  ASSERT_EQ(ch.transcript().size(), 2u);
  EXPECT_EQ(ch.transcript()[0].true_positives, 1u);
  EXPECT_TRUE(ch.transcript()[0].result.nonempty());
  EXPECT_EQ(ch.transcript()[1].true_positives, 0u);
  EXPECT_FALSE(ch.transcript()[1].result.nonempty());
  EXPECT_EQ(ch.queries_used(), 2u);
}

TEST(InstrumentedChannel, ForwardsModelAndOracle) {
  RngStream rng(11);
  ExactChannel::Config cfg;
  cfg.model = CollisionModel::kTwoPlus;
  ExactChannel inner({true}, rng, cfg);
  InstrumentedChannel ch(inner);
  EXPECT_EQ(ch.model(), CollisionModel::kTwoPlus);
  EXPECT_EQ(ch.oracle_positive_count(ids({0})), 1u);
}

TEST(BinQueryResultFactories, BehaveAsNamed) {
  EXPECT_FALSE(BinQueryResult::empty().nonempty());
  EXPECT_TRUE(BinQueryResult::activity().nonempty());
  const auto c = BinQueryResult::captured_node(5);
  EXPECT_TRUE(c.nonempty());
  EXPECT_EQ(c.captured, 5u);
}

}  // namespace
}  // namespace tcast::group
