#include "mac/csma_feedback.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/monte_carlo.hpp"

namespace tcast::mac {
namespace {

TEST(CsmaFeedback, ZeroPositivesCostsOnlyQuiescence) {
  RngStream rng(1);
  CsmaFeedbackConfig cfg;
  const auto r = run_csma_feedback(64, 0, 8, rng, cfg);
  EXPECT_FALSE(r.decision);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.slots, cfg.quiescence_slots);
  EXPECT_EQ(r.successes, 0u);
}

TEST(CsmaFeedback, ThresholdReachedStopsAtTSuccesses) {
  RngStream rng(2);
  const auto r = run_csma_feedback(64, 40, 8, rng);
  EXPECT_TRUE(r.decision);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.successes, 8u);
}

TEST(CsmaFeedback, SinglePositiveBelowThreshold) {
  RngStream rng(3);
  const auto r = run_csma_feedback(64, 1, 8, rng);
  EXPECT_FALSE(r.decision);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.successes, 1u);
}

TEST(CsmaFeedback, CostGrowsWithPositives) {
  // Average slots must grow (roughly linearly) in x — the paper's core
  // argument against CSMA for large x.
  const auto mean_slots = [](std::size_t x) {
    MonteCarloConfig mc;
    mc.trials = 400;
    mc.experiment_id = x;
    return run_trials(mc, [x](RngStream& rng) {
             return static_cast<double>(
                 run_csma_feedback(128, x, 16, rng).slots);
           })
        .mean();
  };
  const double at8 = mean_slots(8);
  const double at32 = mean_slots(32);
  const double at96 = mean_slots(96);
  EXPECT_LT(at8, at32);
  EXPECT_LT(at32, at96);
  EXPECT_GT(at96, 96.0);  // at least one slot per reply... (16 needed but
                          // cost counts only until t=16 successes)
}

TEST(CsmaFeedback, CostCappedByHardStop) {
  RngStream rng(4);
  CsmaFeedbackConfig cfg;
  const auto r = run_csma_feedback(256, 256, 300, rng, cfg);
  EXPECT_LE(r.slots, cfg.quiescence_slots + 4 * 257 * cfg.max_cw);
}

TEST(CsmaFeedback, CollisionsHappenUnderContention) {
  MonteCarloConfig mc;
  mc.trials = 100;
  const auto collisions = run_trials(mc, [](RngStream& rng) {
    return static_cast<double>(run_csma_feedback(64, 32, 64, rng).collisions);
  });
  EXPECT_GT(collisions.mean(), 1.0);
}

/// Property sweep: the decision is correct whenever the margin between x and
/// t is comfortable (quiescence misfires need pathological backoff runs).
class CsmaCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CsmaCorrectnessTest, ClearMarginsDecideCorrectly) {
  const auto [x, t] = GetParam();
  MonteCarloConfig mc;
  mc.trials = 200;
  mc.experiment_id = x * 1000 + t;
  const auto correct = run_bool_trials(mc, [x = x, t = t](RngStream& rng) {
    return run_csma_feedback(64, x, t, rng).correct;
  });
  EXPECT_GE(correct.value(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Margins, CsmaCorrectnessTest,
    ::testing::Values(std::tuple{0, 8}, std::tuple{2, 8}, std::tuple{32, 8},
                      std::tuple{64, 8}, std::tuple{0, 1}, std::tuple{64, 1},
                      std::tuple{10, 32}));

TEST(CsmaFeedback, QuiescenceCanMisfireNearTheThreshold) {
  // The paper's point that "it is impossible to tell whether x > t or x < t
  // with certainty using CSMA": around x ≈ 2t the small initial contention
  // window produces backoff runs long enough to masquerade as silence, so a
  // measurable fraction of sessions decide wrongly.
  MonteCarloConfig mc;
  mc.trials = 500;
  const auto correct = run_bool_trials(mc, [](RngStream& rng) {
    return run_csma_feedback(64, 16, 8, rng).correct;
  });
  EXPECT_GT(correct.value(), 0.80);  // mostly right...
  EXPECT_LT(correct.value(), 1.00);  // ...but not certain
}

TEST(CsmaFeedback, WiderInitialWindowReducesCollisions) {
  MonteCarloConfig mc;
  mc.trials = 200;
  const auto mean_collisions = [&mc](std::size_t min_cw) {
    return run_trials(mc, [min_cw](RngStream& rng) {
             CsmaFeedbackConfig cfg;
             cfg.min_cw = min_cw;
             return static_cast<double>(
                 run_csma_feedback(64, 32, 64, rng, cfg).collisions);
           })
        .mean();
  };
  EXPECT_GT(mean_collisions(2), mean_collisions(32));
}

}  // namespace
}  // namespace tcast::mac
