#include "mac/sequential.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/monte_carlo.hpp"

namespace tcast::mac {
namespace {

/// Exhaustive grid property: sequential ordering is always correct and never
/// uses more than n slots.
class SequentialGridTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SequentialGridTest, AlwaysCorrectWithinNSlots) {
  const auto [n, t] = GetParam();
  RngStream rng(n * 131 + t);
  for (std::size_t x = 0; x <= n; ++x) {
    const auto r = run_sequential_feedback(n, x, t, rng);
    EXPECT_EQ(r.decision, x >= t) << "n=" << n << " x=" << x << " t=" << t;
    EXPECT_LE(r.slots, n);
    EXPECT_LE(r.positives_seen, x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SequentialGridTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 12, 32, 128),
                       ::testing::Values<std::size_t>(1, 2, 8, 16)));

TEST(Sequential, ZeroThresholdTrivial) {
  RngStream rng(1);
  const auto r = run_sequential_feedback(16, 3, 0, rng);
  EXPECT_TRUE(r.decision);
  EXPECT_EQ(r.slots, 0u);
}

TEST(Sequential, ZeroPositivesCostsAboutNMinusT) {
  RngStream rng(2);
  const auto r = run_sequential_feedback(100, 0, 10, rng);
  EXPECT_FALSE(r.decision);
  EXPECT_EQ(r.slots, 91u);  // stops when 0 + remaining < 10
}

TEST(Sequential, AllPositivesCostExactlyT) {
  RngStream rng(3);
  const auto r = run_sequential_feedback(50, 50, 7, rng);
  EXPECT_TRUE(r.decision);
  EXPECT_EQ(r.slots, 7u);
}

TEST(Sequential, SmallXLargeCostShape) {
  // The paper: "sequential ordering starts with a large cost overhead
  // (approximately n − x) for x ≪ t".
  MonteCarloConfig mc;
  mc.trials = 500;
  const auto mean_cost = [&mc](std::size_t x) {
    mc.experiment_id = x;
    return run_trials(mc, [x](RngStream& rng) {
             return static_cast<double>(
                 run_sequential_feedback(128, x, 16, rng).slots);
           })
        .mean();
  };
  EXPECT_GT(mean_cost(2), 100.0);  // ≈ n − t + small
  EXPECT_LT(mean_cost(120), 30.0);  // x ≫ t: cheap
}

TEST(Sequential, ThresholdAboveNImpossibleImmediately) {
  RngStream rng(4);
  const auto r = run_sequential_feedback(8, 8, 20, rng);
  EXPECT_FALSE(r.decision);
  EXPECT_EQ(r.slots, 1u);  // first slot reveals remaining < t
}

}  // namespace
}  // namespace tcast::mac
