// Packet-tier CSMA MAC and reliable link tests.
#include <gtest/gtest.h>

#include "mac/csma.hpp"
#include "mac/link.hpp"
#include "radio/channel.hpp"
#include "radio/radio.hpp"
#include "sim/simulator.hpp"

namespace tcast::mac {
namespace {

struct World {
  explicit World(radio::ChannelConfig cfg = {}, std::uint64_t seed = 1)
      : sim(seed), channel(sim, std::move(cfg)) {}
  sim::Simulator sim;
  radio::Channel channel;
};

radio::Frame data(radio::ShortAddr src, radio::ShortAddr dest) {
  radio::Frame f;
  f.type = radio::FrameType::kData;
  f.src = src;
  f.dest = dest;
  f.data.resize(16);
  return f;
}

TEST(CsmaMac, DeliversSingleFrame) {
  World w;
  radio::Radio tx(w.channel, 0, 10);
  radio::Radio rx(w.channel, 1, 11);
  tx.power_on();
  rx.power_on();
  int received = 0;
  rx.set_receive_handler(
      [&](const radio::Frame&, const radio::RxInfo&) { ++received; });
  CsmaMac mac(tx);
  bool sent = false;
  mac.send(data(10, 11), [&](bool ok) { sent = ok; });
  w.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(mac.frames_sent(), 1u);
}

TEST(CsmaMac, QueueDrainsInOrder) {
  World w;
  radio::Radio tx(w.channel, 0, 10);
  radio::Radio rx(w.channel, 1, 11);
  tx.power_on();
  rx.power_on();
  std::vector<std::uint8_t> seqs;
  rx.set_receive_handler([&](const radio::Frame& f, const radio::RxInfo&) {
    seqs.push_back(f.seq);
  });
  CsmaMac mac(tx);
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto f = data(10, 11);
    f.seq = i;
    mac.send(std::move(f));
  }
  w.sim.run();
  EXPECT_EQ(seqs, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(CsmaMac, ContendersEventuallyBothDeliver) {
  // Two CSMA senders with random backoff should (almost always) serialise.
  World w({}, 7);
  radio::Radio a(w.channel, 0, 10), b(w.channel, 1, 11),
      rx(w.channel, 2, 12);
  a.power_on();
  b.power_on();
  rx.power_on();
  int received = 0;
  rx.set_receive_handler(
      [&](const radio::Frame&, const radio::RxInfo&) { ++received; });
  CsmaMac ma(a), mb(b);
  int delivered = 0;
  for (int round = 0; round < 50; ++round) {
    received = 0;
    ma.send(data(10, radio::kBroadcastAddr));
    mb.send(data(11, radio::kBroadcastAddr));
    w.sim.run();
    delivered += received;
  }
  // Random backoff can still collide occasionally; most rounds deliver both.
  EXPECT_GE(delivered, 80);
}

TEST(ReliableLink, AcksFirstTry) {
  World w;
  radio::Radio tx(w.channel, 0, 10), rx(w.channel, 1, 11);
  tx.power_on();
  rx.power_on();
  CsmaMac mac(tx);
  ReliableLink link(tx, mac);
  tx.set_receive_handler([&](const radio::Frame& f, const radio::RxInfo&) {
    link.on_frame(f);
  });
  bool ok = false;
  link.send_reliable(data(10, 11), [&](bool v) { ok = v; });
  w.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(link.retransmissions(), 0u);
}

TEST(ReliableLink, RetriesThroughLossAndSucceeds) {
  radio::ChannelConfig cfg;
  cfg.clean_loss = 0.6;
  World w(cfg, 11);
  radio::Radio tx(w.channel, 0, 10), rx(w.channel, 1, 11);
  tx.power_on();
  rx.power_on();
  CsmaMac mac(tx);
  ReliableLink::Config lcfg;
  lcfg.max_retries = 50;
  ReliableLink link(tx, mac, lcfg);
  tx.set_receive_handler([&](const radio::Frame& f, const radio::RxInfo&) {
    link.on_frame(f);
  });
  int ok_count = 0, attempts = 0;
  for (int i = 0; i < 20; ++i) {
    ++attempts;
    bool done = false, ok = false;
    link.send_reliable(data(10, 11), [&](bool v) {
      done = true;
      ok = v;
    });
    w.sim.run();
    ASSERT_TRUE(done);
    if (ok) ++ok_count;
  }
  EXPECT_EQ(ok_count, attempts);  // generous retries beat 60% loss
  EXPECT_GT(link.retransmissions(), 0u);
}

TEST(ReliableLink, GivesUpAfterMaxRetries) {
  radio::ChannelConfig cfg;
  cfg.clean_loss = 1.0;  // nothing ever arrives
  World w(cfg);
  radio::Radio tx(w.channel, 0, 10), rx(w.channel, 1, 11);
  tx.power_on();
  rx.power_on();
  CsmaMac mac(tx);
  ReliableLink::Config lcfg;
  lcfg.max_retries = 2;
  ReliableLink link(tx, mac, lcfg);
  tx.set_receive_handler([&](const radio::Frame& f, const radio::RxInfo&) {
    link.on_frame(f);
  });
  bool done = false, ok = true;
  link.send_reliable(data(10, 11), [&](bool v) {
    done = true;
    ok = v;
  });
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(link.retransmissions(), 2u);
}

}  // namespace
}  // namespace tcast::mac
