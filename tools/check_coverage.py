#!/usr/bin/env python3
"""Line-coverage gate for the core libraries, built on bare gcov.

Walks a build tree for .gcda files, runs `gcov --json-format --stdout` on
each, and aggregates executable/executed line counts per source file. Two
subjects are gated: src/common and src/core. Their combined line coverage
must not drop below the committed baseline (tools/coverage_baseline.json)
by more than --tolerance; a run that *gains* coverage prints a hint to
re-record the baseline but never fails.

No gcovr/lcov dependency — CI containers only carry the compiler, and
gcov's JSON mode (GCC ≥ 9) has everything a line gate needs. Also emits a
small standalone HTML report for the CI artifact.

Usage:
  # gate against the committed baseline (CI):
  tools/check_coverage.py --build-dir build-cov --baseline tools/coverage_baseline.json \
      [--html-out coverage.html] [--tolerance 0.01]

  # record a new baseline after intentionally changing coverage:
  tools/check_coverage.py --build-dir build-cov --baseline tools/coverage_baseline.json --record
"""

import argparse
import json
import os
import subprocess
import sys

# Repo-relative directory prefixes whose combined line coverage is gated.
GATED_PREFIXES = ("src/common/", "src/core/")


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return sorted(out)


def gcov_json(gcda_path):
    """Runs gcov in JSON mode for one .gcda; returns parsed report dicts.
    gcov emits one JSON document per line with --stdout."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", "-b", gcda_path],
        capture_output=True, text=True,
        cwd=os.path.dirname(gcda_path) or ".")
    if proc.returncode != 0:
        print(f"check_coverage: gcov failed on {gcda_path}: "
              f"{proc.stderr.strip()}", file=sys.stderr)
        return []
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def repo_relative(path, repo_root):
    """Maps a gcov-reported source path onto a repo-relative one, or None
    for sources outside the repo (system headers, third-party)."""
    if not os.path.isabs(path):
        # gcov reports paths relative to the compilation directory; resolve
        # optimistically against the repo root.
        candidate = os.path.normpath(os.path.join(repo_root, path))
    else:
        candidate = os.path.normpath(path)
    try:
        rel = os.path.relpath(candidate, repo_root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    return rel.replace(os.sep, "/")


def collect(build_dir, repo_root):
    """Aggregates {repo_relative_source: {line_no: max_count}} over every
    .gcda in the tree. max over objects: a line is covered if ANY test
    binary executed it."""
    coverage = {}
    gcdas = find_gcda(build_dir)
    if not gcdas:
        raise SystemExit(
            f"check_coverage: no .gcda files under {build_dir}; build with "
            "--coverage and run the test suite first")
    for gcda in gcdas:
        for doc in gcov_json(gcda):
            for f in doc.get("files", []):
                rel = repo_relative(f.get("file", ""), repo_root)
                if rel is None or not rel.startswith("src/"):
                    continue
                lines = coverage.setdefault(rel, {})
                for ln in f.get("lines", []):
                    no = ln.get("line_number")
                    count = ln.get("count", 0)
                    if no is None:
                        continue
                    lines[no] = max(lines.get(no, 0), count)
    return coverage


def summarize(coverage):
    """Returns {source: (covered, total)} plus the gated aggregate."""
    per_file = {}
    gated_covered = gated_total = 0
    for src in sorted(coverage):
        lines = coverage[src]
        total = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        per_file[src] = (covered, total)
        if src.startswith(GATED_PREFIXES):
            gated_covered += covered
            gated_total += total
    return per_file, gated_covered, gated_total


def render_html(per_file, gated_covered, gated_total, out_path):
    def pct(c, t):
        return 100.0 * c / t if t else 0.0

    rows = []
    for src, (covered, total) in sorted(per_file.items()):
        gated = src.startswith(GATED_PREFIXES)
        rows.append(
            f"<tr class={'gated' if gated else 'plain'}>"
            f"<td><code>{src}</code>{' *' if gated else ''}</td>"
            f"<td>{covered}/{total}</td>"
            f"<td>{pct(covered, total):.1f}%</td></tr>")
    html = f"""<!doctype html>
<html><head><meta charset="utf-8"><title>tcast line coverage</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: 4px 10px; text-align: left; }}
 tr.gated {{ background: #eef6ee; }}
 .headline {{ font-size: 1.2em; margin-bottom: 1em; }}
</style></head><body>
<h1>tcast line coverage</h1>
<p class="headline">Gated subjects (src/common + src/core, marked *):
<b>{gated_covered}/{gated_total} lines
({pct(gated_covered, gated_total):.2f}%)</b></p>
<table><tr><th>source</th><th>lines</th><th>coverage</th></tr>
{os.linesep.join(rows)}
</table></body></html>
"""
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(html)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="build tree compiled with --coverage, after a "
                             "test run (contains the .gcda files)")
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON path "
                             "(tools/coverage_baseline.json)")
    parser.add_argument("--record", action="store_true",
                        help="write the measured coverage as the new "
                             "baseline instead of gating")
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="allowed drop in gated line-coverage fraction "
                             "before failing (default 0.01 = one point)")
    parser.add_argument("--html-out",
                        help="write a standalone HTML report here")
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args(argv)

    repo_root = os.path.abspath(
        args.repo_root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

    coverage = collect(args.build_dir, repo_root)
    per_file, gated_covered, gated_total = summarize(coverage)
    if gated_total == 0:
        raise SystemExit("check_coverage: no gated sources "
                         f"({', '.join(GATED_PREFIXES)}) in the gcov output")

    fraction = gated_covered / gated_total
    print(f"check_coverage: src/common + src/core line coverage "
          f"{gated_covered}/{gated_total} = {fraction:.2%}")

    if args.html_out:
        render_html(per_file, gated_covered, gated_total, args.html_out)
        print(f"check_coverage: HTML report at {args.html_out}")

    if args.record:
        baseline = {
            "schema": "tcast-coverage-v1",
            "gated_prefixes": list(GATED_PREFIXES),
            "line_fraction": round(fraction, 6),
            "covered": gated_covered,
            "total": gated_total,
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"check_coverage: baseline recorded to {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print("check_coverage: no baseline committed yet; soft pass "
              "(record one with --record)")
        return 0

    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    want = float(baseline.get("line_fraction", 0.0))
    if fraction + args.tolerance < want:
        print(f"check_coverage: FAIL — gated coverage {fraction:.2%} is "
              f"below the recorded baseline {want:.2%} (tolerance "
              f"{args.tolerance:.0%}). New code needs tests, or re-record "
              "the baseline deliberately with --record.")
        return 1
    # The recorded fraction is rounded to 6 digits; compare past that
    # rounding so an unchanged run doesn't claim coverage "rose".
    if round(fraction, 6) > want:
        print(f"check_coverage: coverage rose above the baseline "
              f"({want:.2%} -> {fraction:.2%}); consider re-recording so "
              "the gate ratchets up")
    print("check_coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
