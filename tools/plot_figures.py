#!/usr/bin/env python3
"""Plot the figure-reproduction benches next to the paper's figures.

Usage:
    # regenerate the CSVs, then plot everything into out/
    for b in build/bench/fig*; do "$b" --csv > "out/$(basename "$b").csv"; done
    tools/plot_figures.py out/*.csv -o out/

Each bench's --csv output is a plain table: first column is the x-axis,
remaining columns are the series the corresponding paper figure plots.
Requires matplotlib (only for this optional script; the library and benches
have no Python dependency).
"""

import argparse
import csv
import pathlib
import sys


def read_table(path):
    with open(path, newline="", encoding="utf-8") as fh:
        rows = list(csv.reader(fh))
    header, body = rows[0], rows[1:]
    axis = [float(r[0]) for r in body]
    series = {}
    for col, name in enumerate(header[1:], start=1):
        xs, ys = [], []
        for r, x in zip(body, axis):
            if col < len(r) and r[col] != "":
                xs.append(x)
                ys.append(float(r[col]))
        series[name] = (xs, ys)
    return header[0], axis, series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="bench --csv outputs")
    parser.add_argument("-o", "--outdir", default=".", help="PNG directory")
    parser.add_argument("--logy", action="store_true",
                        help="log-scale the y axis")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for path in args.csvs:
        xlabel, _, series = read_table(path)
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for name, (xs, ys) in series.items():
            ax.plot(xs, ys, marker="o", markersize=3, linewidth=1.2,
                    label=name)
        ax.set_xlabel(xlabel)
        ax.set_ylabel("queries / value")
        if args.logy:
            ax.set_yscale("log")
        stem = pathlib.Path(path).stem
        ax.set_title(stem)
        ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)
        out = outdir / f"{stem}.png"
        fig.tight_layout()
        fig.savefig(out, dpi=140)
        plt.close(fig)
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
