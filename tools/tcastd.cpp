// tcastd — the threshold-query daemon.
//
//   tcastd --socket /tmp/tcastd.sock [--shards 4] [--queue-capacity 64]
//          [--degrade-enter 32] [--degrade-exit 8] [--batch-max 8]
//          [--estimator nz-geom] [--checked]
//
// Serves the wire protocol of src/service/protocol.hpp over a Unix domain
// socket. Populations are sharded by name; queries resolve to exact
// verdicts, honestly-tagged approximate answers (under overload
// degradation), or typed errors — never fabricated verdicts, never silent
// drops. `tcast_client <socket> shutdown` stops it cleanly.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/server.hpp"
#include "service/service.hpp"

namespace {

tcast::service::UnixServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcast::service;

  std::string socket_path = "/tmp/tcastd.sock";
  ServiceConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      if (const char* v = next()) socket_path = v;
    } else if (arg == "--shards") {
      if (const char* v = next()) cfg.shards = std::stoul(v);
    } else if (arg == "--queue-capacity") {
      if (const char* v = next()) cfg.queue_capacity = std::stoul(v);
    } else if (arg == "--degrade-enter") {
      if (const char* v = next()) cfg.degrade_enter = std::stoul(v);
    } else if (arg == "--degrade-exit") {
      if (const char* v = next()) cfg.degrade_exit = std::stoul(v);
    } else if (arg == "--batch-max") {
      if (const char* v = next()) cfg.batch_max = std::stoul(v);
    } else if (arg == "--estimator") {
      if (const char* v = next()) cfg.degrade_estimator = v;
    } else if (arg == "--checked") {
      cfg.checked = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  TcastService service(cfg);
  UnixServer server(service, socket_path);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "tcastd: cannot listen on %s: %s\n",
                 socket_path.c_str(), error.c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("tcastd: listening on %s (%zu shards, queue %zu, degrade %zu/%zu%s)\n",
              socket_path.c_str(), cfg.shards, cfg.queue_capacity,
              cfg.degrade_enter, cfg.degrade_exit,
              cfg.checked ? ", checked" : "");
  std::fflush(stdout);

  service.start_pump_thread();
  server.run();
  service.stop_pump_thread();
  service.drain_all();

  std::printf("tcastd: stopped\n");
  return 0;
}
