#!/usr/bin/env python3
"""Compare a tcast_bench JSON report against a committed baseline.

Gates CI on performance regressions and reports improvements: for every
benchmark present in both reports, the current median throughput
(items_per_s) is compared against the baseline. A drop of more than
--max-regression fails the gate; a gain of more than --min-improvement is
highlighted (improvements never fail). Benchmarks present only in the
current run are listed as new; benchmarks present only in the baseline are
listed as missing and — with --fail-on-missing — fail the gate, catching
benchmarks that silently stopped being registered or ran.

Benchmarks carrying a `percentiles` object (the service load rigs) are
additionally gated on tail latency: each gated percentile (p99_us,
p999_us) becomes its own comparison row with INVERTED semantics — current
latency more than --max-latency-regression above baseline fails, lower
latency is an improvement. p50 rides along in the report but is not gated
(medians move with machine load; tails are the robustness contract).

A missing baseline file is a soft pass (exit 0): the first PR that adds a
benchmark cannot have a baseline for it yet.

With --summary-out PATH, a GitHub-flavoured markdown table of the
comparison is appended to PATH (pass "$GITHUB_STEP_SUMMARY" in CI).

Usage:
  tools/compare_bench.py --baseline BENCH_tcast.json --current BENCH_ci.json \
      [--max-regression 0.25] [--min-improvement 0.25] [--fail-on-missing] \
      [--summary-out PATH]
"""

import argparse
import json
import os
import sys

# Row statuses, in display order.
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_OK = "ok"
STATUS_MISSING = "missing"
STATUS_NEW = "new"
STATUS_SKIPPED = "skipped"


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "tcast-bench-v1":
        raise ValueError(f"{path}: unexpected schema {report.get('schema')!r}")
    return report


def throughput_by_name(report):
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        ips = bench.get("items_per_s", 0.0)
        if name and ips > 0.0:
            out[name] = ips
    return out


def bench_names(report):
    return {b.get("name") for b in report.get("benchmarks", [])
            if b.get("name")}


# Tail percentiles gated as latency metrics (p50 is reported, not gated).
GATED_PERCENTILES = ("p99_us", "p999_us")


def latency_by_name(report):
    """Maps "bench [p99_us]"-style metric names to microsecond values for
    every gated percentile a benchmark carries."""
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        percentiles = bench.get("percentiles") or {}
        if not name:
            continue
        for key in GATED_PERCENTILES:
            value = percentiles.get(key, 0.0)
            if value > 0.0:
                out[f"{name} [{key}]"] = value
    return out


def counters_by_name(report):
    """Maps "bench [llc_misses]"-style metric names to hardware-counter
    values (the optional `counters` object on core/ and sim/ benchmarks).
    Informational only — counters are absent wherever perf_event_open is
    denied and vary wildly across microarchitectures, so they are NEVER
    gated; the comparison table just makes cache/branch behaviour drift
    visible next to the throughput it explains."""
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        counters = bench.get("counters") or {}
        if not name:
            continue
        for key in sorted(counters):
            value = counters[key]
            if value > 0.0:
                out[f"{name} [{key}]"] = value
    return out


def host_summary(report, label):
    """One line of topology context: scaling benchmarks (sim/parallel/*)
    are meaningless without knowing how many CPUs the run could actually
    schedule on."""
    host = report.get("host") or {}
    threads = int(host.get("hardware_threads", 0))
    affinity = int(host.get("affinity_cpus", 0))
    return (f"  {label}: hardware_threads={threads or '?'} "
            f"affinity_cpus={affinity or '?'}")


def skipped_names(report):
    """Benchmark entries present in the report that contributed no gated
    metric at all — no usable throughput and no gated percentile. These
    must still surface in the summary: a baseline recorded on a machine
    where a bench was skipped (items_per_s == 0) would otherwise make that
    bench invisible forever — no row, no status, nothing to notice."""
    tput = throughput_by_name(report)
    lat = latency_by_name(report)
    out = []
    for name in sorted(bench_names(report)):
        if name in tput:
            continue
        if any(f"{name} [{key}]" in lat for key in GATED_PERCENTILES):
            continue
        out.append(name)
    return out


def compare(base, cur, max_regression, min_improvement):
    """Compares throughput maps; returns rows of
    (name, baseline_ips, current_ips, ratio, status), sorted by name within
    each membership class (shared, then missing, then new). ratio and the
    absent side's throughput are None where not applicable."""
    rows = []
    for name in sorted(base):
        if name not in cur:
            rows.append((name, base[name], None, None, STATUS_MISSING))
            continue
        ratio = cur[name] / base[name]
        if ratio < 1.0 - max_regression:
            status = STATUS_REGRESSION
        elif ratio > 1.0 + min_improvement:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        rows.append((name, base[name], cur[name], ratio, status))
    for name in sorted(set(cur) - set(base)):
        rows.append((name, None, cur[name], None, STATUS_NEW))
    return rows


def compare_latency(base, cur, max_regression, min_improvement):
    """compare() with inverted semantics for latency metrics: the ratio is
    still current/baseline, but a ratio ABOVE 1 + max_regression is the
    regression and one below 1 - min_improvement is the improvement."""
    rows = []
    for name in sorted(base):
        if name not in cur:
            rows.append((name, base[name], None, None, STATUS_MISSING))
            continue
        ratio = cur[name] / base[name]
        if ratio > 1.0 + max_regression:
            status = STATUS_REGRESSION
        elif ratio < 1.0 - min_improvement:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        rows.append((name, base[name], cur[name], ratio, status))
    for name in sorted(set(cur) - set(base)):
        rows.append((name, None, cur[name], None, STATUS_NEW))
    return rows


def render_text(rows, max_regression, min_improvement, unit="items/s"):
    lines = []
    width = max((len(r[0]) for r in rows), default=0)
    for name, base_ips, cur_ips, ratio, status in rows:
        if status == STATUS_MISSING:
            lines.append(f"  {name:<{width}}  (missing from current run)")
        elif status == STATUS_NEW:
            lines.append(f"  {name:<{width}}  (new, no baseline)")
        elif status == STATUS_SKIPPED:
            lines.append(f"  {name:<{width}}  (skipped: baseline has no "
                         "usable metric; not gated)")
        else:
            marker = {
                STATUS_REGRESSION: "  <-- REGRESSION",
                STATUS_IMPROVED: "  <-- improved",
                STATUS_OK: "",
            }[status]
            lines.append(
                f"  {name:<{width}}  {base_ips:12.4g} -> {cur_ips:12.4g} "
                f"{unit}  ({ratio:6.2%}){marker}")
    return "\n".join(lines)


def render_markdown(rows, unit="items/s", title="Benchmark comparison"):
    lines = [
        f"### {title}",
        "",
        f"| benchmark | baseline {unit} | current {unit} | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    emoji = {
        STATUS_REGRESSION: ":small_red_triangle_down: regression",
        STATUS_IMPROVED: ":rocket: improved",
        STATUS_OK: "ok",
        STATUS_MISSING: ":warning: missing",
        STATUS_NEW: "new",
        STATUS_SKIPPED: ":fast_forward: skipped (no baseline metric)",
    }
    for name, base_ips, cur_ips, ratio, status in rows:
        base_s = f"{base_ips:.4g}" if base_ips is not None else "—"
        cur_s = f"{cur_ips:.4g}" if cur_ips is not None else "—"
        ratio_s = f"{ratio:.2%}" if ratio is not None else "—"
        lines.append(
            f"| `{name}` | {base_s} | {cur_s} | {ratio_s} | {emoji[status]} |")
    lines.append("")
    return "\n".join(lines)


def gate(rows, fail_on_missing, metric="throughput"):
    """Returns (exit_code, list of failure description lines)."""
    failures = []
    for name, _, _, ratio, status in rows:
        if status == STATUS_REGRESSION:
            failures.append(f"{name}: {ratio:.2%} of baseline {metric}")
        elif status == STATUS_MISSING and fail_on_missing:
            failures.append(f"{name}: registered in baseline but missing "
                            "from the current run")
    return (1 if failures else 0), failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline report (BENCH_tcast.json)")
    parser.add_argument("--current", required=True,
                        help="report from the build under test")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail if throughput drops by more than this "
                             "fraction (default 0.25)")
    parser.add_argument("--min-improvement", type=float, default=0.25,
                        help="highlight gains larger than this fraction "
                             "(default 0.25; never fails)")
    parser.add_argument("--max-latency-regression", type=float, default=0.5,
                        help="fail if a gated tail percentile (p99/p999) "
                             "grows by more than this fraction (default "
                             "0.5; tails are noisier than medians)")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="fail if a baseline benchmark is absent from "
                             "the current run")
    parser.add_argument("--summary-out",
                        help="append a markdown comparison table to this "
                             "file (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"compare_bench: no baseline at {args.baseline}; skipping "
              "regression gate (first run for these benchmarks)")
        return 0

    baseline = load_report(args.baseline)
    current = load_report(args.current)

    if baseline.get("quick") != current.get("quick"):
        print(f"compare_bench: WARNING baseline quick={baseline.get('quick')} "
              f"vs current quick={current.get('quick')}; workload sizes "
              "differ, throughput comparison is still scale-free but noisier")

    print("compare_bench: host topology")
    print(host_summary(baseline, "baseline"))
    print(host_summary(current, "current"))

    rows = compare(throughput_by_name(baseline), throughput_by_name(current),
                   args.max_regression, args.min_improvement)
    # Baseline entries with no usable metric get a row UNCONDITIONALLY (in
    # the text output and the markdown summary): a silently-dropped bench
    # is indistinguishable from a healthy one otherwise. Never gated.
    rows += [(name, None, None, None, STATUS_SKIPPED)
             for name in skipped_names(baseline)]
    print(render_text(rows, args.max_regression, args.min_improvement))

    latency_rows = compare_latency(
        latency_by_name(baseline), latency_by_name(current),
        args.max_latency_regression, args.min_improvement)
    if latency_rows:
        print("\n  tail latency (lower is better):")
        print(render_text(latency_rows, args.max_latency_regression,
                          args.min_improvement, unit="us"))

    # Hardware counters ride along purely informationally: every status is
    # forced to "ok" so the gate can never see a counter row, whatever the
    # drift — see counters_by_name().
    counter_rows = [
        (name, base_v, cur_v, ratio,
         STATUS_OK if status in (STATUS_REGRESSION, STATUS_IMPROVED,
                                 STATUS_OK) else status)
        for name, base_v, cur_v, ratio, status in compare_latency(
            counters_by_name(baseline), counters_by_name(current),
            args.max_latency_regression, args.min_improvement)]
    if counter_rows:
        print("\n  hardware counters (informational, never gated):")
        print(render_text(counter_rows, args.max_latency_regression,
                          args.min_improvement, unit="count"))

    if args.summary_out:
        with open(args.summary_out, "a", encoding="utf-8") as f:
            f.write(render_markdown(rows) + "\n")
            if latency_rows:
                f.write(render_markdown(latency_rows, unit="us",
                                        title="Tail latency comparison") +
                        "\n")
            if counter_rows:
                f.write(render_markdown(
                    counter_rows, unit="count",
                    title="Hardware counters (informational)") + "\n")

    improved = sum(1 for r in rows + latency_rows
                   if r[4] == STATUS_IMPROVED)
    code_t, failures = gate(rows, args.fail_on_missing)
    code_l, latency_failures = gate(latency_rows, args.fail_on_missing,
                                    metric="latency (lower is better)")
    failures += latency_failures
    if failures:
        print(f"\ncompare_bench: {len(failures)} failure(s):")
        for line in failures:
            print(f"  {line}")
        return max(code_t, code_l)
    shared = sum(1 for r in rows + latency_rows if r[4] in
                 (STATUS_OK, STATUS_IMPROVED, STATUS_REGRESSION))
    print(f"\ncompare_bench: OK ({shared} compared metric(s), none "
          f"regressed more than {args.max_regression:.0%} throughput / "
          f"{args.max_latency_regression:.0%} tail latency, "
          f"{improved} improved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
