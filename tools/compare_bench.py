#!/usr/bin/env python3
"""Compare a tcast_bench JSON report against a committed baseline.

Gates CI on performance regressions: for every benchmark present in both
reports, the current median throughput (items_per_s) must not fall more than
--max-regression below the baseline. Benchmarks present on only one side are
reported but never fail the gate (new benchmarks appear, old ones retire).

A missing baseline file is a soft pass (exit 0): the first PR that adds a
benchmark cannot have a baseline for it yet.

Usage:
  tools/compare_bench.py --baseline BENCH_tcast.json --current BENCH_ci.json \
      [--max-regression 0.25]
"""

import argparse
import json
import os
import sys


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "tcast-bench-v1":
        raise ValueError(f"{path}: unexpected schema {report.get('schema')!r}")
    return report


def throughput_by_name(report):
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        ips = bench.get("items_per_s", 0.0)
        if name and ips > 0.0:
            out[name] = ips
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline report (BENCH_tcast.json)")
    parser.add_argument("--current", required=True,
                        help="report from the build under test")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail if throughput drops by more than this "
                             "fraction (default 0.25)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"compare_bench: no baseline at {args.baseline}; skipping "
              "regression gate (first run for these benchmarks)")
        return 0

    baseline = load_report(args.baseline)
    current = load_report(args.current)

    if baseline.get("quick") != current.get("quick"):
        print(f"compare_bench: WARNING baseline quick={baseline.get('quick')} "
              f"vs current quick={current.get('quick')}; workload sizes "
              "differ, throughput comparison is still scale-free but noisier")

    base = throughput_by_name(baseline)
    cur = throughput_by_name(current)

    regressions = []
    width = max((len(n) for n in base), default=0)
    for name in sorted(base):
        if name not in cur:
            print(f"  {name:<{width}}  (missing from current run)")
            continue
        ratio = cur[name] / base[name]
        marker = ""
        if ratio < 1.0 - args.max_regression:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"  {name:<{width}}  {base[name]:12.4g} -> {cur[name]:12.4g} "
              f"items/s  ({ratio:6.2%}){marker}")
    for name in sorted(set(cur) - set(base)):
        print(f"  {name:<{width}}  (new, no baseline)")

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} benchmark(s) regressed "
              f"more than {args.max_regression:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2%} of baseline throughput")
        return 1
    print(f"\ncompare_bench: OK ({len(base)} baseline benchmark(s), "
          f"none regressed more than {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
