#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py (run as a ctest)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench  # noqa: E402


def report(benches, quick=False, percentiles=None):
    """percentiles: optional {bench_name: {"p99_us": ..., ...}} attached to
    the matching benchmark entries."""
    entries = []
    for name, ips in benches:
        entry = {"name": name, "items_per_s": ips}
        if percentiles and name in percentiles:
            entry["percentiles"] = percentiles[name]
        entries.append(entry)
    return {
        "schema": "tcast-bench-v1",
        "git_sha": "deadbeef",
        "host": {},
        "quick": quick,
        "benchmarks": entries,
    }


def write_report(path, benches, quick=False, percentiles=None):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report(benches, quick, percentiles), f)


class ThroughputByName(unittest.TestCase):
    def test_drops_nameless_and_zero_throughput_entries(self):
        r = report([("a", 10.0), ("b", 0.0)])
        r["benchmarks"].append({"items_per_s": 5.0})
        self.assertEqual(compare_bench.throughput_by_name(r), {"a": 10.0})


class Compare(unittest.TestCase):
    def test_classifies_each_status(self):
        base = {"steady": 100.0, "slower": 100.0, "faster": 100.0,
                "gone": 100.0}
        cur = {"steady": 99.0, "slower": 60.0, "faster": 300.0,
               "brand_new": 42.0}
        rows = compare_bench.compare(base, cur, max_regression=0.25,
                                     min_improvement=0.25)
        status = {name: s for name, _, _, _, s in rows}
        self.assertEqual(status, {
            "steady": compare_bench.STATUS_OK,
            "slower": compare_bench.STATUS_REGRESSION,
            "faster": compare_bench.STATUS_IMPROVED,
            "gone": compare_bench.STATUS_MISSING,
            "brand_new": compare_bench.STATUS_NEW,
        })

    def test_boundary_is_not_a_regression(self):
        # Exactly at the threshold (75% of baseline with max_regression=0.25)
        # must pass: the gate is "more than", not "at least".
        rows = compare_bench.compare({"b": 100.0}, {"b": 75.0}, 0.25, 0.25)
        self.assertEqual(rows[0][4], compare_bench.STATUS_OK)

    def test_ratio_computed_against_baseline(self):
        rows = compare_bench.compare({"b": 50.0}, {"b": 100.0}, 0.25, 0.25)
        self.assertAlmostEqual(rows[0][3], 2.0)


class SkippedNames(unittest.TestCase):
    def test_zero_throughput_without_percentiles_is_skipped(self):
        r = report([("ran", 10.0), ("skipped", 0.0)])
        self.assertEqual(compare_bench.skipped_names(r), ["skipped"])

    def test_percentile_only_benches_are_not_skipped(self):
        # Service load rigs report no throughput but ARE gated on tails —
        # they must not be misreported as skipped.
        r = report([("svc", 0.0)],
                   percentiles={"svc": {"p99_us": 900.0}})
        self.assertEqual(compare_bench.skipped_names(r), [])


class LatencyByName(unittest.TestCase):
    def test_extracts_gated_percentiles_only(self):
        r = report([("svc", 10.0), ("plain", 5.0)],
                   percentiles={"svc": {"p50_us": 100.0, "p99_us": 900.0,
                                        "p999_us": 2000.0}})
        self.assertEqual(compare_bench.latency_by_name(r), {
            "svc [p99_us]": 900.0,
            "svc [p999_us]": 2000.0,
        })

    def test_zero_and_absent_percentiles_dropped(self):
        r = report([("svc", 10.0)],
                   percentiles={"svc": {"p99_us": 0.0}})
        self.assertEqual(compare_bench.latency_by_name(r), {})


class CompareLatency(unittest.TestCase):
    def test_semantics_are_inverted(self):
        # Latency GROWTH beyond the threshold is the regression; shrinkage
        # is the improvement — the mirror image of throughput.
        base = {"steady [p99_us]": 100.0, "slower [p99_us]": 100.0,
                "faster [p99_us]": 100.0}
        cur = {"steady [p99_us]": 120.0, "slower [p99_us]": 200.0,
               "faster [p99_us]": 40.0}
        rows = compare_bench.compare_latency(base, cur, max_regression=0.5,
                                             min_improvement=0.25)
        status = {name: s for name, _, _, _, s in rows}
        self.assertEqual(status, {
            "steady [p99_us]": compare_bench.STATUS_OK,
            "slower [p99_us]": compare_bench.STATUS_REGRESSION,
            "faster [p99_us]": compare_bench.STATUS_IMPROVED,
        })

    def test_boundary_is_not_a_regression(self):
        rows = compare_bench.compare_latency({"b": 100.0}, {"b": 150.0},
                                             0.5, 0.25)
        self.assertEqual(rows[0][4], compare_bench.STATUS_OK)


class Gate(unittest.TestCase):
    def rows(self):
        return compare_bench.compare(
            {"ok": 100.0, "bad": 100.0, "gone": 100.0},
            {"ok": 100.0, "bad": 10.0}, 0.25, 0.25)

    def test_regression_fails(self):
        code, failures = compare_bench.gate(self.rows(), fail_on_missing=False)
        self.assertEqual(code, 1)
        self.assertEqual(len(failures), 1)
        self.assertIn("bad", failures[0])

    def test_missing_fails_only_when_requested(self):
        _, failures = compare_bench.gate(self.rows(), fail_on_missing=False)
        self.assertFalse(any("gone" in f for f in failures))
        code, failures = compare_bench.gate(self.rows(), fail_on_missing=True)
        self.assertEqual(code, 1)
        self.assertTrue(any("gone" in f for f in failures))


class RenderMarkdown(unittest.TestCase):
    def test_emits_one_table_row_per_benchmark(self):
        rows = compare_bench.compare({"a": 100.0, "gone": 1.0},
                                     {"a": 300.0, "new": 2.0}, 0.25, 0.25)
        md = compare_bench.render_markdown(rows)
        self.assertIn("| `a` |", md)
        self.assertIn("improved", md)
        self.assertIn("| `gone` |", md)
        self.assertIn("missing", md)
        self.assertIn("| `new` |", md)


class RenderSkipped(unittest.TestCase):
    def test_skipped_rows_render_without_gating(self):
        rows = [("quiet", None, None, None, compare_bench.STATUS_SKIPPED)]
        md = compare_bench.render_markdown(rows)
        self.assertIn("| `quiet` |", md)
        self.assertIn("skipped", md)
        text = compare_bench.render_text(rows, 0.25, 0.25)
        self.assertIn("quiet", text)
        self.assertIn("skipped", text)
        code, failures = compare_bench.gate(rows, fail_on_missing=True)
        self.assertEqual(code, 0)
        self.assertEqual(failures, [])


class MainEndToEnd(unittest.TestCase):
    def run_main(self, *argv):
        return compare_bench.main(list(argv))

    def test_missing_baseline_is_soft_pass(self):
        with tempfile.TemporaryDirectory() as d:
            cur = os.path.join(d, "cur.json")
            write_report(cur, [("a", 1.0)])
            code = self.run_main("--baseline", os.path.join(d, "nope.json"),
                                 "--current", cur)
            self.assertEqual(code, 0)

    def test_fail_on_missing_gates_ci(self):
        with tempfile.TemporaryDirectory() as d:
            base = os.path.join(d, "base.json")
            cur = os.path.join(d, "cur.json")
            write_report(base, [("a", 1.0), ("b", 1.0)])
            write_report(cur, [("a", 1.0)])
            self.assertEqual(
                self.run_main("--baseline", base, "--current", cur), 0)
            self.assertEqual(
                self.run_main("--baseline", base, "--current", cur,
                              "--fail-on-missing"), 1)

    def test_summary_out_appends_markdown(self):
        with tempfile.TemporaryDirectory() as d:
            base = os.path.join(d, "base.json")
            cur = os.path.join(d, "cur.json")
            summary = os.path.join(d, "summary.md")
            write_report(base, [("a", 1.0)])
            write_report(cur, [("a", 4.0)])
            with open(summary, "w", encoding="utf-8") as f:
                f.write("existing content\n")
            code = self.run_main("--baseline", base, "--current", cur,
                                 "--summary-out", summary)
            self.assertEqual(code, 0)
            with open(summary, encoding="utf-8") as f:
                text = f.read()
            self.assertTrue(text.startswith("existing content\n"))
            self.assertIn("Benchmark comparison", text)
            self.assertIn("| `a` |", text)

    def test_tail_latency_regression_gates_ci(self):
        with tempfile.TemporaryDirectory() as d:
            base = os.path.join(d, "base.json")
            cur = os.path.join(d, "cur.json")
            write_report(base, [("svc", 100.0)],
                         percentiles={"svc": {"p99_us": 1000.0}})
            # Same throughput, tail latency tripled: only the latency gate
            # can catch this.
            write_report(cur, [("svc", 100.0)],
                         percentiles={"svc": {"p99_us": 3000.0}})
            self.assertEqual(
                self.run_main("--baseline", base, "--current", cur), 1)
            # A generous threshold lets it through.
            self.assertEqual(
                self.run_main("--baseline", base, "--current", cur,
                              "--max-latency-regression", "9.0"), 0)

    def test_baseline_present_but_skipped_bench_appears_in_summary(self):
        # The regression this guards: a bench recorded with items_per_s == 0
        # in the baseline used to produce NO row anywhere — invisible in the
        # markdown summary, never flagged, never gated. It must now appear
        # unconditionally as a skipped row (and still never gate).
        with tempfile.TemporaryDirectory() as d:
            base = os.path.join(d, "base.json")
            cur = os.path.join(d, "cur.json")
            summary = os.path.join(d, "summary.md")
            write_report(base, [("a", 1.0), ("quiet", 0.0)])
            write_report(cur, [("a", 1.0)])
            code = self.run_main("--baseline", base, "--current", cur,
                                 "--fail-on-missing",
                                 "--summary-out", summary)
            self.assertEqual(code, 0)
            with open(summary, encoding="utf-8") as f:
                text = f.read()
            self.assertIn("| `quiet` |", text)
            self.assertIn("skipped", text)

    def test_bad_schema_raises(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "bad.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump({"schema": "other"}, f)
            with self.assertRaises(ValueError):
                compare_bench.load_report(path)


if __name__ == "__main__":
    unittest.main()
