// tcast_client — text CLI for a running tcastd.
//
//   tcast_client --socket /tmp/tcastd.sock [--deadline-ms MS]
//                [--max-retries N] [--seed S] <request words...>
//   tcast_client --socket /tmp/tcastd.sock            # requests on stdin
//
// Requests are protocol lines (see docs/SERVICE.md), e.g.:
//   load pop=fleet n=256 x=40 seed=7
//   query pop=fleet t=32 deadline-ms=50 approx=allow
//   stats | list | ping | shutdown
//
// Retryable responses (kOverloaded / kShardDown / kShuttingDown) are
// retried up to --max-retries times with jittered exponential backoff
// honoring the server's retry-after hints. Exit status: 0 on kOk, 1 on a
// typed error, 2 on usage/transport failure.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "service/server.hpp"

namespace {

int run_one(tcast::service::UnixClient& client,
            const tcast::service::BackoffPolicy& policy,
            tcast::RngStream& rng, std::uint64_t default_deadline_ms,
            const std::string& line) {
  using namespace tcast::service;
  auto req = Request::parse(line);
  if (!req) {
    std::fprintf(stderr, "unparseable request: %s\n", line.c_str());
    return 2;
  }
  // --deadline-ms is a default: an explicit deadline-ms= token wins.
  if (req->kind == RequestKind::kQuery && req->deadline_ms == 0)
    req->deadline_ms = default_deadline_ms;
  std::size_t attempts = 0;
  const auto resp = client.call_with_retries(*req, policy, rng, &attempts);
  if (!resp) {
    std::fprintf(stderr, "transport failure talking to tcastd\n");
    return 2;
  }
  std::printf("%s%s\n", resp->encode().c_str(),
              attempts > 1
                  ? (" attempts=" + std::to_string(attempts)).c_str()
                  : "");
  if (!resp->message.empty() && resp->message.find('\n') != std::string::npos)
    std::printf("%s", resp->message.c_str());
  return resp->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcast::service;

  std::string socket_path = "/tmp/tcastd.sock";
  BackoffPolicy policy;
  policy.max_retries = 0;
  std::uint64_t seed = 1;
  std::uint64_t deadline_ms = 0;
  std::string request_line;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      if (const char* v = next()) socket_path = v;
    } else if (arg == "--max-retries") {
      if (const char* v = next()) policy.max_retries = std::stoul(v);
    } else if (arg == "--deadline-ms") {
      if (const char* v = next()) deadline_ms = std::stoull(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::stoull(v);
    } else {
      if (!request_line.empty()) request_line += ' ';
      request_line += arg;
    }
  }

  UnixClient client(socket_path);
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return 2;
  }
  tcast::RngStream rng(seed, 0x9e11);

  if (!request_line.empty())
    return run_one(client, policy, rng, deadline_ms, request_line);

  int worst = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    worst = std::max(worst, run_one(client, policy, rng, deadline_ms, line));
  }
  return worst;
}
