#include "faults/fault_log.hpp"

#include <algorithm>

namespace tcast::faults {

const char* to_string(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kFalseEmpty: return "false-empty";
    case FaultEvent::Kind::kCaptureDowngrade: return "capture-downgrade";
    case FaultEvent::Kind::kSpuriousActivity: return "spurious-activity";
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kReboot: return "reboot";
  }
  return "?";
}

std::size_t FaultLog::count(FaultEvent::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

std::string FaultLog::to_string() const {
  std::string s;
  const std::string prefix =
      session_ ? "s=" + std::to_string(*session_) + " " : "";
  for (const auto& e : events_) {
    s += prefix + "q=" + std::to_string(e.at_query) + " " +
         faults::to_string(e.kind);
    if (e.node != kNoNode) s += " node=" + std::to_string(e.node);
    s += "\n";
  }
  return s;
}

}  // namespace tcast::faults
