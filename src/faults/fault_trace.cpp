#include "faults/fault_trace.hpp"

#include <cstdlib>

#include "faults/faulty_channel.hpp"

namespace tcast::faults {
namespace {

const char* kind_code(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kFalseEmpty: return "fe";
    case FaultEvent::Kind::kCaptureDowngrade: return "dg";
    case FaultEvent::Kind::kSpuriousActivity: return "sp";
    case FaultEvent::Kind::kCrash: return "cr";
    case FaultEvent::Kind::kReboot: return "rb";
  }
  return "?";
}

std::optional<FaultEvent::Kind> parse_kind(std::string_view code) {
  if (code == "fe") return FaultEvent::Kind::kFalseEmpty;
  if (code == "dg") return FaultEvent::Kind::kCaptureDowngrade;
  if (code == "sp") return FaultEvent::Kind::kSpuriousActivity;
  if (code == "cr") return FaultEvent::Kind::kCrash;
  if (code == "rb") return FaultEvent::Kind::kReboot;
  return std::nullopt;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

}  // namespace

FaultTrace FaultTrace::record(const FaultyChannel& channel) {
  FaultTrace trace;
  trace.events = channel.log().events();
  trace.lossy = channel.lossy();
  return trace;
}

std::optional<FaultTrace> FaultTrace::parse(std::string_view text) {
  const auto tokens = split(text, ',');
  if (tokens.empty() || tokens[0].substr(0, 6) != "lossy=")
    return std::nullopt;
  const auto lossy_val = tokens[0].substr(6);
  if (lossy_val != "0" && lossy_val != "1") return std::nullopt;
  FaultTrace trace;
  trace.lossy = lossy_val == "1";
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto parts = split(tokens[i], ':');
    if (parts.size() < 2 || parts.size() > 3) return std::nullopt;
    const auto at = parse_u64(parts[0]);
    const auto kind = parse_kind(parts[1]);
    if (!at || !kind) return std::nullopt;
    FaultEvent e;
    e.kind = *kind;
    e.at_query = *at;
    const bool wants_node = *kind == FaultEvent::Kind::kCrash ||
                            *kind == FaultEvent::Kind::kReboot;
    const bool allows_node =
        wants_node || *kind == FaultEvent::Kind::kCaptureDowngrade;
    if (parts.size() == 3) {
      if (!allows_node) return std::nullopt;
      const auto node = parse_u64(parts[2]);
      if (!node || *node >= kNoNode) return std::nullopt;
      e.node = static_cast<NodeId>(*node);
    } else if (wants_node) {
      return std::nullopt;
    }
    trace.events.push_back(e);
  }
  return trace;
}

std::string FaultTrace::to_spec() const {
  std::string s = lossy ? "lossy=1" : "lossy=0";
  for (const auto& e : events) {
    s += "," + std::to_string(e.at_query) + ":" + kind_code(e.kind);
    if (e.node != kNoNode) s += ":" + std::to_string(e.node);
  }
  return s;
}

}  // namespace tcast::faults
