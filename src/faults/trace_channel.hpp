// TraceChannel: replays a FaultTrace verbatim against any inner channel.
//
// The deterministic complement of FaultyChannel: instead of drawing faults
// from a seeded RNG, it walks an explicit FaultTrace and injects exactly
// the listed events at exactly the listed query indexes — consuming zero
// RNG, so the inner channel's own randomness is untouched and a replay is
// bit-identical to the recording run on the same stack.
//
// Per query (index `at`, in this decorator's own accounting):
//
//   pre-query   kReboot events at `at` fire (bookkeeping + frame-level
//               restore when the inner channel exposes ChannelFaultControl),
//               then kCrash events (bookkeeping + frame-level fail), then —
//               frame level only — a scheduled kFalseEmpty deafens the
//               initiator for this query's exchange;
//   query       resolves against the inner channel; without frame-level
//               control, crashed nodes are filtered from the queried set
//               (mirroring FaultyChannel's query-layer semantics);
//   post-query  remaining events at `at` apply in trace order with the same
//               guards as FaultyChannel: fe flips non-empty → empty, dg
//               flips captured → activity, sp flips empty → activity.
//
// Everything injected is re-recorded in this channel's own FaultLog, so
// "recorded trace replays identically" is checkable as log-vs-trace
// equality (frame-level runs: including the unconditional fe entries).
#pragma once

#include <span>
#include <vector>

#include "faults/fault_log.hpp"
#include "faults/fault_trace.hpp"
#include "group/query_channel.hpp"

namespace tcast::faults {

class TraceChannel final : public group::QueryChannel {
 public:
  /// Events are replayed in at_query order (ties keep trace order). The
  /// trace is copied; `inner` must outlive the channel.
  TraceChannel(group::QueryChannel& inner, FaultTrace trace);

  const FaultTrace& trace() const { return trace_; }
  const FaultLog& log() const { return log_; }
  void set_session(std::size_t session) { log_.set_session(session); }

  /// True when faults are injected through the inner channel's
  /// ChannelFaultControl (frame level) rather than by result rewriting.
  bool frame_level() const { return ctrl_ != nullptr; }

  std::size_t crashed_count() const { return crashed_count_; }
  bool is_crashed(NodeId id) const {
    const auto idx = static_cast<std::size_t>(id);
    return idx < crashed_.size() && crashed_[idx];
  }

  bool lossy() const override { return trace_.lossy || inner_->lossy(); }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return inner_->oracle_positive_count(nodes);
  }

 protected:
  void do_announce(const group::BinAssignment& a) override {
    inner_->announce(a);
  }
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                                     std::size_t idx) override;
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  /// Events scheduled for query `at`: [first, last) into events_.
  std::pair<std::size_t, std::size_t> slice_for(QueryCount at);
  /// Applies crash/reboot/frame-level-loss events before the query fires.
  void pre_query(QueryCount at, std::size_t first, std::size_t last);
  /// Applies the result-rewriting events after the query resolves.
  group::BinQueryResult post_query(group::BinQueryResult r, QueryCount at,
                                   std::size_t first, std::size_t last);

  group::QueryChannel* inner_;
  group::ChannelFaultControl* ctrl_ = nullptr;  ///< non-null ⇒ frame level
  FaultTrace trace_;
  std::vector<FaultEvent> events_;  ///< trace events, sorted by at_query
  std::size_t cursor_ = 0;          ///< first event not yet replayed
  FaultLog log_;

  std::vector<char> crashed_;  ///< indexed by NodeId
  std::size_t crashed_count_ = 0;
};

}  // namespace tcast::faults
