// FaultyChannel: a deterministic fault-injecting QueryChannel decorator.
//
// Wraps any channel and executes a FaultPlan against it. Per query, in a
// fixed order (so the RNG consumption per query is constant and every run
// of the same plan is bit-identical):
//
//   1. crash/reboot bookkeeping — due reboots fire, then the crash draw may
//      take down one uniformly-random alive participant;
//   2. the query resolves against the inner channel with crashed nodes'
//      replies suppressed (they are filtered out of the queried set — a
//      crashed mote is silent, whatever its sensor holds);
//   3. the loss-process draw (i.i.d. or Gilbert–Elliott): when it fires and
//      the result was non-empty, the result degrades to silence
//      (false-empty — the HACK-loss mechanism of Fig. 4);
//   4. the capture-downgrade draw: a surviving kCaptured degrades to
//      kActivity (lone-reply decode failure);
//   5. the spurious-activity draw: a surviving kEmpty reads as kActivity
//      (foreign energy in the vote window).
//
// Every injected fault is recorded in the FaultLog. The decorator declares
// itself lossy() whenever the plan can misreport, which is what trips the
// round engine's soundness gate and enables its retry policies.
//
// Frame-level fault determinism: when the inner channel exposes a
// ChannelFaultControl (the packet tier does), crash/reboot and loss faults
// are pushed *below* the query layer instead of being simulated by result
// rewriting — a crashed mote's radio powers off on the sim clock
// mid-exchange (it hears the poll, then dies before its reply turnaround),
// a reboot powers it back on, and a loss fault deafens the initiator for
// one query's exchange. The RNG draw sequence per query is unchanged
// (crash → loss → downgrade → spurious, all from the dedicated fault
// stream), so the same plan drives identical fault schedules on the exact
// and packet tiers. One semantic difference: frame-level false-empty is
// logged unconditionally (the injector cannot know whether the bin would
// have been silent anyway), while the query-layer path logs it only when
// it actually flipped a non-empty result.
//
// The oracle hook forwards, so instrumented/checked layers above keep their
// ground-truth view; ground truth is *not* consulted for injection — all
// faults are functions of (plan, query index, result) only.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "faults/fault_log.hpp"
#include "faults/fault_plan.hpp"
#include "group/query_channel.hpp"

namespace tcast::faults {

class FaultyChannel final : public group::QueryChannel {
 public:
  /// `participants` is the crashable universe (usually inner.all_nodes()).
  /// All fault randomness derives from plan.seed — `inner`'s own RNG is
  /// untouched.
  FaultyChannel(group::QueryChannel& inner,
                std::span<const NodeId> participants, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultLog& log() const { return log_; }

  /// Tags the fault log with a session/trial index (see FaultLog).
  void set_session(std::size_t session) { log_.set_session(session); }

  /// True when faults are injected at the frame level through the inner
  /// channel's ChannelFaultControl rather than by result rewriting.
  bool frame_level() const { return ctrl_ != nullptr; }

  std::size_t crashed_count() const { return crashed_count_; }
  bool is_crashed(NodeId id) const {
    const auto idx = static_cast<std::size_t>(id);
    return idx < crashed_.size() && crashed_[idx];
  }

  bool lossy() const override { return plan_.lossy() || inner_->lossy(); }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return inner_->oracle_positive_count(nodes);
  }

 protected:
  void do_announce(const group::BinAssignment& a) override {
    inner_->announce(a);
  }
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                                     std::size_t idx) override;
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  /// Step 1 above; `at` is this query's index.
  void run_crash_schedule(QueryCount at);
  /// Frame-level path only: performs the loss draw *before* the query and
  /// arms the inner channel's one-shot suppression when it fires. Returns
  /// whether the draw was consumed here (so corrupt() skips it).
  bool frame_level_loss(QueryCount at);
  /// Steps 3–5; consumes a fixed number of RNG draws per call unless the
  /// loss draw already happened pre-query (`skip_loss`).
  group::BinQueryResult corrupt(group::BinQueryResult r, QueryCount at,
                                bool skip_loss);
  /// True when the loss process fires for this query (chain stepped first).
  bool loss_draw();

  group::QueryChannel* inner_;
  group::ChannelFaultControl* ctrl_ = nullptr;  ///< non-null ⇒ frame level
  FaultPlan plan_;
  RngStream rng_;
  FaultLog log_;

  std::vector<NodeId> participants_;
  std::vector<char> crashed_;              ///< indexed by NodeId
  std::vector<QueryCount> reboot_due_;     ///< indexed by NodeId; reboot at this query
  std::size_t crashed_count_ = 0;
  bool ge_bad_ = false;                    ///< Gilbert–Elliott state
};

}  // namespace tcast::faults
