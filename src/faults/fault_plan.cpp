#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tcast::faults {
namespace {

bool valid_prob(double p) { return p >= 0.0 && p <= 1.0; }

/// Parses a double out of `text`, demanding full consumption.
std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

std::string format_prob(double p) {
  // Shortest rendering that parses back to the identical double: %g (6
  // significant digits) covers every hand-written probability, but plans
  // built programmatically (fuzzers, campaign grids) carry full-precision
  // doubles — fall back to max_digits10 so spec() always round-trips.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", p);
  if (std::strtod(buf, nullptr) != p)
    std::snprintf(buf, sizeof buf, "%.17g", p);
  return buf;
}

}  // namespace

const char* to_string(FaultPlan::LossProcess p) {
  switch (p) {
    case FaultPlan::LossProcess::kNone: return "none";
    case FaultPlan::LossProcess::kIid: return "iid";
    case FaultPlan::LossProcess::kGilbertElliott: return "ge";
  }
  return "?";
}

bool FaultPlan::lossy() const {
  return marginal_loss() > 0.0 || capture_downgrade > 0.0 ||
         spurious_activity > 0.0 || crash_rate > 0.0;
}

double FaultPlan::marginal_loss() const {
  switch (process) {
    case LossProcess::kNone:
      return 0.0;
    case LossProcess::kIid:
      return loss;
    case LossProcess::kGilbertElliott: {
      const double denom = ge_enter_bad + ge_exit_bad;
      // A frozen chain (both transitions 0) stays in its start state (good).
      const double pi_bad = denom > 0.0 ? ge_enter_bad / denom : 0.0;
      return pi_bad * ge_loss_bad + (1.0 - pi_bad) * ge_loss_good;
    }
  }
  return 0.0;
}

double FaultPlan::burst_loss() const {
  switch (process) {
    case LossProcess::kNone:
      return 0.0;
    case LossProcess::kIid:
      return loss;
    case LossProcess::kGilbertElliott: {
      const double from_bad =
          (1.0 - ge_exit_bad) * ge_loss_bad + ge_exit_bad * ge_loss_good;
      const double from_good =
          ge_enter_bad * ge_loss_bad + (1.0 - ge_enter_bad) * ge_loss_good;
      return std::max(from_bad, from_good);
    }
  }
  return 0.0;
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  for (const auto token : split(text, ',')) {
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = token.substr(0, eq);
    const auto value = token.substr(eq + 1);
    if (key == "iid") {
      const auto p = parse_double(value);
      if (!p || !valid_prob(*p)) return std::nullopt;
      plan.process = LossProcess::kIid;
      plan.loss = *p;
    } else if (key == "ge") {
      const auto parts = split(value, ':');
      if (parts.size() != 4) return std::nullopt;
      double vals[4];
      for (std::size_t i = 0; i < 4; ++i) {
        const auto p = parse_double(parts[i]);
        if (!p || !valid_prob(*p)) return std::nullopt;
        vals[i] = *p;
      }
      plan.process = LossProcess::kGilbertElliott;
      plan.ge_enter_bad = vals[0];
      plan.ge_exit_bad = vals[1];
      plan.ge_loss_good = vals[2];
      plan.ge_loss_bad = vals[3];
    } else if (key == "downgrade") {
      const auto p = parse_double(value);
      if (!p || !valid_prob(*p)) return std::nullopt;
      plan.capture_downgrade = *p;
    } else if (key == "spurious") {
      const auto p = parse_double(value);
      if (!p || !valid_prob(*p)) return std::nullopt;
      plan.spurious_activity = *p;
    } else if (key == "crash") {
      const auto p = parse_double(value);
      if (!p || !valid_prob(*p)) return std::nullopt;
      plan.crash_rate = *p;
    } else if (key == "reboot") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      plan.reboot_after = static_cast<std::size_t>(*v);
    } else if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      plan.seed = *v;
    } else {
      return std::nullopt;
    }
  }
  return plan;
}

std::string FaultPlan::spec() const {
  std::string s;
  const auto append = [&s](const std::string& token) {
    if (!s.empty()) s += ',';
    s += token;
  };
  switch (process) {
    case LossProcess::kNone:
      break;
    case LossProcess::kIid:
      append("iid=" + format_prob(loss));
      break;
    case LossProcess::kGilbertElliott:
      append("ge=" + format_prob(ge_enter_bad) + ":" +
             format_prob(ge_exit_bad) + ":" + format_prob(ge_loss_good) +
             ":" + format_prob(ge_loss_bad));
      break;
  }
  if (capture_downgrade > 0.0)
    append("downgrade=" + format_prob(capture_downgrade));
  if (spurious_activity > 0.0)
    append("spurious=" + format_prob(spurious_activity));
  if (crash_rate > 0.0) append("crash=" + format_prob(crash_rate));
  if (reboot_after > 0) append("reboot=" + std::to_string(reboot_after));
  append("seed=" + std::to_string(seed));
  return s;
}

}  // namespace tcast::faults
