// FaultPlan: a deterministic, seed-driven description of what a faulty
// channel does to a run.
//
// The paper's testbed (Sec. IV-D, Fig. 4) measured 102 HACK false negatives
// in 7,200 tcasts — losses that turn a non-empty bin into apparent silence.
// This module abstracts that failure census (and its relatives from the
// group-testing literature on faulty/dead responders) into four injectable
// fault kinds plus two loss processes:
//
//   false-empty        a non-empty bin reads as silence (lost replies);
//                      driven by the loss process (i.i.d. or bursty
//                      Gilbert–Elliott), since radio loss is what causes it
//   capture-downgrade  a 2+ capture decodes as mere activity (the lone-HACK
//                      decode failure the testbed saw most)
//   spurious-activity  an empty bin reads as activity (foreign energy in
//                      the pollcast vote window, Sec. III-B)
//   crash / reboot     a node stops replying mid-session and (optionally)
//                      returns after a fixed number of queries
//
// A plan is a pure value: the same plan (its `seed` included) injected into
// the same run reproduces the identical FaultLog and outcome, which is what
// makes every injected-fault failure replayable. Plans round-trip through a
// compact spec string (`parse` / `spec`) so a failing sweep point can be
// re-run from the command line (`tcast_cli --fault-plan ...`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tcast::faults {

struct FaultPlan {
  enum class LossProcess : std::uint8_t {
    kNone,            ///< replies never lost
    kIid,             ///< each query lost independently with prob `loss`
    kGilbertElliott,  ///< two-state bursty loss (good/bad Markov chain)
  };

  LossProcess process = LossProcess::kNone;
  /// kIid: per-query loss probability.
  double loss = 0.0;
  /// kGilbertElliott: per-query transition and per-state loss probabilities.
  /// The chain steps once per query *before* the loss draw.
  double ge_enter_bad = 0.02;  ///< P(good → bad)
  double ge_exit_bad = 0.25;   ///< P(bad → good)
  double ge_loss_good = 0.0;   ///< P(loss | good)
  double ge_loss_bad = 0.7;    ///< P(loss | bad)

  /// P(a captured reply is downgraded to undecoded activity) per query.
  double capture_downgrade = 0.0;
  /// P(an empty bin reads as activity) per query — interference.
  double spurious_activity = 0.0;
  /// P(one uniformly-random alive node crashes) per query.
  double crash_rate = 0.0;
  /// Queries until a crashed node reboots and rejoins; 0 = never.
  std::size_t reboot_after = 0;
  /// Root of the fault RNG stream. Part of the plan: replaying the same
  /// plan (seed included) reproduces the identical FaultLog.
  std::uint64_t seed = 1;

  /// True when any injected fault can make the channel misreport — the
  /// signal the engine's soundness gate and retry policies key off.
  bool lossy() const;

  /// Stationary per-query loss probability of the loss process (0 for
  /// kNone; `loss` for kIid; the Markov-stationary mix for Gilbert–Elliott).
  double marginal_loss() const;

  /// Worst-case P(next query lost | current state), maximised over states —
  /// the per-extra-attempt factor of the degradation envelope. Equals
  /// marginal_loss() for kIid; under Gilbert–Elliott it is dominated by
  /// "stay in the bad state", which is what makes bursts dangerous.
  double burst_loss() const;

  /// Parses a spec string: comma-separated `key=value` tokens, e.g.
  ///   "iid=0.05,downgrade=0.1,seed=7"
  ///   "ge=0.02:0.25:0:0.7,crash=0.005,reboot=50"
  /// Keys: iid, ge (enter:exit:loss_good:loss_bad), downgrade, spurious,
  /// crash, reboot, seed. Returns nullopt on any malformed or out-of-range
  /// token.
  static std::optional<FaultPlan> parse(std::string_view text);

  /// Canonical spec string; `parse(spec())` reproduces the plan exactly —
  /// including plans built programmatically with probabilities that have no
  /// short decimal form (probabilities are emitted with up to max_digits10
  /// significant digits when the short rendering would not round-trip).
  std::string spec() const;

  /// Alias of spec(), named for symmetry with parse(): every plan — parsed
  /// or programmatically built — satisfies `parse(to_spec(p)) == p`.
  std::string to_spec() const { return spec(); }

  bool operator==(const FaultPlan&) const = default;
};

const char* to_string(FaultPlan::LossProcess p);

}  // namespace tcast::faults
