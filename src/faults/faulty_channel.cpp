#include "faults/faulty_channel.hpp"

#include <algorithm>

namespace tcast::faults {

FaultyChannel::FaultyChannel(group::QueryChannel& inner,
                             std::span<const NodeId> participants,
                             FaultPlan plan)
    : QueryChannel(inner.model()),
      inner_(&inner),
      ctrl_(inner.fault_control()),
      plan_(plan),
      rng_(plan.seed, /*stream=*/0xFA17ULL),  // fixed fault stream id
      participants_(participants.begin(), participants.end()) {
  NodeId max_id = 0;
  for (const NodeId id : participants_) max_id = std::max(max_id, id);
  crashed_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  reboot_due_.assign(crashed_.size(), 0);
}

bool FaultyChannel::loss_draw() {
  switch (plan_.process) {
    case FaultPlan::LossProcess::kNone:
      return false;
    case FaultPlan::LossProcess::kIid:
      return rng_.bernoulli(plan_.loss);
    case FaultPlan::LossProcess::kGilbertElliott:
      // Step the chain, then draw the loss of the state just entered. Two
      // RNG draws per query regardless of outcome, so replays stay aligned.
      ge_bad_ = ge_bad_ ? !rng_.bernoulli(plan_.ge_exit_bad)
                        : rng_.bernoulli(plan_.ge_enter_bad);
      return rng_.bernoulli(ge_bad_ ? plan_.ge_loss_bad
                                    : plan_.ge_loss_good);
  }
  return false;
}

void FaultyChannel::run_crash_schedule(QueryCount at) {
  if (plan_.crash_rate <= 0.0) return;
  if (plan_.reboot_after > 0 && crashed_count_ > 0) {
    for (std::size_t idx = 0; idx < crashed_.size(); ++idx) {
      if (crashed_[idx] && reboot_due_[idx] <= at) {
        crashed_[idx] = 0;
        --crashed_count_;
        if (ctrl_) ctrl_->restore_node(static_cast<NodeId>(idx));
        log_.record(FaultEvent::Kind::kReboot, at,
                    static_cast<NodeId>(idx));
      }
    }
  }
  if (!rng_.bernoulli(plan_.crash_rate)) return;
  if (crashed_count_ >= participants_.size()) return;
  // Uniform victim among the currently-alive participants.
  std::vector<NodeId> alive;
  alive.reserve(participants_.size() - crashed_count_);
  for (const NodeId id : participants_)
    if (!crashed_[static_cast<std::size_t>(id)]) alive.push_back(id);
  const NodeId victim =
      alive[static_cast<std::size_t>(rng_.uniform_below(alive.size()))];
  crashed_[static_cast<std::size_t>(victim)] = 1;
  ++crashed_count_;
  if (plan_.reboot_after > 0)
    reboot_due_[static_cast<std::size_t>(victim)] = at + plan_.reboot_after;
  if (ctrl_) ctrl_->fail_node(victim);
  log_.record(FaultEvent::Kind::kCrash, at, victim);
}

bool FaultyChannel::frame_level_loss(QueryCount at) {
  if (!ctrl_ || plan_.process == FaultPlan::LossProcess::kNone) return false;
  // Same draw, moved before the query: the fault stream is private, so the
  // crash → loss → downgrade → spurious sequence is unchanged and the plan
  // replays bit-identically whether or not the inner channel is frame-level.
  if (loss_draw()) {
    ctrl_->suppress_next_query();
    // Logged unconditionally: at the frame level the loss *happened* (the
    // initiator was deaf for the exchange) even if the bin was silent.
    log_.record(FaultEvent::Kind::kFalseEmpty, at);
  }
  return true;
}

group::BinQueryResult FaultyChannel::corrupt(group::BinQueryResult r,
                                             QueryCount at, bool skip_loss) {
  // Draws happen unconditionally (for each enabled fault class) so the
  // per-query RNG consumption is constant; application is sequential, so a
  // lost reply plus interference legitimately reads as spurious activity.
  const bool lost =
      !skip_loss && plan_.process != FaultPlan::LossProcess::kNone
          ? loss_draw()
          : false;
  const bool downgrade = plan_.capture_downgrade > 0.0
                             ? rng_.bernoulli(plan_.capture_downgrade)
                             : false;
  const bool spurious = plan_.spurious_activity > 0.0
                            ? rng_.bernoulli(plan_.spurious_activity)
                            : false;
  if (lost && r.nonempty()) {
    log_.record(FaultEvent::Kind::kFalseEmpty, at);
    r = group::BinQueryResult::empty();
  }
  if (downgrade && r.kind == group::BinQueryResult::Kind::kCaptured) {
    log_.record(FaultEvent::Kind::kCaptureDowngrade, at, r.captured);
    r = group::BinQueryResult::activity();
  }
  if (spurious && r.kind == group::BinQueryResult::Kind::kEmpty) {
    log_.record(FaultEvent::Kind::kSpuriousActivity, at);
    r = group::BinQueryResult::activity();
  }
  return r;
}

group::BinQueryResult FaultyChannel::do_query_bin(
    const group::BinAssignment& a, std::size_t idx) {
  const QueryCount at = queries_used() - 1;  // base class already counted us
  run_crash_schedule(at);
  const bool skip_loss = frame_level_loss(at);
  group::BinQueryResult r;
  const auto bin = a.bin(idx);
  const bool any_crashed =
      !ctrl_ && crashed_count_ > 0 &&
      std::any_of(bin.begin(), bin.end(),
                  [this](NodeId id) { return is_crashed(id); });
  if (any_crashed) {
    // Query-layer crash semantics: a crashed mote is silent, so it is
    // filtered out of the queried set. (Frame level: its radio is off —
    // the inner channel enforces silence for us, no filtering.)
    std::vector<NodeId> filtered;
    filtered.reserve(bin.size());
    for (const NodeId id : bin)
      if (!is_crashed(id)) filtered.push_back(id);
    r = inner_->query_set(filtered);
  } else {
    r = inner_->query_bin(a, idx);
  }
  return corrupt(r, at, skip_loss);
}

group::BinQueryResult FaultyChannel::do_query_set(
    std::span<const NodeId> nodes) {
  const QueryCount at = queries_used() - 1;
  run_crash_schedule(at);
  const bool skip_loss = frame_level_loss(at);
  group::BinQueryResult r;
  if (!ctrl_ && crashed_count_ > 0) {
    std::vector<NodeId> filtered;
    filtered.reserve(nodes.size());
    for (const NodeId id : nodes)
      if (!is_crashed(id)) filtered.push_back(id);
    r = inner_->query_set(filtered);
  } else {
    r = inner_->query_set(nodes);
  }
  return corrupt(r, at, skip_loss);
}

}  // namespace tcast::faults
