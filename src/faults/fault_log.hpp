// FaultLog: the replayable record of every fault a FaultyChannel injected.
//
// Each event carries the fault kind, the (outer) query index at which it
// fired, and the node involved when one is (crash/reboot, downgraded
// capture). Logs compare bit-exactly, which is how the replay guarantee is
// asserted: same FaultPlan + same run ⇒ identical FaultLog ⇒ identical
// outcome. `to_string` renders the log for post-hoc blame (tcast_cli
// --verbose).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tcast::faults {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kFalseEmpty,       ///< non-empty bin reported as silence
    kCaptureDowngrade, ///< capture decoded as mere activity
    kSpuriousActivity, ///< empty bin reported as activity
    kCrash,            ///< node stopped replying
    kReboot,           ///< crashed node rejoined
  };

  Kind kind = Kind::kFalseEmpty;
  /// Query index (0-based, in the faulty channel's own accounting) at which
  /// the fault fired. Crash/reboot events use the index of the query whose
  /// pre-processing triggered them.
  QueryCount at_query = 0;
  /// The node involved, when the fault names one (crash, reboot, downgraded
  /// capture); kNoNode otherwise.
  NodeId node = kNoNode;

  bool operator==(const FaultEvent&) const = default;
};

const char* to_string(FaultEvent::Kind k);

class FaultLog {
 public:
  void record(FaultEvent::Kind kind, QueryCount at_query,
              NodeId node = kNoNode) {
    events_.push_back({kind, at_query, node});
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one kind.
  std::size_t count(FaultEvent::Kind kind) const;

  /// Tags the log with the session/trial it belongs to; rendered as an
  /// `s=N` prefix on every line so multi-trial sweeps (campaigns,
  /// tcast_cli --trials) stay attributable. Not part of equality — two
  /// identical fault schedules from different trials still compare equal.
  void set_session(std::size_t session) { session_ = session; }
  std::optional<std::size_t> session() const { return session_; }

  /// One line per event: "q=12 false-empty", "q=30 crash node=4", or with
  /// a session set, "s=3 q=30 crash node=4".
  std::string to_string() const;

  bool operator==(const FaultLog& other) const {
    return events_ == other.events_;
  }

 private:
  std::vector<FaultEvent> events_;
  std::optional<std::size_t> session_;
};

}  // namespace tcast::faults
