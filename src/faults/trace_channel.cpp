#include "faults/trace_channel.hpp"

#include <algorithm>

namespace tcast::faults {

TraceChannel::TraceChannel(group::QueryChannel& inner, FaultTrace trace)
    : QueryChannel(inner.model()),
      inner_(&inner),
      ctrl_(inner.fault_control()),
      trace_(std::move(trace)),
      events_(trace_.events) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_query < b.at_query;
                   });
  NodeId max_id = 0;
  for (const auto& e : events_)
    if (e.node != kNoNode) max_id = std::max(max_id, e.node);
  crashed_.assign(static_cast<std::size_t>(max_id) + 1, 0);
}

std::pair<std::size_t, std::size_t> TraceChannel::slice_for(QueryCount at) {
  // Queries arrive in increasing index order, so a cursor suffices. Events
  // scheduled for already-passed indexes (possible only with hand-edited
  // traces) are skipped, never applied late.
  while (cursor_ < events_.size() && events_[cursor_].at_query < at)
    ++cursor_;
  const std::size_t first = cursor_;
  std::size_t last = first;
  while (last < events_.size() && events_[last].at_query == at) ++last;
  cursor_ = last;
  return {first, last};
}

void TraceChannel::pre_query(QueryCount at, std::size_t first,
                             std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const auto& e = events_[i];
    switch (e.kind) {
      case FaultEvent::Kind::kReboot: {
        const auto idx = static_cast<std::size_t>(e.node);
        if (idx < crashed_.size() && crashed_[idx]) {
          crashed_[idx] = 0;
          --crashed_count_;
        }
        if (ctrl_) ctrl_->restore_node(e.node);
        log_.record(FaultEvent::Kind::kReboot, at, e.node);
        break;
      }
      case FaultEvent::Kind::kCrash: {
        const auto idx = static_cast<std::size_t>(e.node);
        if (idx < crashed_.size() && !crashed_[idx]) {
          crashed_[idx] = 1;
          ++crashed_count_;
        }
        if (ctrl_) ctrl_->fail_node(e.node);
        log_.record(FaultEvent::Kind::kCrash, at, e.node);
        break;
      }
      case FaultEvent::Kind::kFalseEmpty:
        // Frame level: losses happen on the air, before the result exists.
        if (ctrl_) {
          ctrl_->suppress_next_query();
          log_.record(FaultEvent::Kind::kFalseEmpty, at);
        }
        break;
      default:
        break;  // result-rewriting events handled in post_query
    }
  }
}

group::BinQueryResult TraceChannel::post_query(group::BinQueryResult r,
                                               QueryCount at,
                                               std::size_t first,
                                               std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const auto& e = events_[i];
    switch (e.kind) {
      case FaultEvent::Kind::kFalseEmpty:
        if (!ctrl_ && r.nonempty()) {
          log_.record(FaultEvent::Kind::kFalseEmpty, at);
          r = group::BinQueryResult::empty();
        }
        break;
      case FaultEvent::Kind::kCaptureDowngrade:
        if (r.kind == group::BinQueryResult::Kind::kCaptured) {
          // Log the node actually captured in *this* run, which may differ
          // from the recorded one when replaying on a different stack.
          log_.record(FaultEvent::Kind::kCaptureDowngrade, at, r.captured);
          r = group::BinQueryResult::activity();
        }
        break;
      case FaultEvent::Kind::kSpuriousActivity:
        if (r.kind == group::BinQueryResult::Kind::kEmpty) {
          log_.record(FaultEvent::Kind::kSpuriousActivity, at);
          r = group::BinQueryResult::activity();
        }
        break;
      default:
        break;  // crash/reboot handled in pre_query
    }
  }
  return r;
}

group::BinQueryResult TraceChannel::do_query_bin(
    const group::BinAssignment& a, std::size_t idx) {
  const QueryCount at = queries_used() - 1;  // base class already counted us
  const auto [first, last] = slice_for(at);
  pre_query(at, first, last);
  group::BinQueryResult r;
  const auto bin = a.bin(idx);
  const bool any_crashed =
      !ctrl_ && crashed_count_ > 0 &&
      std::any_of(bin.begin(), bin.end(),
                  [this](NodeId id) { return is_crashed(id); });
  if (any_crashed) {
    std::vector<NodeId> filtered;
    filtered.reserve(bin.size());
    for (const NodeId id : bin)
      if (!is_crashed(id)) filtered.push_back(id);
    r = inner_->query_set(filtered);
  } else {
    r = inner_->query_bin(a, idx);
  }
  return post_query(r, at, first, last);
}

group::BinQueryResult TraceChannel::do_query_set(
    std::span<const NodeId> nodes) {
  const QueryCount at = queries_used() - 1;
  const auto [first, last] = slice_for(at);
  pre_query(at, first, last);
  group::BinQueryResult r;
  if (!ctrl_ && crashed_count_ > 0) {
    std::vector<NodeId> filtered;
    filtered.reserve(nodes.size());
    for (const NodeId id : nodes)
      if (!is_crashed(id)) filtered.push_back(id);
    r = inner_->query_set(filtered);
  } else {
    r = inner_->query_set(nodes);
  }
  return post_query(r, at, first, last);
}

}  // namespace tcast::faults
