// FaultTrace: an explicit, serializable per-query fault schedule.
//
// Where a FaultPlan is *generative* (probabilities + a seed), a FaultTrace
// is *extensional*: the literal list of fault events, each pinned to the
// query index at which it fires. A trace can be
//
//   - recorded from any FaultyChannel run (`record`) — the channel's
//     FaultLog *is* the schedule, since fault injection is a pure function
//     of (plan, query index);
//   - replayed verbatim through a TraceChannel, which consumes no RNG and
//     reproduces the exact same sequence of injected faults on any inner
//     channel — the replay half of the chaos engine's record/replay loop;
//   - round-tripped through a compact one-line spec (`to_spec`/`parse`),
//     which is how the delta-debugging shrinker emits minimal reproducers
//     and how regression tests pin them down.
//
// Spec grammar (comma-separated):
//
//   trace      := "lossy=" ("0"|"1") ("," event)*
//   event      := at ":" kind [":" node]
//   kind       := "fe" | "dg" | "sp" | "cr" | "rb"
//
// e.g. "lossy=1,3:fe,10:cr:2,15:rb:2". `cr`/`rb` require a node; `fe`/`sp`
// forbid one; `dg` takes an optional node (the capture that was downgraded
// when recorded — ignored on replay, where the actual captured node is
// logged). The `lossy` bit preserves the recording channel's lossy() claim
// so the engine's soundness gate behaves identically under replay.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_log.hpp"

namespace tcast::faults {

class FaultyChannel;

struct FaultTrace {
  std::vector<FaultEvent> events;
  /// Whether the recording fault layer declared itself lossy(); replayed
  /// TraceChannels report at least this.
  bool lossy = false;

  /// Snapshots a FaultyChannel's injected-fault schedule (its FaultLog)
  /// plus its lossy() claim. Record after the run completes.
  static FaultTrace record(const FaultyChannel& channel);

  /// Parses the spec grammar above; nullopt on any malformed token,
  /// missing/forbidden node, or unknown kind.
  static std::optional<FaultTrace> parse(std::string_view text);

  /// Canonical one-line spec; `parse(to_spec(t)) == t` for every trace.
  std::string to_spec() const;

  bool operator==(const FaultTrace&) const = default;
};

}  // namespace tcast::faults
