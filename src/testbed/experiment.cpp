#include "testbed/experiment.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tcast::testbed {

MoteExperimentResults run_mote_experiment(const MoteExperimentConfig& cfg) {
  MoteExperimentResults results;
  results.census.resize(cfg.participants + 1);
  for (std::size_t k = 0; k <= cfg.participants; ++k)
    results.census[k].k = k;

  RngStream workload_rng(cfg.seed, 0xA11CE);

  std::size_t bench_stream = 0;
  for (const std::size_t t : cfg.thresholds) {
    // A fresh bench per threshold configuration (new seed stream), motes
    // rebooted between runs, per the paper's methodology.
    Testbed::Config bench_cfg;
    bench_cfg.participants = cfg.participants;
    bench_cfg.seed = cfg.seed;
    bench_cfg.stream = ++bench_stream;
    bench_cfg.radio_irregularity = cfg.radio_irregularity;
    Testbed bench(bench_cfg);

    for (std::size_t x = 0; x <= cfg.participants; ++x) {
      MoteExperimentPoint point;
      point.t = t;
      point.x = x;
      for (std::size_t run = 0; run < cfg.runs_per_point; ++run) {
        bench.reboot_all();
        std::vector<bool> positive(cfg.participants, false);
        for (const NodeId id : workload_rng.sample_subset(cfg.participants, x))
          positive[static_cast<std::size_t>(id)] = true;
        bench.configure_predicates(positive);
        bench.channel().clear_bin_events();

        const auto run_result = bench.run_query(t, "2tbins");
        point.queries.add(static_cast<double>(run_result.outcome.queries));
        ++point.runs;
        ++results.total_runs;
        results.total_queries +=
            static_cast<std::size_t>(run_result.outcome.queries);
        if (run_result.truth && !run_result.outcome.decision) {
          ++point.false_negative_runs;
          ++results.false_negative_runs;
        }
        if (!run_result.truth && run_result.outcome.decision) {
          ++point.false_positive_runs;
          ++results.false_positive_runs;
        }

        for (const auto& event : bench.channel().bin_events()) {
          TCAST_CHECK(event.true_positives < results.census.size());
          auto& entry = results.census[event.true_positives];
          ++entry.queried;
          if (event.true_positives > 0 && !event.observed_nonempty)
            ++entry.missed;
          if (event.true_positives == 0 && event.observed_nonempty)
            ++entry.phantom;
        }
      }
      results.points.push_back(std::move(point));
    }
  }
  return results;
}

}  // namespace tcast::testbed
