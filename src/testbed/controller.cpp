#include "testbed/controller.hpp"

#include "common/check.hpp"
#include "core/registry.hpp"
#include "rcd/addressing.hpp"

namespace tcast::testbed {

// --- MoteQueryChannel ---

MoteQueryChannel::MoteQueryChannel(Testbed& bench)
    : QueryChannel(group::CollisionModel::kOnePlus), bench_(&bench) {}

void MoteQueryChannel::do_announce(const group::BinAssignment& a) {
  const auto wire = a.to_wire(bench_->participant_count());
  if (wire == announced_wire_) return;
  ++session_;
  bool done = false;
  bench_->initiator().backcast().announce(/*predicate_id=*/1, session_, wire,
                                          [&done] { done = true; });
  bench_->settle_until([&done] { return done; });
  TCAST_CHECK(done);
  announced_wire_ = wire;
}

group::BinQueryResult MoteQueryChannel::poll(std::uint16_t bin,
                                             std::size_t true_positives) {
  group::BinQueryResult result;
  bool done = false;
  bench_->initiator().backcast().poll_bin(
      bin, [&](rcd::BackcastInitiator::PollResult r) {
        result = r.nonempty ? group::BinQueryResult::activity()
                            : group::BinQueryResult::empty();
        done = true;
      });
  bench_->settle_until([&done] { return done; });
  TCAST_CHECK(done);
  bin_events_.push_back(BinEvent{true_positives, result.nonempty()});
  return result;
}

group::BinQueryResult MoteQueryChannel::do_query_bin(
    const group::BinAssignment& a, std::size_t idx) {
  do_announce(a);
  return poll(static_cast<std::uint16_t>(idx),
              bench_->positive_count(a.bin(idx)));
}

group::BinQueryResult MoteQueryChannel::do_query_set(
    std::span<const NodeId> nodes) {
  std::vector<std::uint16_t> wire(bench_->participant_count(),
                                  rcd::kNotInRound);
  for (const NodeId id : nodes) wire.at(static_cast<std::size_t>(id)) = 0;
  if (wire != announced_wire_) {
    ++session_;
    bool done = false;
    bench_->initiator().backcast().announce(1, session_, wire,
                                            [&done] { done = true; });
    bench_->settle_until([&done] { return done; });
    TCAST_CHECK(done);
    announced_wire_ = wire;
  }
  return poll(0, bench_->positive_count(nodes));
}

// --- Testbed ---

Testbed::Testbed(Config cfg)
    : cfg_(std::move(cfg)),
      binning_rng_(cfg_.seed ^ 0x5eedb1a5u, cfg_.stream + 1) {
  if (cfg_.radio_irregularity &&
      cfg_.channel.hack.fn1() == 0.0) {
    cfg_.channel.hack = radio::HackReceptionModel();  // calibrated defaults
  }
  sim_ = std::make_unique<sim::Simulator>(cfg_.seed, cfg_.stream);
  radio_channel_ = std::make_unique<radio::Channel>(*sim_, cfg_.channel);

  // Serial port 0 is the initiator's. Every command is acknowledged over
  // the wire; settle() drains the bench until all outstanding acks arrive
  // (which also works when an interference source keeps the radio event
  // queue busy forever).
  serials_.push_back(
      std::make_unique<SerialPort>(*sim_, cfg_.serial_latency));
  serials_.back()->bind_laptop(
      [this](const Response&) { ++acks_received_; });
  initiator_ = std::make_unique<InitiatorMote>(*radio_channel_, *serials_[0]);
  for (std::size_t i = 0; i < cfg_.participants; ++i) {
    serials_.push_back(
        std::make_unique<SerialPort>(*sim_, cfg_.serial_latency));
    serials_.back()->bind_laptop(
        [this](const Response&) { ++acks_received_; });
    participants_.push_back(std::make_unique<ParticipantMote>(
        *radio_channel_, static_cast<NodeId>(i), *serials_.back()));
  }
  query_channel_ = std::make_unique<MoteQueryChannel>(*this);
  if (cfg_.interference_duty > 0.0) {
    radio::InterferenceSource::Config icfg;
    icfg.duty = cfg_.interference_duty;
    interference_ =
        std::make_unique<radio::InterferenceSource>(*radio_channel_, icfg);
    interference_->start();
  }
}

Testbed::~Testbed() = default;

std::vector<NodeId> Testbed::all_nodes() const {
  std::vector<NodeId> out(participants_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<NodeId>(i);
  return out;
}

void Testbed::settle() {
  sim_->run_until_flag(
      [this] { return acks_received_ >= acks_expected_; });
  TCAST_CHECK_MSG(acks_received_ >= acks_expected_,
                  "serial command was never acknowledged");
}

void Testbed::settle_until(const std::function<bool()>& done) {
  sim_->run_until_flag(done);
}

void Testbed::send_command(std::size_t serial_index, Command cmd) {
  ++acks_expected_;
  serials_.at(serial_index)->send_command(std::move(cmd));
}

void Testbed::configure_predicates(const std::vector<bool>& positive) {
  TCAST_CHECK(positive.size() == participants_.size());
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    send_command(i + 1, ConfigureCmd{.predicate_positive = positive[i],
                                     .predicate_id = 1});
  }
  settle();
}

void Testbed::reboot_all() {
  for (std::size_t i = 0; i < serials_.size(); ++i)
    send_command(i, RebootCmd{});
  settle();
}

bool Testbed::is_positive(NodeId id) const {
  return participants_.at(static_cast<std::size_t>(id))->predicate_positive();
}

std::size_t Testbed::positive_count(std::span<const NodeId> nodes) const {
  std::size_t count = 0;
  for (const NodeId id : nodes)
    if (is_positive(id)) ++count;
  return count;
}

core::EngineOptions Testbed::realistic_options() {
  core::EngineOptions opts;
  opts.ordering = core::BinOrdering::kInOrder;
  opts.two_plus_activity_counts_two = false;
  return opts;
}

Testbed::RunResult Testbed::run_query(std::size_t t,
                                      std::string_view algorithm,
                                      const core::EngineOptions& opts) {
  const auto* spec = core::find_algorithm(algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "unknown algorithm on the testbed");
  TCAST_CHECK_MSG(!spec->needs_oracle,
                  "oracle algorithms cannot run on the real bench");
  // Stimulate the initiator over serial (matches the paper's methodology;
  // the command itself is bookkeeping, the session below is the real work).
  send_command(0, QueryCmd{t, std::string(algorithm)});
  settle();

  const auto nodes = all_nodes();
  RunResult result;
  result.outcome =
      spec->run(*query_channel_, nodes, t, binning_rng_, opts);
  result.truth = positive_count(nodes) >= t;
  result.correct = result.outcome.decision == result.truth;
  return result;
}

}  // namespace tcast::testbed
