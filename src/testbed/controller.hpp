// The controlling laptop plus the full emulated bench (Sec. IV-D.2): one
// initiator and N participant TelosB motes on a shared channel, each wired
// to the controller over its own serial port.
//
// The controller drives the bench from *outside* the simulation, exactly as
// the real laptop did: it issues serial commands, runs the simulator until
// the bench settles, then stimulates the initiator to run a tcast session.
// The initiator's query loop is exposed to the algorithm layer through
// MoteQueryChannel, which resolves every query by running the actual
// backcast exchange on the emulated radios.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/round_engine.hpp"
#include "group/query_channel.hpp"
#include "radio/interference.hpp"
#include "testbed/mote.hpp"

namespace tcast::testbed {

class Testbed;

/// QueryChannel implementation backed by the initiator mote's backcast.
/// Ground-truth oracle hooks are intentionally NOT implemented: the bench is
/// a realistic tier and bins are queried in natural order.
class MoteQueryChannel final : public group::QueryChannel {
 public:
  explicit MoteQueryChannel(Testbed& bench);

  struct BinEvent {
    std::size_t true_positives = 0;  ///< ground truth (controller knows it)
    bool observed_nonempty = false;
  };
  /// Per-query log of the most recent session (error census input).
  const std::vector<BinEvent>& bin_events() const { return bin_events_; }
  void clear_bin_events() { bin_events_.clear(); }

 protected:
  void do_announce(const group::BinAssignment& a) override;
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                              std::size_t idx) override;
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  group::BinQueryResult poll(std::uint16_t bin, std::size_t true_positives);

  Testbed* bench_;
  std::vector<std::uint16_t> announced_wire_;
  std::uint32_t session_ = 0;
  std::vector<BinEvent> bin_events_;
};

class Testbed {
 public:
  struct Config {
    std::size_t participants = 12;  ///< the paper's bench size
    radio::ChannelConfig channel;   ///< defaults get the calibrated HACK model
    std::uint64_t seed = 1;
    std::uint64_t stream = 0;
    SimTime serial_latency = kMillisecond;
    /// Apply the calibrated radio-irregularity model (fn1/β defaults) when
    /// the caller did not set one. Set false for an ideal bench.
    bool radio_irregularity = true;
    /// Foreign cross-traffic duty cycle (the multihop/Kansei future-work
    /// scenario, Sec. VII). 0 disables it.
    double interference_duty = 0.0;
  };

  explicit Testbed(Config cfg);
  ~Testbed();

  std::size_t participant_count() const { return participants_.size(); }
  std::vector<NodeId> all_nodes() const;

  /// Serial: configure every participant's predicate value.
  void configure_predicates(const std::vector<bool>& positive);

  /// Serial: reboot the initiator and every participant.
  void reboot_all();

  struct RunResult {
    core::ThresholdOutcome outcome;
    bool truth = false;    ///< ground truth x ≥ t
    bool correct = false;  ///< outcome.decision == truth
  };

  /// Stimulates the initiator to run one tcast session. `algorithm` is a
  /// registry name; the paper's bench implements 2tBins.
  RunResult run_query(std::size_t t, std::string_view algorithm = "2tbins",
                      const core::EngineOptions& opts = realistic_options());

  /// Realistic engine defaults for the bench: natural bin order, no 2+
  /// shortcuts (backcast is 1+).
  static core::EngineOptions realistic_options();

  MoteQueryChannel& channel() { return *query_channel_; }
  sim::Simulator& simulator() { return *sim_; }
  InitiatorMote& initiator() { return *initiator_; }
  bool is_positive(NodeId id) const;
  std::size_t positive_count(std::span<const NodeId> nodes) const;

 private:
  friend class MoteQueryChannel;

  /// Drains the bench until every issued serial command has been
  /// acknowledged (interference keeps the event queue busy forever, so
  /// plain run-to-quiescence is not an option).
  void settle();

  /// Drains until `done` reports true (protocol-window completions).
  void settle_until(const std::function<bool()>& done);

  void send_command(std::size_t serial_index, Command cmd);

  Config cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<radio::Channel> radio_channel_;
  std::vector<std::unique_ptr<SerialPort>> serials_;
  std::unique_ptr<InitiatorMote> initiator_;
  std::vector<std::unique_ptr<ParticipantMote>> participants_;
  std::unique_ptr<MoteQueryChannel> query_channel_;
  std::unique_ptr<radio::InterferenceSource> interference_;
  RngStream binning_rng_;
  std::size_t acks_expected_ = 0;
  std::size_t acks_received_ = 0;
};

}  // namespace tcast::testbed
