// Mote firmware emulation (TinyOS-2.0-style, Sec. IV-D).
//
// A ParticipantMote owns a radio and a backcast responder; its only state is
// the configured predicate value, set over serial. An InitiatorMote owns
// the backcast initiator. Reboot restores power-on state (the experiment
// reboots every mote between runs "to remove the effect of the previous
// run").
#pragma once

#include <memory>

#include "radio/radio.hpp"
#include "rcd/backcast.hpp"
#include "testbed/serial_port.hpp"

namespace tcast::testbed {

class ParticipantMote {
 public:
  ParticipantMote(radio::Channel& channel, NodeId id, SerialPort& serial);

  NodeId id() const { return id_; }
  bool predicate_positive() const { return predicate_positive_; }
  radio::Radio& radio() { return *radio_; }

  void reboot();

 private:
  void handle_command(const Command& cmd);

  NodeId id_;
  SerialPort* serial_;
  std::unique_ptr<radio::Radio> radio_;
  std::unique_ptr<rcd::BackcastResponder> responder_;
  bool predicate_positive_ = false;
  std::uint8_t predicate_id_ = 1;
};

class InitiatorMote {
 public:
  InitiatorMote(radio::Channel& channel, SerialPort& serial);

  radio::Radio& radio() { return *radio_; }
  rcd::BackcastInitiator& backcast() { return *initiator_; }

  void reboot();

 private:
  void handle_command(const Command& cmd);

  SerialPort* serial_;
  std::unique_ptr<radio::Radio> radio_;
  std::unique_ptr<rcd::BackcastInitiator> initiator_;
};

}  // namespace tcast::testbed
