// The Fig-4 mote experiment (Sec. IV-D): 2tBins on an emulated bench of 12
// participant TelosB motes, thresholds t ∈ {2, 4, 6}, 100 runs per (t, x)
// point, with every mote rebooted between runs. Reports the query-count
// series plus the error census the paper reports in prose (102 / 7,200
// false-negative tcasts, none positive, majority at single-HACK bins).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "testbed/controller.hpp"

namespace tcast::testbed {

struct MoteExperimentConfig {
  std::size_t participants = 12;
  std::vector<std::size_t> thresholds = {2, 4, 6};
  std::size_t runs_per_point = 100;
  std::uint64_t seed = 0xbe9cfeedULL;
  bool radio_irregularity = true;
};

struct MoteExperimentPoint {
  std::size_t t = 0;
  std::size_t x = 0;
  RunningStats queries;
  std::size_t runs = 0;
  std::size_t false_negative_runs = 0;  ///< truth ≥ t but decided false
  std::size_t false_positive_runs = 0;  ///< truth < t but decided true
};

/// Bin-level reception census keyed by k, the true positive count of the
/// queried bin (i.e. how many HACKs were superposed).
struct HackCensusEntry {
  std::size_t k = 0;
  std::size_t queried = 0;  ///< bins with exactly k positives queried
  std::size_t missed = 0;   ///< read as silent although k > 0
  std::size_t phantom = 0;  ///< read as non-empty although k == 0
};

struct MoteExperimentResults {
  std::vector<MoteExperimentPoint> points;
  std::vector<HackCensusEntry> census;
  std::size_t total_runs = 0;
  std::size_t total_queries = 0;
  std::size_t false_negative_runs = 0;
  std::size_t false_positive_runs = 0;

  double run_error_rate() const {
    return total_runs == 0
               ? 0.0
               : static_cast<double>(false_negative_runs +
                                     false_positive_runs) /
                     static_cast<double>(total_runs);
  }
};

MoteExperimentResults run_mote_experiment(
    const MoteExperimentConfig& cfg = {});

}  // namespace tcast::testbed
