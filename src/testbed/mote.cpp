#include "testbed/mote.hpp"

#include "rcd/addressing.hpp"

namespace tcast::testbed {

ParticipantMote::ParticipantMote(radio::Channel& channel, NodeId id,
                                 SerialPort& serial)
    : id_(id), serial_(&serial) {
  radio_ = std::make_unique<radio::Radio>(channel, id,
                                          rcd::participant_addr(id));
  responder_ = std::make_unique<rcd::BackcastResponder>(
      *radio_, [this](std::uint8_t pred) {
        return pred == predicate_id_ && predicate_positive_;
      });
  radio_->set_receive_handler(
      [this](const radio::Frame& f, const radio::RxInfo&) {
        responder_->on_frame(f);
      });
  radio_->power_on();
  serial_->bind_mote([this](const Command& cmd) { handle_command(cmd); });
}

void ParticipantMote::handle_command(const Command& cmd) {
  if (const auto* cfg = std::get_if<ConfigureCmd>(&cmd)) {
    predicate_positive_ = cfg->predicate_positive;
    predicate_id_ = cfg->predicate_id;
    serial_->send_response(Response{.ok = true});
  } else if (std::holds_alternative<RebootCmd>(cmd)) {
    reboot();
    serial_->send_response(Response{.ok = true});
  }
  // QueryCmd is initiator-only; participants ignore it.
}

void ParticipantMote::reboot() {
  predicate_positive_ = false;
  radio_->set_alt_address(std::nullopt);
  radio_->set_auto_ack(true);
  radio_->power_on();
}

InitiatorMote::InitiatorMote(radio::Channel& channel, SerialPort& serial)
    : serial_(&serial) {
  radio_ = std::make_unique<radio::Radio>(channel, kNoNode,
                                          rcd::kInitiatorAddr);
  radio_->power_on();
  initiator_ = std::make_unique<rcd::BackcastInitiator>(*radio_);
  radio_->set_receive_handler(
      [this](const radio::Frame& f, const radio::RxInfo& info) {
        initiator_->on_frame(f, info);
      });
  serial_->bind_mote([this](const Command& cmd) { handle_command(cmd); });
}

void InitiatorMote::handle_command(const Command& cmd) {
  if (std::holds_alternative<RebootCmd>(cmd)) reboot();
  // Every serial command is acknowledged immediately (command accepted);
  // a QueryCmd's actual session is then driven through MoteQueryChannel
  // and its result surfaces via the controller, not this ack.
  serial_->send_response(Response{.ok = true});
}

void InitiatorMote::reboot() {
  radio_->set_alt_address(std::nullopt);
  radio_->power_on();
}

}  // namespace tcast::testbed
