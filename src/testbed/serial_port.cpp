#include "testbed/serial_port.hpp"

#include "common/check.hpp"

namespace tcast::testbed {

void SerialPort::send_command(Command cmd) {
  TCAST_CHECK_MSG(to_mote_ != nullptr, "serial port has no mote bound");
  sim_->schedule_after(latency_, [this, cmd = std::move(cmd)] {
    to_mote_(cmd);
  });
}

void SerialPort::send_response(Response rsp) {
  TCAST_CHECK_MSG(to_laptop_ != nullptr, "serial port has no laptop bound");
  sim_->schedule_after(latency_, [this, rsp] { to_laptop_(rsp); });
}

}  // namespace tcast::testbed
