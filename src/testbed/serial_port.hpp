// Serial back-channel between the controlling laptop and a mote.
//
// In the paper's setup (Sec. IV-D.2) every mote hangs off the laptop via a
// serial interface exposing configure / query / reboot. We model the wire
// as a latency-delayed, loss-free message pipe inside the simulation; the
// radio never carries control traffic, exactly as on the real bench.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace tcast::testbed {

struct ConfigureCmd {
  bool predicate_positive = false;
  std::uint8_t predicate_id = 1;
};

struct QueryCmd {
  std::size_t threshold = 0;
  std::string algorithm = "2tbins";
};

struct RebootCmd {};

using Command = std::variant<ConfigureCmd, QueryCmd, RebootCmd>;

struct Response {
  bool ok = true;
  bool decision = false;
  QueryCount queries = 0;
};

/// One laptop↔mote serial line.
class SerialPort {
 public:
  using CommandHandler = std::function<void(const Command&)>;
  using ResponseHandler = std::function<void(const Response&)>;

  SerialPort(sim::Simulator& simulator, SimTime latency = kMillisecond)
      : sim_(&simulator), latency_(latency) {}

  /// Mote side: register the firmware's command handler.
  void bind_mote(CommandHandler handler) { to_mote_ = std::move(handler); }

  /// Laptop side: register the controller's response handler.
  void bind_laptop(ResponseHandler handler) {
    to_laptop_ = std::move(handler);
  }

  /// Laptop → mote, delivered after one wire latency.
  void send_command(Command cmd);

  /// Mote → laptop, delivered after one wire latency.
  void send_response(Response rsp);

 private:
  sim::Simulator* sim_;
  SimTime latency_;
  CommandHandler to_mote_;
  ResponseHandler to_laptop_;
};

}  // namespace tcast::testbed
