// Passive RFID tag population model.
//
// The paper argues (Sec. I, II-C, VII) that tcast carries over to RFID
// inventory management: a reader's Select command addresses the subset of
// tags matching an EPC mask — exactly a bin — and detecting "no reply /
// one reply / collision" in a slot is the same RCD primitive. This module
// models the tag population; rfid/gen2.hpp provides the conventional
// frame-slotted-ALOHA census baseline and rfid/rcd_channel.hpp plugs the
// population into the tcast stack.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tcast::rfid {

/// Stock-keeping unit identifier encoded in the EPC.
using Sku = std::uint32_t;

struct Tag {
  NodeId id = 0;           ///< dense population index
  std::uint64_t epc = 0;   ///< electronic product code (unique)
  Sku sku = 0;
  bool powered = true;     ///< unpowered tags never respond (field nulls)
};

/// A physical tag population in a reader's field.
class TagField {
 public:
  /// Builds `total` tags; `matching` of them carry `target_sku`, the rest
  /// get distinct other SKUs. EPCs are unique and randomised.
  static TagField make(std::size_t total, std::size_t matching,
                       Sku target_sku, RngStream& rng);

  std::size_t size() const { return tags_.size(); }
  const Tag& tag(NodeId id) const {
    return tags_.at(static_cast<std::size_t>(id));
  }
  Tag& tag(NodeId id) { return tags_.at(static_cast<std::size_t>(id)); }
  std::span<const Tag> tags() const { return tags_; }

  /// All tag ids (the participant set for threshold queries).
  std::vector<NodeId> all_ids() const;

  /// Ids of powered tags matching `sku`.
  std::vector<NodeId> matching(Sku sku) const;
  std::size_t matching_count(Sku sku) const { return matching(sku).size(); }

  /// Depowers a fraction of tags (field nulls / weak backscatter).
  void depower_fraction(double fraction, RngStream& rng);

 private:
  explicit TagField(std::vector<Tag> tags) : tags_(std::move(tags)) {}

  std::vector<Tag> tags_;
};

}  // namespace tcast::rfid
