#include "rfid/tag.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace tcast::rfid {

TagField TagField::make(std::size_t total, std::size_t matching,
                        Sku target_sku, RngStream& rng) {
  TCAST_CHECK(matching <= total);
  std::vector<Tag> tags(total);
  // Choose which population slots carry the target SKU.
  std::vector<bool> is_match(total, false);
  for (const NodeId id : rng.sample_subset(total, matching))
    is_match[static_cast<std::size_t>(id)] = true;

  std::unordered_set<std::uint64_t> used_epcs;
  Sku other_sku = target_sku;
  for (std::size_t i = 0; i < total; ++i) {
    Tag& t = tags[i];
    t.id = static_cast<NodeId>(i);
    do {
      t.epc = rng.bits();
    } while (!used_epcs.insert(t.epc).second);
    t.sku = is_match[i] ? target_sku : ++other_sku;
    t.powered = true;
  }
  return TagField(std::move(tags));
}

std::vector<NodeId> TagField::all_ids() const {
  std::vector<NodeId> out(tags_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<NodeId>(i);
  return out;
}

std::vector<NodeId> TagField::matching(Sku sku) const {
  std::vector<NodeId> out;
  for (const Tag& t : tags_)
    if (t.powered && t.sku == sku) out.push_back(t.id);
  return out;
}

void TagField::depower_fraction(double fraction, RngStream& rng) {
  TCAST_CHECK(fraction >= 0.0 && fraction <= 1.0);
  for (Tag& t : tags_)
    if (rng.bernoulli(fraction)) t.powered = false;
}

}  // namespace tcast::rfid
