// Frame-slotted ALOHA inventory — the conventional RFID census baseline
// (EPCglobal Gen2-style Q protocol).
//
// The reader opens a frame of 2^Q slots; every unread matching tag picks a
// uniform slot; singleton slots read (and silence) one tag, collision slots
// read nothing. Between frames Q adapts with the standard Q-algorithm
// (Schoute-style: raise Qfp on collisions, lower it on idles). The census
// terminates when a frame completes with no unread tags left, or — for the
// threshold use case — as soon as `stop_after_reads` tags have been read.
//
// Cost unit: one slot ≡ one tcast query slot, so census and tcast costs
// plot on one axis.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "rfid/tag.hpp"

namespace tcast::rfid {

struct InventoryConfig {
  std::size_t q0 = 4;            ///< initial Q
  std::size_t q_max = 15;
  double q_step = 0.3;           ///< Qfp adjustment per collision/idle
  std::size_t stop_after_reads = 0;  ///< 0 = full census
  /// Safety valve on total slots (0 = none).
  std::size_t max_slots = 1u << 22;
};

struct InventoryResult {
  std::size_t reads = 0;       ///< tags successfully inventoried
  std::size_t slots = 0;       ///< total slots consumed
  std::size_t collisions = 0;
  std::size_t idles = 0;
  std::size_t frames = 0;
  bool complete = false;       ///< census finished (vs early stop / cap)
};

/// Inventories `population` responding tags.
InventoryResult run_inventory(std::size_t population, RngStream& rng,
                              const InventoryConfig& cfg = {});

/// Threshold decision via early-stopped census: read until `t` matching
/// tags are seen (⇒ true) or the census completes with fewer (⇒ false).
struct InventoryThresholdResult {
  bool decision = false;
  std::size_t slots = 0;
  std::size_t reads = 0;
};

InventoryThresholdResult inventory_threshold(std::size_t population,
                                             std::size_t t, RngStream& rng,
                                             const InventoryConfig& cfg = {});

}  // namespace tcast::rfid
