// RcdTagChannel — the tcast QueryChannel over an RFID tag field.
//
// A query addresses a subset of tags (reader Select with an EPC mask /
// explicit handle list) and spends one reply slot:
//   0 matching powered tags  → idle slot            (kEmpty)
//   1 matching powered tag   → clean backscatter    (2+: kCaptured — the
//                              reader decodes the EPC; 1+: kActivity)
//   ≥2                       → collided slot        (kActivity; the capture
//                              model may still pull one EPC out, as real
//                              readers sometimes do)
//
// With this adapter every tcast algorithm (2tBins, ABNS, ...) runs
// unchanged over a tag population — the paper's RFID claim, made literal.
#pragma once

#include <memory>

#include "group/query_channel.hpp"
#include "radio/capture.hpp"
#include "rfid/tag.hpp"

namespace tcast::rfid {

class RcdTagChannel final : public group::QueryChannel {
 public:
  struct Config {
    group::CollisionModel model = group::CollisionModel::kTwoPlus;
    Sku sku = 0;               ///< the SKU the query predicate matches
    double miss_prob = 0.0;    ///< per-slot chance a lone reply is missed
    std::shared_ptr<radio::CaptureModel> capture;  ///< nullptr = geometric
  };

  /// `field` and `rng` are borrowed and must outlive the channel.
  RcdTagChannel(const TagField& field, RngStream& rng, Config cfg);

  Sku sku() const { return cfg_.sku; }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override;

 protected:
  group::BinQueryResult do_query_set(
      std::span<const NodeId> nodes) override;

 private:
  bool responds(NodeId id) const;

  const TagField* field_;
  RngStream* rng_;
  Config cfg_;
};

}  // namespace tcast::rfid
