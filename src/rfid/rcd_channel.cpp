#include "rfid/rcd_channel.hpp"

#include "common/check.hpp"

namespace tcast::rfid {

RcdTagChannel::RcdTagChannel(const TagField& field, RngStream& rng,
                             Config cfg)
    : QueryChannel(cfg.model), field_(&field), rng_(&rng), cfg_(cfg) {
  if (!cfg_.capture)
    cfg_.capture = std::make_shared<radio::GeometricCaptureModel>();
  TCAST_CHECK(cfg_.miss_prob >= 0.0 && cfg_.miss_prob <= 1.0);
}

bool RcdTagChannel::responds(NodeId id) const {
  const Tag& tag = field_->tag(id);
  return tag.powered && tag.sku == cfg_.sku;
}

std::optional<std::size_t> RcdTagChannel::oracle_positive_count(
    std::span<const NodeId> nodes) const {
  std::size_t count = 0;
  for (const NodeId id : nodes)
    if (responds(id)) ++count;
  return count;
}

group::BinQueryResult RcdTagChannel::do_query_set(
    std::span<const NodeId> nodes) {
  std::vector<NodeId> repliers;
  for (const NodeId id : nodes)
    if (responds(id)) repliers.push_back(id);

  if (repliers.empty()) return group::BinQueryResult::empty();
  if (repliers.size() == 1 && rng_->bernoulli(cfg_.miss_prob))
    return group::BinQueryResult::empty();  // weak lone backscatter missed

  if (model() == group::CollisionModel::kOnePlus)
    return group::BinQueryResult::activity();
  const auto idx = cfg_.capture->captured_index(repliers.size(), *rng_);
  if (idx) return group::BinQueryResult::captured_node(repliers[*idx]);
  return group::BinQueryResult::activity();
}

}  // namespace tcast::rfid
