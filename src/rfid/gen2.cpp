#include "rfid/gen2.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tcast::rfid {

InventoryResult run_inventory(std::size_t population, RngStream& rng,
                              const InventoryConfig& cfg) {
  InventoryResult result;
  std::size_t unread = population;
  double qfp = static_cast<double>(cfg.q0);

  while (unread > 0) {
    ++result.frames;
    const auto q = static_cast<std::size_t>(std::lround(qfp));
    const std::size_t frame_slots = std::size_t{1} << std::min(q, cfg.q_max);
    // Deal the unread tags into slots.
    std::vector<std::size_t> occupancy(frame_slots, 0);
    for (std::size_t tag = 0; tag < unread; ++tag)
      ++occupancy[static_cast<std::size_t>(rng.uniform_below(frame_slots))];

    for (std::size_t slot = 0; slot < frame_slots; ++slot) {
      ++result.slots;
      if (occupancy[slot] == 0) {
        ++result.idles;
        qfp = std::max(0.0, qfp - cfg.q_step);
      } else if (occupancy[slot] == 1) {
        ++result.reads;
        --unread;
        if (cfg.stop_after_reads > 0 &&
            result.reads >= cfg.stop_after_reads) {
          return result;  // early stop: threshold reached
        }
      } else {
        ++result.collisions;
        qfp = std::min(static_cast<double>(cfg.q_max), qfp + cfg.q_step);
      }
      if (cfg.max_slots > 0 && result.slots >= cfg.max_slots) return result;
      // Frame restart heuristic: if the frame is badly mis-sized (Qfp moved
      // a full step away from the frame's Q), abandon it early.
      const auto current_q = static_cast<std::size_t>(std::lround(qfp));
      if (current_q != std::min(q, cfg.q_max) && occupancy[slot] != 1) break;
    }
  }
  result.complete = unread == 0;
  return result;
}

InventoryThresholdResult inventory_threshold(std::size_t population,
                                             std::size_t t, RngStream& rng,
                                             const InventoryConfig& cfg) {
  InventoryThresholdResult out;
  if (t == 0) {
    out.decision = true;
    return out;
  }
  InventoryConfig stopped = cfg;
  stopped.stop_after_reads = t;
  const auto census = run_inventory(population, rng, stopped);
  out.decision = census.reads >= t;
  out.slots = census.slots;
  out.reads = census.reads;
  return out;
}

}  // namespace tcast::rfid
