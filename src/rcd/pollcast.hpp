// pollcast (Demirbas et al., INFOCOM'08): the original CCA-based RCD
// primitive, extended here with the 2+ collision model.
//
// Two phases:
//   1. The initiator broadcasts the poll (predicate + bin) — as in backcast
//      we split this into a per-round Predicate/assignment broadcast and a
//      cheap per-bin Poll frame.
//   2. Every positive node in the polled bin transmits a Reply frame after
//      one SIFS (simultaneously, since they are all triggered by the same
//      poll). The initiator watches the channel:
//        - any energy in the vote window  → the bin is non-empty (1+);
//        - a decoded Reply frame          → that node's identity is known
//                                           (the 2+ model's capture effect;
//                                           a clean lone reply decodes with
//                                           certainty).
//
// Unlike backcast, replies are distinct frames, so collisions are
// destructive and identity capture is possible. Which one the initiator
// gets is the radio CaptureModel's business.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "radio/radio.hpp"
#include "rcd/addressing.hpp"
#include "sim/timer.hpp"

namespace tcast::rcd {

/// Participant-side pollcast logic.
class PollcastResponder {
 public:
  using PredicateEval = std::function<bool(std::uint8_t predicate_id)>;

  PollcastResponder(radio::Radio& r, PredicateEval eval);

  /// Feed every received frame here. Returns true if consumed.
  bool on_frame(const radio::Frame& f);

  std::optional<std::uint16_t> my_bin() const { return my_bin_; }

 private:
  radio::Radio* radio_;
  sim::Simulator* sim_;
  PredicateEval eval_;
  bool positive_ = false;
  std::optional<std::uint16_t> my_bin_;  ///< set iff positive and in round
};

/// Initiator-side pollcast.
class PollcastInitiator {
 public:
  struct Config {
    SimTime slack = 2 * 192 * kMicrosecond;
  };

  struct PollResult {
    bool activity = false;  ///< energy detected in the vote window
    std::optional<NodeId> captured;  ///< decoded Reply, if any
  };

  explicit PollcastInitiator(radio::Radio& r)
      : PollcastInitiator(r, Config{}) {}
  PollcastInitiator(radio::Radio& r, Config cfg);

  /// Broadcasts the predicate + assignment (phase 1 for the whole round).
  void announce(std::uint8_t predicate_id, std::uint32_t session,
                std::vector<std::uint16_t> assignment,
                std::function<void()> done);

  /// Polls bin g and reports after the vote window.
  void poll_bin(std::uint16_t bin, std::function<void(PollResult)> done);

  /// Feed frames received by the initiator radio.
  bool on_frame(const radio::Frame& f, const radio::RxInfo& info);

  /// Feed channel-activity indications from the initiator radio.
  void on_activity(SimTime start, SimTime end);

 private:
  radio::Radio* radio_;
  sim::Simulator* sim_;
  Config cfg_;
  sim::Timer window_timer_;
  std::uint8_t next_seq_ = 1;
  std::uint32_t outstanding_session_ = 0;
  bool awaiting_votes_ = false;
  SimTime window_start_ = 0;
  PollResult pending_result_;
  std::function<void(PollResult)> poll_done_;
};

}  // namespace tcast::rcd
