// backcast (Dutta et al., HotNets'08): the robust RCD primitive.
//
// Three phases:
//   1. The initiator broadcasts a Predicate frame carrying the predicate id
//      and this round's node→bin assignment. Every positive node programs
//      its radio's *alternate* hardware address to kEphemeralBase + bin;
//      negative or excluded nodes clear it.
//   2. The initiator transmits a Poll addressed to kEphemeralBase + g with
//      the ACK-request flag set.
//   3. Every radio whose alternate address matches replies with an identical
//      hardware ACK after exactly one turnaround; the HACKs superpose
//      non-destructively and the initiator's radio latches onto the sum.
//
// Semantics are strictly 1+: a decoded HACK says "≥1 positive in bin g";
// silence says "0" (modulo the radio's false-negative rate — backcast has no
// false positives by construction, Sec. III-B of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "radio/radio.hpp"
#include "rcd/addressing.hpp"
#include "sim/timer.hpp"

namespace tcast::rcd {

/// Participant-side backcast logic. The owner (mote firmware) forwards
/// frames from the radio receive handler; HACK emission itself is done by
/// the radio hardware, this class only keeps the alternate address current.
class BackcastResponder {
 public:
  using PredicateEval = std::function<bool(std::uint8_t predicate_id)>;

  struct Config {
    /// Which hardware recognition slot this session arms. Two responders on
    /// one mote — one per slot — give the CC2420's "two concurrent
    /// backcasts" (Sec. IV-D.1).
    AddressSlot slot = AddressSlot::kShort;
    /// When set, only Predicate frames with this id are processed (so a
    /// second responder can serve a different predicate on the other slot).
    std::optional<std::uint8_t> served_predicate;
  };

  BackcastResponder(radio::Radio& r, PredicateEval eval)
      : BackcastResponder(r, std::move(eval), Config{}) {}
  BackcastResponder(radio::Radio& r, PredicateEval eval, Config cfg);

  /// Feed every received frame here. Returns true if consumed.
  bool on_frame(const radio::Frame& f);

  /// The bin this node is listening on, if any (diagnostics/tests).
  std::optional<std::uint16_t> armed_bin() const { return armed_bin_; }

 private:
  void arm(std::optional<radio::ShortAddr> addr);

  radio::Radio* radio_;
  PredicateEval eval_;
  Config cfg_;
  std::optional<std::uint16_t> armed_bin_;
};

/// Initiator-side backcast.
class BackcastInitiator {
 public:
  struct Config {
    /// Extra guard time appended to the HACK wait window.
    SimTime slack = 2 * 192 * kMicrosecond;
    /// Ephemeral address block / responder slot this session polls.
    AddressSlot slot = AddressSlot::kShort;
  };

  struct PollResult {
    bool nonempty = false;          ///< HACK superposition decoded
    std::size_t superposed = 0;     ///< #HACKs in the decoded superposition
  };

  explicit BackcastInitiator(radio::Radio& r)
      : BackcastInitiator(r, Config{}) {}
  BackcastInitiator(radio::Radio& r, Config cfg);

  /// Phase 1. `assignment[node]` = bin or kNotInRound. `done` fires after
  /// the broadcast (plus one turnaround so responders are re-armed).
  void announce(std::uint8_t predicate_id, std::uint32_t session,
                std::vector<std::uint16_t> assignment,
                std::function<void()> done);

  /// Phases 2–3. `done` fires at the end of the HACK window.
  void poll_bin(std::uint16_t bin, std::function<void(PollResult)> done);

  /// Feed frames received by the initiator radio. Returns true if consumed.
  bool on_frame(const radio::Frame& f, const radio::RxInfo& info);

  std::uint64_t polls_sent() const { return polls_sent_; }

 private:
  radio::Radio* radio_;
  sim::Simulator* sim_;
  Config cfg_;
  sim::Timer window_timer_;
  std::uint8_t next_seq_ = 1;
  std::uint8_t outstanding_seq_ = 0;
  bool awaiting_hack_ = false;
  PollResult pending_result_;
  std::function<void(PollResult)> poll_done_;
  std::uint64_t polls_sent_ = 0;
};

}  // namespace tcast::rcd
