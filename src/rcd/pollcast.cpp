#include "rcd/pollcast.hpp"

#include "common/check.hpp"

namespace tcast::rcd {

PollcastResponder::PollcastResponder(radio::Radio& r, PredicateEval eval)
    : radio_(&r), sim_(&r.simulator()), eval_(std::move(eval)) {
  TCAST_CHECK(eval_ != nullptr);
  // Pollcast replies are explicit frames; hardware acking stays out of the
  // vote window.
  radio_->set_auto_ack(false);
}

bool PollcastResponder::on_frame(const radio::Frame& f) {
  switch (f.type) {
    case radio::FrameType::kPredicate: {
      const auto me = static_cast<std::size_t>(radio_->owner());
      std::uint16_t bin = kNotInRound;
      if (me < f.assignment.size()) bin = f.assignment[me];
      positive_ = bin != kNotInRound && eval_(f.predicate_id);
      my_bin_ = positive_ ? std::optional<std::uint16_t>(bin) : std::nullopt;
      return true;
    }
    case radio::FrameType::kPoll: {
      if (!positive_ || !my_bin_ || *my_bin_ != f.bin_index) return true;
      radio::Frame reply;
      reply.type = radio::FrameType::kReply;
      reply.src = participant_addr(radio_->owner());
      reply.dest = f.src;  // whoever polled collects the votes
      reply.seq = f.seq;
      reply.session = f.session;
      sim_->schedule_after(radio_->phy().sifs, [this, reply] {
        if (radio_->is_on() && !radio_->transmitting())
          radio_->transmit(reply);
      });
      return true;
    }
    default:
      return false;
  }
}

PollcastInitiator::PollcastInitiator(radio::Radio& r, Config cfg)
    : radio_(&r),
      sim_(&r.simulator()),
      cfg_(cfg),
      window_timer_(r.simulator(), [this] {
        TCAST_CHECK(awaiting_votes_);
        awaiting_votes_ = false;
        auto done = std::move(poll_done_);
        poll_done_ = nullptr;
        done(pending_result_);
      }) {
  radio_->set_auto_ack(false);
}

void PollcastInitiator::announce(std::uint8_t predicate_id,
                                 std::uint32_t session,
                                 std::vector<std::uint16_t> assignment,
                                 std::function<void()> done) {
  TCAST_CHECK_MSG(!awaiting_votes_, "announce during an open vote window");
  radio::Frame f;
  f.type = radio::FrameType::kPredicate;
  f.src = radio_->short_address();
  f.dest = radio::kBroadcastAddr;
  f.seq = next_seq_++;
  f.session = session;
  f.predicate_id = predicate_id;
  f.assignment = std::move(assignment);
  outstanding_session_ = session;
  const SimTime settle =
      radio_->channel().airtime(f) + radio_->phy().turnaround;
  radio_->transmit(std::move(f));
  sim_->schedule_after(settle, std::move(done));
}

void PollcastInitiator::poll_bin(std::uint16_t bin,
                                 std::function<void(PollResult)> done) {
  TCAST_CHECK_MSG(!awaiting_votes_, "one poll at a time");
  radio::Frame f;
  f.type = radio::FrameType::kPoll;
  f.src = radio_->short_address();
  f.dest = radio::kBroadcastAddr;  // bin filtering is in the payload
  f.seq = next_seq_++;
  f.session = outstanding_session_;
  f.bin_index = bin;

  radio::Frame probe;  // a representative Reply, for window sizing
  probe.type = radio::FrameType::kReply;
  const SimTime window = radio_->channel().airtime(f) + radio_->phy().sifs +
                         radio_->channel().airtime(probe) + cfg_.slack;
  awaiting_votes_ = true;
  pending_result_ = PollResult{};
  poll_done_ = std::move(done);
  window_start_ = sim_->now() + radio_->channel().airtime(f);
  radio_->transmit(std::move(f));
  window_timer_.start_one_shot(window);
}

bool PollcastInitiator::on_frame(const radio::Frame& f,
                                 const radio::RxInfo& info) {
  (void)info;
  if (!awaiting_votes_) return false;
  if (f.type != radio::FrameType::kReply) return false;
  if (f.session != outstanding_session_) return false;
  pending_result_.activity = true;
  pending_result_.captured = addr_to_participant(f.src);
  return true;
}

void PollcastInitiator::on_activity(SimTime start, SimTime end) {
  (void)start;
  if (!awaiting_votes_) return;
  // Energy overlapping the vote window counts (RCD is receiver-side: the
  // initiator samples CCA/RSSI after its own poll transmission, so any
  // cluster whose energy extends past the poll is sensed — including
  // foreign traffic, which is pollcast's interference weakness).
  if (end > window_start_) pending_result_.activity = true;
}

}  // namespace tcast::rcd
