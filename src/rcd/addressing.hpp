// Address-space conventions shared by the RCD primitives and the testbed.
#pragma once

#include "common/types.hpp"
#include "radio/frame.hpp"

namespace tcast::rcd {

/// Short address 0 is the initiator; participant i gets i + 1.
inline constexpr radio::ShortAddr kInitiatorAddr = 0;

inline radio::ShortAddr participant_addr(NodeId id) {
  return static_cast<radio::ShortAddr>(id + 1);
}

inline NodeId addr_to_participant(radio::ShortAddr a) {
  return static_cast<NodeId>(a - 1);
}

/// Bin value in a Predicate assignment meaning "you are not queried this
/// round" (eliminated nodes).
inline constexpr std::uint16_t kNotInRound = 0xFFFF;

/// Ephemeral block for a second, concurrent backcast session, mapped onto
/// the radio's extended-address recognition slot (the CC2420's two hardware
/// addresses "enable two concurrent backcasts at most", Sec. IV-D.1).
inline constexpr radio::ShortAddr kEphemeralBaseExt = 0xD000;

/// Short address reserved for a second initiator running the concurrent
/// session (participants are 1..N, the primary initiator is 0).
inline constexpr radio::ShortAddr kSecondInitiatorAddr = 0xFFF0;

/// Which hardware recognition slot a backcast session rides on.
enum class AddressSlot : std::uint8_t {
  kShort,     ///< the 16-bit alternate slot (kEphemeralBase block)
  kExtended,  ///< the 64-bit slot (kEphemeralBaseExt block)
};

inline radio::ShortAddr ephemeral_base(AddressSlot slot) {
  return slot == AddressSlot::kShort ? radio::kEphemeralBase
                                     : kEphemeralBaseExt;
}

}  // namespace tcast::rcd
