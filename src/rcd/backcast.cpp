#include "rcd/backcast.hpp"

#include "common/check.hpp"

namespace tcast::rcd {

BackcastResponder::BackcastResponder(radio::Radio& r, PredicateEval eval,
                                     Config cfg)
    : radio_(&r), eval_(std::move(eval)), cfg_(cfg) {
  TCAST_CHECK(eval_ != nullptr);
}

void BackcastResponder::arm(std::optional<radio::ShortAddr> addr) {
  if (cfg_.slot == AddressSlot::kShort) {
    radio_->set_alt_address(addr);
  } else {
    radio_->set_ext_alt_address(addr);
  }
}

bool BackcastResponder::on_frame(const radio::Frame& f) {
  if (f.type != radio::FrameType::kPredicate) return false;
  if (cfg_.served_predicate && f.predicate_id != *cfg_.served_predicate)
    return false;  // another session's announce; not ours to consume
  const auto me = static_cast<std::size_t>(radio_->owner());
  std::uint16_t bin = kNotInRound;
  if (me < f.assignment.size()) bin = f.assignment[me];
  if (bin != kNotInRound && eval_(f.predicate_id)) {
    armed_bin_ = bin;
    arm(static_cast<radio::ShortAddr>(ephemeral_base(cfg_.slot) + bin));
  } else {
    armed_bin_.reset();
    arm(std::nullopt);
  }
  return true;
}

BackcastInitiator::BackcastInitiator(radio::Radio& r, Config cfg)
    : radio_(&r),
      sim_(&r.simulator()),
      cfg_(cfg),
      window_timer_(r.simulator(), [this] {
        TCAST_CHECK(awaiting_hack_);
        awaiting_hack_ = false;
        auto done = std::move(poll_done_);
        poll_done_ = nullptr;
        done(pending_result_);
      }) {
  // The initiator never HACKs anybody; it only listens for HACKs.
  radio_->set_auto_ack(false);
}

void BackcastInitiator::announce(std::uint8_t predicate_id,
                                 std::uint32_t session,
                                 std::vector<std::uint16_t> assignment,
                                 std::function<void()> done) {
  TCAST_CHECK_MSG(!awaiting_hack_, "announce during an open poll window");
  radio::Frame f;
  f.type = radio::FrameType::kPredicate;
  f.src = radio_->short_address();
  f.dest = radio::kBroadcastAddr;
  f.seq = next_seq_++;
  f.session = session;
  f.predicate_id = predicate_id;
  f.assignment = std::move(assignment);
  const SimTime settle =
      radio_->channel().airtime(f) + radio_->phy().turnaround;
  radio_->transmit(std::move(f));
  sim_->schedule_after(settle, std::move(done));
}

void BackcastInitiator::poll_bin(std::uint16_t bin,
                                 std::function<void(PollResult)> done) {
  TCAST_CHECK_MSG(!awaiting_hack_, "one poll at a time");
  radio::Frame f;
  f.type = radio::FrameType::kPoll;
  f.src = radio_->short_address();
  f.dest = static_cast<radio::ShortAddr>(ephemeral_base(cfg_.slot) + bin);
  f.seq = next_seq_++;
  f.ack_request = true;
  f.bin_index = bin;
  outstanding_seq_ = f.seq;
  awaiting_hack_ = true;
  pending_result_ = PollResult{};
  poll_done_ = std::move(done);
  ++polls_sent_;

  radio::Frame hack_probe = radio::make_hack(f);
  const SimTime window = radio_->channel().airtime(f) +
                         radio_->phy().turnaround +
                         radio_->channel().airtime(hack_probe) + cfg_.slack;
  radio_->transmit(std::move(f));
  window_timer_.start_one_shot(window);
}

bool BackcastInitiator::on_frame(const radio::Frame& f,
                                 const radio::RxInfo& info) {
  if (!awaiting_hack_) return false;
  if (f.type != radio::FrameType::kHack) return false;
  if (f.seq != outstanding_seq_) return false;
  pending_result_.nonempty = true;
  pending_result_.superposed = info.superposed;
  return true;
}

}  // namespace tcast::rcd
