#include "service/protocol.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace tcast::service {
namespace {

// ---- token helpers -------------------------------------------------------

struct Token {
  std::string_view key;
  std::string_view value;
};

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::optional<Token> split_kv(std::string_view word) {
  const auto eq = word.find('=');
  if (eq == std::string_view::npos || eq == 0) return std::nullopt;
  return Token{word.substr(0, eq), word.substr(eq + 1)};
}

template <typename Int>
bool parse_int(std::string_view text, Int& out) {
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(std::string_view text, double& out) {
  // Population names exclude spaces, so values never contain them; a plain
  // strtod on a NUL-terminated copy is the portable float path.
  const std::string copy(text);
  char* endp = nullptr;
  out = std::strtod(copy.c_str(), &endp);
  return endp == copy.c_str() + copy.size() && !copy.empty();
}

bool parse_bool(std::string_view text, bool& out) {
  if (text == "yes" || text == "1" || text == "true") {
    out = true;
    return true;
  }
  if (text == "no" || text == "0" || text == "false") {
    out = false;
    return true;
  }
  return false;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Population names and free-text messages travel as single tokens; spaces
/// would split them, so messages escape space as '~' (names reject it).
std::string escape_message(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(c == ' ' ? '~' : c);
  return out;
}

std::string unescape_message(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(c == '~' ? ' ' : c);
  return out;
}

bool valid_name(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

// ---- enum codecs ---------------------------------------------------------

const char* to_string(BackendTier t) {
  switch (t) {
    case BackendTier::kExact:
      return "exact";
    case BackendTier::kPacket:
      return "packet";
  }
  return "exact";
}

std::optional<BackendTier> parse_backend_tier(std::string_view text) {
  if (text == "exact") return BackendTier::kExact;
  if (text == "packet") return BackendTier::kPacket;
  return std::nullopt;
}

const char* to_string(ApproxMode m) {
  switch (m) {
    case ApproxMode::kAllow:
      return "allow";
    case ApproxMode::kNever:
      return "never";
    case ApproxMode::kRequire:
      return "require";
  }
  return "allow";
}

std::optional<ApproxMode> parse_approx_mode(std::string_view text) {
  if (text == "allow") return ApproxMode::kAllow;
  if (text == "never") return ApproxMode::kNever;
  if (text == "require") return ApproxMode::kRequire;
  return std::nullopt;
}

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::kLoad:
      return "load";
    case RequestKind::kQuery:
      return "query";
    case RequestKind::kDrop:
      return "drop";
    case RequestKind::kList:
      return "list";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kKillShard:
      return "kill";
    case RequestKind::kRebootShard:
      return "reboot";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "ping";
}

const char* to_string(AnswerMode m) {
  switch (m) {
    case AnswerMode::kExact:
      return "exact";
    case AnswerMode::kApproximate:
      return "approximate";
  }
  return "exact";
}

// ---- Request -------------------------------------------------------------

std::string Request::encode() const {
  std::ostringstream os;
  os << to_string(kind);
  switch (kind) {
    case RequestKind::kLoad:
      os << " pop=" << population << " n=" << n << " x=" << x
         << " seed=" << seed << " model="
         << (model == group::CollisionModel::kTwoPlus ? "2+" : "1+")
         << " tier=" << to_string(tier);
      break;
    case RequestKind::kQuery:
      os << " pop=" << population << " t=" << t << " algo=" << algorithm
         << " deadline-ms=" << deadline_ms << " approx=" << to_string(approx);
      break;
    case RequestKind::kDrop:
      os << " pop=" << population;
      break;
    case RequestKind::kKillShard:
    case RequestKind::kRebootShard:
      os << " shard=" << shard;
      break;
    case RequestKind::kList:
    case RequestKind::kStats:
    case RequestKind::kPing:
    case RequestKind::kShutdown:
      break;
  }
  return os.str();
}

std::optional<Request> Request::parse(std::string_view line) {
  const auto words = split_ws(line);
  if (words.empty()) return std::nullopt;

  Request req;
  const auto verb = words[0];
  if (verb == "load") {
    req.kind = RequestKind::kLoad;
  } else if (verb == "query") {
    req.kind = RequestKind::kQuery;
  } else if (verb == "drop") {
    req.kind = RequestKind::kDrop;
  } else if (verb == "list") {
    req.kind = RequestKind::kList;
  } else if (verb == "stats") {
    req.kind = RequestKind::kStats;
  } else if (verb == "ping") {
    req.kind = RequestKind::kPing;
  } else if (verb == "kill") {
    req.kind = RequestKind::kKillShard;
  } else if (verb == "reboot") {
    req.kind = RequestKind::kRebootShard;
  } else if (verb == "shutdown") {
    req.kind = RequestKind::kShutdown;
  } else {
    return std::nullopt;
  }

  for (std::size_t i = 1; i < words.size(); ++i) {
    const auto kv = split_kv(words[i]);
    if (!kv) return std::nullopt;
    const auto key = kv->key;
    const auto value = kv->value;
    bool ok = true;
    if (key == "pop") {
      ok = valid_name(value);
      req.population = std::string(value);
    } else if (key == "n") {
      ok = parse_int(value, req.n);
    } else if (key == "x") {
      ok = parse_int(value, req.x);
    } else if (key == "seed") {
      ok = parse_int(value, req.seed);
    } else if (key == "model") {
      if (value == "1+") {
        req.model = group::CollisionModel::kOnePlus;
      } else if (value == "2+") {
        req.model = group::CollisionModel::kTwoPlus;
      } else {
        ok = false;
      }
    } else if (key == "tier") {
      const auto tier = parse_backend_tier(value);
      ok = tier.has_value();
      if (tier) req.tier = *tier;
    } else if (key == "t") {
      ok = parse_int(value, req.t);
    } else if (key == "algo") {
      ok = valid_name(value);
      req.algorithm = std::string(value);
    } else if (key == "deadline-ms") {
      ok = parse_int(value, req.deadline_ms);
    } else if (key == "approx") {
      const auto mode = parse_approx_mode(value);
      ok = mode.has_value();
      if (mode) req.approx = *mode;
    } else if (key == "shard") {
      ok = parse_int(value, req.shard);
    } else {
      ok = false;  // unknown keys are rejected, not ignored: typos surface
    }
    if (!ok) return std::nullopt;
  }

  const bool needs_pop = req.kind == RequestKind::kLoad ||
                         req.kind == RequestKind::kQuery ||
                         req.kind == RequestKind::kDrop;
  if (needs_pop && req.population.empty()) return std::nullopt;
  return req;
}

// ---- Response ------------------------------------------------------------

std::string Response::encode() const {
  std::ostringstream os;
  os << "status=" << to_string(status);
  if (status == StatusCode::kOk) {
    os << " decision=" << (decision ? "yes" : "no")
       << " mode=" << to_string(mode);
    if (mode == AnswerMode::kApproximate) {
      os << " estimate=" << format_double(estimate)
         << " epsilon=" << format_double(epsilon)
         << " confidence=" << format_double(confidence);
    }
  }
  os << " queries=" << queries << " shard=" << shard
     << " latency-us=" << latency_us;
  if (retry_after_ms != 0) os << " retry-after-ms=" << retry_after_ms;
  if (!message.empty()) os << " msg=" << escape_message(message);
  return os.str();
}

std::optional<Response> Response::parse(std::string_view line) {
  Response resp;
  bool saw_status = false;
  for (const auto word : split_ws(line)) {
    const auto kv = split_kv(word);
    if (!kv) return std::nullopt;
    const auto key = kv->key;
    const auto value = kv->value;
    bool ok = true;
    if (key == "status") {
      const auto status = parse_status(value);
      ok = status.has_value();
      if (status) resp.status = *status;
      saw_status = true;
    } else if (key == "decision") {
      ok = parse_bool(value, resp.decision);
    } else if (key == "mode") {
      if (value == "exact") {
        resp.mode = AnswerMode::kExact;
      } else if (value == "approximate") {
        resp.mode = AnswerMode::kApproximate;
      } else {
        ok = false;
      }
    } else if (key == "estimate") {
      ok = parse_double(value, resp.estimate);
    } else if (key == "epsilon") {
      ok = parse_double(value, resp.epsilon);
    } else if (key == "confidence") {
      ok = parse_double(value, resp.confidence);
    } else if (key == "queries") {
      ok = parse_int(value, resp.queries);
    } else if (key == "shard") {
      ok = parse_int(value, resp.shard);
    } else if (key == "latency-us") {
      ok = parse_int(value, resp.latency_us);
    } else if (key == "retry-after-ms") {
      ok = parse_int(value, resp.retry_after_ms);
    } else if (key == "msg") {
      resp.message = unescape_message(value);
    } else {
      ok = false;
    }
    if (!ok) return std::nullopt;
  }
  if (!saw_status) return std::nullopt;
  return resp;
}

// ---- framing -------------------------------------------------------------

void append_frame(std::string& out, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  out.append(header, 4);
  out.append(payload.data(), payload.size());
}

void FrameReader::feed(const char* data, std::size_t len) {
  if (error_) return;
  buf_.append(data, len);
  while (buf_.size() >= 4) {
    const auto b = [&](std::size_t i) {
      return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
    };
    const std::uint32_t frame_len =
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    if (frame_len > kMaxFrameBytes) {
      error_ = "frame length " + std::to_string(frame_len) +
               " exceeds limit " + std::to_string(kMaxFrameBytes);
      buf_.clear();
      return;
    }
    if (buf_.size() < 4 + static_cast<std::size_t>(frame_len)) break;
    ready_.emplace_back(buf_.substr(4, frame_len));
    buf_.erase(0, 4 + static_cast<std::size_t>(frame_len));
  }
}

std::optional<std::string> FrameReader::next() {
  if (ready_.empty()) return std::nullopt;
  std::string out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

}  // namespace tcast::service
