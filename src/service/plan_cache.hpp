// Per-shard bin-plan cache (satellite of the tcastd PR).
//
// The opening move of every engine run — picking the first round's bin
// count — depends only on (population size, threshold, algorithm). Shards
// see the same few (n, t, algo) triples over and over under the skewed
// workloads the paper's evaluation uses, so each shard keeps a small LRU
// of plans. For the ABNS family the plan also carries the positive-count
// estimate p the previous run converged to: reusing it as the next run's
// p0 is exactly the paper's "good initial estimate" lever (Fig. 5),
// applied across queries instead of within one.
//
// Shards are single-threaded over their populations, so the cache needs no
// locking. Hit/miss counters surface in the `stats` response.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace tcast::service {

struct PlanKey {
  std::size_t n = 0;
  std::size_t t = 0;
  std::string algorithm;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    // FNV-1a over the three fields.
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(k.n);
    mix(k.t);
    for (const char c : k.algorithm) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct PlanEntry {
  /// First-round bin count the algorithm chose last time.
  std::size_t initial_bins = 0;
  /// ABNS family only: the converged estimate p to warm-start p0 with.
  /// 0 means "no estimate" (non-adaptive algorithm or never converged).
  double p_estimate = 0.0;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan and promotes it to most-recently-used.
  /// Counts a hit or a miss.
  std::optional<PlanEntry> lookup(const PlanKey& key);

  /// Inserts or refreshes a plan, evicting the least-recently-used entry
  /// when over capacity. Not counted as a hit or miss.
  void insert(const PlanKey& key, PlanEntry entry);

  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using LruList = std::list<std::pair<PlanKey, PlanEntry>>;

  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tcast::service
