#include "service/shard.hpp"

#include <algorithm>
#include <utility>

#include "conformance/checked_channel.hpp"
#include "core/abns.hpp"
#include "core/counting.hpp"
#include "core/registry.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"

namespace tcast::service {
namespace {

bool is_abns_family(std::string_view algo) {
  return algo == "abns:t" || algo == "abns:2t";
}

/// Analytic first-round bin count for the plan cache's informational field.
std::size_t analytic_initial_bins(std::string_view algo, std::size_t n,
                                  std::size_t t, double p0) {
  if (is_abns_family(algo)) return static_cast<std::size_t>(p0) + 1;
  if (algo == "2tbins") return std::min(2 * t, n);
  if (algo.starts_with("expinc")) return 2;
  return 0;
}

}  // namespace

Shard::Shard(ShardConfig cfg)
    : cfg_(std::move(cfg)), plans_(cfg_.plan_cache_capacity) {}

void Shard::submit(Request req, Callback cb) {
  const TimeUs now = cfg_.clock->now_us();
  Response reject;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      reject.status = StatusCode::kShuttingDown;
      rejected = true;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      ++rejected_overload_;
      reject.status = StatusCode::kOverloaded;
      reject.retry_after_ms = retry_after_ms_locked(queue_.size());
      rejected = true;
    } else {
      ++admitted_;
      Job job;
      job.req = std::move(req);
      job.cb = std::move(cb);
      job.admit_us = now;
      job.deadline_us = job.req.deadline_ms > 0
                            ? now + job.req.deadline_ms * 1000
                            : kNoDeadline;
      queue_.push_back(std::move(job));
      update_degraded(queue_.size());
    }
  }
  if (rejected) {
    reject.shard = cfg_.index;
    cb(reject);
  }
}

void Shard::drain() {
  for (std::size_t i = 0; i < cfg_.batch_max; ++i) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    Response resp;
    if (shutting_down_.load(std::memory_order_acquire)) {
      resp.status = StatusCode::kShuttingDown;
      resp.message = "service stopping; queued request flushed";
    } else if (killed_.load(std::memory_order_acquire)) {
      resp.status = StatusCode::kShardDown;
      resp.message = "shard killed while request was queued";
      resp.retry_after_ms = 1;
    } else if (job.req.kind == RequestKind::kQuery &&
               cfg_.clock->now_us() >= job.deadline_us) {
      // Load shedding: the deadline expired in the queue; resolving it now
      // without engine work frees capacity for requests that can still win.
      resp.status = StatusCode::kDeadlineExceeded;
      resp.message = "deadline expired while queued";
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++shed_deadline_;
      }
    } else {
      resp = execute(job);
    }
    finish(job, std::move(resp));
  }
  std::lock_guard<std::mutex> lock(mu_);
  update_degraded(queue_.size());
}

void Shard::kill() { killed_.store(true, std::memory_order_release); }

void Shard::reboot() { killed_.store(false, std::memory_order_release); }

void Shard::shutdown() {
  shutting_down_.store(true, std::memory_order_release);
}

std::size_t Shard::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ShardStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardStats s;
  s.index = cfg_.index;
  s.queue_depth = queue_.size();
  s.degraded = degraded_.load(std::memory_order_acquire);
  s.killed = killed_.load(std::memory_order_acquire);
  s.admitted = admitted_;
  s.rejected_overload = rejected_overload_;
  s.shed_deadline = shed_deadline_;
  s.cancelled_deadline = cancelled_deadline_;
  s.cancelled_kill = cancelled_kill_;
  s.completed_exact = completed_exact_;
  s.completed_approx = completed_approx_;
  s.degrade_entries = degrade_entries_;
  s.errors = errors_;
  s.conformance_violations = conformance_violations_;
  s.plan_hits = plans_.hits();
  s.plan_misses = plans_.misses();
  s.populations = populations_.size();
  s.ewma_service_us = ewma_service_us_;
  s.latency = latency_.summarize();
  return s;
}

void Shard::finish(const Job& job, Response resp) {
  const TimeUs now = cfg_.clock->now_us();
  resp.shard = cfg_.index;
  resp.latency_us = now >= job.admit_us ? now - job.admit_us : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (resp.status) {
      case StatusCode::kOk:
        if (job.req.kind == RequestKind::kQuery) {
          if (resp.mode == AnswerMode::kApproximate) {
            ++completed_approx_;
          } else {
            ++completed_exact_;
          }
          latency_.record(resp.latency_us);
          // EWMA of end-to-end service time sizes the retry-after hint.
          const double sample = static_cast<double>(resp.latency_us);
          ewma_service_us_ = ewma_service_us_ == 0.0
                                 ? sample
                                 : 0.8 * ewma_service_us_ + 0.2 * sample;
        }
        break;
      case StatusCode::kDeadlineExceeded:
        // Queue sheds were already counted at the shed site; anything else
        // arriving here tripped mid-run.
        if (resp.message != "deadline expired while queued")
          ++cancelled_deadline_;
        break;
      case StatusCode::kShardDown:
        ++cancelled_kill_;
        break;
      case StatusCode::kOverloaded:
      case StatusCode::kShuttingDown:
      case StatusCode::kNotFound:
      case StatusCode::kInvalidArgument:
        ++errors_;
        break;
    }
  }
  job.cb(resp);
}

void Shard::update_degraded(std::size_t depth) {
  // Caller holds mu_ (degrade_entries_). Hysteresis: flip on at
  // degrade_enter, off only once the backlog drains to degrade_exit.
  if (!degraded_.load(std::memory_order_relaxed)) {
    if (depth >= cfg_.degrade_enter) {
      degraded_.store(true, std::memory_order_release);
      ++degrade_entries_;
    }
  } else if (depth <= cfg_.degrade_exit) {
    degraded_.store(false, std::memory_order_release);
  }
}

std::uint64_t Shard::retry_after_ms_locked(std::size_t depth) const {
  // Expected wait ≈ backlog × EWMA service time; floor at 1ms so a hint is
  // always a real backoff.
  const double est_ms =
      static_cast<double>(depth) * ewma_service_us_ / 1000.0;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(est_ms));
}

Response Shard::execute(const Job& job) {
  switch (job.req.kind) {
    case RequestKind::kLoad:
      return do_load(job.req);
    case RequestKind::kDrop:
      return do_drop(job.req);
    case RequestKind::kQuery:
      return do_query(job);
    default: {
      Response resp;
      resp.status = StatusCode::kInvalidArgument;
      resp.message = "request kind not handled by shards";
      return resp;
    }
  }
}

Response Shard::do_load(const Request& req) {
  Response resp;
  if (req.n == 0 || req.n > cfg_.max_population || req.x > req.n) {
    resp.status = StatusCode::kInvalidArgument;
    resp.message = "load requires 0 < n <= " +
                   std::to_string(cfg_.max_population) + " and x <= n";
    return resp;
  }

  Population pop;
  pop.n = req.n;
  pop.x = req.x;
  pop.tier = req.tier;
  pop.model = req.model;
  pop.seed = req.seed;
  pop.nodes.resize(req.n);
  for (std::size_t i = 0; i < req.n; ++i)
    pop.nodes[i] = static_cast<NodeId>(i);

  // Stream split: 0 = ground-truth draw, 1 = channel-internal randomness
  // (capture draws), 2 = per-query algorithm randomness. One root seed per
  // population keeps every served answer a pure function of (seed, query
  // sequence).
  RngStream truth_rng(req.seed, 0);
  pop.channel_rng = std::make_unique<RngStream>(req.seed, 1);
  pop.query_rng = std::make_unique<RngStream>(req.seed, 2);

  std::vector<bool> positive(req.n, false);
  for (const NodeId id : truth_rng.sample_subset(req.n, req.x))
    positive[static_cast<std::size_t>(id)] = true;

  if (req.tier == BackendTier::kExact) {
    pop.channel = std::make_unique<group::ExactChannel>(std::move(positive),
                                                        *pop.channel_rng);
    pop.oracle_capable = true;
  } else {
    group::PacketChannel::Config pcfg;
    pcfg.model = req.model;
    pcfg.seed = req.seed;
    pop.channel = std::make_unique<group::PacketChannel>(std::move(positive),
                                                         std::move(pcfg));
    pop.oracle_capable = false;
  }

  populations_.insert_or_assign(req.population, std::move(pop));
  resp.status = StatusCode::kOk;
  resp.message = "loaded " + req.population;
  return resp;
}

Response Shard::do_drop(const Request& req) {
  Response resp;
  if (populations_.erase(req.population) == 0) {
    resp.status = StatusCode::kNotFound;
    resp.message = "unknown population " + req.population;
    return resp;
  }
  resp.status = StatusCode::kOk;
  resp.message = "dropped " + req.population;
  return resp;
}

Response Shard::do_query(const Job& job) {
  Response resp;
  const auto it = populations_.find(job.req.population);
  if (it == populations_.end()) {
    resp.status = StatusCode::kNotFound;
    resp.message = "unknown population " + job.req.population;
    return resp;
  }
  Population& pop = it->second;

  if (job.req.t == 0 || job.req.t > pop.n) {
    resp.status = StatusCode::kInvalidArgument;
    resp.message = "threshold must satisfy 1 <= t <= n";
    return resp;
  }

  const bool approx_path =
      job.req.approx == ApproxMode::kRequire ||
      (job.req.approx == ApproxMode::kAllow &&
       degraded_.load(std::memory_order_acquire));

  if (!approx_path) {
    const auto* spec = core::find_algorithm(job.req.algorithm);
    if (spec == nullptr || spec->needs_oracle) {
      resp.status = StatusCode::kInvalidArgument;
      resp.message = spec == nullptr
                         ? "unknown algorithm " + job.req.algorithm
                         : "oracle baselines are not served";
      return resp;
    }
  }

  QueryCancelToken token(*cfg_.clock, job.deadline_us, killed_);
  if (token.cancelled()) return cancel_response(token);

  return approx_path ? run_approx(pop, job, token)
                     : run_exact(pop, job, token);
}

Response Shard::run_exact(Population& pop, const Job& job,
                          const core::CancelToken& token) {
  const Request& req = job.req;
  core::EngineOptions eopts;
  eopts.cancel = &token;

  const PlanKey key{pop.n, req.t, req.algorithm};
  const auto plan = plans_.lookup(key);

  const bool checked = cfg_.checked && pop.oracle_capable;
  std::optional<conformance::CheckedChannel> guard;
  if (checked) {
    conformance::CheckedChannel::Config ccfg;
    ccfg.exact_semantics = !pop.channel->lossy();
    guard.emplace(*pop.channel, std::span<const NodeId>(pop.nodes), ccfg);
  }
  group::QueryChannel& ch = checked
                                ? static_cast<group::QueryChannel&>(*guard)
                                : *pop.channel;

  core::ThresholdOutcome out;
  double p_estimate = 0.0;
  if (is_abns_family(req.algorithm)) {
    // Warm start: prefer the plan cached for this exact (n, t), then the
    // population's last converged estimate, then the paper's static p0.
    double p0 = static_cast<double>(
        req.algorithm == "abns:t" ? req.t : 2 * req.t);
    if (pop.abns_p_estimate > 0.0) p0 = pop.abns_p_estimate;
    if (plan && plan->p_estimate > 0.0) p0 = plan->p_estimate;
    core::AbnsPolicy policy({p0});
    core::RoundEngine engine(ch, *pop.query_rng, eopts);
    out = engine.run(pop.nodes, req.t, policy);
    p_estimate = policy.current_estimate();
    if (!out.cancelled && p_estimate > 0.0) pop.abns_p_estimate = p_estimate;
  } else {
    const auto* spec = core::find_algorithm(req.algorithm);
    out = spec->run(ch, pop.nodes, req.t, *pop.query_rng, eopts);
  }

  if (out.cancelled) {
    Response resp = cancel_response(token);
    resp.queries = out.queries;
    return resp;
  }

  plans_.insert(key, PlanEntry{analytic_initial_bins(req.algorithm, pop.n,
                                                     req.t, p_estimate),
                               p_estimate});

  if (checked) {
    guard->check_outcome(req.t, out);
    if (!guard->ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      conformance_violations_ += guard->violations().size();
    }
  }

  Response resp;
  resp.status = StatusCode::kOk;
  resp.decision = out.decision;
  resp.mode = AnswerMode::kExact;
  resp.queries = out.queries;
  return resp;
}

Response Shard::run_approx(Population& pop, const Job& job,
                           const core::CancelToken& token) {
  const auto* estimator =
      core::find_counting_algorithm(cfg_.degrade_estimator);
  if (estimator == nullptr) {
    Response resp;
    resp.status = StatusCode::kInvalidArgument;
    resp.message = "degrade estimator " + cfg_.degrade_estimator +
                   " is not registered";
    return resp;
  }

  core::CountOptions copts;
  copts.engine.cancel = &token;

  const bool checked = cfg_.checked && pop.oracle_capable;
  std::optional<conformance::CheckedChannel> guard;
  if (checked) {
    conformance::CheckedChannel::Config ccfg;
    ccfg.exact_semantics = !pop.channel->lossy();
    guard.emplace(*pop.channel, std::span<const NodeId>(pop.nodes), ccfg);
  }
  group::QueryChannel& ch = checked
                                ? static_cast<group::QueryChannel&>(*guard)
                                : *pop.channel;

  const core::CountOutcome out =
      estimator->run(ch, pop.nodes, *pop.query_rng, copts);

  if (out.cancelled) {
    Response resp = cancel_response(token);
    resp.queries = out.queries;
    return resp;
  }

  if (checked) {
    guard->check_count_outcome(out);
    if (!guard->ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      conformance_violations_ += guard->violations().size();
    }
  }

  // The honest degraded answer: the count estimate versus t, tagged with
  // the estimator's claimed band — never passed off as an exact verdict.
  Response resp;
  resp.status = StatusCode::kOk;
  resp.decision =
      out.estimate >= static_cast<double>(job.req.t);
  resp.mode = out.exact ? AnswerMode::kExact : AnswerMode::kApproximate;
  resp.estimate = out.estimate;
  resp.epsilon = out.epsilon;
  resp.confidence = out.confidence;
  resp.queries = out.queries;
  return resp;
}

Response Shard::cancel_response(const core::CancelToken& token) const {
  (void)token;
  Response resp;
  if (killed_.load(std::memory_order_acquire)) {
    resp.status = StatusCode::kShardDown;
    resp.message = "shard killed mid-query";
    resp.retry_after_ms = 1;
  } else {
    resp.status = StatusCode::kDeadlineExceeded;
    resp.message = "deadline expired mid-query";
  }
  return resp;
}

}  // namespace tcast::service
