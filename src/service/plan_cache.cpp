#include "service/plan_cache.hpp"

namespace tcast::service {

std::optional<PlanEntry> PlanCache::lookup(const PlanKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key, PlanEntry entry) {
  if (capacity_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, entry);
  map_.emplace(key, lru_.begin());
}

}  // namespace tcast::service
