// Service-level chaos: scripted fault campaigns against a TcastService.
//
// The PR 5 chaos layer attacks one algorithm run through a faulty channel;
// this layer attacks the *daemon*: shards are killed and rebooted while
// queries are queued and in flight, deadlines expire inside rounds, the
// admission queue overflows — and the conformance monitors assert the
// service contract end to end:
//
//   * liveness  — every submitted request resolves (no hangs, no silent
//                 drops), including requests queued on a killed shard;
//   * honesty   — every kOk exact verdict matches ground truth (the
//                 campaign generated the populations, so it knows x);
//                 every approximate answer is tagged, and the fraction of
//                 estimates outside their claimed (1±ε) band stays under
//                 the statistical acceptance floor for the claimed δ;
//   * typing    — everything else is a typed error (kOverloaded /
//                 kDeadlineExceeded / kShardDown / ...), never a verdict.
//
// A campaign is a pure function of its seed: ops are pre-generated, time
// is a ManualClock the ops advance, so a failing seed replays exactly.
// Failing op lists shrink with the same ddmin idea as chaos::shrink, but
// over service ops (that shrinker is FaultTrace-specific); ops serialize
// to a line-based text trace so CI can upload minimized reproducers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace tcast::service {

struct ServiceOp {
  enum class Kind : std::uint8_t {
    kLoad,     ///< (re)load population `pop` with n nodes, x positive
    kQuery,    ///< threshold query against `pop`
    kKill,     ///< kill shard `shard`
    kReboot,   ///< reboot shard `shard`
    kAdvance,  ///< advance the manual clock by `advance_us`
    kPump,     ///< drain every shard one batch
  };

  Kind kind = Kind::kPump;
  std::string pop;
  std::size_t n = 0;
  std::size_t x = 0;
  std::uint64_t seed = 1;
  std::size_t t = 0;
  std::uint64_t deadline_ms = 0;
  ApproxMode approx = ApproxMode::kAllow;
  std::size_t shard = 0;
  TimeUs advance_us = 0;

  std::string encode() const;
  static std::optional<ServiceOp> parse(std::string_view line);

  bool operator==(const ServiceOp&) const = default;
};

/// One line per op; round-trips with parse_trace.
std::string encode_trace(std::span<const ServiceOp> ops);
std::optional<std::vector<ServiceOp>> parse_trace(std::string_view text);

struct ServiceCampaignConfig {
  std::uint64_t seed = 1;
  std::size_t ops = 400;
  std::size_t populations = 4;
  std::size_t max_n = 128;
  std::size_t shards = 2;
  std::size_t queue_capacity = 8;
  std::size_t degrade_enter = 6;
  std::size_t degrade_exit = 2;
  std::size_t batch_max = 4;
  bool checked = true;
  std::string algorithm = "2tbins";
  std::string degrade_estimator = "nz-geom";
  /// Default (ε, δ) claim of the degrade estimator, for the honesty check.
  double epsilon = 0.35;
  double delta = 0.1;
};

/// Deterministic op script for `cfg.seed` — kill/reboot, bursty query
/// volleys (to overflow the bounded queues), deadline'd queries, clock
/// advances and pumps, interleaved.
std::vector<ServiceOp> generate_service_ops(const ServiceCampaignConfig& cfg);

struct ServiceCampaignReport {
  std::size_t submitted = 0;
  std::size_t resolved = 0;
  std::size_t hangs = 0;  ///< submitted - resolved after the final drain
  std::size_t ok_exact = 0;
  std::size_t ok_approx = 0;
  std::size_t wrong_exact = 0;  ///< kOk exact verdicts contradicting truth
  std::size_t untagged_approx = 0;  ///< approx path answers posing as exact
  std::size_t approx_outside_band = 0;
  double approx_floor = 0.0;  ///< allowed out-of-band count at claimed δ
  std::size_t typed_errors = 0;
  std::size_t conformance_violations = 0;
  std::vector<std::string> failures;  ///< human-readable contract breaches

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// Replays `ops` against a fresh service under a ManualClock and checks
/// the contract. Pure function of (ops, cfg).
ServiceCampaignReport run_service_ops(std::span<const ServiceOp> ops,
                                      const ServiceCampaignConfig& cfg);

/// ddmin over op lists: smallest subsequence (locally minimal) for which
/// `failing` still returns true. `failing(ops)` must be deterministic.
std::vector<ServiceOp> shrink_service_ops(
    std::vector<ServiceOp> ops,
    const std::function<bool(std::span<const ServiceOp>)>& failing);

/// generate → run → (on failure) shrink; the nightly CI entry point.
struct ServiceCampaignResult {
  ServiceCampaignReport report;
  std::vector<ServiceOp> minimized;  ///< empty when the campaign passed
};
ServiceCampaignResult run_service_campaign(const ServiceCampaignConfig& cfg);

}  // namespace tcast::service
