// The tcastd wire protocol (docs/SERVICE.md).
//
// Transport: length-prefixed frames over a byte stream (Unix domain
// socket) — a 4-byte little-endian payload length followed by that many
// bytes. Payloads are single-line text, `key=value` tokens separated by
// single spaces, first token the verb — trivially debuggable with a text
// CLI yet unambiguous to frame (no in-band delimiters to escape).
//
// Requests:
//   load pop=NAME n=128 x=32 seed=7 model=1+ tier=exact
//   query pop=NAME t=16 algo=2tbins deadline-ms=50 approx=allow
//   stats | list | ping | drop pop=NAME | kill shard=1 | reboot shard=1 |
//   shutdown
//
// Responses (one per request, always):
//   status=ok decision=yes mode=exact queries=42 shard=1 latency-us=730
//   status=overloaded retry-after-ms=12
//   status=ok decision=no mode=approximate estimate=3.2 epsilon=0.35
//     confidence=0.9 queries=18 ...
//
// The codec is a total function both ways: encode(parse(x)) == normalize(x)
// and parse(encode(r)) == r, property-tested in tests/service.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "group/query_channel.hpp"
#include "service/clock.hpp"
#include "service/status.hpp"

namespace tcast::service {

/// Which resident backend a population simulates its radio world on.
enum class BackendTier : std::uint8_t { kExact, kPacket };

const char* to_string(BackendTier t);
std::optional<BackendTier> parse_backend_tier(std::string_view text);

/// Client policy for graceful degradation: may the server answer this query
/// from the approximate counting path when overloaded?
enum class ApproxMode : std::uint8_t {
  kAllow,    ///< degrade when the shard is overloaded (the default)
  kNever,    ///< exact or a typed error, never an estimate
  kRequire,  ///< always answer approximately (cheap census queries)
};

const char* to_string(ApproxMode m);
std::optional<ApproxMode> parse_approx_mode(std::string_view text);

enum class RequestKind : std::uint8_t {
  kLoad,
  kQuery,
  kDrop,
  kList,
  kStats,
  kPing,
  kKillShard,
  kRebootShard,
  kShutdown,
};

const char* to_string(RequestKind k);

struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string population;
  // kLoad:
  std::size_t n = 0;
  std::size_t x = 0;
  std::uint64_t seed = 1;
  group::CollisionModel model = group::CollisionModel::kOnePlus;
  BackendTier tier = BackendTier::kExact;
  // kQuery:
  std::size_t t = 0;
  std::string algorithm = "2tbins";
  /// Relative per-query budget in milliseconds; 0 = no deadline. The server
  /// stamps the absolute deadline at admission.
  std::uint64_t deadline_ms = 0;
  ApproxMode approx = ApproxMode::kAllow;
  // kKillShard / kRebootShard:
  std::size_t shard = 0;

  std::string encode() const;
  static std::optional<Request> parse(std::string_view line);

  bool operator==(const Request&) const = default;
};

/// How a verdict was produced. Responses are honest: an approximate answer
/// is tagged as such, with its claimed (1±epsilon, confidence) band
/// attached — a degraded server never passes an estimate off as exact.
enum class AnswerMode : std::uint8_t { kExact, kApproximate };

const char* to_string(AnswerMode m);

struct Response {
  StatusCode status = StatusCode::kOk;
  bool decision = false;
  AnswerMode mode = AnswerMode::kExact;
  /// Approximate path only: the count estimate and its claimed band.
  double estimate = 0.0;
  double epsilon = 0.0;
  double confidence = 0.0;
  QueryCount queries = 0;
  std::size_t shard = 0;
  /// End-to-end service latency (admission to resolution), microseconds.
  TimeUs latency_us = 0;
  /// kOverloaded: suggested client backoff floor.
  std::uint64_t retry_after_ms = 0;
  /// Free-text detail for errors / stats / list payloads.
  std::string message;

  std::string encode() const;
  static std::optional<Response> parse(std::string_view line);

  bool ok() const { return status == StatusCode::kOk; }

  bool operator==(const Response&) const = default;
};

/// ---- Length-prefixed framing -------------------------------------------

/// Frames payloads larger than this are a protocol violation (a corrupt or
/// hostile peer); readers fail the connection instead of buffering.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Appends [u32 LE length][payload] to `out`.
void append_frame(std::string& out, std::string_view payload);

/// Incremental deframer for a byte stream. Feed arbitrary chunks; complete
/// payloads come out in order. A frame longer than kMaxFrameBytes poisons
/// the reader (error() != nullopt) — the connection must be dropped.
class FrameReader {
 public:
  void feed(const char* data, std::size_t len);
  /// Next complete payload, FIFO; nullopt when none is buffered.
  std::optional<std::string> next();
  const std::optional<std::string>& error() const { return error_; }

 private:
  std::string buf_;
  std::deque<std::string> ready_;
  std::optional<std::string> error_;
};

}  // namespace tcast::service
