#include "service/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace tcast::service {

std::uint64_t BackoffPolicy::delay_ms(std::size_t attempt,
                                      std::uint64_t retry_after_hint,
                                      RngStream& rng) const {
  double d = static_cast<double>(base_ms) *
             std::pow(multiplier, static_cast<double>(attempt));
  d = std::min(d, static_cast<double>(max_ms));
  d = std::max(d, static_cast<double>(retry_after_hint));
  const double j = std::clamp(jitter, 0.0, 1.0);
  const double scaled = d * (1.0 - j * rng.uniform01());
  return static_cast<std::uint64_t>(std::llround(std::max(scaled, 0.0)));
}

}  // namespace tcast::service
