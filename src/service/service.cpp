#include "service/service.hpp"

#include <chrono>
#include <sstream>

namespace tcast::service {
namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

TcastService::TcastService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    ShardConfig scfg;
    scfg.index = i;
    scfg.queue_capacity = cfg_.queue_capacity;
    scfg.degrade_enter = cfg_.degrade_enter;
    scfg.degrade_exit = cfg_.degrade_exit;
    scfg.batch_max = cfg_.batch_max;
    scfg.degrade_estimator = cfg_.degrade_estimator;
    scfg.checked = cfg_.checked;
    scfg.plan_cache_capacity = cfg_.plan_cache_capacity;
    scfg.max_population = cfg_.max_population;
    scfg.clock = cfg_.clock;
    shards_.push_back(std::make_unique<Shard>(scfg));
  }
}

TcastService::~TcastService() {
  stop_pump_thread();
  for (auto& shard : shards_) shard->shutdown();
  drain_all();
}

std::size_t TcastService::shard_of(std::string_view population) const {
  return static_cast<std::size_t>(fnv1a(population) % shards_.size());
}

void TcastService::submit(Request req, Callback cb) {
  Response resp;
  switch (req.kind) {
    case RequestKind::kPing:
      resp.status = shutting_down() ? StatusCode::kShuttingDown
                                    : StatusCode::kOk;
      resp.message = "pong";
      cb(resp);
      return;

    case RequestKind::kStats:
      resp.status = StatusCode::kOk;
      resp.message = stats_text();
      cb(resp);
      return;

    case RequestKind::kList: {
      std::ostringstream os;
      {
        std::lock_guard<std::mutex> lock(names_mu_);
        for (const auto& name : population_names_) {
          os << name << " (shard " << shard_of(name) << ")\n";
        }
      }
      resp.status = StatusCode::kOk;
      resp.message = os.str();
      cb(resp);
      return;
    }

    case RequestKind::kKillShard:
    case RequestKind::kRebootShard: {
      if (req.shard >= shards_.size()) {
        resp.status = StatusCode::kInvalidArgument;
        resp.message = "shard index out of range";
        cb(resp);
        return;
      }
      if (req.kind == RequestKind::kKillShard) {
        shards_[req.shard]->kill();
        resp.message = "shard killed";
      } else {
        shards_[req.shard]->reboot();
        resp.message = "shard rebooted";
      }
      resp.status = StatusCode::kOk;
      resp.shard = req.shard;
      cb(resp);
      return;
    }

    case RequestKind::kShutdown:
      shutting_down_.store(true, std::memory_order_release);
      for (auto& shard : shards_) shard->shutdown();
      resp.status = StatusCode::kOk;
      resp.message = "shutting down";
      cb(resp);
      return;

    case RequestKind::kLoad:
    case RequestKind::kQuery:
    case RequestKind::kDrop: {
      if (shutting_down()) {
        resp.status = StatusCode::kShuttingDown;
        cb(resp);
        return;
      }
      const std::size_t idx = shard_of(req.population);
      if (req.kind == RequestKind::kQuery) {
        shards_[idx]->submit(std::move(req), std::move(cb));
        return;
      }
      // Track the population namespace on successful load/drop so `list`
      // answers without touching shard-private state.
      const std::string name = req.population;
      const bool is_load = req.kind == RequestKind::kLoad;
      auto wrapped = [this, name, is_load,
                      cb = std::move(cb)](const Response& r) {
        if (r.ok()) {
          std::lock_guard<std::mutex> lock(names_mu_);
          if (is_load) {
            population_names_.insert(name);
          } else {
            population_names_.erase(name);
          }
        }
        cb(r);
      };
      shards_[idx]->submit(std::move(req), std::move(wrapped));
      return;
    }
  }
}

void TcastService::pump() {
  ThreadPool* pool = cfg_.pool != nullptr ? cfg_.pool : &ThreadPool::global();
  struct Ctx {
    std::vector<std::unique_ptr<Shard>>* shards;
  } ctx{&shards_};
  pool->run_batch(
      shards_.size(),
      [](void* raw, std::size_t i) {
        (*static_cast<Ctx*>(raw)->shards)[i]->drain();
      },
      &ctx);
}

void TcastService::drain_all() {
  while (total_queue_depth() > 0) pump();
}

void TcastService::start_pump_thread() {
  if (pump_thread_.joinable()) return;
  pump_stop_.store(false, std::memory_order_release);
  pump_thread_ = std::thread([this] {
    while (!pump_stop_.load(std::memory_order_acquire)) {
      if (total_queue_depth() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      pump();
    }
  });
}

void TcastService::stop_pump_thread() {
  if (!pump_thread_.joinable()) return;
  pump_stop_.store(true, std::memory_order_release);
  pump_thread_.join();
}

std::size_t TcastService::total_queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->queue_depth();
  return total;
}

std::vector<ShardStats> TcastService::stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

std::string TcastService::stats_text() const {
  std::ostringstream os;
  for (const auto& s : stats()) {
    os << "shard=" << s.index << " depth=" << s.queue_depth
       << " degraded=" << (s.degraded ? 1 : 0)
       << " killed=" << (s.killed ? 1 : 0) << " admitted=" << s.admitted
       << " rejected_overload=" << s.rejected_overload
       << " shed_deadline=" << s.shed_deadline
       << " cancelled_deadline=" << s.cancelled_deadline
       << " cancelled_kill=" << s.cancelled_kill
       << " completed_exact=" << s.completed_exact
       << " completed_approx=" << s.completed_approx
       << " degrade_entries=" << s.degrade_entries << " errors=" << s.errors
       << " conformance_violations=" << s.conformance_violations
       << " plan_hits=" << s.plan_hits << " plan_misses=" << s.plan_misses
       << " populations=" << s.populations
       << " ewma_service_us=" << s.ewma_service_us
       << " latency_count=" << s.latency.count << " p50_us=" << s.latency.p50
       << " p99_us=" << s.latency.p99 << " p999_us=" << s.latency.p999
       << "\n";
  }
  return os.str();
}

}  // namespace tcast::service
