// tcastd's transport: a Unix-domain stream socket speaking the
// length-prefixed protocol of protocol.hpp.
//
// One poll()-driven event-loop thread owns every fd (accept + reads);
// query execution never blocks it — requests are handed to TcastService
// and the responses come back on pump threads. Because a connection may
// pipeline requests and the service resolves them out of order (different
// shards, shed deadlines), each connection sequences its requests at read
// time and buffers completed responses until they can be written back in
// request order — the protocol stays correlation-id-free.
//
// UnixClient is the matching blocking client: one call() per request,
// with optional retry-with-backoff honoring server retry-after hints
// (used by tools/tcast_client, the CLI --max-retries path, and the load
// rigs' closed-loop workers).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/backoff.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace tcast::service {

class UnixServer {
 public:
  /// `service` must outlive the server. `socket_path` is unlinked on bind
  /// and on destruction.
  UnixServer(TcastService& service, std::string socket_path);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Binds and listens; false (with *error filled) on failure.
  bool start(std::string* error);

  /// Blocking accept/read loop; returns once stop() is called or the
  /// service enters shutdown (after flushing responses).
  void run();

  /// Signals run() to exit; safe from any thread / signal context flag.
  void stop() { stop_.store(true, std::memory_order_release); }

  const std::string& socket_path() const { return path_; }

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::mutex mu;  ///< write ordering state below
    std::uint64_t next_submit = 0;
    std::uint64_t next_send = 0;
    std::map<std::uint64_t, std::string> out_of_order;
    std::atomic<bool> open{true};
  };

  void accept_one();
  /// Reads available bytes; parses and submits complete frames. Returns
  /// false when the connection is done (EOF / error / protocol violation).
  bool service_readable(const std::shared_ptr<Connection>& conn);
  static void enqueue_response(const std::shared_ptr<Connection>& conn,
                               std::uint64_t seq, const Response& resp);
  static void close_connection(Connection& conn);

  TcastService* service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::shared_ptr<Connection>> conns_;
};

/// Blocking request/response client over the same socket.
class UnixClient {
 public:
  explicit UnixClient(std::string socket_path);
  ~UnixClient();

  UnixClient(const UnixClient&) = delete;
  UnixClient& operator=(const UnixClient&) = delete;

  bool connect(std::string* error);
  bool connected() const { return fd_ >= 0; }

  /// One request, one response; nullopt on transport failure.
  std::optional<Response> call(const Request& req);

  /// call() with up to policy.max_retries retries on retryable statuses,
  /// sleeping the backoff (jittered, hint-respecting) between attempts.
  std::optional<Response> call_with_retries(const Request& req,
                                            const BackoffPolicy& policy,
                                            RngStream& rng,
                                            std::size_t* attempts = nullptr);

 private:
  std::string path_;
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace tcast::service
