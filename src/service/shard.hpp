// A tcastd shard: single-owner executor for a slice of the population
// namespace, with bounded admission, deadline shedding, and graceful
// degradation to approximate counting.
//
// Concurrency contract:
//   * submit() / kill() / reboot() / shutdown() / stats() are thread-safe
//     (server threads, chaos controller);
//   * drain() — where populations, RNG streams and the plan cache live —
//     is called by at most one thread at a time (the service pumps every
//     shard through ThreadPool::run_batch, one batch slot per shard), so
//     the execution path needs no locking around engine runs.
//
// The overload ladder, in order of escalation (docs/SERVICE.md):
//   1. admission control — the queue is bounded; a full queue rejects with
//      kOverloaded + a retry-after hint sized from the EWMA service time;
//   2. deadline shedding — a query whose deadline expired while queued is
//      resolved kDeadlineExceeded at dequeue, before any engine work;
//   3. degradation — sustained depth ≥ degrade_enter flips the shard into
//      degraded mode (hysteresis: exits at depth ≤ degrade_exit), where
//      approx-tolerant queries are answered by the configured counting
//      estimator instead of an exact session — honestly tagged
//      mode=approximate with the claimed (1±ε, confidence) band attached;
//   4. mid-run cancellation — a deadline or shard kill trips the engine's
//      CancelToken between queries; the outcome maps to a typed error,
//      never a fabricated verdict.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "core/round_engine.hpp"
#include "group/query_channel.hpp"
#include "perf/latency.hpp"
#include "service/clock.hpp"
#include "service/plan_cache.hpp"
#include "service/protocol.hpp"

namespace tcast::service {

/// Deadline + shard-kill cancel token handed to the engine for one query.
class QueryCancelToken final : public core::CancelToken {
 public:
  QueryCancelToken(const Clock& clock, TimeUs deadline_us,
                   const std::atomic<bool>& killed)
      : clock_(&clock), deadline_us_(deadline_us), killed_(&killed) {}

  bool cancelled() const override {
    return killed_->load(std::memory_order_acquire) ||
           clock_->now_us() >= deadline_us_;
  }

 private:
  const Clock* clock_;
  TimeUs deadline_us_;
  const std::atomic<bool>* killed_;
};

struct ShardConfig {
  std::size_t index = 0;
  /// Bounded admission queue; a full queue rejects with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Degradation hysteresis on queue depth: enter at >= enter, leave at
  /// <= exit. enter > exit keeps the mode from flapping per-request.
  std::size_t degrade_enter = 32;
  std::size_t degrade_exit = 8;
  /// Max jobs executed per drain() call (pump fairness across shards).
  std::size_t batch_max = 8;
  /// Counting estimator answering degraded queries (counting_registry name).
  std::string degrade_estimator = "nz-geom";
  /// Run exact-tier queries through a conformance CheckedChannel and count
  /// violations (the service-level safety net; cheap relative to a run).
  bool checked = false;
  std::size_t plan_cache_capacity = 64;
  /// Populations larger than this are rejected kInvalidArgument.
  std::size_t max_population = 1 << 16;
  /// Time source; borrowed, must outlive the shard.
  const Clock* clock = &RealClock::instance();
};

struct ShardStats {
  std::size_t index = 0;
  std::size_t queue_depth = 0;
  bool degraded = false;
  bool killed = false;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t shed_deadline = 0;       ///< expired while queued
  std::uint64_t cancelled_deadline = 0;  ///< expired mid-run
  std::uint64_t cancelled_kill = 0;
  std::uint64_t completed_exact = 0;
  std::uint64_t completed_approx = 0;
  std::uint64_t degrade_entries = 0;  ///< times the shard entered degraded mode
  std::uint64_t errors = 0;           ///< kNotFound/kInvalidArgument/...
  std::uint64_t conformance_violations = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t populations = 0;
  double ewma_service_us = 0.0;
  perf::PercentileSummary latency;  ///< end-to-end, admission → resolution
};

class Shard {
 public:
  using Callback = std::function<void(const Response&)>;

  explicit Shard(ShardConfig cfg);

  /// Admits a request or resolves it immediately (kOverloaded when the
  /// queue is full, kShuttingDown after shutdown()). Every submitted
  /// request's callback is invoked exactly once, here or from drain().
  void submit(Request req, Callback cb);

  /// Executes up to batch_max queued jobs. A killed shard still drains —
  /// flushing its queue as kShardDown — so no request ever hangs.
  /// Single-threaded by contract (see file comment).
  void drain();

  /// Chaos hooks. kill() trips the in-flight cancel token and turns the
  /// queue into kShardDown flushes; reboot() restores service (populations
  /// survive — the model is a warm process restart, and the robustness
  /// contract under test is typed errors + recovery, not durability).
  void kill();
  void reboot();
  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Rejects new work and makes the next drain() flush the queue with
  /// kShuttingDown.
  void shutdown();

  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  std::size_t queue_depth() const;
  ShardStats stats() const;

 private:
  struct Job {
    Request req;
    Callback cb;
    TimeUs admit_us = 0;
    TimeUs deadline_us = kNoDeadline;
  };

  /// A resident population: ground truth + channel + RNG streams. All
  /// access is from the drain path.
  struct Population {
    std::size_t n = 0;
    std::size_t x = 0;
    BackendTier tier = BackendTier::kExact;
    group::CollisionModel model = group::CollisionModel::kOnePlus;
    std::uint64_t seed = 1;
    std::vector<NodeId> nodes;  ///< [0, n)
    /// Channel-internal randomness (capture draws); must outlive channel.
    std::unique_ptr<RngStream> channel_rng;
    /// Algorithm-run randomness, advanced per query.
    std::unique_ptr<RngStream> query_rng;
    std::unique_ptr<group::QueryChannel> channel;
    bool oracle_capable = false;  ///< exact tier: CheckedChannel eligible
    /// ABNS warm start: the estimate the last ABNS run converged to.
    double abns_p_estimate = 0.0;
  };

  void finish(const Job& job, Response resp);
  void update_degraded(std::size_t depth);
  std::uint64_t retry_after_ms_locked(std::size_t depth) const;

  Response execute(const Job& job);
  Response do_load(const Request& req);
  Response do_drop(const Request& req);
  Response do_query(const Job& job);
  Response run_exact(Population& pop, const Job& job,
                     const core::CancelToken& token);
  Response run_approx(Population& pop, const Job& job,
                      const core::CancelToken& token);
  Response cancel_response(const core::CancelToken& token) const;

  ShardConfig cfg_;
  std::atomic<bool> killed_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> degraded_{false};

  mutable std::mutex mu_;  ///< queue + counters + latency recorder
  std::deque<Job> queue_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t cancelled_deadline_ = 0;
  std::uint64_t cancelled_kill_ = 0;
  std::uint64_t completed_exact_ = 0;
  std::uint64_t completed_approx_ = 0;
  std::uint64_t degrade_entries_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t conformance_violations_ = 0;
  double ewma_service_us_ = 0.0;
  perf::LatencyRecorder latency_{1 << 14};

  // Drain-path state (no locking; see concurrency contract).
  std::unordered_map<std::string, Population> populations_;
  PlanCache plans_;
};

}  // namespace tcast::service
