#include "service/status.hpp"

namespace tcast::service {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kShardDown:
      return "shard-down";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kShuttingDown:
      return "shutting-down";
  }
  return "invalid-argument";
}

std::optional<StatusCode> parse_status(std::string_view text) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kOverloaded, StatusCode::kDeadlineExceeded,
        StatusCode::kShardDown, StatusCode::kNotFound,
        StatusCode::kInvalidArgument, StatusCode::kShuttingDown}) {
    if (text == to_string(code)) return code;
  }
  return std::nullopt;
}

bool is_retryable(StatusCode code) {
  return code == StatusCode::kOverloaded || code == StatusCode::kShardDown ||
         code == StatusCode::kShuttingDown;
}

}  // namespace tcast::service
