#include "service/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "common/rng.hpp"
#include "conformance/count_monitor.hpp"

namespace tcast::service {
namespace {

const char* kind_name(ServiceOp::Kind k) {
  switch (k) {
    case ServiceOp::Kind::kLoad:
      return "load";
    case ServiceOp::Kind::kQuery:
      return "query";
    case ServiceOp::Kind::kKill:
      return "kill";
    case ServiceOp::Kind::kReboot:
      return "reboot";
    case ServiceOp::Kind::kAdvance:
      return "advance";
    case ServiceOp::Kind::kPump:
      return "pump";
  }
  return "pump";
}

}  // namespace

std::string ServiceOp::encode() const {
  std::ostringstream os;
  os << kind_name(kind);
  switch (kind) {
    case Kind::kLoad:
      os << " pop=" << pop << " n=" << n << " x=" << x << " seed=" << seed;
      break;
    case Kind::kQuery:
      os << " pop=" << pop << " t=" << t << " deadline-ms=" << deadline_ms
         << " approx=" << to_string(approx);
      break;
    case Kind::kKill:
    case Kind::kReboot:
      os << " shard=" << shard;
      break;
    case Kind::kAdvance:
      os << " us=" << advance_us;
      break;
    case Kind::kPump:
      break;
  }
  return os.str();
}

std::optional<ServiceOp> ServiceOp::parse(std::string_view line) {
  std::istringstream is{std::string(line)};
  std::string verb;
  if (!(is >> verb)) return std::nullopt;
  ServiceOp op;
  if (verb == "load") {
    op.kind = Kind::kLoad;
  } else if (verb == "query") {
    op.kind = Kind::kQuery;
  } else if (verb == "kill") {
    op.kind = Kind::kKill;
  } else if (verb == "reboot") {
    op.kind = Kind::kReboot;
  } else if (verb == "advance") {
    op.kind = Kind::kAdvance;
  } else if (verb == "pump") {
    op.kind = Kind::kPump;
  } else {
    return std::nullopt;
  }
  std::string word;
  while (is >> word) {
    const auto eq = word.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    try {
      if (key == "pop") {
        op.pop = value;
      } else if (key == "n") {
        op.n = std::stoull(value);
      } else if (key == "x") {
        op.x = std::stoull(value);
      } else if (key == "seed") {
        op.seed = std::stoull(value);
      } else if (key == "t") {
        op.t = std::stoull(value);
      } else if (key == "deadline-ms") {
        op.deadline_ms = std::stoull(value);
      } else if (key == "approx") {
        const auto mode = parse_approx_mode(value);
        if (!mode) return std::nullopt;
        op.approx = *mode;
      } else if (key == "shard") {
        op.shard = std::stoull(value);
      } else if (key == "us") {
        op.advance_us = std::stoull(value);
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  return op;
}

std::string encode_trace(std::span<const ServiceOp> ops) {
  std::string out;
  for (const auto& op : ops) {
    out += op.encode();
    out += '\n';
  }
  return out;
}

std::optional<std::vector<ServiceOp>> parse_trace(std::string_view text) {
  std::vector<ServiceOp> ops;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const auto line = text.substr(start, end - start);
    if (!line.empty()) {
      auto op = ServiceOp::parse(line);
      if (!op) return std::nullopt;
      ops.push_back(std::move(*op));
    }
    start = end + 1;
  }
  return ops;
}

std::vector<ServiceOp> generate_service_ops(const ServiceCampaignConfig& cfg) {
  RngStream rng(cfg.seed, 0xc4a5);
  std::vector<ServiceOp> ops;
  ops.reserve(cfg.ops + cfg.populations + 4 * cfg.shards);

  std::vector<std::pair<std::size_t, std::size_t>> pops;  // (n, x)
  for (std::size_t p = 0; p < cfg.populations; ++p) {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kLoad;
    op.pop = "p";
    op.pop += std::to_string(p);
    op.n = 16 + static_cast<std::size_t>(
                    rng.uniform_below(std::max<std::size_t>(cfg.max_n, 17) - 16));
    op.x = static_cast<std::size_t>(rng.uniform_below(op.n + 1));
    op.seed = rng.bits() | 1;
    pops.emplace_back(op.n, op.x);
    ops.push_back(std::move(op));
  }

  for (std::size_t i = 0; i < cfg.ops; ++i) {
    const auto roll = rng.uniform_below(100);
    if (roll < 55) {
      // Query volley: bursts are what overflow a bounded queue.
      const auto volley = 1 + rng.uniform_below(6);
      for (std::uint64_t v = 0; v < volley; ++v) {
        const auto p = static_cast<std::size_t>(
            rng.uniform_below(cfg.populations));
        const auto [n, x] = pops[p];
        ServiceOp op;
        op.kind = ServiceOp::Kind::kQuery;
        op.pop = "p";
        op.pop += std::to_string(p);
        // Skew thresholds toward the decision boundary x (the hard cases).
        if (rng.uniform_below(2) == 0 && x > 0) {
          const auto jitter = rng.uniform_below(5);
          const auto lo = x > 2 ? x - 2 : 1;
          op.t = std::min(n, lo + static_cast<std::size_t>(jitter));
        } else {
          op.t = 1 + static_cast<std::size_t>(rng.uniform_below(n));
        }
        const auto d = rng.uniform_below(10);
        if (d < 3) {
          op.deadline_ms = 0;  // no deadline
        } else if (d < 7) {
          op.deadline_ms = 1 + rng.uniform_below(5);
        } else {
          op.deadline_ms = 20 + rng.uniform_below(80);
        }
        const auto a = rng.uniform_below(10);
        op.approx = a < 7   ? ApproxMode::kAllow
                    : a < 9 ? ApproxMode::kNever
                            : ApproxMode::kRequire;
        ops.push_back(std::move(op));
      }
    } else if (roll < 70) {
      ServiceOp op;
      op.kind = ServiceOp::Kind::kPump;
      ops.push_back(std::move(op));
    } else if (roll < 80) {
      ServiceOp op;
      op.kind = ServiceOp::Kind::kAdvance;
      op.advance_us = 500 + rng.uniform_below(4500);
      ops.push_back(std::move(op));
    } else if (roll < 88) {
      ServiceOp op;
      op.kind = ServiceOp::Kind::kKill;
      op.shard = static_cast<std::size_t>(rng.uniform_below(cfg.shards));
      ops.push_back(std::move(op));
    } else if (roll < 96) {
      ServiceOp op;
      op.kind = ServiceOp::Kind::kReboot;
      op.shard = static_cast<std::size_t>(rng.uniform_below(cfg.shards));
      ops.push_back(std::move(op));
    } else {
      // Reload with fresh ground truth mid-campaign.
      const auto p =
          static_cast<std::size_t>(rng.uniform_below(cfg.populations));
      ServiceOp op;
      op.kind = ServiceOp::Kind::kLoad;
      op.pop = "p";
      op.pop += std::to_string(p);
      op.n = pops[p].first;
      op.x = static_cast<std::size_t>(rng.uniform_below(op.n + 1));
      op.seed = rng.bits() | 1;
      pops[p].second = op.x;
      ops.push_back(std::move(op));
    }
  }

  // Epilogue: revive every shard so queued work can resolve as verdicts,
  // not only as flushes (the run itself drains whatever remains).
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ServiceOp op;
    op.kind = ServiceOp::Kind::kReboot;
    op.shard = s;
    ops.push_back(std::move(op));
  }
  return ops;
}

namespace {

/// What the campaign expected of one submitted request at submission time.
struct Expectation {
  ServiceOp::Kind kind = ServiceOp::Kind::kQuery;
  std::size_t n = 0;
  std::size_t x = 0;
  std::size_t t = 0;
};

struct Observation {
  Expectation want;
  Response got;
};

}  // namespace

std::string ServiceCampaignReport::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " resolved=" << resolved
     << " hangs=" << hangs << " ok_exact=" << ok_exact
     << " ok_approx=" << ok_approx << " wrong_exact=" << wrong_exact
     << " untagged_approx=" << untagged_approx
     << " approx_outside_band=" << approx_outside_band
     << " approx_floor=" << approx_floor << " typed_errors=" << typed_errors
     << " conformance_violations=" << conformance_violations
     << " failures=" << failures.size();
  for (const auto& f : failures) os << "\n  FAIL: " << f;
  return os.str();
}

ServiceCampaignReport run_service_ops(std::span<const ServiceOp> ops,
                                      const ServiceCampaignConfig& cfg) {
  ManualClock clock;
  ThreadPool pool(2);
  ServiceConfig scfg;
  scfg.shards = cfg.shards;
  scfg.queue_capacity = cfg.queue_capacity;
  scfg.degrade_enter = cfg.degrade_enter;
  scfg.degrade_exit = cfg.degrade_exit;
  scfg.batch_max = cfg.batch_max;
  scfg.degrade_estimator = cfg.degrade_estimator;
  scfg.checked = cfg.checked;
  scfg.clock = &clock;
  scfg.pool = &pool;

  ServiceCampaignReport report;
  std::vector<Observation> observations;
  std::mutex obs_mu;

  {
    TcastService service(std::move(scfg));
    // Ground truth as the shard saw it when each request *executed*. A
    // reload submitted mid-campaign can be rejected at admission (queue
    // full, shard down) and never take effect, so the map advances only in
    // a load's kOk callback — and queries are judged against the map at
    // their own callback, not at submission: loads and queries to one
    // population share a FIFO shard queue, so callbacks fire in execution
    // order and the map at a query's callback is exactly the truth its
    // engine run saw. Guarded by obs_mu (shards drain in parallel).
    std::unordered_map<std::string, std::pair<std::size_t, std::size_t>>
        truth;

    for (const auto& op : ops) {
      switch (op.kind) {
        case ServiceOp::Kind::kLoad: {
          Request req;
          req.kind = RequestKind::kLoad;
          req.population = op.pop;
          req.n = op.n;
          req.x = op.x;
          req.seed = op.seed;
          ++report.submitted;
          service.submit(
              std::move(req),
              [&, pop = op.pop, n = op.n, x = op.x](const Response& r) {
                std::lock_guard<std::mutex> lock(obs_mu);
                if (r.ok()) truth[pop] = {n, x};
                observations.push_back(Observation{
                    Expectation{.kind = ServiceOp::Kind::kLoad}, r});
              });
          break;
        }
        case ServiceOp::Kind::kQuery: {
          Request req;
          req.kind = RequestKind::kQuery;
          req.population = op.pop;
          req.t = op.t;
          req.algorithm = cfg.algorithm;
          req.deadline_ms = op.deadline_ms;
          req.approx = op.approx;
          ++report.submitted;
          service.submit(
              std::move(req), [&, pop = op.pop, t = op.t](const Response& r) {
                std::lock_guard<std::mutex> lock(obs_mu);
                Expectation want;
                want.kind = ServiceOp::Kind::kQuery;
                if (const auto it = truth.find(pop); it != truth.end()) {
                  want.n = it->second.first;
                  want.x = it->second.second;
                }
                want.t = t;
                observations.push_back(Observation{want, r});
              });
          break;
        }
        case ServiceOp::Kind::kKill:
          if (op.shard < service.shard_count()) service.shard(op.shard).kill();
          break;
        case ServiceOp::Kind::kReboot:
          if (op.shard < service.shard_count())
            service.shard(op.shard).reboot();
          break;
        case ServiceOp::Kind::kAdvance:
          clock.advance_us(op.advance_us);
          break;
        case ServiceOp::Kind::kPump:
          service.pump();
          break;
      }
    }

    // Liveness: nothing may be left pending once the queues drain.
    service.drain_all();
    for (const auto& s : service.stats())
      report.conformance_violations += s.conformance_violations;
  }

  report.resolved = observations.size();
  report.hangs = report.submitted > report.resolved
                     ? report.submitted - report.resolved
                     : 0;
  if (report.hangs > 0) {
    report.failures.push_back(std::to_string(report.hangs) +
                              " requests never resolved (hang/silent drop)");
  }
  if (report.conformance_violations > 0) {
    report.failures.push_back(
        std::to_string(report.conformance_violations) +
        " conformance violations flagged by CheckedChannel");
  }

  std::size_t approx_trials = 0;
  std::size_t approx_within = 0;
  for (const auto& obs : observations) {
    const auto& r = obs.got;
    if (obs.want.kind != ServiceOp::Kind::kQuery) continue;
    if (r.status != StatusCode::kOk) {
      ++report.typed_errors;
      continue;
    }
    const bool truth_decision = obs.want.x >= obs.want.t;
    if (r.mode == AnswerMode::kExact) {
      ++report.ok_exact;
      if (r.decision != truth_decision) {
        ++report.wrong_exact;
        report.failures.push_back(
            "exact verdict " + std::string(r.decision ? "yes" : "no") +
            " contradicts ground truth (x=" + std::to_string(obs.want.x) +
            ", t=" + std::to_string(obs.want.t) + ")");
      }
    } else {
      ++report.ok_approx;
      if (r.confidence <= 0.0 || r.epsilon <= 0.0) {
        ++report.untagged_approx;
        report.failures.push_back(
            "approximate answer missing its (epsilon, confidence) tag");
      }
      ++approx_trials;
      // Honesty is judged against the band the answer itself claims; the
      // campaign's cfg.epsilon only backstops an answer that claimed none.
      const double band = r.epsilon > 0.0 ? r.epsilon : cfg.epsilon;
      const double x = static_cast<double>(obs.want.x);
      const bool within = obs.want.x == 0
                              ? r.estimate == 0.0
                              : std::abs(r.estimate - x) <= band * x;
      if (within) ++approx_within;
    }
  }

  if (approx_trials > 0) {
    report.approx_outside_band = approx_trials - approx_within;
    report.approx_floor =
        conformance::acceptance_floor(cfg.delta, approx_trials);
    const double within_fraction = static_cast<double>(approx_within) /
                                   static_cast<double>(approx_trials);
    if (within_fraction < report.approx_floor) {
      std::ostringstream os;
      os << "approximate answers within (1±" << cfg.epsilon << ") band "
         << approx_within << "/" << approx_trials << " = " << within_fraction
         << " below acceptance floor " << report.approx_floor
         << " for delta=" << cfg.delta;
      report.failures.push_back(os.str());
    }
  }
  return report;
}

std::vector<ServiceOp> shrink_service_ops(
    std::vector<ServiceOp> ops,
    const std::function<bool(std::span<const ServiceOp>)>& failing) {
  if (ops.empty() || !failing(ops)) return ops;
  std::size_t granularity = 2;
  while (ops.size() >= 2) {
    const std::size_t chunk = (ops.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < ops.size(); start += chunk) {
      std::vector<ServiceOp> candidate;
      candidate.reserve(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(ops[i]);
      }
      if (!candidate.empty() && failing(candidate)) {
        ops = std::move(candidate);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= ops.size()) break;
      granularity = std::min(ops.size(), granularity * 2);
    }
  }
  return ops;
}

ServiceCampaignResult run_service_campaign(const ServiceCampaignConfig& cfg) {
  ServiceCampaignResult result;
  const auto ops = generate_service_ops(cfg);
  result.report = run_service_ops(ops, cfg);
  if (!result.report.ok()) {
    result.minimized = shrink_service_ops(
        ops, [&cfg](std::span<const ServiceOp> candidate) {
          return !run_service_ops(candidate, cfg).ok();
        });
  }
  return result;
}

}  // namespace tcast::service
