// Client-side retry policy: exponential backoff with full jitter, honoring
// the server's retry-after hints.
//
// The hint is a floor, not the answer: the server knows its backlog (the
// hint is backlog × EWMA service time) but not how many clients just got
// the same hint, so the client still multiplies out its own exponential
// schedule and jitters the result — synchronized retry storms are the
// classic way a recovering server gets re-killed. Shared by tcast_client,
// the tcast_cli --max-retries path, and the open-loop bench rig.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "service/status.hpp"

namespace tcast::service {

struct BackoffPolicy {
  std::uint64_t base_ms = 2;
  double multiplier = 2.0;
  std::uint64_t max_ms = 2000;
  /// Jitter factor in [0, 1]: the delay is drawn uniformly from
  /// [(1 - jitter) * d, d] ("equal jitter" at 0.5, full jitter at 1).
  double jitter = 0.5;
  std::size_t max_retries = 4;

  /// Whether `status` merits attempt number `attempt` (0-based count of
  /// retries already made).
  bool should_retry(StatusCode status, std::size_t attempt) const {
    return attempt < max_retries && is_retryable(status);
  }

  /// Delay before retry number `attempt` (0-based), combining the
  /// exponential schedule with the server's hint (0 = no hint) and jitter.
  std::uint64_t delay_ms(std::size_t attempt, std::uint64_t retry_after_hint,
                         RngStream& rng) const;
};

}  // namespace tcast::service
