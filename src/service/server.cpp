#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace tcast::service {
namespace {

bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

// ---- UnixServer ----------------------------------------------------------

UnixServer::UnixServer(TcastService& service, std::string socket_path)
    : service_(&service), path_(std::move(socket_path)) {}

UnixServer::~UnixServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const auto& conn : conns_) close_connection(*conn);
  if (!path_.empty()) ::unlink(path_.c_str());
}

bool UnixServer::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path_, addr)) {
    if (error) *error = "socket path too long: " + path_;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void UnixServer::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0 && errno != EINTR) break;

    if (ready > 0) {
      // Service existing connections before accepting: accept_one() grows
      // conns_, and fds only covers the connections that were polled.
      std::vector<std::shared_ptr<Connection>> alive;
      alive.reserve(conns_.size());
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        const auto revents = fds[i + 1].revents;
        bool keep = true;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          keep = service_readable(conns_[i]);
        }
        if (keep) {
          alive.push_back(conns_[i]);
        } else {
          close_connection(*conns_[i]);
        }
      }
      conns_ = std::move(alive);
      if ((fds[0].revents & POLLIN) != 0) accept_one();
    }

    if (service_->shutting_down()) {
      // Let queued work flush to typed kShuttingDown responses, give the
      // write path a beat to deliver them, then exit.
      service_->drain_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      break;
    }
  }
}

void UnixServer::accept_one() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conns_.push_back(std::move(conn));
}

bool UnixServer::service_readable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      conn->reader.feed(buf, static_cast<std::size_t>(n));
      if (n == static_cast<ssize_t>(sizeof(buf))) continue;
      break;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    return false;
  }
  if (conn->reader.error()) return false;

  while (auto payload = conn->reader.next()) {
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      seq = conn->next_submit++;
    }
    const auto req = Request::parse(*payload);
    if (!req) {
      Response bad;
      bad.status = StatusCode::kInvalidArgument;
      bad.message = "unparseable request: " + *payload;
      enqueue_response(conn, seq, bad);
      continue;
    }
    // The callback may fire on this thread (control verbs) or a pump
    // thread later; the shared_ptr keeps the connection state alive even
    // if the socket closes first.
    service_->submit(*req, [conn, seq](const Response& resp) {
      enqueue_response(conn, seq, resp);
    });
  }
  return true;
}

void UnixServer::enqueue_response(const std::shared_ptr<Connection>& conn,
                                  std::uint64_t seq, const Response& resp) {
  std::string wire;
  append_frame(wire, resp.encode());

  std::lock_guard<std::mutex> lock(conn->mu);
  if (!conn->open.load(std::memory_order_acquire)) return;
  conn->out_of_order.emplace(seq, std::move(wire));
  // Flush the in-order prefix: responses leave in request order no matter
  // which pump thread finished first.
  while (true) {
    const auto it = conn->out_of_order.find(conn->next_send);
    if (it == conn->out_of_order.end()) break;
    if (!write_all(conn->fd, it->second.data(), it->second.size())) {
      conn->open.store(false, std::memory_order_release);
      conn->out_of_order.clear();
      return;
    }
    conn->out_of_order.erase(it);
    ++conn->next_send;
  }
}

void UnixServer::close_connection(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.mu);
  if (conn.fd >= 0 && conn.open.load(std::memory_order_acquire)) {
    ::close(conn.fd);
  }
  conn.open.store(false, std::memory_order_release);
  conn.out_of_order.clear();
}

// ---- UnixClient ----------------------------------------------------------

UnixClient::UnixClient(std::string socket_path)
    : path_(std::move(socket_path)) {}

UnixClient::~UnixClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool UnixClient::connect(std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path_, addr)) {
    if (error) *error = "socket path too long: " + path_;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error) *error = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

std::optional<Response> UnixClient::call(const Request& req) {
  if (fd_ < 0) return std::nullopt;
  std::string wire;
  append_frame(wire, req.encode());
  if (!write_all(fd_, wire.data(), wire.size())) return std::nullopt;

  for (;;) {
    if (auto payload = reader_.next()) return Response::parse(*payload);
    if (reader_.error()) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<Response> UnixClient::call_with_retries(
    const Request& req, const BackoffPolicy& policy, RngStream& rng,
    std::size_t* attempts) {
  std::size_t attempt = 0;
  for (;;) {
    const auto resp = call(req);
    if (attempts) *attempts = attempt + 1;
    if (!resp) return std::nullopt;
    if (!policy.should_retry(resp->status, attempt)) return resp;
    const auto delay = policy.delay_ms(attempt, resp->retry_after_ms, rng);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    ++attempt;
  }
}

}  // namespace tcast::service
