// TcastService: the in-process core of tcastd.
//
// Populations are sharded by FNV-1a of their name across S shards; every
// shard is drained through ThreadPool::run_batch — one batch slot per
// shard per pump — so shard execution is parallel across shards, serial
// within one (which is what lets the shard's population/plan-cache state
// go lock-free). The daemon (server.hpp) runs pump() on a dedicated
// thread; deterministic tests call pump() by hand under a ManualClock, so
// "the deadline expired while queued" and "the shard died mid-round" are
// scripted events, not races.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "service/clock.hpp"
#include "service/protocol.hpp"
#include "service/shard.hpp"

namespace tcast::service {

struct ServiceConfig {
  std::size_t shards = 4;
  std::size_t queue_capacity = 64;
  std::size_t degrade_enter = 32;
  std::size_t degrade_exit = 8;
  std::size_t batch_max = 8;
  std::string degrade_estimator = "nz-geom";
  bool checked = false;
  std::size_t plan_cache_capacity = 64;
  std::size_t max_population = 1 << 16;
  const Clock* clock = &RealClock::instance();
  /// Worker pool for pump(); nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
};

class TcastService {
 public:
  using Callback = std::function<void(const Response&)>;

  explicit TcastService(ServiceConfig cfg);
  ~TcastService();

  TcastService(const TcastService&) = delete;
  TcastService& operator=(const TcastService&) = delete;

  /// Routes and (for control verbs) resolves a request. The callback fires
  /// exactly once for every submitted request — possibly synchronously
  /// (ping/stats/rejections), possibly from a later pump.
  void submit(Request req, Callback cb);

  /// Drains every shard one batch; parallel across shards via the pool.
  void pump();

  /// pump() repeatedly until every queue is empty (flushes killed /
  /// shutting-down shards too — nothing is left hanging).
  void drain_all();

  /// Background pump thread for daemon use; idles briefly when no work.
  void start_pump_thread();
  void stop_pump_thread();

  /// Chaos / admin access.
  std::size_t shard_count() const { return shards_.size(); }
  Shard& shard(std::size_t i) { return *shards_[i]; }
  std::size_t shard_of(std::string_view population) const;

  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  std::size_t total_queue_depth() const;
  std::vector<ShardStats> stats() const;
  /// Multi-line human/CLI-readable stats (the `stats` verb payload).
  std::string stats_text() const;

 private:
  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> shutting_down_{false};

  mutable std::mutex names_mu_;
  std::set<std::string> population_names_;

  std::thread pump_thread_;
  std::atomic<bool> pump_stop_{false};
};

}  // namespace tcast::service
