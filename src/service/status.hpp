// The tcastd error taxonomy (docs/SERVICE.md).
//
// Every request submitted to the service resolves to exactly one Response
// carrying one of these codes — a verdict (kOk) or a *typed* error. The
// robustness contract is that no overload, deadline or shard fault ever
// turns into a fabricated verdict or a silently dropped request:
//
//   kOverloaded       — admission control rejected the request up front
//                       (bounded queue full); retryable, and the response
//                       carries a retry-after hint sized from the shard's
//                       drain rate.
//   kDeadlineExceeded — the per-query deadline expired, either before the
//                       query was dequeued (load shedding) or mid-round
//                       (the engine's CancelToken tripped). Never a verdict.
//   kShardDown        — the owning shard was killed (chaos or fault) while
//                       the query was queued or in flight; retryable after
//                       the shard reboots.
//   kNotFound         — unknown population name.
//   kInvalidArgument  — malformed request (unknown algorithm, x > n, ...).
//   kShuttingDown     — the service is stopping; queued work is flushed
//                       with this code instead of hanging.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tcast::service {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kOverloaded,
  kDeadlineExceeded,
  kShardDown,
  kNotFound,
  kInvalidArgument,
  kShuttingDown,
};

const char* to_string(StatusCode code);
std::optional<StatusCode> parse_status(std::string_view text);

/// True for errors a client should retry with backoff (the server state
/// that produced them is transient). Deadline expiry is NOT retryable by
/// default: the client's budget is spent; retrying is its own decision.
bool is_retryable(StatusCode code);

}  // namespace tcast::service
