// Wall-clock abstraction for the service tier.
//
// Deadlines, load shedding and degradation hysteresis are all *timing*
// behaviour — exactly the kind of thing that is untestable against a real
// clock. Every service component therefore reads time through this
// interface: RealClock in the daemon and the load rigs, ManualClock in the
// deterministic tests and the seeded chaos campaigns (where the campaign
// script advances time explicitly, so "the deadline expired while queued"
// is a reproducible event, not a race).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace tcast::service {

/// Microseconds since an arbitrary epoch (monotonic).
using TimeUs = std::uint64_t;

/// Absolute deadline value meaning "no deadline".
inline constexpr TimeUs kNoDeadline = std::numeric_limits<TimeUs>::max();

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeUs now_us() const = 0;
};

/// std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  TimeUs now_us() const override;
  /// Process-wide instance (stateless).
  static const RealClock& instance();
};

/// Test clock: time moves only when the test says so.
class ManualClock final : public Clock {
 public:
  TimeUs now_us() const override {
    return t_.load(std::memory_order_acquire);
  }
  void advance_us(TimeUs delta) {
    t_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void set_us(TimeUs t) { t_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeUs> t_{0};
};

}  // namespace tcast::service
