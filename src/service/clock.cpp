#include "service/clock.hpp"

#include <chrono>

namespace tcast::service {

TimeUs RealClock::now_us() const {
  return static_cast<TimeUs>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const RealClock& RealClock::instance() {
  static const RealClock clock;
  return clock;
}

}  // namespace tcast::service
