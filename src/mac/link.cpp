#include "mac/link.hpp"

#include "common/check.hpp"

namespace tcast::mac {

ReliableLink::ReliableLink(radio::Radio& r, CsmaMac& csma, Config cfg)
    : radio_(&r),
      csma_(&csma),
      cfg_(cfg),
      timer_(r.simulator(), [this] { on_timeout(); }) {}

void ReliableLink::send_reliable(radio::Frame f,
                                 std::function<void(bool)> done) {
  TCAST_CHECK_MSG(!in_flight_, "one reliable transfer at a time");
  TCAST_CHECK_MSG(f.dest != radio::kBroadcastAddr,
                  "reliable delivery needs a unicast destination");
  f.ack_request = true;
  f.seq = next_seq_++;
  if (next_seq_ == 0) next_seq_ = 1;
  in_flight_ = Transfer{std::move(f), std::move(done), 0};
  attempt();
}

void ReliableLink::attempt() {
  Transfer& t = *in_flight_;
  ++t.attempts;
  csma_->send(t.frame, [this](bool sent) {
    if (!in_flight_) return;  // ACK raced ahead of send-done
    if (!sent) {
      finish(false);  // channel hopeless (backoffs exhausted)
      return;
    }
    timer_.start_one_shot(cfg_.ack_timeout);
  });
}

bool ReliableLink::on_frame(const radio::Frame& f) {
  if (!in_flight_) return false;
  const bool is_ack = f.type == radio::FrameType::kHack ||
                      f.type == radio::FrameType::kAck;
  if (!is_ack || f.seq != in_flight_->frame.seq) return false;
  timer_.stop();
  finish(true);
  return true;
}

void ReliableLink::on_timeout() {
  TCAST_CHECK(in_flight_);
  if (in_flight_->attempts > cfg_.max_retries) {
    finish(false);
    return;
  }
  ++retransmissions_;
  attempt();
}

void ReliableLink::finish(bool ok) {
  auto done = std::move(in_flight_->done);
  in_flight_.reset();
  if (done) done(ok);
}

}  // namespace tcast::mac
