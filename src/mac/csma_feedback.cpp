#include "mac/csma_feedback.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace tcast::mac {

namespace {

struct Contender {
  std::size_t cw;
  std::size_t counter;  ///< idle slots to wait before transmitting
};

}  // namespace

CsmaFeedbackResult run_csma_feedback(std::size_t n, std::size_t x,
                                     std::size_t t, RngStream& rng,
                                     const CsmaFeedbackConfig& cfg) {
  TCAST_CHECK(x <= n);
  TCAST_CHECK(cfg.min_cw >= 1 && cfg.max_cw >= cfg.min_cw);
  TCAST_CHECK(cfg.quiescence_slots >= 1);

  CsmaFeedbackResult result;
  const bool truth = x >= t;

  std::vector<Contender> pending(x);
  for (auto& c : pending) {
    c.cw = cfg.min_cw;
    c.counter = static_cast<std::size_t>(rng.uniform_below(c.cw));
  }

  std::size_t idle_run = 0;
  // Hard stop: even pathological backoff cannot exceed this (every node
  // needs at most max_cw slots per attempt and collides O(log) times).
  const std::size_t slot_cap = cfg.quiescence_slots + 4 * (x + 1) * cfg.max_cw;

  while (result.slots < slot_cap) {
    ++result.slots;
    std::size_t transmitters = 0;
    for (const auto& c : pending)
      if (c.counter == 0) ++transmitters;

    if (transmitters == 0) {
      // Idle slot: everyone decrements (carrier sense saw a free medium).
      for (auto& c : pending)
        if (c.counter > 0) --c.counter;
      ++idle_run;
      if (idle_run >= cfg.quiescence_slots) {
        result.decision = false;  // assumes all replies are in
        break;
      }
      continue;
    }

    idle_run = 0;
    if (transmitters == 1) {
      // Success: remove the transmitter.
      const auto it = std::find_if(pending.begin(), pending.end(),
                                   [](const Contender& c) {
                                     return c.counter == 0;
                                   });
      pending.erase(it);
      ++result.successes;
      if (result.successes >= t) {
        result.decision = true;
        break;
      }
    } else {
      // Collision: colliders double their window and redraw; bystanders
      // freeze (medium was busy).
      ++result.collisions;
      for (auto& c : pending) {
        if (c.counter == 0) {
          c.cw = std::min(c.cw * 2, cfg.max_cw);
          c.counter = 1 + static_cast<std::size_t>(rng.uniform_below(c.cw));
        }
      }
    }
  }

  result.correct = result.decision == truth;
  return result;
}

}  // namespace tcast::mac
