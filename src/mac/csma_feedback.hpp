// CSMA feedback-collection baseline (paper Sec. I & IV-C).
//
// "In CSMA, we put no restriction on the reply times of the nodes. The nodes
//  use carrier sensing and send when they sense the medium as idle. In case
//  of a collision they use exponential backoff..."
//
// Slot-accurate model: the x positive nodes contend with binary exponential
// backoff; counters freeze while the medium is busy (carrier sense); one
// frame occupies one slot. The initiator terminates as soon as it can
// conclude:
//   * t distinct replies received            → threshold reached;
//   * `quiescence_slots` consecutive idle    → assumes contention is over and
//     slots                                    declares the threshold
//                                              unreachable.
// The quiescence rule is exactly why the paper calls CSMA unable to answer
// with certainty: a long backoff run can masquerade as silence. The result
// records whether the decision was actually correct.
//
// Cost unit: one slot ≡ one RCD query, the same time axis the paper plots.
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace tcast::mac {

struct CsmaFeedbackConfig {
  std::size_t min_cw = 2;    ///< initial contention window
  std::size_t max_cw = 64;   ///< BEB cap
  std::size_t quiescence_slots = 8;  ///< idle run ⇒ "everyone has answered"
};

struct CsmaFeedbackResult {
  bool decision = false;      ///< initiator's answer to x ≥ t
  bool correct = false;       ///< decision == (x ≥ t)
  std::size_t slots = 0;      ///< elapsed slots until the decision
  std::size_t successes = 0;  ///< distinct replies received
  std::size_t collisions = 0; ///< collision slots observed
};

/// Runs one CSMA feedback-collection session with x positive nodes out of n
/// and threshold t.
CsmaFeedbackResult run_csma_feedback(std::size_t n, std::size_t x,
                                     std::size_t t, RngStream& rng,
                                     const CsmaFeedbackConfig& cfg = {});

}  // namespace tcast::mac
