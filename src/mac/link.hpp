// Reliable unicast on top of CSMA: ACK-requested frames with retry.
//
// Uses the radio's hardware acknowledgement (the same HACK mechanism
// backcast exploits) as the delivery confirmation. The owner must forward
// incoming HACK frames to on_frame() — the radio has a single receive
// handler and the node firmware owns it.
#pragma once

#include <functional>
#include <optional>

#include "mac/csma.hpp"
#include "sim/timer.hpp"

namespace tcast::mac {

class ReliableLink {
 public:
  struct Config {
    std::size_t max_retries = 3;
    SimTime ack_timeout = 2 * kMillisecond;
  };

  ReliableLink(radio::Radio& r, CsmaMac& csma)
      : ReliableLink(r, csma, Config{}) {}
  ReliableLink(radio::Radio& r, CsmaMac& csma, Config cfg);

  /// Sends `f` reliably to f.dest; at most one transfer in flight.
  void send_reliable(radio::Frame f, std::function<void(bool)> done);

  /// Owner forwards received frames here; consumes matching HACK/ACKs.
  /// Returns true if the frame was consumed by the link layer.
  bool on_frame(const radio::Frame& f);

  bool busy() const { return in_flight_.has_value(); }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Transfer {
    radio::Frame frame;
    std::function<void(bool)> done;
    std::size_t attempts = 0;
  };

  void attempt();
  void on_timeout();
  void finish(bool ok);

  radio::Radio* radio_;
  CsmaMac* csma_;
  Config cfg_;
  sim::Timer timer_;
  std::optional<Transfer> in_flight_;
  std::uint8_t next_seq_ = 1;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace tcast::mac
