#include "mac/sequential.hpp"

#include <vector>

#include "common/check.hpp"

namespace tcast::mac {

SequentialResult run_sequential_feedback(std::size_t n, std::size_t x,
                                         std::size_t t, RngStream& rng) {
  TCAST_CHECK(x <= n);
  SequentialResult result;
  if (t == 0) {  // trivially satisfied before any slot
    result.decision = true;
    return result;
  }
  // Positions of the positive nodes in the (random) schedule.
  std::vector<bool> positive(n, false);
  for (const NodeId id : rng.sample_subset(n, x))
    positive[static_cast<std::size_t>(id)] = true;

  for (std::size_t i = 0; i < n; ++i) {
    ++result.slots;
    if (positive[i]) ++result.positives_seen;
    if (result.positives_seen >= t) {
      result.decision = true;
      return result;
    }
    const std::size_t remaining = n - i - 1;
    if (result.positives_seen + remaining < t) {
      result.decision = false;
      return result;
    }
  }
  result.decision = result.positives_seen >= t;
  return result;
}

}  // namespace tcast::mac
