#include "mac/csma.hpp"

#include "common/check.hpp"

namespace tcast::mac {

CsmaMac::CsmaMac(radio::Radio& r, Config cfg)
    : radio_(&r), sim_(&r.simulator()), cfg_(cfg) {}

void CsmaMac::send(radio::Frame f, SendDone done) {
  queue_.push_back(Pending{std::move(f), std::move(done), cfg_.min_be, 0});
  if (!attempt_in_flight_) start_attempt();
}

void CsmaMac::start_attempt() {
  TCAST_CHECK(!queue_.empty());
  attempt_in_flight_ = true;
  Pending& p = queue_.front();
  const std::size_t window = std::size_t{1} << p.be;
  const auto slots = sim_->rng().uniform_below(window);
  const SimTime delay =
      static_cast<SimTime>(slots) * radio_->phy().backoff_slot;
  sim_->schedule_after(delay, [this] { backoff_expired(); });
}

void CsmaMac::backoff_expired() {
  Pending& p = queue_.front();
  if (radio_->cca_clear() && !radio_->transmitting()) {
    radio_->transmit(p.frame);
    ++frames_sent_;
    if (p.done) p.done(true);
    queue_.pop_front();
  } else {
    p.be = std::min(p.be + 1, cfg_.max_be);
    ++p.backoffs;
    if (p.backoffs > cfg_.max_backoffs) {
      ++frames_dropped_;
      if (p.done) p.done(false);
      queue_.pop_front();
    }
  }
  attempt_in_flight_ = false;
  if (!queue_.empty()) start_attempt();
}

}  // namespace tcast::mac
