// Packet-tier CSMA-CA MAC (802.15.4 unslotted flavour) on top of the radio.
//
// Used by the examples and integration tests that want contention-based
// traffic in the discrete-event world (e.g. pitting a CSMA reply storm
// against a tcast session on the same channel). The figure benches use the
// fast slot model in csma_feedback.hpp instead.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "radio/radio.hpp"
#include "sim/simulator.hpp"

namespace tcast::mac {

class CsmaMac {
 public:
  struct Config {
    std::size_t min_be = 3;        ///< macMinBE
    std::size_t max_be = 5;        ///< macMaxBE
    std::size_t max_backoffs = 4;  ///< macMaxCSMABackoffs
  };

  /// Called when the frame left the air (true) or was dropped after
  /// exhausting backoffs (false).
  using SendDone = std::function<void(bool ok)>;

  explicit CsmaMac(radio::Radio& r) : CsmaMac(r, Config{}) {}
  CsmaMac(radio::Radio& r, Config cfg);

  /// Enqueues a frame; frames go out in FIFO order.
  void send(radio::Frame f, SendDone done = nullptr);

  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Pending {
    radio::Frame frame;
    SendDone done;
    std::size_t be;
    std::size_t backoffs;
  };

  void start_attempt();
  void backoff_expired();

  radio::Radio* radio_;
  sim::Simulator* sim_;
  Config cfg_;
  std::deque<Pending> queue_;
  bool attempt_in_flight_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace tcast::mac
