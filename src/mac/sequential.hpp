// Sequential-ordering feedback baseline (paper Sec. I & IV-C).
//
// The initiator broadcasts a reply schedule assigning every participant a
// dedicated slot (the paper's time-synchronised variant, which it notes
// "favors the sequential ordering results"). Slots tick one node at a time —
// a negative node's slot is spent in silence, a positive node's slot carries
// its reply. The initiator stops as soon as the answer is decided:
//   * t positive replies seen                          → true
//   * positives_so_far + nodes_left < t                → false
//
// Cost unit: one slot ≡ one RCD query. Worst case n slots; for x ≪ t the
// cost is ≈ n − t + x (must exhaust almost the whole schedule to rule the
// threshold out), matching the paper's "starts with a large cost overhead
// (approximately n − x)".
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace tcast::mac {

struct SequentialResult {
  bool decision = false;
  std::size_t slots = 0;
  std::size_t positives_seen = 0;
};

/// Runs one sequential-ordering session: x positives among n participants in
/// a uniformly random schedule order, threshold t.
SequentialResult run_sequential_feedback(std::size_t n, std::size_t x,
                                         std::size_t t, RngStream& rng);

}  // namespace tcast::mac
