#include "conformance/checked_channel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::conformance {

const char* to_string(Violation::Category c) {
  switch (c) {
    case Violation::Category::kPartition: return "partition";
    case Violation::Category::kRequery: return "requery";
    case Violation::Category::kTruth: return "truth";
    case Violation::Category::kBound: return "bound";
    case Violation::Category::kOutcome: return "outcome";
  }
  return "?";
}

CheckedChannel::CheckedChannel(group::QueryChannel& inner,
                               std::span<const NodeId> participants,
                               Config cfg)
    : QueryChannel(inner.model()),
      instr_(inner),
      cfg_(cfg),
      participants_(participants.begin(), participants.end()) {
  // The ≥2-activity inference is only sound when a lone reply always
  // decodes; a configuration that claims it on a channel declaring loss is
  // itself a conformance violation (the engine's soundness gate must have
  // cleared the bit before the run).
  if (cfg_.two_plus_activity_counts_two &&
      model() == group::CollisionModel::kTwoPlus && inner.lossy()) {
    add_violation(Violation::Category::kTruth,
                  "configuration claims the ≥2-activity inference on a "
                  "channel that declares lossy() — a lone reply may fail "
                  "to decode there");
  }
  NodeId max_id = 0;
  for (const NodeId id : participants_) max_id = std::max(max_id, id);
  state_.assign(static_cast<std::size_t>(max_id) + 1, NodeState::kUnknown);
  truth_.assign(state_.size(), 0);
  for (const NodeId id : participants_) {
    const NodeId one[] = {id};
    const auto count = inner.oracle_positive_count(one);
    TCAST_CHECK_MSG(count.has_value(),
                    "CheckedChannel needs an oracle-capable inner channel");
    state_of(id) = NodeState::kCandidate;
    truth_[static_cast<std::size_t>(id)] = *count > 0 ? 1 : 0;
    truth_positive_count_ += *count;
  }
}

void CheckedChannel::add_violation(Violation::Category c,
                                   std::string message) {
  if (cfg_.fail_fast) {
    std::fprintf(stderr, "conformance violation [%s]: %s\n", to_string(c),
                 message.c_str());
    TCAST_CHECK_MSG(false, "conformance violation (fail_fast)");
  }
  violations_.push_back({c, std::move(message)});
}

void CheckedChannel::do_announce(const group::BinAssignment& a) {
  std::vector<char> seen(state_.size(), 0);
  for (std::size_t i = 0; i < a.bin_count(); ++i) {
    for (const NodeId id : a.bin(i)) {
      const auto idx = static_cast<std::size_t>(id);
      if (idx >= state_.size() || state_[idx] == NodeState::kUnknown) {
        add_violation(Violation::Category::kPartition,
                      "announced node " + std::to_string(id) +
                          " is not a participant");
        continue;
      }
      if (seen[idx]) {
        add_violation(Violation::Category::kPartition,
                      "node " + std::to_string(id) +
                          " appears in two bins of one assignment");
      }
      seen[idx] = 1;
      if (cfg_.forbid_requery && state_[idx] != NodeState::kCandidate) {
        add_violation(
            Violation::Category::kRequery,
            "node " + std::to_string(id) + " re-announced after being " +
                (state_[idx] == NodeState::kDisposed ? "disposed"
                                                     : "confirmed"));
      }
    }
  }
  instr_.announce(a);
}

group::BinQueryResult CheckedChannel::check_result(
    std::span<const NodeId> nodes, group::BinQueryResult r,
    bool announced_bin) {
  std::size_t truth = 0;
  for (const NodeId id : nodes) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= state_.size() || state_[idx] == NodeState::kUnknown) {
      add_violation(Violation::Category::kPartition,
                    "queried node " + std::to_string(id) +
                        " is not a participant");
      continue;
    }
    if (truth_[idx]) ++truth;
    if (cfg_.forbid_requery && state_[idx] == NodeState::kDisposed) {
      add_violation(Violation::Category::kRequery,
                    "node " + std::to_string(id) +
                        " queried after disposal (proven negative)");
    }
  }

  switch (r.kind) {
    case group::BinQueryResult::Kind::kEmpty:
      if (truth > 0 && cfg_.exact_semantics) {
        add_violation(Violation::Category::kTruth,
                      "empty result on a bin holding " +
                          std::to_string(truth) + " real positives");
      }
      // Disposal is only a sound inference on exact channels; under loss a
      // silent bin proves nothing. It is also only *committed* for
      // announced-bin queries: the round-engine contract disposes bins, but
      // an ad-hoc sampling query (the probabilistic-ABNS hint) is a
      // measurement the algorithm may legitimately ignore — the paper's own
      // Sec. V-D re-runs ABNS over the full population after an empty hint.
      if (cfg_.exact_semantics && announced_bin) {
        for (const NodeId id : nodes) {
          const auto idx = static_cast<std::size_t>(id);
          if (idx < state_.size() && state_[idx] == NodeState::kCandidate)
            state_[idx] = NodeState::kDisposed;
        }
      }
      break;
    case group::BinQueryResult::Kind::kActivity:
      if (truth == 0) {
        add_violation(Violation::Category::kTruth,
                      "activity reported on a bin with no real positive "
                      "(false positives are structurally impossible)");
      }
      if (model() == group::CollisionModel::kTwoPlus &&
          cfg_.two_plus_activity_counts_two && cfg_.exact_semantics &&
          truth < 2) {
        add_violation(Violation::Category::kTruth,
                      "2+ activity (undecoded collision) on a bin with " +
                          std::to_string(truth) +
                          " real positives — a lone reply must decode");
      }
      break;
    case group::BinQueryResult::Kind::kCaptured: {
      if (model() != group::CollisionModel::kTwoPlus) {
        add_violation(Violation::Category::kTruth,
                      "capture reported under the 1+ model");
      }
      const auto idx = static_cast<std::size_t>(r.captured);
      const bool member =
          std::find(nodes.begin(), nodes.end(), r.captured) != nodes.end();
      if (!member) {
        add_violation(Violation::Category::kTruth,
                      "captured node " + std::to_string(r.captured) +
                          " is not in the queried set");
      } else if (!truth_[idx]) {
        add_violation(Violation::Category::kTruth,
                      "captured node " + std::to_string(r.captured) +
                          " is not a real positive");
      }
      if (idx < state_.size() && state_[idx] == NodeState::kCandidate)
        state_[idx] = NodeState::kConfirmed;
      break;
    }
  }

  if (cfg_.query_bound > 0.0 && !bound_reported_ &&
      static_cast<double>(queries_used()) > cfg_.query_bound) {
    bound_reported_ = true;
    add_violation(Violation::Category::kBound,
                  "query count " + std::to_string(queries_used()) +
                      " exceeds the registered worst-case bound " +
                      std::to_string(cfg_.query_bound));
  }
  return r;
}

group::BinQueryResult CheckedChannel::do_query_bin(
    const group::BinAssignment& a, std::size_t idx) {
  return check_result(a.bin(idx), instr_.query_bin(a, idx),
                      /*announced_bin=*/true);
}

group::BinQueryResult CheckedChannel::do_query_set(
    std::span<const NodeId> nodes) {
  return check_result(nodes, instr_.query_set(nodes),
                      /*announced_bin=*/false);
}

void CheckedChannel::check_outcome(std::size_t threshold,
                                   const core::ThresholdOutcome& out) {
  const bool truth = truth_positive_count_ >= threshold;
  if (cfg_.exact_semantics) {
    if (out.decision != truth) {
      add_violation(Violation::Category::kOutcome,
                    "decision " + std::string(out.decision ? "true" : "false") +
                        " but ground truth x=" +
                        std::to_string(truth_positive_count_) + " vs t=" +
                        std::to_string(threshold));
    }
  } else if (out.decision && !truth) {
    // Lossy channels only drop replies (false negatives); a `true` answer is
    // still a certificate — nonempty bins within a round are disjoint and
    // each holds a real positive — so it must match ground truth one-sidedly.
    add_violation(Violation::Category::kOutcome,
                  "decision true on a lossy channel with x=" +
                      std::to_string(truth_positive_count_) + " < t=" +
                      std::to_string(threshold) +
                      " — loss can never manufacture positives");
  }
  if (out.queries != queries_used()) {
    add_violation(Violation::Category::kOutcome,
                  "outcome reports " + std::to_string(out.queries) +
                      " queries but the channel answered " +
                      std::to_string(queries_used()));
  }
  if (out.confirmed_positives > truth_positive_count_) {
    add_violation(Violation::Category::kOutcome,
                  "confirmed " + std::to_string(out.confirmed_positives) +
                      " positives but only " +
                      std::to_string(truth_positive_count_) + " exist");
  }
  if (model() == group::CollisionModel::kOnePlus &&
      out.confirmed_positives > 0) {
    add_violation(Violation::Category::kOutcome,
                  "confirmed identities under the 1+ model (no capture)");
  }
  if (cfg_.query_bound > 0.0 &&
      static_cast<double>(out.queries) > cfg_.query_bound) {
    if (!bound_reported_) {
      bound_reported_ = true;
      add_violation(Violation::Category::kBound,
                    "query count " + std::to_string(out.queries) +
                        " exceeds the registered worst-case bound " +
                        std::to_string(cfg_.query_bound));
    }
  }
}

void CheckedChannel::check_count_outcome(const core::CountOutcome& out) {
  const auto truth = truth_positive_count_;
  if (lossy() && (out.exact || out.confidence >= 1.0)) {
    add_violation(Violation::Category::kTruth,
                  "counting outcome claims exactness (exact=" +
                      std::string(out.exact ? "true" : "false") +
                      ", confidence=" + std::to_string(out.confidence) +
                      ") on a channel that declares lossy() — silence "
                      "proves nothing there");
  }
  if (out.exact && !lossy() &&
      out.estimate != static_cast<double>(truth)) {
    add_violation(Violation::Category::kOutcome,
                  "claimed-exact count " + std::to_string(out.estimate) +
                      " but ground truth x=" + std::to_string(truth));
  }
  if (!lossy() && truth == 0 && out.estimate != 0.0) {
    // Activity cannot be manufactured on any tier, so with x = 0 every
    // probe is silent and any estimator must land on 0.
    add_violation(Violation::Category::kOutcome,
                  "estimate " + std::to_string(out.estimate) +
                      " with ground truth x=0 on an exact channel");
  }
  if (out.estimate < 0.0 ||
      out.estimate > static_cast<double>(participants_.size())) {
    add_violation(Violation::Category::kOutcome,
                  "estimate " + std::to_string(out.estimate) +
                      " outside [0, n=" +
                      std::to_string(participants_.size()) + "]");
  }
  if (out.queries != queries_used()) {
    add_violation(Violation::Category::kOutcome,
                  "counting outcome reports " + std::to_string(out.queries) +
                      " queries but the channel answered " +
                      std::to_string(queries_used()));
  }
  if (model() == group::CollisionModel::kOnePlus && !out.confirmed.empty()) {
    add_violation(Violation::Category::kOutcome,
                  "confirmed identities under the 1+ model (no capture)");
  }
  std::vector<NodeId> unique(out.confirmed);
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (const NodeId id : unique) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= truth_.size() || !truth_[idx]) {
      add_violation(Violation::Category::kOutcome,
                    "confirmed node " + std::to_string(id) +
                        " is not a real positive participant");
    }
  }
}

}  // namespace tcast::conformance
