#include "conformance/harness.hpp"

#include <array>
#include <optional>
#include <utility>

#include "analysis/bounds.hpp"
#include "common/check.hpp"
#include "core/sequential_baseline.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

// Seed-stream layout: every run of a scenario derives all randomness from
// scenario.seed through fixed stream ids, so failures replay exactly.
constexpr std::uint64_t kPositivesStream = 0;
constexpr std::uint64_t kChannelStream = 1;   // capture + loss draws
constexpr std::uint64_t kAlgorithmStream = 2; // binning + sampling hints

std::vector<bool> draw_positives(const Scenario& sc) {
  std::vector<bool> positive(sc.n, false);
  RngStream rng(sc.seed, kPositivesStream);
  for (const NodeId id : rng.sample_subset(sc.n, sc.x))
    positive[static_cast<std::size_t>(id)] = true;
  return positive;
}

struct BoundEntry {
  std::string_view name;
  double (*bound)(std::size_t n, std::size_t t);
};

// count:* adapters spend an estimation phase and then (at most) one exact
// verification session, so their ceiling is the estimator bound plus the
// universal engine bound.
double sampling_adapter_bound(std::size_t n, std::size_t t) {
  return core::sampling_estimator_query_bound(n) +
         analysis::engine_query_bound(n, t);
}

double beep_exact_adapter_bound(std::size_t n, std::size_t t) {
  return core::beep_exact_query_bound(n) +
         analysis::engine_query_bound(n, t);
}

// Name-specific worst-case bounds; algorithms not listed fall back to the
// universal engine bound. Extend this table when registering an algorithm
// with a tighter (or, as for the adapters, composed) guarantee.
constexpr std::array<BoundEntry, 3> kBoundTable{{
    {"count:nz-geom", &sampling_adapter_bound},
    {"count:geom-scan", &sampling_adapter_bound},
    {"count:beep-exact", &beep_exact_adapter_bound},
}};

}  // namespace

double registered_query_bound(std::string_view algorithm, std::size_t n,
                              std::size_t t) {
  for (const auto& entry : kBoundTable)
    if (entry.name == algorithm) return entry.bound(n, t);
  return analysis::engine_query_bound(n, t);
}

double registered_count_query_bound(std::string_view estimator,
                                    std::size_t n) {
  if (estimator == "beep-exact") return core::beep_exact_query_bound(n);
  return core::sampling_estimator_query_bound(n);
}

std::string ConformanceReport::summary() const {
  if (violations.empty()) return {};
  std::string s = algorithm + " on [" + scenario.describe() + "]:";
  for (const auto& v : violations)
    s += std::string("\n  [") + to_string(v.category) + "] " + v.message;
  return s;
}

ConformanceReport check_algorithm(const core::AlgorithmSpec& spec,
                                  const Scenario& scenario) {
  ConformanceReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;

  RngStream channel_rng(scenario.seed, kChannelStream);
  RngStream algo_rng(scenario.seed, kAlgorithmStream);
  group::ExactChannel::Config ecfg;
  ecfg.model = scenario.model;
  group::ExactChannel exact(draw_positives(scenario), channel_rng, ecfg);
  const auto participants = exact.all_nodes();

  std::optional<LossyChannel> lossy;
  group::QueryChannel* inner = &exact;
  if (scenario.lossy()) {
    lossy.emplace(exact, scenario.loss_prob, channel_rng);
    inner = &*lossy;
  }

  CheckedChannel::Config ccfg;
  ccfg.exact_semantics = !scenario.lossy();
  // Mirror the engine's soundness gate: on lossy scenarios the ≥2 inference
  // is auto-disabled, so the checker must not demand (or permit) it either.
  ccfg.two_plus_activity_counts_two = scenario.effective_counts_two();
  ccfg.query_bound =
      registered_query_bound(spec.name, scenario.n, scenario.t);
  CheckedChannel checked(*inner, participants, ccfg);

  report.outcome = spec.run(checked, participants, scenario.t, algo_rng,
                            scenario.engine_options());
  checked.check_outcome(scenario.t, report.outcome);
  report.violations = checked.violations();
  return report;
}

std::vector<ConformanceReport> differential_check(const Scenario& scenario) {
  // Differential mode runs loss-free: under loss the algorithms may
  // legitimately disagree (each sees its own false negatives).
  Scenario exact_sc = scenario;
  exact_sc.loss_prob = 0.0;
  const bool truth = exact_sc.ground_truth();

  std::vector<ConformanceReport> reports;
  for (const auto& spec : core::algorithm_registry()) {
    auto report = check_algorithm(spec, exact_sc);
    if (report.outcome.decision != truth) {
      report.violations.push_back(
          {Violation::Category::kOutcome,
           "differential: decision diverges from the oracle ground truth"});
    }
    reports.push_back(std::move(report));
  }

  // The sequential-ordering baseline answers from (n, x, t) directly; it is
  // the registry-independent reference the whole stream is anchored to.
  ConformanceReport seq;
  seq.scenario = exact_sc;
  seq.algorithm = "sequential-baseline";
  RngStream seq_rng(exact_sc.seed, kAlgorithmStream + 1);
  seq.outcome = core::run_sequential_baseline(exact_sc.n, exact_sc.x,
                                              exact_sc.t, seq_rng)
                    .outcome;
  if (seq.outcome.decision != truth) {
    seq.violations.push_back(
        {Violation::Category::kOutcome,
         "differential: sequential baseline diverges from ground truth"});
  }
  reports.push_back(std::move(seq));
  return reports;
}

namespace {

/// Runs `spec` on the instance with ids relabeled through id → offset +
/// id·stride (order-preserving). offset=0, stride=1 is the identity run.
core::ThresholdOutcome run_relabeled(const core::AlgorithmSpec& spec,
                                     const Scenario& sc, NodeId offset,
                                     NodeId stride) {
  TCAST_CHECK(stride >= 1);
  const auto base_positive = draw_positives(sc);
  const std::size_t top =
      sc.n == 0 ? 1
                : static_cast<std::size_t>(offset) +
                      (sc.n - 1) * static_cast<std::size_t>(stride) + 1;
  std::vector<bool> positive(top, false);
  std::vector<NodeId> participants;
  participants.reserve(sc.n);
  for (std::size_t i = 0; i < sc.n; ++i) {
    const NodeId id =
        offset + static_cast<NodeId>(i) * stride;
    positive[static_cast<std::size_t>(id)] = base_positive[i];
    participants.push_back(id);
  }

  RngStream channel_rng(sc.seed, kChannelStream);
  RngStream algo_rng(sc.seed, kAlgorithmStream);
  group::ExactChannel::Config ecfg;
  ecfg.model = sc.model;
  group::ExactChannel exact(std::move(positive), channel_rng, ecfg);
  std::optional<LossyChannel> lossy;
  group::QueryChannel* channel = &exact;
  if (sc.lossy()) {
    lossy.emplace(exact, sc.loss_prob, channel_rng);
    channel = &*lossy;
  }
  return spec.run(*channel, participants, sc.t, algo_rng,
                  sc.engine_options());
}

}  // namespace

ConformanceReport metamorphic_relabel_check(const core::AlgorithmSpec& spec,
                                            const Scenario& scenario,
                                            NodeId offset, NodeId stride) {
  ConformanceReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;
  const auto base = run_relabeled(spec, scenario, 0, 1);
  const auto mapped = run_relabeled(spec, scenario, offset, stride);
  report.outcome = base;
  if (base.decision != mapped.decision) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "relabeling ids (offset=" + std::to_string(offset) + ", stride=" +
             std::to_string(stride) + ") changed the decision"});
  }
  if (base.queries != mapped.queries) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "relabeling ids changed the query count: " +
             std::to_string(base.queries) + " vs " +
             std::to_string(mapped.queries)});
  }
  return report;
}

ConformanceReport metamorphic_bin_order_check(const core::AlgorithmSpec& spec,
                                              const Scenario& scenario) {
  // Bin-order relabeling is only an equivalence on the exact tier: under
  // loss the two runs see different loss draws and may legitimately differ.
  Scenario a = scenario;
  a.loss_prob = 0.0;
  Scenario b = a;
  a.ordering = core::BinOrdering::kInOrder;
  b.ordering = core::BinOrdering::kNonEmptyFirst;

  ConformanceReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;
  const auto in_order = check_algorithm(spec, a);
  const auto reordered = check_algorithm(spec, b);
  report.outcome = in_order.outcome;
  if (in_order.outcome.decision != reordered.outcome.decision) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "relabeling the bin query order changed the decision"});
  }
  return report;
}

ConformanceReport metamorphic_seed_shift_check(
    const core::AlgorithmSpec& spec, const Scenario& scenario,
    std::uint64_t seed_shift, bool deterministic_counts) {
  // The deterministic configuration: contiguous bins, in-order accounting,
  // 1+ model, no loss — nothing on the engine path consumes the RNG.
  Scenario a = scenario;
  a.scheme = core::BinningScheme::kContiguous;
  a.ordering = core::BinOrdering::kInOrder;
  a.model = group::CollisionModel::kOnePlus;
  a.loss_prob = 0.0;
  Scenario b = a;
  b.seed = a.seed + seed_shift;
  // The positive set must be the same instance in both runs; pin it by
  // drawing from the unshifted seed.
  const auto base_positive = draw_positives(a);

  const auto run_with = [&](const Scenario& sc) {
    RngStream channel_rng(sc.seed, kChannelStream);
    RngStream algo_rng(sc.seed, kAlgorithmStream);
    group::ExactChannel exact(base_positive, channel_rng);
    const auto participants = exact.all_nodes();
    return spec.run(exact, participants, sc.t, algo_rng,
                    sc.engine_options());
  };

  ConformanceReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;
  const auto base = run_with(a);
  const auto shifted = run_with(b);
  report.outcome = base;
  if (base.decision != shifted.decision) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "seed shift changed the decision under the deterministic "
         "configuration"});
  }
  if (deterministic_counts && base.queries != shifted.queries) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "seed shift changed the query count of a deterministic "
         "algorithm: " +
             std::to_string(base.queries) + " vs " +
             std::to_string(shifted.queries)});
  }
  return report;
}

bool has_deterministic_counts(std::string_view algorithm) {
  // The sampling hint of probabilistic ABNS consumes the RNG (and so picks
  // a different branch per seed) even under the deterministic engine
  // configuration; the count:* adapters likewise burn RNG in their
  // estimation phase (sampled probes, or the exact counter's shuffle).
  // Everything else is RNG-free there.
  return algorithm != "prob-abns" && !algorithm.starts_with("count:");
}

std::string CountingReport::summary() const {
  if (violations.empty()) return {};
  std::string s = algorithm + " (counting) on [" + scenario.describe() +
                  "] x=" + std::to_string(truth) + ":";
  for (const auto& v : violations)
    s += std::string("\n  [") + to_string(v.category) + "] " + v.message;
  return s;
}

CountingReport check_counting_algorithm(const core::CountAlgorithmSpec& spec,
                                        const Scenario& scenario) {
  CountingReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;

  RngStream channel_rng(scenario.seed, kChannelStream);
  RngStream algo_rng(scenario.seed, kAlgorithmStream);
  group::ExactChannel::Config ecfg;
  ecfg.model = scenario.model;
  group::ExactChannel exact(draw_positives(scenario), channel_rng, ecfg);
  const auto participants = exact.all_nodes();

  std::optional<LossyChannel> lossy;
  group::QueryChannel* inner = &exact;
  if (scenario.lossy()) {
    lossy.emplace(exact, scenario.loss_prob, channel_rng);
    inner = &*lossy;
  }

  CheckedChannel::Config ccfg;
  ccfg.exact_semantics = !scenario.lossy();
  ccfg.two_plus_activity_counts_two = scenario.effective_counts_two();
  ccfg.query_bound = registered_count_query_bound(spec.name, scenario.n);
  CheckedChannel checked(*inner, participants, ccfg);

  report.outcome = spec.run(checked, participants, algo_rng, {});
  checked.check_count_outcome(report.outcome);
  report.truth = checked.true_positive_count();
  report.violations = checked.violations();
  return report;
}

std::vector<CountingReport> counting_differential_check(
    const Scenario& scenario) {
  // Loss-free, like the threshold differential: under loss the estimators
  // legitimately diverge (each sees its own false negatives).
  Scenario exact_sc = scenario;
  exact_sc.loss_prob = 0.0;

  std::vector<CountingReport> reports;
  for (const auto& spec : core::counting_registry()) {
    auto report = check_counting_algorithm(spec, exact_sc);
    if (spec.exact &&
        report.outcome.estimate != static_cast<double>(report.truth)) {
      report.violations.push_back(
          {Violation::Category::kOutcome,
           "differential: exact estimator returned " +
               std::to_string(report.outcome.estimate) +
               " but ground truth x=" + std::to_string(report.truth)});
    }
    if (report.truth == 0 && !report.outcome.exact) {
      report.violations.push_back(
          {Violation::Category::kOutcome,
           "differential: x = 0 must be proven exactly on the loss-free "
           "tier (the whole-set anchor is silent)"});
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

namespace {

core::CountOutcome run_count_relabeled(const core::CountAlgorithmSpec& spec,
                                       const Scenario& sc, NodeId offset,
                                       NodeId stride) {
  TCAST_CHECK(stride >= 1);
  const auto base_positive = draw_positives(sc);
  const std::size_t top =
      sc.n == 0 ? 1
                : static_cast<std::size_t>(offset) +
                      (sc.n - 1) * static_cast<std::size_t>(stride) + 1;
  std::vector<bool> positive(top, false);
  std::vector<NodeId> participants;
  participants.reserve(sc.n);
  for (std::size_t i = 0; i < sc.n; ++i) {
    const NodeId id = offset + static_cast<NodeId>(i) * stride;
    positive[static_cast<std::size_t>(id)] = base_positive[i];
    participants.push_back(id);
  }

  RngStream channel_rng(sc.seed, kChannelStream);
  RngStream algo_rng(sc.seed, kAlgorithmStream);
  group::ExactChannel::Config ecfg;
  ecfg.model = sc.model;
  group::ExactChannel exact(std::move(positive), channel_rng, ecfg);
  std::optional<LossyChannel> lossy;
  group::QueryChannel* channel = &exact;
  if (sc.lossy()) {
    lossy.emplace(exact, sc.loss_prob, channel_rng);
    channel = &*lossy;
  }
  return spec.run(*channel, participants, algo_rng, {});
}

}  // namespace

CountingReport metamorphic_count_relabel_check(
    const core::CountAlgorithmSpec& spec, const Scenario& scenario,
    NodeId offset, NodeId stride) {
  CountingReport report;
  report.scenario = scenario;
  report.algorithm = spec.name;
  const auto base = run_count_relabeled(spec, scenario, 0, 1);
  const auto mapped = run_count_relabeled(spec, scenario, offset, stride);
  report.outcome = base;
  if (base.estimate != mapped.estimate) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "relabeling ids (offset=" + std::to_string(offset) + ", stride=" +
             std::to_string(stride) + ") changed the estimate: " +
             std::to_string(base.estimate) + " vs " +
             std::to_string(mapped.estimate)});
  }
  if (base.queries != mapped.queries) {
    report.violations.push_back(
        {Violation::Category::kOutcome,
         "relabeling ids changed the counting query count: " +
             std::to_string(base.queries) + " vs " +
             std::to_string(mapped.queries)});
  }
  return report;
}

void WrongAnswerTally::record(std::string_view algorithm,
                              const Scenario& scenario,
                              const core::ThresholdOutcome& outcome) {
  auto& per = by_algorithm_[std::string(algorithm)];
  ++per.runs;
  ++runs_;
  const bool truth = scenario.ground_truth();
  if (outcome.decision == truth) return;
  if (outcome.decision) {
    ++per.false_yes;
    ++false_yes_;
  } else {
    ++per.false_no;
    ++false_no_;
  }
  wrong_by_loss_.add(scenario.loss_prob);
}

std::string WrongAnswerTally::report() const {
  std::string s = "wrong answers over " + std::to_string(runs_) + " runs: " +
                  std::to_string(false_yes_) + " false-yes, " +
                  std::to_string(false_no_) + " false-no\n";
  for (const auto& [name, per] : by_algorithm_) {
    s += "  " + name + ": " + std::to_string(per.runs) + " runs, " +
         std::to_string(per.false_yes) + " false-yes, " +
         std::to_string(per.false_no) + " false-no\n";
  }
  if (false_yes_ + false_no_ > 0) {
    s += "wrong answers by scenario loss rate:\n";
    s += wrong_by_loss_.ascii();
  }
  return s;
}

}  // namespace tcast::conformance
