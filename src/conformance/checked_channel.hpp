// CheckedChannel: an online invariant-asserting decorator.
//
// Layered on InstrumentedChannel (so the full transcript stays available),
// it mirrors every sound inference a threshold algorithm is allowed to make
// and records a Violation the moment the algorithm — or the channel —
// steps outside them:
//
//   * partition   — an announced BinAssignment must not place a node in two
//                   bins, and must only contain known participants;
//   * requery     — a node disposed by an empty bin (exact semantics) or
//                   confirmed by capture must never be queried again;
//   * truth       — query results must be consistent with oracle ground
//                   truth: non-empty ⇒ ≥1 real positive (false positives
//                   are structurally impossible on every tier), empty ⇒ 0
//                   real positives unless the channel is declared lossy,
//                   captured ⇒ the identity is a real positive in the
//                   queried set, and 2+ activity ⇒ ≥2 real positives when
//                   a lone reply always decodes;
//   * bound       — the cumulative query count must stay under the
//                   registered worst-case bound;
//   * outcome     — the final ThresholdOutcome (checked via check_outcome)
//                   must be correct: exactly for exact channels, one-sided
//                   (`true` ⇒ x ≥ t) under injected false negatives.
//
// Violations are collected, not fatal, so the conformance self-test can
// demonstrate that intentionally-broken algorithms are caught; set
// Config::fail_fast to abort on the first one instead.
#pragma once

#include <string>
#include <vector>

#include "core/counting.hpp"
#include "core/round_engine.hpp"
#include "group/instrumented_channel.hpp"

namespace tcast::conformance {

struct Violation {
  enum class Category { kPartition, kRequery, kTruth, kBound, kOutcome };
  Category category;
  std::string message;
};

const char* to_string(Violation::Category c);

class CheckedChannel final : public group::QueryChannel {
 public:
  struct Config {
    /// Inner channel never produces false negatives (the exact tier). When
    /// false (lossy channels), empty results prove nothing and disposal
    /// tracking is disabled.
    bool exact_semantics = true;
    /// Mirrors EngineOptions::two_plus_activity_counts_two: activity on a
    /// 2+ channel certifies ≥2 positives (sound when a lone reply decodes).
    bool two_plus_activity_counts_two = true;
    /// Flag queries that touch disposed/confirmed nodes.
    bool forbid_requery = true;
    /// Hard per-run query ceiling; 0 disables the check.
    double query_bound = 0.0;
    /// Abort (TCAST_CHECK) on the first violation instead of collecting.
    bool fail_fast = false;
  };

  /// `inner` must be oracle-capable (ground truth is what the checks are
  /// against); `participants` is the queryable universe.
  CheckedChannel(group::QueryChannel& inner,
                 std::span<const NodeId> participants, Config cfg);
  CheckedChannel(group::QueryChannel& inner,
                 std::span<const NodeId> participants)
      : CheckedChannel(inner, participants, Config{}) {}

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }

  /// Invariants on the final outcome: decision correctness vs ground truth
  /// (one-sided when !exact_semantics), query accounting, confirmed count.
  void check_outcome(std::size_t threshold,
                     const core::ThresholdOutcome& out);

  /// Invariants on a counting estimator's outcome: exactness claims are
  /// refused outright on lossy channels (the PR 2 gate, mirrored — silence
  /// proves nothing there); a claimed-exact count must equal ground truth;
  /// on exact channels x = 0 forces estimate 0 (activity cannot be
  /// manufactured); estimates stay in [0, n]; query accounting; confirmed
  /// identities must be real positives (and absent under the 1+ model).
  /// Approximate accuracy is deliberately NOT judged per-run — that is the
  /// statistical monitor's job (conformance/count_monitor).
  void check_count_outcome(const core::CountOutcome& out);

  /// The underlying transcript (bin structures included).
  const group::InstrumentedChannel& instrumented() const { return instr_; }

  std::size_t true_positive_count() const { return truth_positive_count_; }

  bool lossy() const override { return instr_.lossy(); }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return instr_.oracle_positive_count(nodes);
  }

 protected:
  void do_announce(const group::BinAssignment& a) override;
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                                     std::size_t idx) override;
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  enum class NodeState : unsigned char {
    kUnknown,   ///< not a participant
    kCandidate, ///< may still be queried
    kDisposed,  ///< proven negative by an empty bin (exact semantics only)
    kConfirmed, ///< proven positive by capture
  };

  void add_violation(Violation::Category c, std::string message);
  group::BinQueryResult check_result(std::span<const NodeId> nodes,
                                     group::BinQueryResult r,
                                     bool announced_bin);
  NodeState& state_of(NodeId id) { return state_.at(static_cast<std::size_t>(id)); }

  group::InstrumentedChannel instr_;
  Config cfg_;
  std::vector<NodeId> participants_;
  std::vector<NodeState> state_;   ///< indexed by NodeId
  std::vector<char> truth_;        ///< oracle positivity, indexed by NodeId
  std::size_t truth_positive_count_ = 0;
  std::vector<Violation> violations_;
  bool bound_reported_ = false;
};

}  // namespace tcast::conformance
