// Randomized scenario vocabulary for the conformance harness.
//
// A Scenario is one fully-seeded instance of the threshold-querying problem:
// population size, true positive count, threshold, collision model, engine
// options, and (optionally) an injected false-negative rate. Scenarios are a
// pure function of their seed, so every conformance failure is replayable
// from the printed Scenario alone.
#pragma once

#include <cstdint>
#include <string>

#include "core/round_engine.hpp"
#include "group/query_channel.hpp"

namespace tcast::conformance {

struct Scenario {
  std::size_t n = 16;   ///< participants
  std::size_t x = 0;    ///< real positives (ground truth)
  std::size_t t = 1;    ///< threshold queried
  group::CollisionModel model = group::CollisionModel::kOnePlus;
  core::BinOrdering ordering = core::BinOrdering::kNonEmptyFirst;
  core::BinningScheme scheme = core::BinningScheme::kRandomEqual;
  /// Probability that a truly non-empty bin reads as silence (the HACK
  /// false-negative mechanism, abstracted). 0 = exact channel.
  double loss_prob = 0.0;
  std::uint64_t seed = 1;

  bool lossy() const { return loss_prob > 0.0; }
  bool ground_truth() const { return x >= t; }
  std::string describe() const;

  core::EngineOptions engine_options() const {
    core::EngineOptions opts;
    opts.ordering = ordering;
    opts.scheme = scheme;
    return opts;
  }

  /// What the ≥2-activity inference is allowed to be on this scenario: the
  /// engine's soundness gate auto-disables it under loss, and the
  /// CheckedChannel must mirror that or it would demand an unsound check.
  bool effective_counts_two() const {
    return engine_options().two_plus_activity_counts_two && !lossy();
  }
};

/// Draws a randomized scenario: n ∈ [1, 96], x ∈ [0, n], t ∈ [0, n+2]
/// (deliberately past the population so the trivially-false edge is hit),
/// both collision models, both orderings/schemes, and — when `allow_lossy`
/// — a false-negative rate up to 0.3.
Scenario random_scenario(RngStream& rng, bool allow_lossy);

/// LossyChannel: decorator injecting false negatives with probability
/// `loss_prob` per query — a truly non-empty bin reads as silence, the way
/// superposed-HACK reception fails on real motes. False positives are never
/// injected (they are structurally impossible on every tier: silence cannot
/// be manufactured into a reply). The oracle hook forwards, so instrumented
/// layers above keep their ground-truth view.
class LossyChannel final : public group::QueryChannel {
 public:
  /// `rng` drives the loss draws and must outlive the channel.
  LossyChannel(group::QueryChannel& inner, double loss_prob, RngStream& rng)
      : QueryChannel(inner.model()),
        inner_(&inner),
        loss_prob_(loss_prob),
        rng_(&rng) {}

  std::size_t injected_losses() const { return injected_; }

  bool lossy() const override { return loss_prob_ > 0.0 || inner_->lossy(); }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return inner_->oracle_positive_count(nodes);
  }

 protected:
  void do_announce(const group::BinAssignment& a) override {
    inner_->announce(a);
  }
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                                     std::size_t idx) override {
    return maybe_drop(inner_->query_bin(a, idx));
  }
  group::BinQueryResult do_query_set(std::span<const NodeId> nodes) override {
    return maybe_drop(inner_->query_set(nodes));
  }

 private:
  group::BinQueryResult maybe_drop(group::BinQueryResult r) {
    if (r.nonempty() && rng_->bernoulli(loss_prob_)) {
      ++injected_;
      return group::BinQueryResult::empty();
    }
    return r;
  }

  group::QueryChannel* inner_;
  double loss_prob_;
  RngStream* rng_;
  std::size_t injected_ = 0;
};

}  // namespace tcast::conformance
