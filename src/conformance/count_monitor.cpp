#include "conformance/count_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/monte_carlo.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {

CountAccuracyReport measure_count_accuracy(
    const core::CountAlgorithmSpec& spec, std::size_t n, std::size_t x,
    std::size_t trials, std::uint64_t experiment_id,
    const core::CountOptions& opts) {
  MonteCarloConfig mc;
  mc.trials = trials;
  mc.experiment_id = experiment_id;
  const double band = std::clamp(opts.epsilon, 0.05, 1.0) *
                      std::max<double>(static_cast<double>(x), 1.0);
  const auto stats = run_multi_trials(
      mc, 4, [&](RngStream& rng, std::span<double> out) {
        auto ch = group::ExactChannel::with_random_positives(n, x, rng);
        const auto outcome = spec.run(ch, ch.all_nodes(), rng, opts);
        const double err =
            std::abs(outcome.estimate - static_cast<double>(x));
        out[0] = outcome.estimate;
        out[1] = err / std::max<double>(static_cast<double>(x), 1.0);
        out[2] = err <= band ? 1.0 : 0.0;
        out[3] = static_cast<double>(outcome.queries);
      });
  CountAccuracyReport report;
  report.trials = trials;
  report.mean_estimate = stats[0].mean();
  report.mean_abs_rel_err = stats[1].mean();
  report.within = static_cast<std::size_t>(
      std::lround(stats[2].mean() * static_cast<double>(trials)));
  report.mean_queries = stats[3].mean();
  return report;
}

double acceptance_floor(double delta, std::size_t trials, double z) {
  const double del = std::clamp(delta, 0.0, 1.0);
  const double slack =
      z * std::sqrt(del * (1.0 - del) /
                    std::max<double>(1.0, static_cast<double>(trials)));
  return std::max(0.0, 1.0 - del - slack);
}

}  // namespace tcast::conformance
