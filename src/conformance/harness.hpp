// Conformance harness: drives registry algorithms through randomized
// scenarios under a CheckedChannel and reports every invariant violation.
//
// Three modes (docs/CONFORMANCE.md):
//   * check_algorithm   — one (algorithm, scenario) run with all online and
//                         outcome invariants;
//   * differential      — all registered algorithms plus the sequential
//                         baseline on one scenario stream, decisions
//                         cross-checked against each other and ground truth;
//   * metamorphic       — order-preserving node relabeling, bin-order
//                         relabeling, and seed shifts, which must leave the
//                         deterministic observables unchanged.
//
// Registering an algorithm in core::algorithm_registry() is enough to put
// it under all three — the harness enumerates the registry.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "conformance/checked_channel.hpp"
#include "conformance/scenario.hpp"
#include "core/registry.hpp"

namespace tcast::conformance {

/// The worst-case per-run query ceiling registered for `algorithm` on an
/// (n, t) instance. Currently every registry algorithm is RoundEngine-based
/// and shares analysis::engine_query_bound; register a tighter name-specific
/// bound here when adding an algorithm with a stronger guarantee.
double registered_query_bound(std::string_view algorithm, std::size_t n,
                              std::size_t t);

/// The per-run query ceiling of a *counting* estimator (registry name
/// without the "count:" prefix) on an n-node instance.
double registered_count_query_bound(std::string_view estimator,
                                    std::size_t n);

struct ConformanceReport {
  Scenario scenario;
  std::string algorithm;
  core::ThresholdOutcome outcome;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// Human-readable failure summary (empty when ok).
  std::string summary() const;
};

/// Runs `spec` on `scenario` under a CheckedChannel and returns every
/// violated invariant. All randomness derives from scenario.seed.
ConformanceReport check_algorithm(const core::AlgorithmSpec& spec,
                                  const Scenario& scenario);

/// Differential mode: every registered algorithm plus the sequential
/// baseline on the exact (loss-free) version of `scenario`; a report per
/// algorithm, each including any decision disagreement with ground truth.
std::vector<ConformanceReport> differential_check(const Scenario& scenario);

/// Metamorphic relation M1: relabeling node IDs through an order-preserving
/// map (id → id·stride + offset) must leave the decision AND the query
/// count bit-identical — the engine canonicalizes candidates by sorted ID,
/// so monotone relabelings are exactly the transparent ones. Returns a
/// report whose violations list the observable that moved.
ConformanceReport metamorphic_relabel_check(const core::AlgorithmSpec& spec,
                                            const Scenario& scenario,
                                            NodeId offset, NodeId stride);

/// Metamorphic relation M2: permuting the order bins are queried in (the
/// in-order vs nonempty-first accounting) must not change the decision.
ConformanceReport metamorphic_bin_order_check(const core::AlgorithmSpec& spec,
                                              const Scenario& scenario);

/// Metamorphic relation M3: under the deterministic configuration
/// (contiguous binning, in-order, 1+ exact) the RNG is never consumed, so
/// shifting the root seed must leave decision and query count bit-identical
/// for deterministic algorithms (`deterministic_counts`), and the decision
/// alone for RNG-consuming ones like prob-abns.
ConformanceReport metamorphic_seed_shift_check(
    const core::AlgorithmSpec& spec, const Scenario& scenario,
    std::uint64_t seed_shift, bool deterministic_counts);

/// True for algorithms whose query count is a pure function of the instance
/// under the deterministic configuration (everything except the sampling-
/// hint prob-abns and the count:* adapters, whose estimation phases consume
/// the RNG on every run).
bool has_deterministic_counts(std::string_view algorithm);

// --- counting-estimator conformance -------------------------------------
//
// The counting portfolio (core/counting) gets the same treatment as the
// threshold registry: checked runs, a loss-free differential mode, and the
// M4 metamorphic relation. Statistical (1±ε) acceptance lives in
// conformance/count_monitor.

struct CountingReport {
  Scenario scenario;
  std::string algorithm;  ///< counting-registry name (no "count:" prefix)
  core::CountOutcome outcome;
  std::size_t truth = 0;  ///< ground-truth positive count
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Runs counting estimator `spec` on `scenario` (scenario.t is ignored)
/// under a CheckedChannel and applies check_count_outcome plus the
/// estimator query bound. All randomness derives from scenario.seed through
/// the same stream ids as check_algorithm.
CountingReport check_counting_algorithm(const core::CountAlgorithmSpec& spec,
                                        const Scenario& scenario);

/// Differential mode for counting: every registered estimator on the exact
/// (loss-free) version of `scenario`; exact estimators must return ground
/// truth, and every estimator must prove x = 0 when it holds.
std::vector<CountingReport> counting_differential_check(
    const Scenario& scenario);

/// Metamorphic relation M4a: relabeling node IDs through an order-preserving
/// map must leave a counting estimator's estimate AND query count
/// bit-identical (sampled inclusion draws one bernoulli per node *index*,
/// so monotone relabelings are transparent). The distributional-monotonicity
/// half of M4 (estimates grow with x) is audited by the statistical monitor.
CountingReport metamorphic_count_relabel_check(
    const core::CountAlgorithmSpec& spec, const Scenario& scenario,
    NodeId offset, NodeId stride);

/// Aggregates wrong answers across a conformance sweep: per-algorithm counts
/// split by direction (false "yes" vs false "no") plus a histogram of the
/// scenario loss rates at which wrong answers occurred — the harness's
/// per-scenario degradation profile. On the exact tier both columns must
/// stay zero; under injected loss false "no" is expected and false "yes"
/// must still be zero (loss cannot manufacture positives).
class WrongAnswerTally {
 public:
  /// Folds one finished run into the tally.
  void record(std::string_view algorithm, const Scenario& scenario,
              const core::ThresholdOutcome& outcome);

  std::size_t runs() const { return runs_; }
  std::size_t false_yes() const { return false_yes_; }
  std::size_t false_no() const { return false_no_; }

  /// Per-algorithm table plus the loss-rate histogram of wrong answers.
  std::string report() const;

 private:
  struct PerAlgorithm {
    std::size_t runs = 0;
    std::size_t false_yes = 0;
    std::size_t false_no = 0;
  };

  std::map<std::string, PerAlgorithm, std::less<>> by_algorithm_;
  std::size_t runs_ = 0;
  std::size_t false_yes_ = 0;
  std::size_t false_no_ = 0;
  /// Scenario loss rates of wrong-answer runs; the sweep caps loss at 0.3.
  Histogram wrong_by_loss_{0.0, 0.32, 8};
};

}  // namespace tcast::conformance
