// Conformance harness: drives registry algorithms through randomized
// scenarios under a CheckedChannel and reports every invariant violation.
//
// Three modes (docs/CONFORMANCE.md):
//   * check_algorithm   — one (algorithm, scenario) run with all online and
//                         outcome invariants;
//   * differential      — all registered algorithms plus the sequential
//                         baseline on one scenario stream, decisions
//                         cross-checked against each other and ground truth;
//   * metamorphic       — order-preserving node relabeling, bin-order
//                         relabeling, and seed shifts, which must leave the
//                         deterministic observables unchanged.
//
// Registering an algorithm in core::algorithm_registry() is enough to put
// it under all three — the harness enumerates the registry.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "conformance/checked_channel.hpp"
#include "conformance/scenario.hpp"
#include "core/registry.hpp"

namespace tcast::conformance {

/// The worst-case per-run query ceiling registered for `algorithm` on an
/// (n, t) instance. Currently every registry algorithm is RoundEngine-based
/// and shares analysis::engine_query_bound; register a tighter name-specific
/// bound here when adding an algorithm with a stronger guarantee.
double registered_query_bound(std::string_view algorithm, std::size_t n,
                              std::size_t t);

struct ConformanceReport {
  Scenario scenario;
  std::string algorithm;
  core::ThresholdOutcome outcome;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// Human-readable failure summary (empty when ok).
  std::string summary() const;
};

/// Runs `spec` on `scenario` under a CheckedChannel and returns every
/// violated invariant. All randomness derives from scenario.seed.
ConformanceReport check_algorithm(const core::AlgorithmSpec& spec,
                                  const Scenario& scenario);

/// Differential mode: every registered algorithm plus the sequential
/// baseline on the exact (loss-free) version of `scenario`; a report per
/// algorithm, each including any decision disagreement with ground truth.
std::vector<ConformanceReport> differential_check(const Scenario& scenario);

/// Metamorphic relation M1: relabeling node IDs through an order-preserving
/// map (id → id·stride + offset) must leave the decision AND the query
/// count bit-identical — the engine canonicalizes candidates by sorted ID,
/// so monotone relabelings are exactly the transparent ones. Returns a
/// report whose violations list the observable that moved.
ConformanceReport metamorphic_relabel_check(const core::AlgorithmSpec& spec,
                                            const Scenario& scenario,
                                            NodeId offset, NodeId stride);

/// Metamorphic relation M2: permuting the order bins are queried in (the
/// in-order vs nonempty-first accounting) must not change the decision.
ConformanceReport metamorphic_bin_order_check(const core::AlgorithmSpec& spec,
                                              const Scenario& scenario);

/// Metamorphic relation M3: under the deterministic configuration
/// (contiguous binning, in-order, 1+ exact) the RNG is never consumed, so
/// shifting the root seed must leave decision and query count bit-identical
/// for deterministic algorithms (`deterministic_counts`), and the decision
/// alone for RNG-consuming ones like prob-abns.
ConformanceReport metamorphic_seed_shift_check(
    const core::AlgorithmSpec& spec, const Scenario& scenario,
    std::uint64_t seed_shift, bool deterministic_counts);

/// True for algorithms whose query count is a pure function of the instance
/// under the deterministic configuration (everything except the sampling-
/// hint prob-abns).
bool has_deterministic_counts(std::string_view algorithm);

}  // namespace tcast::conformance
