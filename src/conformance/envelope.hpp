// Degradation envelopes: measured wrong-answer rates and query overhead of
// a registry algorithm under an injected FaultPlan, plus the analytic
// ceiling the guarded engine is regression-tested against.
//
// Methodology (docs/ROBUSTNESS.md):
//   * a sweep point fixes (algorithm, n, x, t, model, engine options, fault
//     plan) and Monte-Carlos `trials` seeded runs of FaultyChannel over an
//     ExactChannel — the fault process is the only deviation from the
//     paper-exact tier, so every error is attributable to the plan;
//   * wrong answers split by direction: false "yes" (decision true, x < t)
//     must be zero whenever the plan injects no spurious activity — loss
//     never manufactures positives and the soundness gate stops the 2+
//     overcount; false "no" is the price of loss, and the retry-guarded
//     engine keeps it under `false_no_envelope`;
//   * the bound: a committed silent disposal of a positive-holding bin
//     requires all 1+r attempts lost — probability ≤ marginal·burst^r (the
//     first attempt at the process's stationary rate, each extra attempt at
//     the worst-state rate, which is what bursts cost) — and a run commits
//     at most n disposals (each removes ≥1 candidate), so
//       P(false "no") ≤ min(1, n · marginal_loss · burst_loss^r).
#pragma once

#include <string>

#include "core/round_engine.hpp"
#include "faults/fault_plan.hpp"
#include "group/query_channel.hpp"

namespace tcast::conformance {

struct EnvelopeConfig {
  std::string algorithm = "2tbins";
  std::size_t n = 24;
  std::size_t x = 8;
  std::size_t t = 8;
  group::CollisionModel model = group::CollisionModel::kOnePlus;
  /// In-order accounting by default: the oracle-assisted nonempty-first
  /// ordering would consult ground truth mid-fault, which no real initiator
  /// can.
  core::EngineOptions engine = [] {
    core::EngineOptions o;
    o.ordering = core::BinOrdering::kInOrder;
    return o;
  }();
  faults::FaultPlan plan;  ///< plan.seed is re-derived per trial
  std::size_t trials = 200;
  std::uint64_t seed = 1;  ///< root seed of the whole sweep point
};

struct EnvelopePoint {
  std::size_t trials = 0;
  std::size_t false_yes = 0;  ///< decision true while x < t
  std::size_t false_no = 0;   ///< decision false while x ≥ t
  double mean_queries = 0.0;
  double mean_retries = 0.0;
  std::size_t faults_injected = 0;  ///< FaultLog events across all trials
  std::size_t faults_seen = 0;      ///< engine-detected (contradicted empties)

  double false_yes_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(false_yes) /
                             static_cast<double>(trials);
  }
  double false_no_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(false_no) /
                             static_cast<double>(trials);
  }
  std::string to_string() const;
};

/// Runs one sweep point. Fully deterministic in cfg.seed: trial k derives
/// its positive set, channel randomness, algorithm stream and fault-plan
/// seed from (cfg.seed, k) through fixed stream ids.
EnvelopePoint measure_envelope(const EnvelopeConfig& cfg);

/// The documented analytic ceiling on the guarded engine's false-"no"
/// probability: min(1, n · marginal_loss(plan) · burst_loss(plan)^retries),
/// where `retries` is the fixed per-silent-bin retry budget. Loose by
/// construction (it charges every disposal the worst case); its value is
/// that it is *assertable* — the measured rate must stay under it.
double false_no_envelope(std::size_t n, const faults::FaultPlan& plan,
                         std::size_t retries);

}  // namespace tcast::conformance
