#include "conformance/envelope.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "faults/faulty_channel.hpp"
#include "group/exact_channel.hpp"

namespace tcast::conformance {
namespace {

// Same stream layout as the harness (harness.cpp): one root seed per trial,
// fixed stream ids for each randomness consumer.
constexpr std::uint64_t kPositivesStream = 0;
constexpr std::uint64_t kChannelStream = 1;
constexpr std::uint64_t kAlgorithmStream = 2;

// splitmix64-style trial-seed derivation: adjacent trial indices must not
// produce correlated RngStream roots.
std::uint64_t trial_seed(std::uint64_t root, std::uint64_t trial) {
  std::uint64_t z = root + (trial + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string EnvelopePoint::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "trials=%zu false_yes=%zu false_no=%zu "
                "mean_queries=%.2f mean_retries=%.2f "
                "faults_injected=%zu faults_seen=%zu",
                trials, false_yes, false_no, mean_queries, mean_retries,
                faults_injected, faults_seen);
  return buf;
}

EnvelopePoint measure_envelope(const EnvelopeConfig& cfg) {
  const core::AlgorithmSpec* spec = core::find_algorithm(cfg.algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "measure_envelope: unknown algorithm");
  TCAST_CHECK_MSG(!spec->needs_oracle,
                  "measure_envelope: oracle baselines are not meaningful "
                  "under injected faults");
  TCAST_CHECK(cfg.x <= cfg.n);

  EnvelopePoint pt;
  pt.trials = cfg.trials;
  const bool truth = cfg.x >= cfg.t;
  std::uint64_t total_queries = 0;
  std::uint64_t total_retries = 0;

  for (std::size_t k = 0; k < cfg.trials; ++k) {
    const std::uint64_t seed = trial_seed(cfg.seed, k);

    std::vector<bool> positive(cfg.n, false);
    RngStream pos_rng(seed, kPositivesStream);
    for (const NodeId id : pos_rng.sample_subset(cfg.n, cfg.x))
      positive[static_cast<std::size_t>(id)] = true;

    RngStream channel_rng(seed, kChannelStream);
    RngStream algo_rng(seed, kAlgorithmStream);
    group::ExactChannel::Config ecfg;
    ecfg.model = cfg.model;
    group::ExactChannel exact(std::move(positive), channel_rng, ecfg);
    const auto participants = exact.all_nodes();

    faults::FaultPlan plan = cfg.plan;
    plan.seed = seed;  // fault draws replay with the trial, not across trials
    faults::FaultyChannel faulty(exact, participants, plan);

    const auto outcome =
        spec->run(faulty, participants, cfg.t, algo_rng, cfg.engine);

    if (outcome.decision && !truth) ++pt.false_yes;
    if (!outcome.decision && truth) ++pt.false_no;
    total_queries += outcome.queries;
    total_retries += outcome.retries;
    pt.faults_injected += faulty.log().size();
    pt.faults_seen += outcome.faults_seen;
  }

  if (cfg.trials > 0) {
    pt.mean_queries =
        static_cast<double>(total_queries) / static_cast<double>(cfg.trials);
    pt.mean_retries =
        static_cast<double>(total_retries) / static_cast<double>(cfg.trials);
  }
  return pt;
}

double false_no_envelope(std::size_t n, const faults::FaultPlan& plan,
                         std::size_t retries) {
  const double per_disposal =
      plan.marginal_loss() *
      std::pow(plan.burst_loss(), static_cast<double>(retries));
  return std::min(1.0, static_cast<double>(n) * per_disposal);
}

}  // namespace tcast::conformance
