#include "conformance/scenario.hpp"

namespace tcast::conformance {

std::string Scenario::describe() const {
  std::string s = "n=" + std::to_string(n) + " x=" + std::to_string(x) +
                  " t=" + std::to_string(t) + " model=" +
                  group::to_string(model);
  s += ordering == core::BinOrdering::kNonEmptyFirst ? " ord=nonempty-first"
                                                     : " ord=in-order";
  s += scheme == core::BinningScheme::kRandomEqual ? " bins=random"
                                                   : " bins=contiguous";
  if (lossy()) s += " loss=" + std::to_string(loss_prob);
  s += " seed=" + std::to_string(seed);
  return s;
}

Scenario random_scenario(RngStream& rng, bool allow_lossy) {
  Scenario sc;
  sc.n = static_cast<std::size_t>(rng.uniform_int(1, 96));
  sc.x = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sc.n)));
  // Past-the-population thresholds exercise the trivially-false edge; t = 0
  // the trivially-true one.
  sc.t = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sc.n) + 2));
  sc.model = rng.bernoulli(0.5) ? group::CollisionModel::kOnePlus
                                : group::CollisionModel::kTwoPlus;
  sc.ordering = rng.bernoulli(0.5) ? core::BinOrdering::kNonEmptyFirst
                                   : core::BinOrdering::kInOrder;
  sc.scheme = rng.bernoulli(0.25) ? core::BinningScheme::kContiguous
                                  : core::BinningScheme::kRandomEqual;
  if (allow_lossy && rng.bernoulli(0.5))
    sc.loss_prob = rng.uniform_real(0.01, 0.3);
  sc.seed = rng.bits();
  return sc;
}

}  // namespace tcast::conformance
