// Statistical (1±ε)-acceptance monitor for the counting portfolio.
//
// An approximate estimator's contract — P(|x̂ − x| ≤ ε·x) ≥ 1 − δ — cannot
// be judged from a single run (any one estimate may legitimately miss), so
// the conformance layer audits it in distribution: fixed-seed batteries of
// independent instances per (n, x) grid point, with the empirical
// within-band fraction held against a Chernoff-style floor.
//
// Tolerance derivation (also the satellite-2 comment contract): over T
// i.i.d. trials the within-band count is Binomial(T, p) with p ≥ 1 − δ if
// the claim holds, so the observed fraction deviates from p by more than
// z·sqrt(δ(1−δ)/T) with probability ≤ exp(−z²/2) (normal tail; the exact
// Chernoff bound exp(−2Tγ²) gives the same z·sqrt(·/T) shape). At z = 3
// a *correct* estimator fails a grid cell with probability ≲ 1.3e-3, while
// a miscalibrated one (true p well below 1 − δ) still trips it.
#pragma once

#include "core/counting.hpp"

namespace tcast::conformance {

struct CountAccuracyReport {
  std::size_t trials = 0;
  std::size_t within = 0;  ///< runs with |x̂ − x| ≤ ε·x (x̂ = 0 when x = 0)
  double mean_estimate = 0.0;
  double mean_abs_rel_err = 0.0;  ///< |x̂ − x| / max(x, 1), averaged
  double mean_queries = 0.0;

  double within_fraction() const {
    return trials == 0 ? 1.0
                       : static_cast<double>(within) /
                             static_cast<double>(trials);
  }
};

/// Runs `spec` on `trials` independent n-node instances with exactly x
/// positives (exact 1+ channel; all randomness derives from experiment_id,
/// so the battery is reproducible bit-for-bit) and measures the empirical
/// accuracy of the claimed (1±ε, 1−δ) band.
CountAccuracyReport measure_count_accuracy(
    const core::CountAlgorithmSpec& spec, std::size_t n, std::size_t x,
    std::size_t trials, std::uint64_t experiment_id,
    const core::CountOptions& opts = {});

/// The empirical within-band fraction a (1 − δ) claim must meet over
/// `trials` fixed-seed runs: 1 − δ − z·sqrt(δ(1−δ)/trials), floored at 0.
double acceptance_floor(double delta, std::size_t trials, double z = 3.0);

}  // namespace tcast::conformance
