#include "group/packet_channel.hpp"

#include <cmath>

#include "common/check.hpp"
#include "rcd/addressing.hpp"

namespace tcast::group {

struct PacketChannel::Participant {
  std::unique_ptr<radio::Radio> radio;
  std::unique_ptr<rcd::BackcastResponder> backcast;
  std::unique_ptr<rcd::PollcastResponder> pollcast;
};

/// The foreign region as a logical process of its own (Config::lp_hosted
/// with interference_duty > 0): the same Poisson duty-cycle model as
/// radio::InterferenceSource, but running on an LP-local simulator with its
/// own RNG stream, delivering each foreign frame to the singlehop world as
/// a ghost transmission (radio::Channel::inject_transmission) over a
/// conservative link. The world → interferer back-link carries no messages;
/// it exists purely to bound how far the free-running interferer may run
/// ahead (without it, its perpetual emit loop would never yield).
struct PacketChannel::GhostInterferer {
  /// Foreign frames land one backoff slot after the emit decision — the
  /// cross-region propagation/slot margin, and the link's lookahead.
  static constexpr SimTime kThrottle = 8 * kMillisecond;
  static constexpr std::uint64_t kStreamSalt = 0x47484F53;  // "GHOS"

  GhostInterferer(sim::parallel::ParallelKernel& kernel,
                  sim::parallel::LogicalProcess& world,
                  radio::Channel& target, const Config& cfg)
      : kernel_(&kernel),
        world_(&world),
        target_(&target),
        duty_(cfg.interference_duty),
        frame_bytes_(cfg.interference_frame_bytes),
        pos_(cfg.interferer_pos),
        lookahead_(target.phy().backoff_slot),
        lp_(&kernel.add_lp(cfg.seed, cfg.stream + kStreamSalt)) {
    TCAST_CHECK(duty_ > 0.0 && duty_ < 1.0);
    kernel.connect(*lp_, world, lookahead_);
    kernel.connect(world, *lp_, kThrottle);
    schedule_next();
  }

  radio::Frame foreign_frame() const {
    radio::Frame f;
    f.type = radio::FrameType::kData;
    f.src = 0xBEEF;
    f.dest = 0xBEEF;  // foreign PAN: nobody here accepts it
    f.data.resize(frame_bytes_);
    return f;
  }

  void schedule_next() {
    const double burst = static_cast<double>(target_->airtime(foreign_frame()));
    // busy/(busy+idle) = duty  ⇒  mean idle gap = burst·(1−duty)/duty.
    const double mean_gap = burst * (1.0 - duty_) / duty_;
    RngStream& rng = lp_->sim().rng();
    double u = rng.uniform01();
    while (u <= 0.0) u = rng.uniform01();
    const auto gap = static_cast<SimTime>(-mean_gap * std::log(u));
    lp_->sim().schedule_after(std::max<SimTime>(1, gap), [this] { emit(); });
  }

  void emit() {
    sim::Simulator& s = lp_->sim();
    if (s.now() >= busy_until_) {  // a real transmitter can't self-overlap
      radio::Frame f = foreign_frame();
      busy_until_ = s.now() + target_->airtime(f);
      radio::Channel* chan = target_;
      const double x = pos_.first;
      const double y = pos_.second;
      kernel_->post(*lp_, *world_, s.now() + lookahead_, 0,
                    [chan, f = std::move(f), x, y] {
                      chan->inject_transmission(f, x, y);
                    });
      ++frames_emitted_;
    }
    schedule_next();
  }

  sim::parallel::ParallelKernel* kernel_;
  sim::parallel::LogicalProcess* world_;
  radio::Channel* target_;
  double duty_;
  std::size_t frame_bytes_;
  std::pair<double, double> pos_;
  SimTime lookahead_;
  sim::parallel::LogicalProcess* lp_;
  SimTime busy_until_ = 0;
  std::uint64_t frames_emitted_ = 0;
};

namespace {

RcdPrimitive resolve_primitive(const PacketChannel::Config& cfg) {
  if (cfg.primitive != RcdPrimitive::kAuto) {
    TCAST_CHECK_MSG(!(cfg.primitive == RcdPrimitive::kBackcast &&
                      cfg.model == CollisionModel::kTwoPlus),
                    "backcast HACKs carry no identity: 2+ needs pollcast");
    return cfg.primitive;
  }
  return cfg.model == CollisionModel::kOnePlus ? RcdPrimitive::kBackcast
                                               : RcdPrimitive::kPollcast;
}

}  // namespace

PacketChannel::PacketChannel(std::vector<bool> positive, Config cfg)
    : QueryChannel(cfg.model), positive_(std::move(positive)), cfg_(cfg) {
  nodes_.resize(positive_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nodes_[i] = static_cast<NodeId>(i);
  sim_ = std::make_unique<sim::Simulator>(cfg_.seed, cfg_.stream);
  channel_ = std::make_unique<radio::Channel>(*sim_, cfg_.channel);
  initiator_radio_ = std::make_unique<radio::Radio>(
      *channel_, kNoNode, rcd::kInitiatorAddr);
  initiator_radio_->set_position(cfg_.initiator_pos.first,
                                 cfg_.initiator_pos.second);
  initiator_radio_->power_on();

  const bool use_backcast =
      resolve_primitive(cfg_) == RcdPrimitive::kBackcast;
  if (use_backcast) {
    backcast_ = std::make_unique<rcd::BackcastInitiator>(*initiator_radio_);
    initiator_radio_->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          backcast_->on_frame(f, info);
        });
  } else {
    pollcast_ = std::make_unique<rcd::PollcastInitiator>(*initiator_radio_);
    initiator_radio_->set_receive_handler(
        [this](const radio::Frame& f, const radio::RxInfo& info) {
          pollcast_->on_frame(f, info);
        });
    initiator_radio_->set_activity_handler(
        [this](SimTime s, SimTime e) { pollcast_->on_activity(s, e); });
  }

  participants_.reserve(positive_.size());
  for (std::size_t i = 0; i < positive_.size(); ++i) {
    auto p = std::make_unique<Participant>();
    const auto id = static_cast<NodeId>(i);
    p->radio = std::make_unique<radio::Radio>(*channel_, id,
                                              rcd::participant_addr(id));
    const auto pos = i < cfg_.participant_positions.size()
                         ? cfg_.participant_positions[i]
                         : cfg_.initiator_pos;
    p->radio->set_position(pos.first, pos.second);
    p->radio->power_on();
    auto eval = [this, i](std::uint8_t pred) {
      return pred == cfg_.predicate_id && positive_[i];
    };
    if (use_backcast) {
      p->backcast = std::make_unique<rcd::BackcastResponder>(*p->radio, eval);
      auto* responder = p->backcast.get();
      p->radio->set_receive_handler(
          [responder](const radio::Frame& f, const radio::RxInfo&) {
            responder->on_frame(f);
          });
    } else {
      p->pollcast = std::make_unique<rcd::PollcastResponder>(*p->radio, eval);
      auto* responder = p->pollcast.get();
      p->radio->set_receive_handler(
          [responder](const radio::Frame& f, const radio::RxInfo&) {
            responder->on_frame(f);
          });
    }
    participants_.push_back(std::move(p));
  }

  if (cfg_.lp_hosted) {
    // Adopt the world simulator as LP 0 of an inline kernel. Interference,
    // when present, becomes a second LP with its own stream — on the scalar
    // path it shares the world's RNG, so hosted-vs-direct bit-parity is
    // only claimed (and tested) at interference_duty == 0.
    kernel_ = std::make_unique<sim::parallel::ParallelKernel>();
    world_lp_ = &kernel_->adopt_lp(*sim_);
    if (cfg_.interference_duty > 0.0)
      ghost_ = std::make_unique<GhostInterferer>(*kernel_, *world_lp_,
                                                 *channel_, cfg_);
  } else if (cfg_.interference_duty > 0.0) {
    radio::InterferenceSource::Config icfg;
    icfg.duty = cfg_.interference_duty;
    icfg.frame_bytes = cfg_.interference_frame_bytes;
    icfg.position = cfg_.interferer_pos;
    interference_ =
        std::make_unique<radio::InterferenceSource>(*channel_, icfg);
    interference_->start();
  }
}

PacketChannel::~PacketChannel() = default;

double PacketChannel::initiator_energy_mj() {
  initiator_radio_->energy().settle(sim_->now());
  return initiator_radio_->energy().energy_mj();
}

double PacketChannel::participant_energy_mj(NodeId id) {
  auto& r = *participants_.at(static_cast<std::size_t>(id))->radio;
  r.energy().settle(sim_->now());
  return r.energy().energy_mj();
}

std::uint64_t PacketChannel::interference_frames() const {
  if (ghost_) return ghost_->frames_emitted_;
  return interference_ ? interference_->frames_emitted() : 0;
}

void PacketChannel::advance_until_flag(const std::function<bool()>& done) {
  if (kernel_)
    kernel_->run_until_flag(*world_lp_, done);
  else
    sim_->run_until_flag(done);
}

void PacketChannel::ensure_announced(
    const std::vector<std::uint16_t>& wire) {
  if (wire == announced_wire_) return;
  ++session_;
  bool done = false;
  auto on_done = [&done] { done = true; };
  if (backcast_) {
    backcast_->announce(cfg_.predicate_id, session_, wire, on_done);
  } else {
    pollcast_->announce(cfg_.predicate_id, session_, wire, on_done);
  }
  advance_until_flag([&done] { return done; });
  TCAST_CHECK_MSG(done, "announce did not complete");
  announced_wire_ = wire;
}

void PacketChannel::do_announce(const BinAssignment& a) {
  a.to_wire_into(positive_.size(), scratch_wire_);
  ensure_announced(scratch_wire_);
}

void PacketChannel::fail_node(NodeId id) {
  TCAST_CHECK(static_cast<std::size_t>(id) < participants_.size());
  pending_failures_.push_back(id);
}

void PacketChannel::restore_node(NodeId id) {
  participants_.at(static_cast<std::size_t>(id))->radio->power_on();
  // The mote slept through any announcements; forget the announced wire so
  // the next query re-broadcasts the assignment and the rebooted node
  // re-arms. Announcements are free in the paper's cost model, so query
  // accounting is unchanged.
  announced_wire_.clear();
}

void PacketChannel::suppress_next_query() { suppress_query_ = true; }

bool PacketChannel::node_is_down(NodeId id) const {
  return !participants_.at(static_cast<std::size_t>(id))->radio->is_on();
}

BinQueryResult PacketChannel::poll_once(std::uint16_t bin) {
  // One stack frame shared with the poll callback (which only fires inside
  // run_until_flag below, so the frame outlives it). Capturing a single
  // pointer keeps the closure inside std::function's small-buffer storage —
  // no heap allocation per poll.
  struct PollFrame {
    BinQueryResult result;
    bool done = false;
    bool two_plus = false;
  } frame;
  frame.two_plus = model() == CollisionModel::kTwoPlus;
  if (backcast_) {
    backcast_->poll_bin(bin, [f = &frame](rcd::BackcastInitiator::PollResult r) {
      f->result = r.nonempty ? BinQueryResult::activity()
                             : BinQueryResult::empty();
      f->done = true;
    });
  } else {
    pollcast_->poll_bin(bin, [f = &frame](rcd::PollcastInitiator::PollResult r) {
      if (f->two_plus && r.captured) {
        f->result = BinQueryResult::captured_node(*r.captured);
      } else if (r.activity) {
        f->result = BinQueryResult::activity();
      } else {
        f->result = BinQueryResult::empty();
      }
      f->done = true;
    });
  }
  if (!pending_failures_.empty()) {
    // Mid-exchange death (ChannelFaultControl::fail_node): the poll frame
    // just went on the air — poll_bin transmits immediately — so its
    // delivery completes after airtime(poll) and the HACK/reply turnaround
    // fires a full turnaround later. Powering off half a turnaround past
    // delivery means the mote *received* the poll (it armed / evaluated the
    // predicate), then died before its reply could fire; the reply-side
    // guards (auto-HACK and pollcast both check the radio is still on)
    // silence it without disturbing anything else on the air.
    radio::Frame probe;
    probe.type = radio::FrameType::kPoll;
    probe.ack_request = true;
    const SimTime die_at =
        channel_->airtime(probe) + channel_->phy().turnaround / 2;
    for (const NodeId id : pending_failures_) {
      auto* radio = participants_[static_cast<std::size_t>(id)]->radio.get();
      sim_->schedule_after(die_at, [radio] { radio->power_off(); });
    }
    pending_failures_.clear();
  }
  advance_until_flag([f = &frame] { return f->done; });
  TCAST_CHECK_MSG(frame.done, "poll did not complete");
  return frame.result;
}

BinQueryResult PacketChannel::poll(std::uint16_t bin) {
  BinQueryResult result = poll_once(bin);
  // A silent bin is indistinguishable from a poll frame lost on the air;
  // when re-polling is configured, back off exponentially and try again
  // before reporting silence. Non-empty results are accepted immediately.
  SimTime backoff = cfg_.poll_backoff;
  for (std::size_t attempt = 1;
       attempt < cfg_.poll_attempts &&
       result.kind == BinQueryResult::Kind::kEmpty;
       ++attempt) {
    bool waited = false;
    sim_->schedule_after(backoff, [&waited] { waited = true; });
    advance_until_flag([&waited] { return waited; });
    backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                   cfg_.poll_backoff_multiplier);
    ++repolls_;
    count_extra_query();
    result = poll_once(bin);
  }
  return result;
}

bool PacketChannel::lossy() const {
  return cfg_.channel.clean_loss > 0.0 ||
         cfg_.channel.hack.miss_probability(1) > 0.0 ||
         cfg_.interference_duty > 0.0;
}

BinQueryResult PacketChannel::do_query_bin(const BinAssignment& a,
                                           std::size_t idx) {
  a.to_wire_into(positive_.size(), scratch_wire_);
  ensure_announced(scratch_wire_);
  if (!suppress_query_) return poll(static_cast<std::uint16_t>(idx));
  // Frame-level false-empty: the initiator is deaf for this one query's
  // exchange (re-polls included) — every reply is lost at its antenna.
  suppress_query_ = false;
  initiator_radio_->set_deaf(true);
  const auto r = poll(static_cast<std::uint16_t>(idx));
  initiator_radio_->set_deaf(false);
  return r;
}

BinQueryResult PacketChannel::do_query_set(std::span<const NodeId> nodes) {
  // Ad-hoc set: announce a one-bin assignment containing exactly `nodes`.
  scratch_wire_.assign(positive_.size(), rcd::kNotInRound);
  for (const NodeId id : nodes)
    scratch_wire_.at(static_cast<std::size_t>(id)) = 0;
  ensure_announced(scratch_wire_);
  if (!suppress_query_) return poll(0);
  suppress_query_ = false;
  initiator_radio_->set_deaf(true);
  const auto r = poll(0);
  initiator_radio_->set_deaf(false);
  return r;
}

}  // namespace tcast::group
