#include "group/binning.hpp"

#include <algorithm>

#include "rcd/addressing.hpp"

namespace tcast::group {

BinAssignment BinAssignment::random_equal(std::span<const NodeId> nodes,
                                          std::size_t bins, RngStream& rng) {
  BinAssignment out;
  out.assign_random_equal(nodes, bins, rng);
  return out;
}

BinAssignment BinAssignment::contiguous(std::span<const NodeId> nodes,
                                        std::size_t bins) {
  BinAssignment out;
  out.assign_contiguous(nodes, bins);
  return out;
}

BinAssignment BinAssignment::sampled(std::span<const NodeId> nodes,
                                     double inclusion_prob, RngStream& rng) {
  BinAssignment out;
  out.assign_sampled(nodes, inclusion_prob, rng);
  return out;
}

void BinAssignment::assign_random_equal(std::span<const NodeId> nodes,
                                        std::size_t bins, RngStream& rng) {
  TCAST_CHECK(bins >= 1);
  scratch_.assign(nodes.begin(), nodes.end());
  random_equal_partition_into(scratch_, bins, rng, arena_, offsets_);
  build_words();
}

void BinAssignment::assign_contiguous(std::span<const NodeId> nodes,
                                      std::size_t bins) {
  TCAST_CHECK(bins >= 1);
  arena_.assign(nodes.begin(), nodes.end());
  offsets_.resize(bins + 1);
  // Same size profile as the random variant (sizes differ by ≤ 1), but the
  // membership is the deterministic index order.
  const std::size_t n = nodes.size();
  const std::size_t base = n / bins;
  const std::size_t extra = n % bins;
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    offsets_[b] = next;
    next += base + (b < extra ? 1 : 0);
  }
  offsets_[bins] = n;
  build_words();
}

void BinAssignment::assign_sampled(std::span<const NodeId> nodes,
                                   double inclusion_prob, RngStream& rng) {
  TCAST_CHECK(inclusion_prob >= 0.0 && inclusion_prob <= 1.0);
  arena_.clear();
  for (const NodeId id : nodes)
    if (rng.bernoulli(inclusion_prob)) arena_.push_back(id);
  offsets_.assign({std::size_t{0}, arena_.size()});
  build_words();
}

void BinAssignment::build_words() {
  words_per_bin_ = 0;
  const std::size_t bins = bin_count();
  if (bins == 0 || bins > kMaxBinsForWords || arena_.empty()) return;
  NodeId max_id = 0;
  for (const NodeId id : arena_) max_id = std::max(max_id, id);
  words_per_bin_ = NodeSet::words_for(static_cast<std::size_t>(max_id) + 1);
  words_.assign(bins * words_per_bin_, NodeSet::Word{0});
  for (std::size_t b = 0; b < bins; ++b) {
    NodeSet::Word* const image = words_.data() + b * words_per_bin_;
    for (const NodeId id : bin(b)) {
      image[static_cast<std::size_t>(id) / NodeSet::kWordBits] |=
          NodeSet::Word{1} << (static_cast<std::size_t>(id) %
                               NodeSet::kWordBits);
    }
  }
}

std::vector<std::uint16_t> BinAssignment::to_wire(std::size_t universe) const {
  std::vector<std::uint16_t> wire;
  to_wire_into(universe, wire);
  return wire;
}

void BinAssignment::to_wire_into(std::size_t universe,
                                 std::vector<std::uint16_t>& out) const {
  out.assign(universe, rcd::kNotInRound);
  for (std::size_t b = 0; b < bin_count(); ++b) {
    for (const NodeId id : bin(b)) {
      TCAST_CHECK(static_cast<std::size_t>(id) < universe);
      out[id] = static_cast<std::uint16_t>(b);
    }
  }
}

}  // namespace tcast::group
