#include "group/binning.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "rcd/addressing.hpp"

namespace tcast::group {

BinAssignment BinAssignment::random_equal(std::span<const NodeId> nodes,
                                          std::size_t bins, RngStream& rng) {
  TCAST_CHECK(bins >= 1);
  std::vector<NodeId> shuffled(nodes.begin(), nodes.end());
  rng.shuffle(shuffled);
  std::vector<std::vector<NodeId>> out(bins);
  for (std::size_t i = 0; i < shuffled.size(); ++i)
    out[i % bins].push_back(shuffled[i]);
  return BinAssignment(std::move(out));
}

BinAssignment BinAssignment::contiguous(std::span<const NodeId> nodes,
                                        std::size_t bins) {
  TCAST_CHECK(bins >= 1);
  std::vector<std::vector<NodeId>> out(bins);
  // Same size profile as the random variant (sizes differ by ≤ 1), but the
  // membership is the deterministic index order.
  const std::size_t n = nodes.size();
  const std::size_t base = n / bins;
  const std::size_t extra = n % bins;
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t size = base + (b < extra ? 1 : 0);
    out[b].assign(nodes.begin() + static_cast<std::ptrdiff_t>(next),
                  nodes.begin() + static_cast<std::ptrdiff_t>(next + size));
    next += size;
  }
  return BinAssignment(std::move(out));
}

BinAssignment BinAssignment::sampled(std::span<const NodeId> nodes,
                                     double inclusion_prob, RngStream& rng) {
  TCAST_CHECK(inclusion_prob >= 0.0 && inclusion_prob <= 1.0);
  std::vector<std::vector<NodeId>> out(1);
  for (const NodeId id : nodes)
    if (rng.bernoulli(inclusion_prob)) out[0].push_back(id);
  return BinAssignment(std::move(out));
}

std::size_t BinAssignment::total_assigned() const {
  std::size_t total = 0;
  for (const auto& b : bins_) total += b.size();
  return total;
}

std::vector<std::uint16_t> BinAssignment::to_wire(std::size_t universe) const {
  std::vector<std::uint16_t> wire;
  to_wire_into(universe, wire);
  return wire;
}

void BinAssignment::to_wire_into(std::size_t universe,
                                 std::vector<std::uint16_t>& out) const {
  out.assign(universe, rcd::kNotInRound);
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    for (const NodeId id : bins_[b]) {
      TCAST_CHECK(static_cast<std::size_t>(id) < universe);
      out[id] = static_cast<std::uint16_t>(b);
    }
  }
}

}  // namespace tcast::group
