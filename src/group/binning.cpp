#include "group/binning.hpp"

#include <algorithm>
#include <atomic>

#include "rcd/addressing.hpp"

namespace tcast::group {

void BinAssignment::bump_version() {
  // Process-global so a version can never repeat, even across distinct
  // assignments recycled at one address (the ABA hazard a per-object
  // counter would reintroduce).
  static std::atomic<std::uint64_t> g_next_version{0};
  version_ = g_next_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

BinAssignment BinAssignment::random_equal(std::span<const NodeId> nodes,
                                          std::size_t bins, RngStream& rng) {
  BinAssignment out;
  out.assign_random_equal(nodes, bins, rng);
  return out;
}

BinAssignment BinAssignment::contiguous(std::span<const NodeId> nodes,
                                        std::size_t bins) {
  BinAssignment out;
  out.assign_contiguous(nodes, bins);
  return out;
}

BinAssignment BinAssignment::sampled(std::span<const NodeId> nodes,
                                     double inclusion_prob, RngStream& rng) {
  BinAssignment out;
  out.assign_sampled(nodes, inclusion_prob, rng);
  return out;
}

void BinAssignment::assign_random_equal(std::span<const NodeId> nodes,
                                        std::size_t bins, RngStream& rng) {
  scratch_.assign(nodes.begin(), nodes.end());
  assign_random_equal_inplace(scratch_, bins, rng);
}

void BinAssignment::assign_random_equal_inplace(std::span<NodeId> nodes,
                                                std::size_t bins,
                                                RngStream& rng) {
  TCAST_CHECK(bins >= 1);
  shuffle_deal_and_build_words(nodes, bins, rng);
  bump_version();
}

void BinAssignment::shuffle_deal_and_build_words(std::span<NodeId> nodes,
                                                 std::size_t bins,
                                                 RngStream& rng) {
  const std::size_t n = nodes.size();
  // Round-robin deal sizes are arithmetic (bin b gets base + 1 extras for
  // b < n mod bins), so offsets need no deal pass.
  offsets_.resize(bins + 1);
  const std::size_t base = n / bins;
  const std::size_t extra = n % bins;
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    offsets_[b] = next;
    next += base + (b < extra ? 1 : 0);
  }
  offsets_[bins] = n;

  arena_.resize(n);
  words_per_bin_ = 0;
  if (bins <= kMaxBinsForWords && n != 0) {
    // The max is permutation-invariant, so size the images before shuffling.
    NodeId max_id = 0;
    for (const NodeId id : nodes) max_id = std::max(max_id, id);
    words_per_bin_ = NodeSet::words_for(static_cast<std::size_t>(max_id) + 1);
    words_.assign(bins * words_per_bin_, NodeSet::Word{0});
  }
  if (n == 0) return;
  // Fused Fisher-Yates + deal. RngStream::shuffle's step that draws
  // uniform_below(i) settles position i-1 for good, so the deal (position p
  // goes to bin p mod bins at in-bin rank p / bins, both kept as counters)
  // consumes each element the moment it settles, walking p = n-1 down to 0.
  // The draw sequence is exactly shuffle()'s — same bounds, same order —
  // and the deal's stores execute in the shadow of the generator's serial
  // state chain instead of costing a second pass over the permutation.
  const std::size_t wpb = words_per_bin_;
  NodeSet::Word* const words = words_.data();
  std::size_t b = (n - 1) % bins;
  std::size_t rank = (n - 1) / bins;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_below(i));
    std::swap(nodes[i - 1], nodes[j]);
    const NodeId id = nodes[i - 1];
    arena_[offsets_[b] + rank] = id;
    if (wpb != 0) {
      words[b * wpb + static_cast<std::size_t>(id) / NodeSet::kWordBits] |=
          NodeSet::Word{1}
          << (static_cast<std::size_t>(id) % NodeSet::kWordBits);
    }
    if (b == 0) {
      b = bins - 1;
      --rank;
    } else {
      --b;
    }
  }
  // Position 0 settles when the loop ends (b == 0, rank == 0 here).
  const NodeId id = nodes[0];
  arena_[offsets_[0]] = id;
  if (wpb != 0) {
    words[static_cast<std::size_t>(id) / NodeSet::kWordBits] |=
        NodeSet::Word{1} << (static_cast<std::size_t>(id) % NodeSet::kWordBits);
  }
}

void BinAssignment::assign_contiguous(std::span<const NodeId> nodes,
                                      std::size_t bins) {
  TCAST_CHECK(bins >= 1);
  arena_.assign(nodes.begin(), nodes.end());
  offsets_.resize(bins + 1);
  // Same size profile as the random variant (sizes differ by ≤ 1), but the
  // membership is the deterministic index order.
  const std::size_t n = nodes.size();
  const std::size_t base = n / bins;
  const std::size_t extra = n % bins;
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    offsets_[b] = next;
    next += base + (b < extra ? 1 : 0);
  }
  offsets_[bins] = n;
  build_words();
  bump_version();
}

void BinAssignment::assign_sampled(std::span<const NodeId> nodes,
                                   double inclusion_prob, RngStream& rng) {
  TCAST_CHECK(inclusion_prob >= 0.0 && inclusion_prob <= 1.0);
  arena_.clear();
  for (const NodeId id : nodes)
    if (rng.bernoulli(inclusion_prob)) arena_.push_back(id);
  offsets_.assign({std::size_t{0}, arena_.size()});
  build_words();
  bump_version();
}

void BinAssignment::build_words() {
  words_per_bin_ = 0;
  const std::size_t bins = bin_count();
  if (bins == 0 || bins > kMaxBinsForWords || arena_.empty()) return;
  NodeId max_id = 0;
  for (const NodeId id : arena_) max_id = std::max(max_id, id);
  words_per_bin_ = NodeSet::words_for(static_cast<std::size_t>(max_id) + 1);
  words_.assign(bins * words_per_bin_, NodeSet::Word{0});
  for (std::size_t b = 0; b < bins; ++b) {
    NodeSet::Word* const image = words_.data() + b * words_per_bin_;
    for (const NodeId id : bin(b)) {
      image[static_cast<std::size_t>(id) / NodeSet::kWordBits] |=
          NodeSet::Word{1} << (static_cast<std::size_t>(id) %
                               NodeSet::kWordBits);
    }
  }
}

std::vector<std::uint16_t> BinAssignment::to_wire(std::size_t universe) const {
  std::vector<std::uint16_t> wire;
  to_wire_into(universe, wire);
  return wire;
}

void BinAssignment::to_wire_into(std::size_t universe,
                                 std::vector<std::uint16_t>& out) const {
  out.assign(universe, rcd::kNotInRound);
  for (std::size_t b = 0; b < bin_count(); ++b) {
    for (const NodeId id : bin(b)) {
      TCAST_CHECK(static_cast<std::size_t>(id) < universe);
      out[id] = static_cast<std::uint16_t>(b);
    }
  }
}

}  // namespace tcast::group
