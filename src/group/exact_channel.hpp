// ExactChannel: the abstract simulation tier (paper Sec. IV-C setup).
//
// Queries are resolved instantly from ground truth with exact 1+/2+
// semantics; the only randomness is the capture draw of the 2+ model. This
// is the channel behind Figs. 1-3 and 5-11.
#pragma once

#include <memory>
#include <vector>

#include "group/query_channel.hpp"
#include "radio/capture.hpp"

namespace tcast::group {

class ExactChannel final : public QueryChannel {
 public:
  struct Config {
    CollisionModel model = CollisionModel::kOnePlus;
    /// 2+ capture draw; nullptr = GeometricCaptureModel defaults.
    std::shared_ptr<radio::CaptureModel> capture;
  };

  /// `positive[i]` = ground truth for node i; `rng` is borrowed for capture
  /// draws and must outlive the channel.
  ExactChannel(std::vector<bool> positive, RngStream& rng)
      : ExactChannel(std::move(positive), rng, Config{}) {}
  ExactChannel(std::vector<bool> positive, RngStream& rng, Config cfg);

  /// Convenience: n nodes with a random x-subset positive.
  static ExactChannel with_random_positives(std::size_t n, std::size_t x,
                                            RngStream& rng, Config cfg);
  static ExactChannel with_random_positives(std::size_t n, std::size_t x,
                                            RngStream& rng);

  std::size_t participant_count() const { return positive_.size(); }
  std::size_t positive_count() const { return positive_count_; }
  bool is_positive(NodeId id) const {
    return positive_.at(static_cast<std::size_t>(id));
  }
  void set_positive(NodeId id, bool value);

  /// All participant ids [0, n) — the initial candidate set.
  std::vector<NodeId> all_nodes() const;

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override;

 protected:
  BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  std::vector<bool> positive_;
  std::size_t positive_count_ = 0;
  RngStream* rng_;
  std::shared_ptr<radio::CaptureModel> capture_;
};

}  // namespace tcast::group
