// ExactChannel: the abstract simulation tier (paper Sec. IV-C setup).
//
// Queries are resolved instantly from ground truth with exact 1+/2+
// semantics; the only randomness is the capture draw of the 2+ model. This
// is the channel behind Figs. 1-3 and 5-11.
//
// Ground truth is stored as a NodeSet (common/node_set.hpp), so a bin query
// against a word-capable BinAssignment is AND + popcount over 64-node words
// instead of a per-member span walk. The historical scalar path is retained
// verbatim behind Config::node_set_fast_path = false as the reference
// implementation; the conformance suite's differential tests prove the two
// paths bit-identical (outcomes, query counts, and RNG draws).
#pragma once

#include <memory>
#include <vector>

#include "common/node_set.hpp"
#include "group/query_channel.hpp"
#include "radio/capture.hpp"

namespace tcast::group {

class ExactChannel final : public QueryChannel {
 public:
  struct Config {
    CollisionModel model = CollisionModel::kOnePlus;
    /// 2+ capture draw; nullptr = GeometricCaptureModel defaults.
    std::shared_ptr<radio::CaptureModel> capture;
    /// false = the retained scalar reference path (per-member span walk with
    /// bounds-checked access and a per-query heap vector, exactly the
    /// pre-NodeSet implementation). Differential tests flip this.
    bool node_set_fast_path = true;
  };

  /// `positive[i]` = ground truth for node i; `rng` is borrowed for capture
  /// draws and must outlive the channel.
  ExactChannel(std::vector<bool> positive, RngStream& rng)
      : ExactChannel(std::move(positive), rng, Config{}) {}
  ExactChannel(std::vector<bool> positive, RngStream& rng, Config cfg);

  /// All-negative ground truth over `n` nodes — the reusable-workspace
  /// entry: pair with assign_random_positives()/rebind_rng() to recycle one
  /// channel across Monte-Carlo trials (the sweep engine's hot loop).
  static ExactChannel all_negative(std::size_t n, RngStream& rng, Config cfg);

  /// Convenience: n nodes with a random x-subset positive.
  static ExactChannel with_random_positives(std::size_t n, std::size_t x,
                                            RngStream& rng, Config cfg);
  static ExactChannel with_random_positives(std::size_t n, std::size_t x,
                                            RngStream& rng);

  std::size_t participant_count() const { return positive_.universe(); }
  std::size_t positive_count() const { return positive_.count(); }
  bool is_positive(NodeId id) const {
    TCAST_DCHECK(static_cast<std::size_t>(id) < positive_.universe());
    return positive_.test(id);
  }
  void set_positive(NodeId id, bool value);

  /// Replaces the ground truth with a fresh uniformly random x-subset of
  /// positives, consuming exactly the draw sequence of
  /// `rng.sample_subset(n, x)` — a trial that recycles this channel sees the
  /// same positives (and downstream draws) as one that constructed a fresh
  /// channel via with_random_positives().
  void assign_random_positives(std::size_t x, RngStream& rng);

  /// Points capture draws at a different stream (per-trial streams when the
  /// channel is recycled across trials).
  void rebind_rng(RngStream& rng) { rng_ = &rng; }

  /// All participant ids [0, n) — the initial candidate set. The span
  /// aliases a member cached at construction; no per-call allocation.
  std::span<const NodeId> all_nodes() const { return nodes_; }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override;
  std::optional<std::size_t> oracle_positive_count(
      const BinAssignment& a, std::size_t idx) const override;
  const std::uint32_t* oracle_bin_counts(const BinAssignment& a) const override;

 protected:
  void do_announce(const BinAssignment& a) override;
  BinQueryResult do_query_bin(const BinAssignment& a,
                              std::size_t idx) override;
  BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  /// with_random_positives()/all_negative() body; a constructor so the
  /// factories can return prvalues (QueryChannel is neither copyable nor
  /// movable). Kept private — and four-argument — so braced bool lists like
  /// `ExactChannel({true}, rng, cfg)` keep selecting the vector<bool> ctor.
  ExactChannel(std::size_t n, std::size_t x, RngStream& rng, Config cfg);

  BinQueryResult resolve(std::size_t positives, std::span<const NodeId> bin);
  BinQueryResult query_set_reference(std::span<const NodeId> nodes);

  /// Per-announcement SoA cache: every bin's positive count, batched
  /// through the SIMD bin-count kernel on first use after announce() and
  /// then served as array lookups — the oracle ordering pass and the query
  /// loop each touch every bin, so one vector pass replaces 2·bins word
  /// walks. Returns nullptr (and the callers fall back to the per-bin
  /// kernels) unless the fast path is on, `a` has a word image, and `a` is
  /// the currently announced assignment at its announced version — an
  /// assignment mutated or recycled since its announce() can never serve
  /// stale counts. Invalidated by any ground-truth mutation. Consumes no
  /// RNG, so cached and uncached runs stay draw-for-draw identical.
  const std::uint32_t* cached_bin_counts(const BinAssignment& a) const;

  NodeSet positive_;
  std::vector<NodeId> nodes_;         ///< cached [0, n)
  std::vector<NodeId> pool_scratch_;  ///< assign_random_positives() reuse
  RngStream* rng_;
  std::shared_ptr<radio::CaptureModel> capture_;
  bool fast_path_;
  /// cached_bin_counts() state (see above). `counts_` is mutable because
  /// the materialization point is the const oracle-count hook; the channel
  /// is single-threaded by contract (the query counter already is).
  std::uint64_t announced_version_ = 0;  ///< 0 = nothing announced yet
  mutable std::vector<std::uint32_t> counts_;
  mutable bool counts_valid_ = false;
};

}  // namespace tcast::group
