// InstrumentedChannel is header-only; this TU anchors the build target.
#include "group/instrumented_channel.hpp"
