// QueryChannel — the single interface every tcast algorithm is written
// against. An implementation answers "is this bin empty?" under one of the
// paper's two collision models (Sec. III-A):
//
//   1+ : silence vs activity. Outcomes: kEmpty, kActivity.
//   2+ : additionally, the radio may lock onto one reply (capture effect).
//        Outcomes: kEmpty, kActivity (⇒ ≥2 repliers: a lone reply always
//        decodes), kCaptured (one identity known; because of the capture
//        effect the initiator can NOT conclude the bin held only that node).
//
// Query accounting lives in this base class (non-virtual entry points), so
// every implementation is counted identically.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/types.hpp"
#include "group/binning.hpp"

namespace tcast::group {

enum class CollisionModel : std::uint8_t { kOnePlus, kTwoPlus };

const char* to_string(CollisionModel m);

struct BinQueryResult {
  enum class Kind : std::uint8_t {
    kEmpty,     ///< silence: no positive node in the bin
    kActivity,  ///< energy but no decode (1+: ≥1 positive; 2+: ≥2 positives)
    kCaptured,  ///< 2+ only: one reply decoded; `captured` is that node
  };

  Kind kind = Kind::kEmpty;
  NodeId captured = kNoNode;

  bool nonempty() const { return kind != Kind::kEmpty; }

  static BinQueryResult empty() { return {}; }
  static BinQueryResult activity() {
    return {Kind::kActivity, kNoNode};
  }
  static BinQueryResult captured_node(NodeId id) {
    return {Kind::kCaptured, id};
  }
};

/// Frame-level fault hooks a packet-tier channel may expose (see
/// faults/FaultyChannel and faults/TraceChannel). Where the abstract tier
/// injects faults at query granularity, a channel implementing this
/// interface takes them below the query layer, onto the sim clock: a failed
/// node powers its radio off mid-exchange (it hears the poll, then dies
/// before its HACK/reply fires) and a suppressed query loses every reply at
/// the initiator's antenna. Faults scheduled here affect only radio state,
/// never the channel's RNG consumption, so the same fault schedule replays
/// bit-identically.
class ChannelFaultControl {
 public:
  virtual ~ChannelFaultControl() = default;

  /// Node `id` dies during the next query's exchange: it still receives the
  /// poll frame (arming / predicate evaluation happens), but its radio is
  /// off by the time the reply turnaround elapses.
  virtual void fail_node(NodeId id) = 0;

  /// A failed node powers back on immediately and re-learns the current bin
  /// assignment on the next query (the re-announce is free in the paper's
  /// cost model).
  virtual void restore_node(NodeId id) = 0;

  /// The initiator is deaf for the next query's exchange: replies are lost
  /// at its antenna (the frame-level false-empty mechanism). One-shot.
  virtual void suppress_next_query() = 0;
};

class QueryChannel {
 public:
  explicit QueryChannel(CollisionModel model) : model_(model) {}
  virtual ~QueryChannel() = default;

  QueryChannel(const QueryChannel&) = delete;
  QueryChannel& operator=(const QueryChannel&) = delete;

  CollisionModel model() const { return model_; }

  /// Announces a round's bin structure (one broadcast on the packet tier;
  /// free — announcements are not queries in the paper's cost model, they
  /// ride on the poll message of the first query).
  void announce(const BinAssignment& a) { do_announce(a); }

  /// Queries bin `idx` of the announced assignment. Costs one query.
  BinQueryResult query_bin(const BinAssignment& a, std::size_t idx) {
    ++queries_;
    return do_query_bin(a, idx);
  }

  /// Queries an ad-hoc node set (the probabilistic sampling bin). Costs one
  /// query.
  BinQueryResult query_set(std::span<const NodeId> nodes) {
    ++queries_;
    return do_query_set(nodes);
  }

  QueryCount queries_used() const { return queries_; }
  void reset_query_counter() { queries_ = 0; }

  /// Capability bit: true when this channel may *misreport* a query — drop
  /// a non-empty bin to silence (HACK loss), fail to decode a lone reply,
  /// or read foreign energy as activity. On a lossy channel an empty result
  /// proves nothing and the 2+ "activity ⇒ ≥2" inference is unsound; the
  /// round engine keys its soundness gate and retry policies off this bit,
  /// and the conformance harness refuses loss-unsound configurations.
  virtual bool lossy() const { return false; }

  /// Oracle hooks for idealised accounting and lower-bound baselines; only
  /// ground-truth-capable channels implement them (the exact tier). Real
  /// channels return nullopt and callers must cope.
  virtual std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const {
    (void)nodes;
    return std::nullopt;
  }

  /// Bin-indexed variant of the oracle hook. Defaults to the span overload,
  /// so wrappers that forward the span version keep working unchanged;
  /// word-capable channels override it to count via AND+popcount against
  /// the assignment's word image.
  virtual std::optional<std::size_t> oracle_positive_count(
      const BinAssignment& a, std::size_t idx) const {
    return oracle_positive_count(a.bin(idx));
  }

  /// Bulk variant of the bin-indexed oracle hook: every bin's positive
  /// count as one contiguous array (bin i at index i, valid until the next
  /// mutation of channel or assignment), or nullptr when this channel has
  /// no cheap whole-assignment answer. Channels that batch their counts per
  /// announcement (the exact tier) serve the cached array; callers must
  /// fall back to per-bin oracle_positive_count on nullptr.
  virtual const std::uint32_t* oracle_bin_counts(const BinAssignment& a) const {
    (void)a;
    return nullptr;
  }

  /// Frame-level fault hooks, when this channel can honour them (the packet
  /// tier). nullptr means fault injectors must fall back to query-level
  /// semantics (filtering crashed nodes out of the queried set). Decorators
  /// that sit between a fault injector and the base channel forward this.
  virtual ChannelFaultControl* fault_control() { return nullptr; }

 protected:
  /// For implementations that internally re-issue an exchange (the packet
  /// tier's backoff re-polls): each physical re-poll occupies a slot and
  /// must count as a query, or the paper's cost accounting would lie.
  void count_extra_query() { ++queries_; }

  virtual void do_announce(const BinAssignment& a) { (void)a; }
  virtual BinQueryResult do_query_bin(const BinAssignment& a,
                                      std::size_t idx) {
    return do_query_set(a.bin(idx));
  }
  virtual BinQueryResult do_query_set(std::span<const NodeId> nodes) = 0;

 private:
  CollisionModel model_;
  QueryCount queries_ = 0;
};

}  // namespace tcast::group
