#include "group/exact_channel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::group {

const char* to_string(CollisionModel m) {
  switch (m) {
    case CollisionModel::kOnePlus: return "1+";
    case CollisionModel::kTwoPlus: return "2+";
  }
  return "?";
}

ExactChannel::ExactChannel(std::vector<bool> positive, RngStream& rng,
                           Config cfg)
    : QueryChannel(cfg.model),
      positive_(std::move(positive)),
      rng_(&rng),
      capture_(cfg.capture ? std::move(cfg.capture)
                           : std::make_shared<radio::GeometricCaptureModel>()) {
  positive_count_ = static_cast<std::size_t>(
      std::count(positive_.begin(), positive_.end(), true));
}

ExactChannel ExactChannel::with_random_positives(std::size_t n, std::size_t x,
                                                 RngStream& rng) {
  return with_random_positives(n, x, rng, Config{});
}

ExactChannel ExactChannel::with_random_positives(std::size_t n, std::size_t x,
                                                 RngStream& rng, Config cfg) {
  std::vector<bool> positive(n, false);
  for (const NodeId id : rng.sample_subset(n, x))
    positive[static_cast<std::size_t>(id)] = true;
  return ExactChannel(std::move(positive), rng, std::move(cfg));
}

void ExactChannel::set_positive(NodeId id, bool value) {
  auto ref = positive_.at(static_cast<std::size_t>(id));
  if (ref == value) return;
  positive_[static_cast<std::size_t>(id)] = value;
  positive_count_ += value ? 1 : std::size_t(-1);
}

std::vector<NodeId> ExactChannel::all_nodes() const {
  std::vector<NodeId> out(positive_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<NodeId>(i);
  return out;
}

std::optional<std::size_t> ExactChannel::oracle_positive_count(
    std::span<const NodeId> nodes) const {
  std::size_t count = 0;
  for (const NodeId id : nodes)
    if (positive_.at(static_cast<std::size_t>(id))) ++count;
  return count;
}

BinQueryResult ExactChannel::do_query_set(std::span<const NodeId> nodes) {
  std::vector<NodeId> positives_in_bin;
  for (const NodeId id : nodes)
    if (positive_.at(static_cast<std::size_t>(id)))
      positives_in_bin.push_back(id);
  const std::size_t k = positives_in_bin.size();

  if (k == 0) return BinQueryResult::empty();
  if (model() == CollisionModel::kOnePlus) return BinQueryResult::activity();
  // 2+ model: a lone reply always decodes; collisions may capture.
  const auto idx = capture_->captured_index(k, *rng_);
  if (idx) return BinQueryResult::captured_node(positives_in_bin[*idx]);
  return BinQueryResult::activity();
}

}  // namespace tcast::group
