#include "group/exact_channel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::group {

const char* to_string(CollisionModel m) {
  switch (m) {
    case CollisionModel::kOnePlus: return "1+";
    case CollisionModel::kTwoPlus: return "2+";
  }
  return "?";
}

ExactChannel::ExactChannel(std::vector<bool> positive, RngStream& rng,
                           Config cfg)
    : ExactChannel(positive.size(), 0, rng, std::move(cfg)) {
  for (std::size_t i = 0; i < positive.size(); ++i)
    if (positive[i]) positive_.insert(static_cast<NodeId>(i));
}

ExactChannel::ExactChannel(std::size_t n, std::size_t x, RngStream& rng,
                           Config cfg)
    : QueryChannel(cfg.model),
      positive_(n),
      rng_(&rng),
      capture_(cfg.capture ? std::move(cfg.capture)
                           : std::make_shared<radio::GeometricCaptureModel>()),
      fast_path_(cfg.node_set_fast_path) {
  nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) nodes_[i] = static_cast<NodeId>(i);
  if (x > 0) assign_random_positives(x, rng);
}

ExactChannel ExactChannel::all_negative(std::size_t n, RngStream& rng,
                                        Config cfg) {
  return ExactChannel(n, 0, rng, std::move(cfg));
}

ExactChannel ExactChannel::with_random_positives(std::size_t n, std::size_t x,
                                                 RngStream& rng) {
  return with_random_positives(n, x, rng, Config{});
}

ExactChannel ExactChannel::with_random_positives(std::size_t n, std::size_t x,
                                                 RngStream& rng, Config cfg) {
  return ExactChannel(n, x, rng, std::move(cfg));
}

void ExactChannel::set_positive(NodeId id, bool value) {
  TCAST_CHECK(static_cast<std::size_t>(id) < positive_.universe());
  counts_valid_ = false;
  if (value)
    positive_.insert(id);
  else
    positive_.erase(id);
}

void ExactChannel::assign_random_positives(std::size_t x, RngStream& rng) {
  const std::size_t n = positive_.universe();
  TCAST_CHECK(x <= n);
  counts_valid_ = false;
  positive_.clear();
  // Exactly the draw sequence of rng.sample_subset(n, x): a partial
  // Fisher-Yates over an iota pool, x draws of uniform_below(n - i). The
  // sorted-output step of sample_subset draws nothing, and set membership
  // is order-free, so inserting unsorted is equivalent.
  pool_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    pool_scratch_[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < x; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(n - i));
    std::swap(pool_scratch_[i], pool_scratch_[j]);
    positive_.insert(pool_scratch_[i]);
  }
}

std::optional<std::size_t> ExactChannel::oracle_positive_count(
    std::span<const NodeId> nodes) const {
  std::size_t count = 0;
  for (const NodeId id : nodes)
    if (positive_.test(id)) ++count;
  return count;
}

std::optional<std::size_t> ExactChannel::oracle_positive_count(
    const BinAssignment& a, std::size_t idx) const {
  if (const std::uint32_t* counts = cached_bin_counts(a)) return counts[idx];
  if (a.has_bin_words())
    return NodeSet::intersection_count(positive_.words(), a.bin_words(idx));
  return oracle_positive_count(a.bin(idx));
}

const std::uint32_t* ExactChannel::oracle_bin_counts(
    const BinAssignment& a) const {
  return cached_bin_counts(a);
}

void ExactChannel::do_announce(const BinAssignment& a) {
  announced_version_ = a.version();
  counts_valid_ = false;
}

const std::uint32_t* ExactChannel::cached_bin_counts(
    const BinAssignment& a) const {
  if (!fast_path_ || !a.has_bin_words()) return nullptr;
  // Versions are globally unique per assign event, so matching the
  // announced version proves `a` carries exactly the announced content —
  // even if it is a different object, or the announced one was re-assigned
  // in place since.
  if (a.version() != announced_version_ || announced_version_ == 0)
    return nullptr;
  if (!counts_valid_) {
    counts_.resize(a.bin_count());
    const auto pos = positive_.words();
    simd::bin_intersection_counts(pos.data(), pos.size(),
                                  a.bin_words_arena().data(),
                                  a.words_per_bin(), a.bin_count(),
                                  counts_.data());
    counts_valid_ = true;
  }
  return counts_.data();
}

BinQueryResult ExactChannel::resolve(std::size_t positives,
                                     std::span<const NodeId> bin) {
  if (positives == 0) return BinQueryResult::empty();
  if (model() == CollisionModel::kOnePlus) return BinQueryResult::activity();
  // 2+ model: a lone reply always decodes; collisions may capture.
  const auto idx = capture_->captured_index(positives, *rng_);
  if (!idx) return BinQueryResult::activity();
  // The captured identity is the (idx+1)-th positive in bin order — the
  // same pick (and the same RNG consumption) as the reference path's
  // positives_in_bin[*idx], located by walking the span instead of
  // materialising the positives.
  std::size_t seen = 0;
  for (const NodeId id : bin) {
    if (!positive_.test(id)) continue;
    if (seen == *idx) return BinQueryResult::captured_node(id);
    ++seen;
  }
  TCAST_CHECK_MSG(false, "captured index past the bin's positives");
  return BinQueryResult::activity();
}

BinQueryResult ExactChannel::query_set_reference(
    std::span<const NodeId> nodes) {
  // The pre-NodeSet implementation, kept verbatim as the differential
  // reference: bounds-checked membership walk into a per-query heap vector.
  std::vector<NodeId> positives_in_bin;
  for (const NodeId id : nodes) {
    TCAST_CHECK(static_cast<std::size_t>(id) < positive_.universe());
    if (positive_.test(id)) positives_in_bin.push_back(id);
  }
  const std::size_t k = positives_in_bin.size();

  if (k == 0) return BinQueryResult::empty();
  if (model() == CollisionModel::kOnePlus) return BinQueryResult::activity();
  const auto idx = capture_->captured_index(k, *rng_);
  if (idx) return BinQueryResult::captured_node(positives_in_bin[*idx]);
  return BinQueryResult::activity();
}

BinQueryResult ExactChannel::do_query_bin(const BinAssignment& a,
                                          std::size_t idx) {
  if (!fast_path_) return query_set_reference(a.bin(idx));
  // Hot path: counts already materialized for this exact announcement
  // (versions are globally unique, so the compare alone proves `a` is the
  // announced content). Skips the full re-validation in cached_bin_counts.
  if (counts_valid_ && a.version() == announced_version_) {
    const std::size_t k = counts_[idx];
    if (model() == CollisionModel::kOnePlus)
      return k > 0 ? BinQueryResult::activity() : BinQueryResult::empty();
    return resolve(k, a.bin(idx));
  }
  if (const std::uint32_t* counts = cached_bin_counts(a)) {
    const std::size_t k = counts[idx];
    if (model() == CollisionModel::kOnePlus)
      return k > 0 ? BinQueryResult::activity() : BinQueryResult::empty();
    return resolve(k, a.bin(idx));
  }
  if (a.has_bin_words()) {
    const auto image = a.bin_words(idx);
    if (model() == CollisionModel::kOnePlus)
      return NodeSet::intersects(positive_.words(), image)
                 ? BinQueryResult::activity()
                 : BinQueryResult::empty();
    return resolve(NodeSet::intersection_count(positive_.words(), image),
                   a.bin(idx));
  }
  return do_query_set(a.bin(idx));
}

BinQueryResult ExactChannel::do_query_set(std::span<const NodeId> nodes) {
  if (!fast_path_) return query_set_reference(nodes);
  if (model() == CollisionModel::kOnePlus) {
    for (const NodeId id : nodes)
      if (positive_.test(id)) return BinQueryResult::activity();
    return BinQueryResult::empty();
  }
  std::size_t k = 0;
  for (const NodeId id : nodes) k += positive_.test(id) ? 1u : 0u;
  return resolve(k, nodes);
}

}  // namespace tcast::group
