// PacketChannel: the packet-level simulation tier.
//
// Owns a self-contained radio world — one discrete-event simulator, one
// broadcast channel, an initiator radio and N participant radios with RCD
// responders — and resolves every query by actually running the backcast
// (1+) or pollcast (2+) exchange through the PHY/MAC substrate, including
// the HACK false-negative model and the capture model.
//
// The algorithm layer is synchronous; each query therefore advances the
// embedded simulator until the exchange's window closes (co-simulation).
// Elapsed air time and per-node energy are exposed so benches can report
// real-time/energy costs alongside query counts.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "group/query_channel.hpp"
#include "radio/channel.hpp"
#include "radio/interference.hpp"
#include "radio/radio.hpp"
#include "rcd/backcast.hpp"
#include "rcd/pollcast.hpp"
#include "sim/parallel/kernel.hpp"
#include "sim/simulator.hpp"

namespace tcast::group {

/// Which RCD primitive resolves the queries.
enum class RcdPrimitive {
  kAuto,      ///< backcast for 1+, pollcast for 2+ (the paper's choices)
  kBackcast,  ///< HACK-based; 1+ only, immune to interference false positives
  kPollcast,  ///< CCA-based; supports 2+ capture, but foreign energy in the
              ///< vote window reads as activity (Sec. III-B)
};

class PacketChannel final : public QueryChannel, public ChannelFaultControl {
 public:
  struct Config {
    CollisionModel model = CollisionModel::kOnePlus;
    RcdPrimitive primitive = RcdPrimitive::kAuto;
    radio::ChannelConfig channel;  ///< HACK model, capture model, loss
    std::uint64_t seed = 1;
    std::uint64_t stream = 0;
    std::uint8_t predicate_id = 1;
    /// Fraction of air time occupied by foreign cross-traffic (multihop
    /// interference model, Sec. III-B). 0 disables it.
    double interference_duty = 0.0;
    std::size_t interference_frame_bytes = 32;

    /// Loss robustness at the packet tier: a silent poll is re-issued after
    /// an exponentially growing backoff (a lost poll frame is
    /// indistinguishable from an empty bin; re-polling restores delivery).
    /// Every re-poll occupies a slot and is counted as a query — the
    /// paper's cost accounting stays honest. 1 = a single poll (off).
    std::size_t poll_attempts = 1;
    SimTime poll_backoff = 960 * kMicrosecond;  ///< gap before 1st re-poll
    double poll_backoff_multiplier = 2.0;       ///< growth per re-poll

    /// Spatial layout (only meaningful when channel.range > 0): initiator
    /// placement, per-participant placements (defaults to the initiator's
    /// spot when shorter than n), and where the foreign transmitter sits.
    std::pair<double, double> initiator_pos = {0.0, 0.0};
    std::vector<std::pair<double, double>> participant_positions;
    std::pair<double, double> interferer_pos = {0.0, 0.0};

    /// Host the world on the parallel LP kernel (sim/parallel) instead of
    /// driving the simulator directly. The singlehop world is one LP (its
    /// channel folds frames into every receiver instantly — zero lookahead,
    /// so it cannot be split without changing semantics); with
    /// interference_duty > 0 the foreign region becomes a *second* LP with
    /// its own RNG stream, feeding ghost transmissions over a conservative
    /// link. The kernel runs inline (no pool): worlds are hosted inside
    /// chaos-campaign worker threads, where nested pools are forbidden.
    /// false = the scalar single-queue path, kept as the differential
    /// reference; with interference_duty == 0 the two paths are
    /// bit-identical (the conformance suite proves it).
    bool lp_hosted = false;
  };

  /// `positive[i]` = whether participant i's sensor holds the predicate.
  PacketChannel(std::vector<bool> positive, Config cfg);
  ~PacketChannel() override;

  std::size_t participant_count() const { return positive_.size(); }
  /// All participant ids [0, n); aliases a member cached at construction.
  std::span<const NodeId> all_nodes() const { return nodes_; }
  void set_positive(NodeId id, bool value) {
    positive_.at(static_cast<std::size_t>(id)) = value;
  }

  sim::Simulator& simulator() { return *sim_; }
  SimTime elapsed() const { return sim_->now(); }
  double initiator_energy_mj();
  double participant_energy_mj(NodeId id);
  std::uint64_t interference_frames() const;

  /// Backoff re-polls issued for silent bins (each also counted a query).
  std::uint64_t repolls() const { return repolls_; }

  /// Whether this world runs on the parallel LP kernel (Config::lp_hosted).
  bool lp_hosted() const { return kernel_ != nullptr; }

  /// Kernel window/message statistics; nullptr on the scalar path.
  const sim::parallel::KernelStats* kernel_stats() const {
    return kernel_ ? &kernel_->stats() : nullptr;
  }

  /// The PHY can misreport here whenever lone frames may be dropped
  /// (clean_loss), a lone HACK may fail to decode (non-ideal HACK model),
  /// or foreign energy can land in the vote window (interference).
  bool lossy() const override;

  // --- ChannelFaultControl: frame-level fault determinism ---------------
  //
  // Fault injectors (faults/FaultyChannel, faults/TraceChannel) use these
  // to push crash/reboot and loss faults below the query layer. A failed
  // node's radio powers off on the sim clock *mid-exchange*: the power-off
  // lands after the poll frame delivers (the mote hears the poll and arms)
  // but before the reply turnaround elapses, so the death is a genuine
  // frame-level event, not a query-set filter. None of the three hooks
  // consumes channel RNG, so a recorded fault schedule replays
  // bit-identically.
  ChannelFaultControl* fault_control() override { return this; }
  void fail_node(NodeId id) override;
  void restore_node(NodeId id) override;
  void suppress_next_query() override;

  /// Whether participant `id`'s radio is currently powered off (tests).
  bool node_is_down(NodeId id) const;

 protected:
  void do_announce(const BinAssignment& a) override;
  BinQueryResult do_query_bin(const BinAssignment& a,
                              std::size_t idx) override;
  BinQueryResult do_query_set(std::span<const NodeId> nodes) override;

 private:
  struct Participant;
  struct GhostInterferer;

  BinQueryResult poll(std::uint16_t bin);
  BinQueryResult poll_once(std::uint16_t bin);
  void ensure_announced(const std::vector<std::uint16_t>& wire);
  /// Advances the world until `done()`: directly on the scalar path,
  /// through the LP kernel when hosted.
  void advance_until_flag(const std::function<bool()>& done);

  std::vector<bool> positive_;
  std::vector<NodeId> nodes_;  ///< cached [0, n) for all_nodes()
  Config cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<radio::Channel> channel_;
  std::unique_ptr<radio::Radio> initiator_radio_;
  std::unique_ptr<rcd::BackcastInitiator> backcast_;
  std::unique_ptr<rcd::PollcastInitiator> pollcast_;
  std::unique_ptr<radio::InterferenceSource> interference_;
  std::unique_ptr<sim::parallel::ParallelKernel> kernel_;
  sim::parallel::LogicalProcess* world_lp_ = nullptr;
  std::unique_ptr<GhostInterferer> ghost_;
  std::vector<std::unique_ptr<Participant>> participants_;
  std::vector<std::uint16_t> announced_wire_;
  /// Per-poll wire scratch: do_query_bin/do_query_set serialise the bin
  /// structure here instead of allocating a fresh vector per query.
  std::vector<std::uint16_t> scratch_wire_;
  std::uint32_t session_ = 0;
  std::uint64_t repolls_ = 0;
  /// Nodes whose mid-exchange power-off is armed for the next poll.
  std::vector<NodeId> pending_failures_;
  /// One-shot initiator deafness for the next query (suppress_next_query).
  bool suppress_query_ = false;
};

}  // namespace tcast::group
