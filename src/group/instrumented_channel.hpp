// InstrumentedChannel: decorator recording a full query transcript.
//
// Wraps any QueryChannel; used by tests to assert algorithm behaviour
// (bin sizes, round structure, soundness of every inference against ground
// truth) and by examples for tracing. The inner channel's own counter still
// advances — read the decorator's counter.
#pragma once

#include <vector>

#include "group/query_channel.hpp"

namespace tcast::group {

class InstrumentedChannel final : public QueryChannel {
 public:
  struct Record {
    std::vector<NodeId> nodes;  ///< the queried set
    BinQueryResult result;
    std::optional<std::size_t> true_positives;  ///< if inner has an oracle
  };

  explicit InstrumentedChannel(QueryChannel& inner)
      : QueryChannel(inner.model()), inner_(&inner) {}

  const std::vector<Record>& transcript() const { return transcript_; }
  std::size_t announces() const { return announces_; }
  void clear() {
    transcript_.clear();
    announces_ = 0;
  }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return inner_->oracle_positive_count(nodes);
  }

 protected:
  void do_announce(const BinAssignment& a) override {
    ++announces_;
    inner_->announce(a);
  }

  BinQueryResult do_query_bin(const BinAssignment& a,
                              std::size_t idx) override {
    return record(a.bin(idx), inner_->query_bin(a, idx));
  }

  BinQueryResult do_query_set(std::span<const NodeId> nodes) override {
    return record(nodes, inner_->query_set(nodes));
  }

 private:
  BinQueryResult record(std::span<const NodeId> nodes, BinQueryResult r) {
    Record rec;
    rec.nodes.assign(nodes.begin(), nodes.end());
    rec.result = r;
    rec.true_positives = inner_->oracle_positive_count(nodes);
    transcript_.push_back(std::move(rec));
    return r;
  }

  QueryChannel* inner_;
  std::vector<Record> transcript_;
  std::size_t announces_ = 0;
};

}  // namespace tcast::group
