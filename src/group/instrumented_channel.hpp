// InstrumentedChannel: decorator recording a full query transcript.
//
// Wraps any QueryChannel; used by tests to assert algorithm behaviour
// (bin sizes, round structure, soundness of every inference against ground
// truth) and by examples for tracing. The inner channel's own counter still
// advances — read the decorator's counter.
#pragma once

#include <vector>

#include "group/query_channel.hpp"

namespace tcast::group {

class InstrumentedChannel final : public QueryChannel {
 public:
  struct Record {
    std::vector<NodeId> nodes;  ///< the queried set
    BinQueryResult result;
    std::optional<std::size_t> true_positives;  ///< if inner has an oracle
  };

  /// One announced round structure (the full bin partition), plus where in
  /// the query transcript it happened — the conformance partition checks
  /// need the bin structure, not just that an announce occurred.
  struct Announcement {
    std::vector<std::vector<NodeId>> bins;
    std::size_t at_query = 0;  ///< transcript index when announced
  };

  explicit InstrumentedChannel(QueryChannel& inner)
      : QueryChannel(inner.model()), inner_(&inner) {}

  const std::vector<Record>& transcript() const { return transcript_; }
  const std::vector<Announcement>& announcements() const {
    return announcements_;
  }
  std::size_t announces() const { return announcements_.size(); }
  void clear() {
    transcript_.clear();
    announcements_.clear();
  }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    return inner_->oracle_positive_count(nodes);
  }

  bool lossy() const override { return inner_->lossy(); }

 protected:
  void do_announce(const BinAssignment& a) override {
    Announcement ann;
    ann.bins.reserve(a.bin_count());
    for (std::size_t i = 0; i < a.bin_count(); ++i) {
      const auto bin = a.bin(i);
      ann.bins.emplace_back(bin.begin(), bin.end());
    }
    ann.at_query = transcript_.size();
    announcements_.push_back(std::move(ann));
    inner_->announce(a);
  }

  BinQueryResult do_query_bin(const BinAssignment& a,
                              std::size_t idx) override {
    return record(a.bin(idx), inner_->query_bin(a, idx));
  }

  BinQueryResult do_query_set(std::span<const NodeId> nodes) override {
    return record(nodes, inner_->query_set(nodes));
  }

 private:
  BinQueryResult record(std::span<const NodeId> nodes, BinQueryResult r) {
    Record rec;
    rec.nodes.assign(nodes.begin(), nodes.end());
    rec.result = r;
    rec.true_positives = inner_->oracle_positive_count(nodes);
    transcript_.push_back(std::move(rec));
    return r;
  }

  QueryChannel* inner_;
  std::vector<Record> transcript_;
  std::vector<Announcement> announcements_;
};

}  // namespace tcast::group
