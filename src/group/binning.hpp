// Bin (group) assignment — the group-testing structure tcast queries act on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tcast::group {

/// A partition of (a subset of) the participants into queryable bins.
class BinAssignment {
 public:
  /// Random equal-sized partition (Alg. 1 line 4): shuffle then deal
  /// round-robin; bin sizes differ by at most one.
  static BinAssignment random_equal(std::span<const NodeId> nodes,
                                    std::size_t bins, RngStream& rng);

  /// Deterministic contiguous partition (the variant of [4] the paper
  /// contrasts with; ablation `abl_binning`).
  static BinAssignment contiguous(std::span<const NodeId> nodes,
                                  std::size_t bins);

  /// One bin containing each node independently with `inclusion_prob` —
  /// the probabilistic sampling bin of Sec. V-D / VI.
  static BinAssignment sampled(std::span<const NodeId> nodes,
                               double inclusion_prob, RngStream& rng);

  std::size_t bin_count() const { return bins_.size(); }
  std::span<const NodeId> bin(std::size_t i) const {
    return bins_.at(i);
  }
  std::size_t total_assigned() const;

  /// Serialises to the on-air node→bin map carried by a Predicate frame.
  /// `universe` is the participant count (wire vector length); nodes not in
  /// any bin get rcd::kNotInRound (0xFFFF).
  std::vector<std::uint16_t> to_wire(std::size_t universe) const;

  /// Allocation-free variant: serialises into `out` (resized to `universe`,
  /// capacity reused). The packet tier calls this once per poll, so the
  /// scratch buffer must not churn the allocator.
  void to_wire_into(std::size_t universe, std::vector<std::uint16_t>& out) const;

 private:
  explicit BinAssignment(std::vector<std::vector<NodeId>> bins)
      : bins_(std::move(bins)) {}

  std::vector<std::vector<NodeId>> bins_;
};

}  // namespace tcast::group
