// Bin (group) assignment — the group-testing structure tcast queries act on.
//
// Storage is one flat NodeId arena plus a bins+1 offset table (no per-bin
// vectors), and — when the bin count is small enough for the word path to
// win — a per-bin 64-bit word image of the membership, so word-capable
// channels can answer "is this bin empty?" with AND + popcount against
// their positive set (see common/node_set.hpp). The `assign_*` methods
// reuse every buffer, so a round engine re-binning each round allocates
// nothing at steady state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace tcast::group {

/// A partition of (a subset of) the participants into queryable bins.
class BinAssignment {
 public:
  /// Beyond this many bins the per-bin word images are not built: with b
  /// bins over n nodes a span walk costs O(n/b) per query while the word
  /// path costs O(n/64) — words only win while b ≲ 64, and the image arena
  /// would grow as b·n/64 words.
  static constexpr std::size_t kMaxBinsForWords = 64;

  BinAssignment() = default;

  /// Random equal-sized partition (Alg. 1 line 4): Fisher-Yates permutation
  /// then round-robin deal; bin sizes differ by at most one. Draw sequence
  /// and resulting bins are bit-identical to the historical
  /// shuffle-then-push_back construction.
  static BinAssignment random_equal(std::span<const NodeId> nodes,
                                    std::size_t bins, RngStream& rng);

  /// Deterministic contiguous partition (the variant of [4] the paper
  /// contrasts with; ablation `abl_binning`).
  static BinAssignment contiguous(std::span<const NodeId> nodes,
                                  std::size_t bins);

  /// One bin containing each node independently with `inclusion_prob` —
  /// the probabilistic sampling bin of Sec. V-D / VI.
  static BinAssignment sampled(std::span<const NodeId> nodes,
                               double inclusion_prob, RngStream& rng);

  /// Allocation-reusing variants of the factories above: repopulate this
  /// assignment in place, keeping arena/offset/word capacity.
  void assign_random_equal(std::span<const NodeId> nodes, std::size_t bins,
                           RngStream& rng);
  /// assign_random_equal for callers that own a mutable candidate buffer
  /// they rebuild anyway (the round engine): permutes `nodes` in place
  /// (Fisher-Yates, the exact shuffle draw sequence) instead of copying it
  /// into the scratch buffer first. Identical bins and draws.
  void assign_random_equal_inplace(std::span<NodeId> nodes, std::size_t bins,
                                   RngStream& rng);
  void assign_contiguous(std::span<const NodeId> nodes, std::size_t bins);
  void assign_sampled(std::span<const NodeId> nodes, double inclusion_prob,
                      RngStream& rng);

  std::size_t bin_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::span<const NodeId> bin(std::size_t i) const {
    TCAST_DCHECK(i < bin_count());
    return {arena_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  std::size_t total_assigned() const { return arena_.size(); }

  /// Word image of bin membership, present when bin_count() ≤
  /// kMaxBinsForWords (and the assignment is non-trivial). `bin_words(i)`
  /// spans words_per_bin() words covering ids [0, 64·words_per_bin()); ids
  /// beyond every member's id are simply absent. Word-capable channels use
  /// it for AND+popcount queries; everyone else ignores it.
  bool has_bin_words() const { return words_per_bin_ != 0; }
  std::size_t words_per_bin() const { return words_per_bin_; }
  std::span<const NodeSet::Word> bin_words(std::size_t i) const {
    TCAST_DCHECK(has_bin_words() && i < bin_count());
    return {words_.data() + i * words_per_bin_, words_per_bin_};
  }

  /// The whole word image as one contiguous arena (bin i at stride
  /// i·words_per_bin()) — the layout the batched SIMD bin-count kernel
  /// consumes. Only meaningful when has_bin_words().
  std::span<const NodeSet::Word> bin_words_arena() const {
    TCAST_DCHECK(has_bin_words());
    return {words_.data(), bin_count() * words_per_bin_};
  }

  /// Monotone globally-unique content version, bumped by every assign_*
  /// call (including on a freshly default-constructed assignment). Channels
  /// that cache per-announcement derived state (ExactChannel's batched bin
  /// counts) key it on this, so an in-place re-assignment — or a different
  /// assignment recycled at the same address — can never serve stale
  /// counts.
  std::uint64_t version() const { return version_; }

  /// Serialises to the on-air node→bin map carried by a Predicate frame.
  /// `universe` is the participant count (wire vector length); nodes not in
  /// any bin get rcd::kNotInRound (0xFFFF).
  std::vector<std::uint16_t> to_wire(std::size_t universe) const;

  /// Allocation-free variant: serialises into `out` (resized to `universe`,
  /// capacity reused). The packet tier calls this once per poll, so the
  /// scratch buffer must not churn the allocator.
  void to_wire_into(std::size_t universe, std::vector<std::uint16_t>& out) const;

 private:
  void build_words();
  /// Fisher-Yates shuffle of `nodes` (exactly RngStream::shuffle's draw
  /// sequence) fused with the round-robin deal and word-image build: each
  /// element is dealt the moment the shuffle settles it, one walk total.
  /// Produces exactly the arena/offsets/words that shuffle-then-
  /// build_words() would.
  void shuffle_deal_and_build_words(std::span<NodeId> nodes, std::size_t bins,
                                    RngStream& rng);
  void bump_version();

  std::vector<NodeId> arena_;          ///< members, grouped by bin
  std::vector<std::size_t> offsets_;   ///< bins+1 arena offsets
  std::vector<NodeId> scratch_;        ///< reused shuffle buffer
  std::vector<NodeSet::Word> words_;   ///< bins × words_per_bin_ image
  std::size_t words_per_bin_ = 0;      ///< 0 = no word image
  std::uint64_t version_ = 0;          ///< 0 = never assigned
};

}  // namespace tcast::group
