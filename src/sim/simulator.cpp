#include "sim/simulator.hpp"

#include <limits>

#include "common/check.hpp"

namespace tcast::sim {

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  TCAST_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::schedule_at(SimTime t, EventPriority priority,
                               EventFn fn) {
  TCAST_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, priority, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, EventFn fn) {
  TCAST_CHECK(delay >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

std::size_t Simulator::drain(SimTime deadline, std::size_t max_events) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && executed < max_events && !queue_.empty() &&
         queue_.next_time() <= deadline) {
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.fn();
    ++executed;
  }
  if (!stopped_ && deadline != std::numeric_limits<SimTime>::max() &&
      now_ < deadline && (queue_.empty() || queue_.next_time() > deadline))
    now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  return drain(std::numeric_limits<SimTime>::max(),
               std::numeric_limits<std::size_t>::max());
}

std::size_t Simulator::run_until(SimTime deadline) {
  TCAST_CHECK(deadline >= now_);
  return drain(deadline, std::numeric_limits<std::size_t>::max());
}

std::size_t Simulator::run_steps(std::size_t max_events) {
  return drain(std::numeric_limits<SimTime>::max(), max_events);
}

std::size_t Simulator::run_before(SimTime horizon) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() < horizon) {
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_before_flag(SimTime horizon,
                                       const std::function<bool()>& done) {
  std::size_t executed = 0;
  while (!done() && !queue_.empty() && queue_.next_time() < horizon) {
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until_flag(const std::function<bool()>& done,
                                      std::size_t max_steps) {
  std::size_t executed = 0;
  while (!done() && !queue_.empty()) {
    executed += drain(std::numeric_limits<SimTime>::max(), 1);
    TCAST_CHECK_MSG(executed < max_steps, "run_until_flag: hang guard hit");
  }
  return executed;
}

}  // namespace tcast::sim
