// The discrete-event simulator: a clock, an event set, and a model RNG.
//
// One Simulator instance is one simulated world (one testbed run, one CSMA
// feedback session, ...). Determinism contract: given the same seed and the
// same sequence of schedule calls, every run is bit-identical.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace tcast::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1, std::uint64_t stream = 0)
      : rng_(seed, stream) {}

  SimTime now() const { return now_; }

  /// Schedules at an absolute time ≥ now().
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules with an explicit same-time rank (see EventQueue::schedule).
  EventId schedule_at(SimTime t, EventPriority priority, EventFn fn);

  /// Schedules `delay ≥ 0` after now().
  EventId schedule_after(SimTime delay, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs to quiescence (or until stop()). Returns events executed.
  std::size_t run();

  /// Runs events with time ≤ deadline; clock ends at min(deadline, last
  /// event) unless stopped. Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Executes at most `max_events`; returns how many ran.
  std::size_t run_steps(std::size_t max_events);

  /// Stops the current run() after the executing event returns.
  void stop() { stopped_ = true; }

  bool pending() const { return !queue_.empty(); }
  std::size_t pending_count() const { return queue_.size(); }

  /// Time of the earliest pending event. Precondition: pending(). The
  /// parallel kernel (sim/parallel) reads this to compute conservative
  /// safe-time horizons without popping.
  SimTime next_event_time() const { return queue_.next_time(); }

  /// Executes every event with time strictly below `horizon`, including
  /// events scheduled during the drain that still land below it. Unlike
  /// run_until, the clock follows executed events and never advances past
  /// them — the caller (the parallel kernel) may deliver cross-LP events at
  /// any time ≥ horizon afterwards. Returns events executed.
  std::size_t run_before(SimTime horizon);

  /// run_before, but also stops as soon as `done()` is true (checked before
  /// every event, matching run_until_flag). Returns events executed.
  std::size_t run_before_flag(SimTime horizon,
                              const std::function<bool()>& done);

  /// World-model randomness (channel noise, jitter, backoff draws).
  RngStream& rng() { return rng_; }

  /// Steps events until `done()` is true or the queue empties. Use instead
  /// of run() when perpetual background processes (e.g. an interference
  /// source) keep the queue non-empty forever. Returns events executed;
  /// aborts after `max_steps` as a hang guard.
  std::size_t run_until_flag(const std::function<bool()>& done,
                             std::size_t max_steps = 10'000'000);

 private:
  std::size_t drain(SimTime deadline, std::size_t max_events);

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  RngStream rng_;
};

}  // namespace tcast::sim
