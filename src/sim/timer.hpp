// RAII one-shot / periodic timer bound to a Simulator.
//
// Mirrors the TinyOS Timer interface the mote firmware layer is written
// against (startOneShot / startPeriodic / stop / isRunning).
#pragma once

#include <functional>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace tcast::sim {

class Timer {
 public:
  Timer(Simulator& simulator, std::function<void()> fired)
      : sim_(&simulator), fired_(std::move(fired)) {}

  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Fires once after `delay`.
  void start_one_shot(SimTime delay);

  /// Fires every `period` until stopped; first firing after one period.
  void start_periodic(SimTime period);

  void stop();

  bool is_running() const { return pending_ != 0; }

 private:
  void arm(SimTime delay);
  void on_fire();

  Simulator* sim_;
  std::function<void()> fired_;
  EventId pending_ = 0;
  SimTime period_ = 0;  // 0 = one-shot
};

}  // namespace tcast::sim
