#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::sim {

namespace {
// One packet-tier poll schedules a few dozen events; 64 slots absorb the
// common case with a single up-front allocation per queue.
constexpr std::size_t kReserve = 64;
}  // namespace

EventQueue::EventQueue() {
  heap_.reserve(kReserve);
  slots_.reserve(kReserve);
  slot_owner_.reserve(kReserve);
  free_slots_.reserve(kReserve);
}

void EventQueue::heap_push(const Entry& e) const {
  // 4-ary sift-up with a hole instead of repeated swaps.
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::heap_pop_top() const {
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Sift the former tail down from the root, again hole-style.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t fence = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < fence; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  return schedule(t, EventPriority{0}, std::move(fn));
}

EventId EventQueue::schedule(SimTime t, EventPriority priority, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    TCAST_CHECK_MSG(slots_.size() <= kSlotMask, "too many live events");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slot_owner_.push_back(0);
  }
  const EventId id = (next_seq_++ << kSlotBits) | slot;
  slots_[slot] = std::move(fn);
  slot_owner_[slot] = id;
  heap_push(Entry{t, id, priority});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::size_t>(id & kSlotMask);
  if (slot >= slot_owner_.size() || slot_owner_[slot] != id) return false;
  slot_owner_[slot] = 0;
  slots_[slot] = nullptr;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  --live_;
  return true;  // heap tombstone skipped on pop
}

void EventQueue::skip_dead() const {
  while (!heap_.empty() && !entry_live(heap_.front())) heap_pop_top();
}

SimTime EventQueue::next_time() const {
  TCAST_CHECK(!empty());
  skip_dead();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  TCAST_CHECK(!empty());
  skip_dead();
  const Entry top = heap_.front();
  heap_pop_top();
  const auto slot = static_cast<std::size_t>(top.id & kSlotMask);
  Fired fired{top.time, top.id, std::move(slots_[slot])};
  slots_[slot] = nullptr;  // drop any residue the move left behind
  slot_owner_[slot] = 0;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  --live_;
  return fired;
}

}  // namespace tcast::sim
