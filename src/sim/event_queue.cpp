#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::sim {

namespace {
// One packet-tier poll schedules a few dozen events; 64 slots absorb the
// common case with a single up-front allocation per queue.
constexpr std::size_t kReserve = 64;
}  // namespace

EventQueue::EventQueue() {
  heap_.reserve(kReserve);
  callbacks_.reserve(kReserve);
}

void EventQueue::heap_push(const Entry& e) const {
  // 4-ary sift-up with a hole instead of repeated swaps.
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::heap_pop_top() const {
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Sift the former tail down from the root, again hole-style.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t fence = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < fence; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  return schedule(t, EventPriority{0}, std::move(fn));
}

EventId EventQueue::schedule(SimTime t, EventPriority priority, EventFn fn) {
  const EventId id = next_id_++;
  heap_push(Entry{t, id, priority});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(id);
  if (erased == 0) return false;
  --live_;
  return true;  // heap tombstone skipped on pop
}

void EventQueue::skip_dead() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end())
    heap_pop_top();
}

SimTime EventQueue::next_time() const {
  TCAST_CHECK(!empty());
  skip_dead();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  TCAST_CHECK(!empty());
  // Tombstone-skip and callback extraction share one hash lookup per entry:
  // the find() that proves the head is alive is reused to take its closure
  // (the map traffic, not the heap, dominates pop cost).
  auto it = callbacks_.find(heap_.front().id);
  while (it == callbacks_.end()) {
    heap_pop_top();
    it = callbacks_.find(heap_.front().id);
  }
  const Entry top = heap_.front();
  heap_pop_top();
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return fired;
}

}  // namespace tcast::sim
