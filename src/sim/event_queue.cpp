#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace tcast::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto erased = callbacks_.erase(id);
  if (erased == 0) return false;
  --live_;
  return true;  // heap tombstone skipped on pop
}

void EventQueue::skip_dead() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().id) == callbacks_.end())
    heap_.pop();
}

SimTime EventQueue::next_time() const {
  TCAST_CHECK(!empty());
  skip_dead();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  TCAST_CHECK(!empty());
  skip_dead();
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  TCAST_DCHECK(it != callbacks_.end());
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return fired;
}

}  // namespace tcast::sim
