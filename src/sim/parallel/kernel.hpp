// Conservative (Chandy–Misra–Bryant-style) parallel discrete-event kernel.
//
// A world is partitioned into *logical processes* (LPs): one LP per mote
// cluster / spatial cell, each owning an LP-local `sim::Simulator` (event
// queue, clock, model RNG). Cross-LP interactions — radio broadcasts
// bleeding into a neighbouring cell, a control plane crashing a mote —
// travel as timestamped channel events (`post`) over declared links, and
// every link carries a *lookahead*: a static lower bound on the delay
// between an LP executing an event and the earliest timestamp it may hand
// a neighbour. For the packet tier that bound is physical: a mote's radio
// cannot affect another cell sooner than the propagation + slot boundary
// delay of the radio slot model.
//
// Synchronization is the safe-time barrier variant of conservative DES
// (the null-message information, computed centrally per window instead of
// flooded over links):
//
//   1. every LP reports its next local event time;
//   2. the kernel relaxes per-LP *earliest input times* (EIT) over the
//      link graph: EIT(d) = min over in-links (s→d) of
//      min(next(s), EIT(s)) + lookahead(s→d);
//   3. each LP drains every event strictly below its EIT in parallel
//      (ThreadPool::run_batch; the calling thread participates), buffering
//      outbound messages in an LP-local outbox;
//   4. barrier: outboxes are routed — each destination's batch is sorted
//      by (time, priority, source LP rank, source sequence) and inserted
//      into the destination's event queue in that order.
//
// Determinism: window boundaries are a pure function of LP state (never of
// thread timing), LP drains touch only LP-local state, and the sorted
// barrier insertion extends the event queue's (time, priority, seq)
// tie-break with a stable LP rank — so a world is bit-reproducible under a
// fixed seed regardless of worker count, including worker count one (the
// inline path used when no pool is supplied). With all lookaheads ≥ 1 the
// LP holding the globally earliest event always clears its own EIT, so
// every window makes progress and no deadlock avoidance traffic is needed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "sim/simulator.hpp"

namespace tcast::sim::parallel {

/// Stable LP identity used in the cross-LP tie-break. Assigned densely in
/// add_lp/adopt_lp order.
using LpRank = std::uint32_t;

/// "No event / unbounded" sentinel, kept far from overflow so adding a
/// lookahead to it stays representable.
inline constexpr SimTime kHorizonInf =
    std::numeric_limits<SimTime>::max() / 4;

struct KernelConfig {
  /// Worker pool the window drains fan out over. nullptr = run every LP
  /// inline on the calling thread (the sequential differential reference;
  /// bit-identical to any pool by construction).
  ThreadPool* pool = nullptr;
  /// Hang guard for run_until_flag (events executed).
  std::size_t max_steps = 50'000'000;
};

struct KernelStats {
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  /// Windows in which at most one LP executed work — where conservative
  /// lookahead serialized the world (docs/PERFORMANCE.md reports this
  /// honestly for the singlehop worlds).
  std::uint64_t stalled_windows = 0;
  std::uint64_t relax_passes = 0;
};

class ParallelKernel;

/// One logical process: an LP-local simulator plus the kernel-facing
/// bookkeeping (rank, link set, outbox). Create via ParallelKernel::add_lp
/// (kernel-owned simulator, LP-local RNG stream) or adopt_lp (caller-owned
/// simulator hosted on the kernel — how PacketChannel's singlehop world
/// becomes an LP).
class LogicalProcess {
 public:
  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  LpRank rank() const { return rank_; }

  LogicalProcess(const LogicalProcess&) = delete;
  LogicalProcess& operator=(const LogicalProcess&) = delete;

 private:
  friend class ParallelKernel;

  struct Message {
    SimTime time = 0;
    EventPriority priority = 0;
    LpRank src = 0;
    std::uint64_t seq = 0;  ///< per-source outbound sequence
    LpRank dst = 0;
    EventFn fn;
  };

  LogicalProcess(std::unique_ptr<Simulator> owned, Simulator* borrowed,
                 LpRank rank)
      : owned_(std::move(owned)),
        sim_(owned_ ? owned_.get() : borrowed),
        rank_(rank) {}

  std::unique_ptr<Simulator> owned_;
  Simulator* sim_;
  LpRank rank_;
  std::vector<std::pair<LpRank, SimTime>> in_links_;  ///< (src, lookahead)
  std::vector<Message> outbox_;
  std::uint64_t next_out_seq_ = 1;
  // Per-window scratch (written single-threaded between drains, read by the
  // LP's own drain only).
  SimTime next_ = kHorizonInf;
  SimTime eit_ = kHorizonInf;
  SimTime horizon_ = kHorizonInf;
  std::size_t executed_ = 0;
};

class ParallelKernel {
 public:
  explicit ParallelKernel(KernelConfig cfg = {});
  ~ParallelKernel();

  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;

  /// Creates an LP with a kernel-owned Simulator seeded (seed, stream) —
  /// the LP-local RNG stream. Stable address for the kernel's lifetime.
  LogicalProcess& add_lp(std::uint64_t seed, std::uint64_t stream);

  /// Hosts a caller-owned simulator as an LP (the simulator must outlive
  /// the kernel and must not be advanced behind the kernel's back).
  LogicalProcess& adopt_lp(Simulator& sim);

  std::size_t lp_count() const { return lps_.size(); }
  LogicalProcess& lp(std::size_t i) { return *lps_[i]; }

  /// Declares that `src` may send events to `dst`, never sooner than
  /// `lookahead` after the sending event executes. lookahead ≥ 1: a
  /// zero-lookahead link would serialize the pair (and the conservative
  /// horizon could never separate them).
  void connect(LogicalProcess& src, LogicalProcess& dst, SimTime lookahead);

  /// Posts a cross-LP timestamped event: `fn` runs on `dst`'s simulator at
  /// `time`. Must respect the link's lookahead (time ≥ src.sim().now() +
  /// lookahead); checked. Callable from inside an executing event of `src`
  /// (the common case — LP drains run concurrently, but each outbox is
  /// LP-local) or from the driver thread before/between runs.
  void post(LogicalProcess& src, LogicalProcess& dst, SimTime time,
            EventPriority priority, EventFn fn);

  /// Runs to global quiescence (every queue empty, every message routed).
  /// Returns events executed.
  std::size_t run();

  /// Runs every event with time ≤ deadline. Perpetual background processes
  /// (beacon traffic, interference) keep queues non-empty forever; this is
  /// the bounded drive for such worlds.
  std::size_t run_until(SimTime deadline);

  /// Drives the whole world conservatively until `done()` flips, checking
  /// the flag before every event of `watch` (other LPs drain whole
  /// windows). This is how a synchronous co-simulation caller
  /// (PacketChannel's query loop) waits for a protocol milestone while
  /// neighbour LPs keep pace. Returns events executed; TCAST_CHECK-fails
  /// after cfg.max_steps as a hang guard.
  std::size_t run_until_flag(LogicalProcess& watch,
                             const std::function<bool()>& done);

  const KernelStats& stats() const { return stats_; }

 private:
  struct Link {
    LpRank src;
    LpRank dst;
    SimTime lookahead;
  };

  /// One conservative window: compute horizons, drain, route. Returns
  /// events executed (0 = nothing runnable at or below `deadline`).
  std::size_t step_window(SimTime deadline, LogicalProcess* watch,
                          const std::function<bool()>* done);
  void compute_horizons(SimTime deadline);
  void drain_lps(LogicalProcess* watch, const std::function<bool()>* done);
  std::size_t route_outboxes();

  KernelConfig cfg_;
  std::vector<std::unique_ptr<LogicalProcess>> lps_;
  std::vector<Link> links_;
  KernelStats stats_;
  /// Routing scratch, reused across windows.
  std::vector<LogicalProcess::Message> route_scratch_;
};

}  // namespace tcast::sim::parallel
